package imp

import (
	"context"
	"errors"
	"fmt"

	"github.com/impsim/imp/internal/harness"
)

// SweepOptions configure RunSweep.
type SweepOptions struct {
	// Parallelism bounds concurrent simulations (<=0: GOMAXPROCS).
	Parallelism int
	// OnProgress, when non-nil, receives one event per completed point
	// (Experiment is empty for ad-hoc sweeps). It is never called
	// concurrently with itself.
	OnProgress func(ProgressEvent)
	// Gate, when non-nil, additionally bounds in-flight simulations across
	// every sweep sharing the gate (see NewGate). A service running many
	// sweeps concurrently uses one gate to cap total simulation load;
	// results are unaffected — gating only changes scheduling.
	Gate Gate
}

// Gate bounds concurrent simulations across independent sweeps. Obtain one
// with NewGate and share it via SweepOptions.Gate / ExpOptions.Gate.
type Gate interface {
	// Acquire blocks until a slot is free or ctx is done.
	Acquire(ctx context.Context) error
	// Release frees the slot taken by a successful Acquire.
	Release()
}

// NewGate returns a Gate admitting at most n concurrent simulations
// (n < 1 is treated as 1).
func NewGate(n int) Gate { return harness.NewGate(n) }

// RunSweep simulates every config concurrently with bounded parallelism and
// returns one result per config, in config order — the results are identical
// to running each config serially through Run. Traces are built per point
// (configs in a sweep usually differ in workload, cores or scale); use
// Experiments for the paper's trace-sharing sweeps.
func RunSweep(ctx context.Context, cfgs []Config, opt SweepOptions) ([]*Result, error) {
	meta := make([]sweepMeta, len(cfgs))
	for i, cfg := range cfgs {
		meta[i] = sweepMeta{workload: cfg.Workload, system: cfg.System}
	}
	return sweepSim(ctx, opt.Parallelism, opt.Gate, meta, func(ctx context.Context, i int) (*Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return Run(cfgs[i])
	}, opt.OnProgress, nil)
}

// ExpSeed returns the trace seed an experiment derives for workload from a
// base seed (ExpOptions.Seed). Pass it as Config.Seed to reproduce a single
// experiment point through Run or impsim — a raw base seed would build
// different inputs. A zero base returns 0 (the paper's default inputs).
func ExpSeed(base int64, workload string) int64 {
	return harness.SeedFor(base, workload)
}

// sweepMeta labels one sweep point for events and error messages.
type sweepMeta struct {
	experiment string
	workload   string
	system     System
}

// sweepSim is the one adapter between simulation sweeps and the harness:
// it wraps per-point sim closures into labeled harness points, fans them out
// with fail-fast bounded parallelism, translates harness events into
// ProgressEvents, and returns results in point order.
func sweepSim(ctx context.Context, parallelism int, gate Gate, meta []sweepMeta,
	sim func(ctx context.Context, i int) (*Result, error),
	onProgress func(ProgressEvent), progress func(string)) ([]*Result, error) {
	pts := make([]harness.Point[*Result], len(meta))
	for i := range meta {
		i := i
		pts[i] = harness.Point[*Result]{
			Label: fmt.Sprintf("%s/%s", meta[i].workload, meta[i].system),
			Run: func(ctx context.Context) (*Result, error) {
				return sim(ctx, i)
			},
		}
	}
	var onEvent func(harness.Event, *Result)
	if onProgress != nil || progress != nil {
		onEvent = func(e harness.Event, res *Result) {
			// Points skipped by fail-fast cancellation never simulated
			// anything; reporting each would bury the real failure.
			if errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded) {
				return
			}
			m := meta[e.Index]
			var cycles int64
			if res != nil {
				cycles = res.Cycles
			}
			if onProgress != nil {
				onProgress(ProgressEvent{
					Experiment: m.experiment, Workload: m.workload, System: m.system,
					Point: e.Index, Total: e.Total, Done: e.Done,
					Cycles: cycles, Elapsed: e.Elapsed, Err: e.Err,
				})
			}
			if progress != nil && e.Err == nil {
				progress(fmt.Sprintf("%s/%s: %d cycles", m.workload, m.system, cycles))
			}
		}
	}
	return harness.Sweep(ctx, pts,
		harness.Options{Workers: parallelism, FailFast: true, Gate: gate}, onEvent)
}
