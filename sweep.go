package imp

import (
	"context"
	"errors"
	"fmt"

	"github.com/impsim/imp/internal/harness"
)

// SweepOptions configure RunSweep. All knobs live in the embedded
// RunOptions, shared with ExpOptions.
type SweepOptions struct {
	RunOptions
}

// Gate bounds concurrent simulations across independent sweeps. Obtain one
// with NewGate and share it via SweepOptions.Gate / ExpOptions.Gate.
type Gate interface {
	// Acquire blocks until a slot is free or ctx is done.
	Acquire(ctx context.Context) error
	// Release frees the slot taken by a successful Acquire.
	Release()
}

// NewGate returns a Gate admitting at most n concurrent simulations
// (n < 1 is treated as 1).
func NewGate(n int) Gate { return harness.NewGate(n) }

// RunSweep simulates every config concurrently with bounded parallelism and
// returns one result per config, in config order — the results are identical
// to running each config serially through Run. Traces are built per point
// (configs in a sweep usually differ in workload, cores or scale); use
// Experiments for the paper's trace-sharing sweeps. With opt.Checkpoints
// enabled, configs whose effective simulation is identical share one replay
// through the checkpoint cache instead of cold-starting each.
func RunSweep(ctx context.Context, cfgs []Config, opt SweepOptions) ([]*Result, error) {
	pts := make([]simPoint, len(cfgs))
	for i, cfg := range cfgs {
		cfg.applyDefaults()
		if cfg.Seed == 0 && opt.Seed != 0 {
			cfg.Seed = ExpSeed(opt.Seed, cfg.Workload)
		}
		cfg := cfg
		pts[i] = simPoint{
			meta: sweepMeta{workload: cfg.Workload, system: cfg.System},
			run: func(ctx context.Context) (*Result, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return runCfg(cfg, opt.Checkpoints)
			},
		}
		pts[i].prefixKey, pts[i].runPrefix = prefixFor(cfg, opt.Checkpoints)
	}
	return sweepSim(opt.ctx(ctx), opt.RunOptions, pts, nil)
}

// ExpSeed returns the trace seed an experiment derives for workload from a
// base seed (ExpOptions.Seed). Pass it as Config.Seed to reproduce a single
// experiment point through Run or impsim — a raw base seed would build
// different inputs. A zero base returns 0 (the paper's default inputs).
func ExpSeed(base int64, workload string) int64 {
	return harness.SeedFor(base, workload)
}

// sweepMeta labels one sweep point for events and error messages.
type sweepMeta struct {
	experiment string
	workload   string
	system     System
}

// simPoint is one fully-resolved sweep point: event metadata, the leaf
// simulation closure, and (with checkpointing on) the prefix-sharing key
// and warm-up closure the harness runs once per group.
type simPoint struct {
	meta      sweepMeta
	prefixKey string
	runPrefix func(ctx context.Context) error
	run       func(ctx context.Context) (*Result, error)
}

// sweepSim is the one adapter between simulation sweeps and the harness:
// it wraps per-point sim closures into labeled harness points, fans them out
// with fail-fast bounded parallelism, translates harness events into
// ProgressEvents, and returns results in point order.
func sweepSim(ctx context.Context, opt RunOptions, pts []simPoint, progress func(string)) ([]*Result, error) {
	hpts := make([]harness.Point[*Result], len(pts))
	for i := range pts {
		hpts[i] = harness.Point[*Result]{
			Label:     fmt.Sprintf("%s/%s", pts[i].meta.workload, pts[i].meta.system),
			PrefixKey: pts[i].prefixKey,
			RunPrefix: pts[i].runPrefix,
			Run:       pts[i].run,
		}
	}
	var onEvent func(harness.Event, *Result)
	if opt.OnProgress != nil || progress != nil {
		onEvent = func(e harness.Event, res *Result) {
			// Points skipped by fail-fast cancellation never simulated
			// anything; reporting each would bury the real failure.
			if errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded) {
				return
			}
			m := pts[e.Index].meta
			var cycles int64
			if res != nil {
				cycles = res.Cycles
			}
			if opt.OnProgress != nil {
				opt.OnProgress(ProgressEvent{
					Experiment: m.experiment, Workload: m.workload, System: m.system,
					Point: e.Index, Total: e.Total, Done: e.Done,
					Cycles: cycles, Elapsed: e.Elapsed, Err: e.Err,
				})
			}
			if progress != nil && e.Err == nil {
				progress(fmt.Sprintf("%s/%s: %d cycles", m.workload, m.system, cycles))
			}
		}
	}
	return harness.Sweep(ctx, hpts,
		harness.Options{Workers: opt.Parallelism, FailFast: true, Gate: opt.Gate}, onEvent)
}
