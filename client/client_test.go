package client

// Unit tests for the client's error surface against stub servers. The
// happy paths run end to end against the real service in
// internal/service's tests; here the concern is how the client reports
// misbehaving or unreachable servers.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/impsim/imp/api"
)

func stub(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return New(srv.URL, srv.Client())
}

func TestErrorPayloadSurfaced(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error": "job not finished: running"}`))
	})
	_, err := c.Result(context.Background(), "j-000001")
	if err == nil || !strings.Contains(err.Error(), "job not finished") {
		t.Fatalf("service error payload lost: %v", err)
	}
	if !strings.Contains(err.Error(), "409") {
		t.Errorf("status code lost: %v", err)
	}
}

func TestNonJSONErrorBodySurfaced(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "proxy says no", http.StatusBadGateway)
	})
	_, err := c.Status(context.Background(), "j-000001")
	if err == nil || !strings.Contains(err.Error(), "proxy says no") {
		t.Fatalf("plain error body lost: %v", err)
	}
}

func TestStreamEndingWithoutTerminalEventErrors(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"seq":0,"workload":"spmv","total":2,"done":1}` + "\n"))
		// Connection ends with the job still running.
	})
	err := c.Stream(context.Background(), "j-000001", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "before the terminal event") {
		t.Fatalf("truncated stream not reported: %v", err)
	}
}

func TestStreamGarbageLineErrors(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json\n"))
	})
	err := c.Stream(context.Background(), "j-000001", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "decoding event") {
		t.Fatalf("garbage event line not reported: %v", err)
	}
}

func TestRunReportsFailedJob(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.Write([]byte(`{"id":"j-000001","key":"k","state":"queued"}`))
		case strings.HasSuffix(r.URL.Path, "/events"):
			w.Write([]byte(`{"seq":0,"state":"failed","error":"boom"}` + "\n"))
		default: // final status fetch
			w.Write([]byte(`{"id":"j-000001","key":"k","state":"failed","error":"boom"}`))
		}
	})
	_, _, err := c.Run(context.Background(), api.JobSpec{Experiment: "fig2"}, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("failed job error lost: %v", err)
	}
}

func TestContextCancelsStream(t *testing.T) {
	blocked := make(chan struct{})
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		<-blocked // hold the stream open until the test finishes
	})
	t.Cleanup(func() { close(blocked) })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Stream(ctx, "j-000001", 0, nil) }()
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled stream returned nil")
	}
}

// TestStreamSurfacesStatusText: a router-originated 502 with an empty body
// must still name the failure class ("Bad Gateway"), not just a number —
// that text is often the only clue that a proxy, not the service, answered.
func TestStreamSurfacesStatusText(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})
	err := c.Stream(context.Background(), "b0.j-000001", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "502 Bad Gateway") {
		t.Fatalf("status text lost on empty-body 502: %v", err)
	}
	if strings.HasSuffix(err.Error(), ": ") || strings.HasSuffix(err.Error(), ":") {
		t.Errorf("empty body left a dangling separator: %q", err.Error())
	}
}

// TestStreamSurfacesRouterErrorPayload: the router's JSON error body rides
// along with the status text.
func TestStreamSurfacesRouterErrorPayload(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error": "router: no healthy backends"}`))
	})
	err := c.Stream(context.Background(), "b0.j-000001", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "503 Service Unavailable") ||
		!strings.Contains(err.Error(), "no healthy backends") {
		t.Fatalf("router error payload lost: %v", err)
	}
}

// TestResponseErrorBareStatusCode: some transports (HTTP/2, test doubles)
// leave Status empty or bare; the client reconstructs the text.
func TestResponseErrorBareStatusCode(t *testing.T) {
	for _, status := range []string{"", "503"} {
		resp := &http.Response{
			Status:     status,
			StatusCode: http.StatusServiceUnavailable,
			Body:       io.NopCloser(strings.NewReader("")),
		}
		err := responseError(resp)
		if !strings.Contains(err.Error(), "503 Service Unavailable") {
			t.Errorf("Status=%q: text not reconstructed: %v", status, err)
		}
	}
}
