package client

// Unit tests for the client's error surface against stub servers. The
// happy paths run end to end against the real service in
// internal/service's tests; here the concern is how the client reports
// misbehaving or unreachable servers.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/impsim/imp/api"
)

func stub(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return New(srv.URL, srv.Client())
}

func TestErrorPayloadSurfaced(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error": "job not finished: running"}`))
	})
	_, err := c.Result(context.Background(), "j-000001")
	if err == nil || !strings.Contains(err.Error(), "job not finished") {
		t.Fatalf("service error payload lost: %v", err)
	}
	if !strings.Contains(err.Error(), "409") {
		t.Errorf("status code lost: %v", err)
	}
}

func TestNonJSONErrorBodySurfaced(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "proxy says no", http.StatusBadGateway)
	})
	_, err := c.Status(context.Background(), "j-000001")
	if err == nil || !strings.Contains(err.Error(), "proxy says no") {
		t.Fatalf("plain error body lost: %v", err)
	}
}

func TestStreamEndingWithoutTerminalEventErrors(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"seq":0,"workload":"spmv","total":2,"done":1}` + "\n"))
		// Connection ends with the job still running.
	})
	err := c.Stream(context.Background(), "j-000001", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "before the terminal event") {
		t.Fatalf("truncated stream not reported: %v", err)
	}
}

func TestStreamGarbageLineErrors(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json\n"))
	})
	err := c.Stream(context.Background(), "j-000001", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "decoding event") {
		t.Fatalf("garbage event line not reported: %v", err)
	}
}

func TestRunReportsFailedJob(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.Write([]byte(`{"id":"j-000001","key":"k","state":"queued"}`))
		case strings.HasSuffix(r.URL.Path, "/events"):
			w.Write([]byte(`{"seq":0,"state":"failed","error":"boom"}` + "\n"))
		default: // final status fetch
			w.Write([]byte(`{"id":"j-000001","key":"k","state":"failed","error":"boom"}`))
		}
	})
	_, _, err := c.Run(context.Background(), api.JobSpec{Experiment: "fig2"}, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("failed job error lost: %v", err)
	}
}

func TestContextCancelsStream(t *testing.T) {
	blocked := make(chan struct{})
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		<-blocked // hold the stream open until the test finishes
	})
	t.Cleanup(func() { close(blocked) })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Stream(ctx, "j-000001", 0, nil) }()
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled stream returned nil")
	}
}

// TestStreamSurfacesStatusText: a router-originated 502 with an empty body
// must still name the failure class ("Bad Gateway"), not just a number —
// that text is often the only clue that a proxy, not the service, answered.
func TestStreamSurfacesStatusText(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})
	err := c.Stream(context.Background(), "b0.j-000001", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "502 Bad Gateway") {
		t.Fatalf("status text lost on empty-body 502: %v", err)
	}
	if strings.HasSuffix(err.Error(), ": ") || strings.HasSuffix(err.Error(), ":") {
		t.Errorf("empty body left a dangling separator: %q", err.Error())
	}
}

// TestStreamSurfacesRouterErrorPayload: the router's JSON error body rides
// along with the status text.
func TestStreamSurfacesRouterErrorPayload(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error": "router: no healthy backends"}`))
	})
	err := c.Stream(context.Background(), "b0.j-000001", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "503 Service Unavailable") ||
		!strings.Contains(err.Error(), "no healthy backends") {
		t.Fatalf("router error payload lost: %v", err)
	}
}

// TestResponseErrorBareStatusCode: some transports (HTTP/2, test doubles)
// leave Status empty or bare; the client reconstructs the text.
func TestResponseErrorBareStatusCode(t *testing.T) {
	for _, status := range []string{"", "503"} {
		resp := &http.Response{
			Status:     status,
			StatusCode: http.StatusServiceUnavailable,
			Body:       io.NopCloser(strings.NewReader("")),
		}
		err := responseError(resp)
		if !strings.Contains(err.Error(), "503 Service Unavailable") {
			t.Errorf("Status=%q: text not reconstructed: %v", status, err)
		}
	}
}

// TestTypedErrorSurfaced: every failed call wraps a *api.Error carrying
// the code, status and retry hint, so callers branch with errors.As
// instead of string-matching the message.
func TestTypedErrorSurfaced(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error": "tenant \"ta\" over submission quota", "code": "over_quota", "retry_after": 7}`))
	})
	_, err := c.Submit(context.Background(), api.JobSpec{Experiment: "fig2"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("no *api.Error in chain: %v", err)
	}
	if apiErr.Code != api.CodeOverQuota || apiErr.Status != http.StatusTooManyRequests || apiErr.RetryAfter != 7 {
		t.Fatalf("typed fields wrong: %+v", apiErr)
	}
	if !strings.Contains(err.Error(), "429") || !strings.Contains(err.Error(), "over submission quota") {
		t.Errorf("rendered error lost status or message: %v", err)
	}
}

// TestTypedErrorFromUntypedBody: an untyped error body (an old server, a
// proxy page) still yields a *api.Error classified from the status code,
// with the retry hint recovered from the Retry-After header.
func TestTypedErrorFromUntypedBody(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "slow down", http.StatusTooManyRequests)
	})
	_, err := c.Status(context.Background(), "j-000001")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("no *api.Error in chain: %v", err)
	}
	if apiErr.Code != api.CodeOverQuota || apiErr.RetryAfter != 3 {
		t.Fatalf("fallback classification wrong: %+v", apiErr)
	}
}

// TestStreamIdleTimeout: a backend that sends one event and then stalls —
// wedged executor, dead TCP peer behind a proxy that keeps the socket
// open — must not hang a Stream caller forever once an idle timeout is
// set. Regression test for the hang: before the watchdog existed this
// blocked until the server process exited.
func TestStreamIdleTimeout(t *testing.T) {
	blocked := make(chan struct{})
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"seq":0,"workload":"spmv","total":2,"done":1}` + "\n"))
		w.(http.Flusher).Flush()
		<-blocked // stall mid-job with the connection open
	})
	t.Cleanup(func() { close(blocked) })
	c.SetStreamIdleTimeout(50 * time.Millisecond)
	var events int
	start := time.Now()
	err := c.Stream(context.Background(), "j-000001", 0, func(api.Event) { events++ })
	if !errors.Is(err, ErrStreamIdle) {
		t.Fatalf("stalled stream error = %v, want ErrStreamIdle", err)
	}
	if events != 1 {
		t.Errorf("events before stall = %d, want 1", events)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("idle abort took %s", waited)
	}
}

// TestStreamIdleTimeoutNotTrippedByProgress: a stream that keeps producing
// events slower than the watchdog window per batch but faster than the
// window per event must complete normally — the timer rearms per line.
func TestStreamIdleTimeoutNotTrippedByProgress(t *testing.T) {
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		for i := 0; i < 4; i++ {
			w.Write([]byte(`{"seq":` + string(rune('0'+i)) + `,"done":1}` + "\n"))
			fl.Flush()
			time.Sleep(30 * time.Millisecond)
		}
		w.Write([]byte(`{"seq":4,"state":"done"}` + "\n"))
	})
	c.SetStreamIdleTimeout(250 * time.Millisecond)
	if err := c.Stream(context.Background(), "j-000001", 0, nil); err != nil {
		t.Fatalf("paced stream tripped the watchdog: %v", err)
	}
}

// TestTenantHeaderSent: SetTenant rides on every request.
func TestTenantHeaderSent(t *testing.T) {
	var got string
	c := stub(t, func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(api.TenantHeader)
		w.Write([]byte(`{"id":"j-000001","key":"k","state":"queued"}`))
	})
	c.SetTenant("team-a")
	if _, err := c.Submit(context.Background(), api.JobSpec{Experiment: "fig2"}); err != nil {
		t.Fatal(err)
	}
	if got != "team-a" {
		t.Fatalf("tenant header = %q, want team-a", got)
	}
}
