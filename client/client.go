// Package client is the Go client for the impserve experiment service
// (cmd/impserve): submit sweep or experiment jobs, stream NDJSON progress,
// and fetch content-addressed results that are byte-identical to direct
// imp.RunSweep / imp.Experiments.Run output.
//
//	c := client.New("http://localhost:8080", nil)
//	st, res, err := c.Run(ctx, api.JobSpec{Sweep: cfgs}, func(e api.Event) {
//	    log.Printf("[%d/%d] %s/%s", e.Done, e.Total, e.Workload, e.System)
//	})
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
)

// Client talks to one impserve instance.
type Client struct {
	base       string
	hc         *http.Client
	adminToken string
}

// New returns a client for the service at base (e.g. "http://host:8080").
// httpClient may be nil for http.DefaultClient; streaming requests rely on
// the client applying no overall timeout (use per-call contexts instead).
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// SetAdminToken attaches "Authorization: Bearer <token>" to every request
// this client sends. The improuter membership surface (/v1/backends)
// requires it when the router was started with -admin-token; all other
// endpoints ignore the header.
func (c *Client) SetAdminToken(token string) {
	c.adminToken = token
}

// Backends lists the router's current ring membership (GET /v1/backends).
// Only meaningful against an improuter front-end.
func (c *Client) Backends(ctx context.Context) ([]api.BackendInfo, error) {
	var out []api.BackendInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/backends", nil, &out)
	return out, err
}

// AddBackend joins an impserve at base to the router's ring
// (POST /v1/backends). The router warms the new member with the key ranges
// it acquires before routing to it; the returned change reports the keys
// moved and the published topology version.
func (c *Client) AddBackend(ctx context.Context, base string) (api.MembershipChange, error) {
	body, err := json.Marshal(api.JoinBackendRequest{URL: base})
	if err != nil {
		return api.MembershipChange{}, err
	}
	var change api.MembershipChange
	err = c.doJSON(ctx, http.MethodPost, "/v1/backends", body, &change)
	return change, err
}

// RemoveBackend retires ring member name (DELETE /v1/backends/{name}).
// A graceful leave (force false) drains the member's stored results to
// their new owners first and fails if it cannot be reached; force drops it
// immediately, leaving recovery to replicas and read-repair.
func (c *Client) RemoveBackend(ctx context.Context, name string, force bool) (api.MembershipChange, error) {
	path := "/v1/backends/" + url.PathEscape(name)
	if force {
		path += "?force=true"
	}
	var change api.MembershipChange
	err := c.doJSON(ctx, http.MethodDelete, path, nil, &change)
	return change, err
}

// StoredKeys lists the result keys a backend's store holds
// (GET /v1/results) — the inventory the router enumerates during
// membership hand-off.
func (c *Client) StoredKeys(ctx context.Context) ([]string, error) {
	var out []string
	err := c.doJSON(ctx, http.MethodGet, "/v1/results", nil, &out)
	return out, err
}

// Submit sends spec; the returned status carries the job id, its result
// key, and whether it was deduplicated against a live job or answered from
// the result cache.
func (c *Client) Submit(ctx context.Context, spec api.JobSpec) (api.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return api.JobStatus{}, err
	}
	var st api.JobStatus
	err = c.doJSON(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// Status fetches the job's current status.
func (c *Client) Status(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Jobs lists the service's retained jobs.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.doJSON(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, &st)
	return st, err
}

// Result fetches the job's canonical result bytes (an api.SweepResult or
// imp.Table JSON document). It fails while the job is still running.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp)
	}
	return io.ReadAll(resp.Body)
}

// SweepResult fetches and decodes a sweep job's results, one per config in
// config order, exactly as imp.RunSweep would have returned them.
func (c *Client) SweepResult(ctx context.Context, id string) ([]*imp.Result, error) {
	data, err := c.Result(ctx, id)
	if err != nil {
		return nil, err
	}
	var sr api.SweepResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("client: decoding sweep result: %w", err)
	}
	return sr.Results, nil
}

// TableResult fetches and decodes an experiment job's result table.
func (c *Client) TableResult(ctx context.Context, id string) (*imp.Table, error) {
	data, err := c.Result(ctx, id)
	if err != nil {
		return nil, err
	}
	var tbl imp.Table
	if err := json.Unmarshal(data, &tbl); err != nil {
		return nil, fmt.Errorf("client: decoding result table: %w", err)
	}
	return &tbl, nil
}

// StoredResult reads the service's result store directly by content key
// (GET /v1/results/{key}) — the peer-read half of the internal replication
// surface the improuter front-end uses for replica reads and read-repair.
// A miss is an error carrying the 404 status.
func (c *Client) StoredResult(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp)
	}
	return io.ReadAll(resp.Body)
}

// PutStoredResult writes result bytes under a content key
// (PUT /v1/results/{key}) — the replica-write half of the replication
// surface. The service trusts the bytes to be the canonical result for
// key; results are content-addressed, so honest writers cannot disagree.
func (c *Client) PutStoredResult(ctx context.Context, key string, data []byte) error {
	resp, err := c.do(ctx, http.MethodPut, "/v1/results/"+url.PathEscape(key), data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return responseError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Stream follows the job's NDJSON progress stream from seq, invoking
// onEvent per event (including the terminal one), and returns once the
// terminal event arrives. onEvent may be nil to just wait for completion.
func (c *Client) Stream(ctx context.Context, id string, seq int, onEvent func(api.Event)) error {
	path := "/v1/jobs/" + url.PathEscape(id) + "/events?from=" + strconv.Itoa(seq)
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: decoding event: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.State.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: event stream: %w", err)
	}
	return fmt.Errorf("client: event stream ended before the terminal event")
}

// Run is the submit-and-wait convenience: it submits spec, streams progress
// until the job finishes (cached results return immediately), and fetches
// the result bytes. A failed or canceled job returns the final status and
// an error.
func (c *Client) Run(ctx context.Context, spec api.JobSpec, onEvent func(api.Event)) (api.JobStatus, []byte, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return st, nil, err
	}
	if !st.State.Terminal() {
		if err := c.Stream(ctx, st.ID, 0, onEvent); err != nil {
			return st, nil, err
		}
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		return st, nil, err
	}
	if final.State != api.StateDone {
		return final, nil, fmt.Errorf("client: job %s %s: %s", final.ID, final.State, final.Error)
	}
	data, err := c.Result(ctx, final.ID)
	return final, data, err
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.adminToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.adminToken)
	}
	return c.hc.Do(req)
}

func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return responseError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// responseError surfaces the service's {"error": ...} payload behind a
// status line that always carries the human-readable status text — a
// router-originated 502/503 must be diagnosable even when the transport
// reported only a bare code or the body is empty.
func responseError(resp *http.Response) error {
	status := strings.TrimSpace(resp.Status)
	if status == "" || status == strconv.Itoa(resp.StatusCode) {
		if text := http.StatusText(resp.StatusCode); text != "" {
			status = fmt.Sprintf("%d %s", resp.StatusCode, text)
		} else {
			status = strconv.Itoa(resp.StatusCode)
		}
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: %s: %s", status, e.Error)
	}
	if body := bytes.TrimSpace(data); len(body) > 0 {
		return fmt.Errorf("client: %s: %s", status, body)
	}
	return fmt.Errorf("client: %s", status)
}
