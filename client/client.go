// Package client is the Go client for the impserve experiment service
// (cmd/impserve): submit sweep or experiment jobs, stream NDJSON progress,
// and fetch content-addressed results that are byte-identical to direct
// imp.RunSweep / imp.Experiments.Run output.
//
//	c := client.New("http://localhost:8080", nil)
//	st, res, err := c.Run(ctx, api.JobSpec{Sweep: cfgs}, func(e api.Event) {
//	    log.Printf("[%d/%d] %s/%s", e.Done, e.Total, e.Workload, e.System)
//	})
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
)

// Client talks to one impserve instance.
type Client struct {
	base       string
	hc         *http.Client
	adminToken string
	tenant     string
	streamIdle time.Duration
}

// New returns a client for the service at base (e.g. "http://host:8080").
// httpClient may be nil for http.DefaultClient; streaming requests rely on
// the client applying no overall timeout (use per-call contexts instead).
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// SetAdminToken attaches "Authorization: Bearer <token>" to every request
// this client sends. The improuter membership surface (/v1/backends)
// requires it when the router was started with -admin-token; all other
// endpoints ignore the header.
func (c *Client) SetAdminToken(token string) {
	c.adminToken = token
}

// SetTenant attaches the api.TenantHeader to every request this client
// sends, identifying it for per-tenant submission quotas. Empty (the
// default) shares the server's default-tenant bucket.
func (c *Client) SetTenant(tenant string) {
	c.tenant = tenant
}

// ErrStreamIdle reports an event stream aborted by SetStreamIdleTimeout:
// the connection stayed open but no event line arrived within the window.
var ErrStreamIdle = errors.New("client: event stream idle timeout")

// SetStreamIdleTimeout bounds the silence Stream tolerates between NDJSON
// event lines (and before the first one); past it the stream is aborted
// with ErrStreamIdle. Zero (the default) waits indefinitely, relying on
// the context alone. Note the window spans queue wait too: a job parked
// behind a deep queue emits nothing until it starts, so pick a timeout
// with the service's backlog in mind, not just its per-point pace.
func (c *Client) SetStreamIdleTimeout(d time.Duration) {
	c.streamIdle = d
}

// Backends lists the router's current ring membership (GET /v1/backends).
// Only meaningful against an improuter front-end.
func (c *Client) Backends(ctx context.Context) ([]api.BackendInfo, error) {
	var out []api.BackendInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/backends", nil, &out)
	return out, err
}

// AddBackend joins an impserve at base to the router's ring
// (POST /v1/backends). The router warms the new member with the key ranges
// it acquires before routing to it; the returned change reports the keys
// moved and the published topology version.
func (c *Client) AddBackend(ctx context.Context, base string) (api.MembershipChange, error) {
	body, err := json.Marshal(api.JoinBackendRequest{URL: base})
	if err != nil {
		return api.MembershipChange{}, err
	}
	var change api.MembershipChange
	err = c.doJSON(ctx, http.MethodPost, "/v1/backends", body, &change)
	return change, err
}

// RemoveBackend retires ring member name (DELETE /v1/backends/{name}).
// A graceful leave (force false) drains the member's stored results to
// their new owners first and fails if it cannot be reached; force drops it
// immediately, leaving recovery to replicas and read-repair.
func (c *Client) RemoveBackend(ctx context.Context, name string, force bool) (api.MembershipChange, error) {
	path := "/v1/backends/" + url.PathEscape(name)
	if force {
		path += "?force=true"
	}
	var change api.MembershipChange
	err := c.doJSON(ctx, http.MethodDelete, path, nil, &change)
	return change, err
}

// StoredKeys lists the result keys a backend's store holds
// (GET /v1/results) — the inventory the router enumerates during
// membership hand-off.
func (c *Client) StoredKeys(ctx context.Context) ([]string, error) {
	var out []string
	err := c.doJSON(ctx, http.MethodGet, "/v1/results", nil, &out)
	return out, err
}

// ServiceStats fetches one impserve backend's counters (GET /v1/stats).
func (c *Client) ServiceStats(ctx context.Context) (api.ServiceStats, error) {
	var st api.ServiceStats
	err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// RouterStats fetches an improuter front-end's aggregated counters
// (GET /v1/stats). Only meaningful against a router; a backend's stats
// document decodes into the zero aggregate.
func (c *Client) RouterStats(ctx context.Context) (api.StatsResponse, error) {
	var st api.StatsResponse
	err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Metrics fetches the server's Prometheus text exposition (GET /metrics).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", responseError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Submit sends spec; the returned status carries the job id, its result
// key, and whether it was deduplicated against a live job or answered from
// the result cache.
func (c *Client) Submit(ctx context.Context, spec api.JobSpec) (api.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return api.JobStatus{}, err
	}
	var st api.JobStatus
	err = c.doJSON(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// Status fetches the job's current status.
func (c *Client) Status(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Jobs lists the service's retained jobs.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.doJSON(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, &st)
	return st, err
}

// Result fetches the job's canonical result bytes (an api.SweepResult or
// imp.Table JSON document). It fails while the job is still running.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp)
	}
	return io.ReadAll(resp.Body)
}

// SweepResult fetches and decodes a sweep job's results, one per config in
// config order, exactly as imp.RunSweep would have returned them.
func (c *Client) SweepResult(ctx context.Context, id string) ([]*imp.Result, error) {
	data, err := c.Result(ctx, id)
	if err != nil {
		return nil, err
	}
	var sr api.SweepResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("client: decoding sweep result: %w", err)
	}
	return sr.Results, nil
}

// TableResult fetches and decodes an experiment job's result table.
func (c *Client) TableResult(ctx context.Context, id string) (*imp.Table, error) {
	data, err := c.Result(ctx, id)
	if err != nil {
		return nil, err
	}
	var tbl imp.Table
	if err := json.Unmarshal(data, &tbl); err != nil {
		return nil, fmt.Errorf("client: decoding result table: %w", err)
	}
	return &tbl, nil
}

// StoredResult reads the service's result store directly by content key
// (GET /v1/results/{key}) — the peer-read half of the internal replication
// surface the improuter front-end uses for replica reads and read-repair.
// A miss is an error carrying the 404 status.
func (c *Client) StoredResult(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp)
	}
	return io.ReadAll(resp.Body)
}

// PutStoredResult writes result bytes under a content key
// (PUT /v1/results/{key}) — the replica-write half of the replication
// surface. The service trusts the bytes to be the canonical result for
// key; results are content-addressed, so honest writers cannot disagree.
func (c *Client) PutStoredResult(ctx context.Context, key string, data []byte) error {
	resp, err := c.do(ctx, http.MethodPut, "/v1/results/"+url.PathEscape(key), data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return responseError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Stream follows the job's NDJSON progress stream from seq, invoking
// onEvent per event (including the terminal one), and returns once the
// terminal event arrives. onEvent may be nil to just wait for completion.
func (c *Client) Stream(ctx context.Context, id string, seq int, onEvent func(api.Event)) error {
	// The idle watchdog cancels a derived context when no event line has
	// arrived for streamIdle; each line rearms it. Cancellation through a
	// context (rather than closing the body) keeps the abort race-free with
	// the transport, and the idle flag distinguishes our deadline from the
	// caller's own cancellation.
	var idle atomic.Bool
	var watchdog *time.Timer
	sctx := ctx
	if c.streamIdle > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithCancel(ctx)
		defer cancel()
		watchdog = time.AfterFunc(c.streamIdle, func() {
			idle.Store(true)
			cancel()
		})
		defer watchdog.Stop()
	}
	path := "/v1/jobs/" + url.PathEscape(id) + "/events?from=" + strconv.Itoa(seq)
	resp, err := c.do(sctx, http.MethodGet, path, nil)
	if err != nil {
		if idle.Load() {
			return fmt.Errorf("%w: no response for job %s in %s", ErrStreamIdle, id, c.streamIdle)
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if watchdog != nil {
			watchdog.Reset(c.streamIdle)
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: decoding event: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.State.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		if idle.Load() {
			return fmt.Errorf("%w: no event for job %s in %s", ErrStreamIdle, id, c.streamIdle)
		}
		return fmt.Errorf("client: event stream: %w", err)
	}
	if idle.Load() {
		return fmt.Errorf("%w: no event for job %s in %s", ErrStreamIdle, id, c.streamIdle)
	}
	return fmt.Errorf("client: event stream ended before the terminal event")
}

// Run is the submit-and-wait convenience: it submits spec, streams progress
// until the job finishes (cached results return immediately), and fetches
// the result bytes. A failed or canceled job returns the final status and
// an error.
func (c *Client) Run(ctx context.Context, spec api.JobSpec, onEvent func(api.Event)) (api.JobStatus, []byte, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return st, nil, err
	}
	if !st.State.Terminal() {
		if err := c.Stream(ctx, st.ID, 0, onEvent); err != nil {
			return st, nil, err
		}
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		return st, nil, err
	}
	if final.State != api.StateDone {
		return final, nil, fmt.Errorf("client: job %s %s: %s", final.ID, final.State, final.Error)
	}
	data, err := c.Result(ctx, final.ID)
	return final, data, err
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.adminToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.adminToken)
	}
	if c.tenant != "" {
		req.Header.Set(api.TenantHeader, c.tenant)
	}
	return c.hc.Do(req)
}

func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return responseError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// responseError surfaces the service's typed api.Error payload: the
// returned error wraps a *api.Error with Status filled from the response,
// so callers branch with errors.As on Code/Status/RetryAfter instead of
// string-matching — the rendered string still always carries the numeric
// status and its human-readable text, so a router-originated 502/503 is
// diagnosable even when the body is empty or not the typed envelope.
func responseError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	e := &api.Error{Status: resp.StatusCode}
	if json.Unmarshal(data, e) != nil || e.Message == "" {
		// Not the typed envelope (a proxy in the middle, a panic page):
		// classify from the status and keep whatever body text there was.
		e = &api.Error{
			Status:  resp.StatusCode,
			Message: string(bytes.TrimSpace(data)),
		}
	}
	if e.Code == "" {
		e.Code = api.CodeForStatus(resp.StatusCode)
	}
	if e.RetryAfter == 0 {
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			e.RetryAfter = v
		}
	}
	return fmt.Errorf("client: %w", e)
}
