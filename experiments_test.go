package imp

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/impsim/imp/internal/ckptcache"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// testWorkloads keeps sweep tests fast while still exercising two distinct
// trace builds per experiment.
var testWorkloads = []string{"spmv", "pagerank"}

// TestExperimentsDeterministicAcrossParallelism is the harness's core
// guarantee: every experiment produces byte-identical tables at parallelism
// 1 and 8 (same derived seeds, ordered collection, no shared mutable state).
func TestExperimentsDeterministicAcrossParallelism(t *testing.T) {
	for _, id := range Experiments.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			opts := func(par int) ExpOptions {
				return ExpOptions{
					Cores: 4, Scale: 0.05, Workloads: testWorkloads,
					RunOptions: RunOptions{Seed: 7, Parallelism: par},
				}
			}
			serial, err := Experiments.Run(id, opts(1))
			if err != nil {
				t.Fatalf("parallelism 1: %v", err)
			}
			parallel, err := Experiments.Run(id, opts(8))
			if err != nil {
				t.Fatalf("parallelism 8: %v", err)
			}
			sj, err := serial.JSON()
			if err != nil {
				t.Fatal(err)
			}
			pj, err := parallel.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sj, pj) {
				t.Errorf("tables differ between parallelism 1 and 8:\n--- j1\n%s\n--- j8\n%s", sj, pj)
			}
			if serial.String() != parallel.String() {
				t.Error("rendered text differs between parallelism 1 and 8")
			}
		})
	}
}

// TestExperimentGolden pins small-scale paper numbers so refactors cannot
// silently change them. Regenerate with: go test -run Golden -update ./...
func TestExperimentGolden(t *testing.T) {
	const tol = 1e-9 // runs are deterministic; tolerance only absorbs FP noise
	for _, id := range []string{"fig2", "table3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Experiments.Run(id, ExpOptions{
				Cores: 4, Scale: 0.05, Workloads: testWorkloads,
			})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_"+id+".json")
			if *update {
				data, err := tbl.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			var want Table
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if tbl.ID != want.ID || len(tbl.Rows) != len(want.Rows) {
				t.Fatalf("shape changed: got %d rows of %q, want %d of %q",
					len(tbl.Rows), tbl.ID, len(want.Rows), want.ID)
			}
			for ri, row := range tbl.Rows {
				wrow := want.Rows[ri]
				if row.Label != wrow.Label || len(row.Values) != len(wrow.Values) {
					t.Fatalf("row %d changed: got %v, want %v", ri, row, wrow)
				}
				for ci, v := range row.Values {
					w := wrow.Values[ci]
					if diff := math.Abs(v - w); diff > tol*math.Max(1, math.Abs(w)) {
						t.Errorf("%s[%s][%s] = %v, golden %v (paper number drifted)",
							id, row.Label, tbl.Columns[ci], v, w)
					}
				}
			}
		})
	}
}

// TestExperimentGoldenCheckpointed is the checkpointing correctness gate:
// with prefix sharing on, fig2 and table3 must stay BYTE-identical to the
// goldens at parallelism 1 and 8. The cache directory is shared across all
// four runs, so later runs fork from checkpoints earlier runs published —
// the exact cross-experiment reuse path (fig2 and table3 share every
// workload's Perfect and Baseline cells) must not perturb a single bit.
func TestExperimentGoldenCheckpointed(t *testing.T) {
	ckptcache.Flush()
	defer ckptcache.Flush()
	ResetCheckpointStats()
	dir := t.TempDir()
	for _, id := range []string{"fig2", "table3"} {
		golden, err := os.ReadFile(filepath.Join("testdata", "golden_"+id+".json"))
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		for _, par := range []int{1, 8} {
			tbl, err := Experiments.Run(id, ExpOptions{
				Cores: 4, Scale: 0.05, Workloads: testWorkloads,
				RunOptions: RunOptions{
					Parallelism: par,
					Checkpoints: CheckpointPolicy{Enabled: true, Dir: dir},
				},
			})
			if err != nil {
				t.Fatalf("%s -j %d: %v", id, par, err)
			}
			data, err := tbl.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(append(data, '\n'), golden) {
				t.Errorf("%s -j %d: checkpointed run differs from golden bytes", id, par)
			}
		}
	}
	s := GetCheckpointStats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("checkpointing not exercised: stats = %+v", s)
	}
	if s.PrefixCyclesSaved == 0 {
		t.Errorf("no cycles accounted as saved despite %d hits", s.Hits)
	}
}

// TestCorruptCheckpointEvictsAndColdStarts pins the poisoned-cache path: a
// checkpoint that fails to restore is evicted and the point re-simulated,
// so corruption can cost time but never correctness.
func TestCorruptCheckpointEvictsAndColdStarts(t *testing.T) {
	ckptcache.Flush()
	defer ckptcache.Flush()
	dir := t.TempDir()
	cfg := Config{Workload: "spmv", Cores: 4, Scale: 0.05, System: SystemBaseline}
	pol := CheckpointPolicy{Enabled: true, Dir: dir}
	pristine, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Populate the cache, then corrupt every checkpoint on disk and drop the
	// in-memory copies so the next run must read the poisoned bytes.
	if _, err := runCfg(cfg, pol); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.impsnap"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files published (err=%v)", err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("IMPSgarbage-not-a-valid-snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ckptcache.Flush()

	res, err := runCfg(cfg, pol)
	if err != nil {
		t.Fatalf("corrupt checkpoint failed the run instead of cold-starting: %v", err)
	}
	if res.Cycles != pristine.Cycles || res.Throughput != pristine.Throughput || res.AMAT != pristine.AMAT {
		t.Errorf("cold-start after corruption diverged: %+v vs %+v", res, pristine)
	}
	if s := ckptcache.GetStats(); s.Corrupt == 0 {
		t.Error("corrupt blob was not evicted (Stats.Corrupt == 0)")
	}
	if _, err := os.Stat(files[0]); err == nil {
		// The cold start re-published a fresh checkpoint under the same key;
		// it must now restore cleanly.
		ckptcache.Flush()
		if _, err := runCfg(cfg, pol); err != nil {
			t.Errorf("re-published checkpoint unusable: %v", err)
		}
	}
}

// TestExpSeedChangesResults checks the Seed plumbing actually reaches input
// generation (and that the default remains the paper's seed-0 inputs).
func TestExpSeedChangesResults(t *testing.T) {
	base := ExpOptions{Cores: 4, Scale: 0.05, Workloads: []string{"spmv"}}
	t0, err := Experiments.Run("fig1", base)
	if err != nil {
		t.Fatal(err)
	}
	seeded := base
	seeded.Seed = 12345
	t1, err := Experiments.Run("fig1", seeded)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for ri := range t0.Rows {
		for ci := range t0.Rows[ri].Values {
			if t0.Rows[ri].Values[ci] != t1.Rows[ri].Values[ci] {
				same = false
			}
		}
	}
	if same {
		t.Error("Seed had no effect on experiment inputs")
	}
}

// TestExpSeedReproducesExperimentPoint pins the cross-tool contract: a
// single cell of a seeded experiment is reproducible through Run (and thus
// impsim -exp-seed) by deriving Config.Seed with ExpSeed.
func TestExpSeedReproducesExperimentPoint(t *testing.T) {
	tbl, err := Experiments.Run("fig1", ExpOptions{
		Cores: 4, Scale: 0.05, Workloads: []string{"spmv"},
		RunOptions: RunOptions{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Workload: "spmv", Cores: 4, Scale: 0.05, System: SystemBaseline,
		Seed: ExpSeed(7, "spmv"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{res.MissFracIndirect, res.MissFracStream, res.MissFracOther}
	for i, v := range tbl.Rows[0].Values {
		if got[i] != v {
			t.Fatalf("direct run with ExpSeed diverges from experiment cell: %v vs %v", got, tbl.Rows[0].Values)
		}
	}
}

func TestExpProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []ProgressEvent
	_, err := Experiments.Run("fig12", ExpOptions{
		Cores: 4, Scale: 0.05, Workloads: testWorkloads,
		RunOptions: RunOptions{
			Parallelism: 4,
			OnProgress: func(e ProgressEvent) {
				mu.Lock() // callback is serialized, but the test asserts from outside
				events = append(events, e)
				mu.Unlock()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// fig12: 2 workloads x 2 systems.
	if len(events) != 4 {
		t.Fatalf("got %d progress events, want 4", len(events))
	}
	for _, e := range events {
		if e.Experiment != "fig12" || e.Total != 4 || e.Cycles <= 0 || e.Err != nil {
			t.Errorf("bad event: %+v", e)
		}
	}
}

func TestSensitivityDefaultMustBeInValues(t *testing.T) {
	run := expSensitivity("figX", "bad", []int{8, 16}, 32,
		func(c *Config, v int) { c.PTEntries = v })
	_, err := run(ExpOptions{Cores: 4, Scale: 0.05, Workloads: []string{"spmv"}})
	if err == nil {
		t.Fatal("default outside the sweep values must error, not panic later")
	}
}

func TestExpContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Experiments.Run("fig9", ExpOptions{
		Cores: 4, Scale: 0.05, Workloads: testWorkloads,
		RunOptions: RunOptions{Context: ctx},
	})
	if err == nil {
		t.Fatal("cancelled context did not abort the experiment")
	}
}

func TestRunSweepMatchesRun(t *testing.T) {
	cfgs := []Config{
		{Workload: "spmv", Cores: 4, Scale: 0.05, System: SystemIMP},
		{Workload: "pagerank", Cores: 4, Scale: 0.05, System: SystemBaseline},
		{Workload: "dense", Cores: 4, Scale: 0.05, System: SystemIdeal},
	}
	swept, err := RunSweep(context.Background(), cfgs, SweepOptions{
		RunOptions: RunOptions{Parallelism: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		direct, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if swept[i].Cycles != direct.Cycles || swept[i].Instructions != direct.Instructions {
			t.Errorf("cfg %d: sweep result %d cycles, direct %d", i, swept[i].Cycles, direct.Cycles)
		}
	}
}

func TestRunSweepError(t *testing.T) {
	cfgs := []Config{
		{Workload: "spmv", Cores: 4, Scale: 0.05},
		{Workload: "nope", Cores: 4, Scale: 0.05},
	}
	if _, err := RunSweep(context.Background(), cfgs, SweepOptions{}); err == nil {
		t.Fatal("sweep swallowed the unknown-workload error")
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}, Notes: "n"}
	tbl.AddRow("w1", 1.5, 2.5)
	data, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != tbl.ID || back.Rows[0].Values[1] != 2.5 || back.Notes != "n" {
		t.Errorf("round trip lost data: %+v", back)
	}
}
