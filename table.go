package imp

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a formatted experiment result: one row per workload (or
// parameter point) and one column per configuration/metric, mirroring the
// bar groups of the paper's figures.
type Table struct {
	ID      string
	Title   string
	Columns []string // value column names (the row label column is implicit)
	Rows    []Row
	Notes   string
}

// Row is one labeled series of values.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// AddAverage appends an "avg" row with the arithmetic mean of each column
// over the existing rows.
func (t *Table) AddAverage() {
	if len(t.Rows) == 0 {
		return
	}
	avg := make([]float64, len(t.Columns))
	for _, r := range t.Rows {
		for i, v := range r.Values {
			if i < len(avg) {
				avg[i] += v
			}
		}
	}
	for i := range avg {
		avg[i] /= float64(len(t.Rows))
	}
	t.AddRow("avg", avg...)
}

// JSON renders the table as indented JSON with stable field order, for
// machine consumption alongside the String text form. Output is byte-stable
// for equal tables, so it diffs cleanly across runs.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	labelW := 10
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
		if colW[i] < 7 {
			colW[i] = 7
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, " %*s", colW[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.Label)
		for i, v := range r.Values {
			w := 7
			if i < len(colW) {
				w = colW[i]
			}
			fmt.Fprintf(&b, " %*.3f", w, v)
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}
