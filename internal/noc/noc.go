// Package noc models the on-chip interconnect of Table 1: a 2-D mesh with
// XY routing, 2-cycle hops (1 router + 1 link) and 64-bit flits.
//
// Bandwidth contention is modeled with per-directed-link occupancy: each
// link carries one flit per cycle, so a packet of F flits holds a link for
// F cycles, and later packets queue behind it. This is the same
// latency+contention abstraction Graphite uses — not flit-accurate wormhole
// switching, but it reproduces the bandwidth walls the paper's §2.2/§6.2
// discussion depends on.
package noc

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Config sizes the mesh.
type Config struct {
	Dim        int   // the mesh is Dim×Dim tiles
	HopLatency int64 // cycles per hop: 1 router + 1 link (Table 1: 2)
	FlitBytes  int   // flit width in bytes (Table 1: 64 bits = 8)
}

// DefaultConfig returns the paper's NoC parameters for an n-tile mesh.
// n must be a perfect square.
func DefaultConfig(n int) Config {
	d := intSqrt(n)
	if d*d != n {
		panic(fmt.Sprintf("noc: %d tiles is not a square mesh", n))
	}
	return Config{Dim: d, HopLatency: 2, FlitBytes: 8}
}

func intSqrt(n int) int {
	if n <= 0 {
		return 0
	}
	r := 1 << ((bits.Len(uint(n)) + 1) / 2)
	for r*r > n {
		r = (r + n/r) / 2
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Directions of the four output links of a router.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// Link bandwidth is modeled with per-link epoch rings: time is divided into
// epochs of epochCycles, each with a flit budget equal to its length
// (1 flit/cycle). A packet charges its flits to the earliest epoch at or
// after its arrival with room left, which yields bandwidth-accurate
// queueing while keeping the link available in idle gaps — reservations
// made at future times (chained prefetches, DRAM returns) cannot block
// earlier traffic the way a single busy-until watermark would.
const (
	epochCycles = 64
	epochRing   = 512 // per-link history horizon: 32k cycles
)

type link struct {
	epoch [epochRing]int64 // which epoch each slot currently tracks
	used  [epochRing]int32
	// hint is the earliest epoch that might still have room; epochs before
	// it were observed full. It makes saturated reservation scans O(1)
	// amortized at the cost of slightly conservative placement for small
	// packets.
	hint int64
}

// reserve charges flits to the link at time t and returns the departure
// time of the packet head. Slots are claimed lazily: a slot holding a
// different (stale) epoch is reset, so sparse far-apart reservations
// coexist without a global watermark.
func (l *link) reserve(t int64, flits int) int64 {
	e := t / epochCycles
	if l.hint > e {
		e = l.hint
	}
	for {
		// epochRing is a power of two; masking avoids a hot-path divide.
		slot := e & (epochRing - 1)
		if l.epoch[slot] != e {
			l.epoch[slot] = e
			l.used[slot] = 0
		}
		if int(l.used[slot])+flits <= epochCycles {
			l.used[slot] += int32(flits)
			if int(l.used[slot]) >= epochCycles-8 && e > l.hint {
				l.hint = e
			}
			depart := e * epochCycles
			if t > depart {
				depart = t
			}
			return depart
		}
		e++
	}
}

// Mesh is the interconnect state. Not safe for concurrent use.
type Mesh struct {
	//imp:nosnap configuration, fixed at construction
	cfg   Config
	links []link // per (tile, direction)

	// Traffic accounting (paper Fig 12 reports NoC traffic).
	FlitHops  uint64 // flits × links traversed
	Packets   uint64
	DataBytes uint64 // payload bytes carried
}

// New builds a mesh from cfg.
func New(cfg Config) *Mesh {
	if cfg.Dim <= 0 || cfg.HopLatency <= 0 || cfg.FlitBytes <= 0 {
		panic(fmt.Sprintf("noc: invalid config %+v", cfg))
	}
	return &Mesh{
		cfg:   cfg,
		links: make([]link, cfg.Dim*cfg.Dim*numDirs),
	}
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.cfg.Dim * m.cfg.Dim }

// XY returns the coordinates of tile id.
func (m *Mesh) XY(tile int) (x, y int) { return tile % m.cfg.Dim, tile / m.cfg.Dim }

// TileAt returns the tile id at (x, y).
func (m *Mesh) TileAt(x, y int) int { return y*m.cfg.Dim + x }

// Hops returns the XY-routing hop count between two tiles.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Flits returns the number of flits in a packet carrying payloadBytes:
// one header flit plus the payload rounded up to whole flits.
func (m *Mesh) Flits(payloadBytes int) int {
	return 1 + (payloadBytes+m.cfg.FlitBytes-1)/m.cfg.FlitBytes
}

// Send models a packet with payloadBytes of data injected at tile src at
// time now, destined for dst. It returns the arrival time of the packet
// tail at dst, reserving link bandwidth along the XY route.
func (m *Mesh) Send(now int64, src, dst, payloadBytes int) int64 {
	flits := m.Flits(payloadBytes)
	m.Packets++
	m.DataBytes += uint64(payloadBytes)
	if src == dst {
		// Local delivery: no links traversed; one router traversal.
		return now + m.cfg.HopLatency
	}
	x, y := m.XY(src)
	dx, dy := m.XY(dst)
	t := now
	// XY routing: resolve X first, then Y.
	for x != dx {
		dir := dirEast
		nx := x + 1
		if dx < x {
			dir, nx = dirWest, x-1
		}
		t = m.traverse(t, m.TileAt(x, y), dir, flits)
		x = nx
	}
	for y != dy {
		dir := dirSouth
		ny := y + 1
		if dy < y {
			dir, ny = dirNorth, y-1
		}
		t = m.traverse(t, m.TileAt(x, y), dir, flits)
		y = ny
	}
	// Tail flit trails the head by flits-1 cycles of serialization.
	return t + int64(flits-1)
}

// traverse sends the packet head across one link, queuing when the link's
// epoch budget is exhausted, and returns the head's arrival time at the
// next router.
func (m *Mesh) traverse(t int64, tile, dir, flits int) int64 {
	depart := m.links[tile*numDirs+dir].reserve(t, flits)
	m.FlitHops += uint64(flits)
	return depart + m.cfg.HopLatency
}

// LatencyNoContention returns the uncontended latency of a packet from src
// to dst, for idealized configurations and tests.
func (m *Mesh) LatencyNoContention(src, dst, payloadBytes int) int64 {
	if src == dst {
		return m.cfg.HopLatency
	}
	hops := int64(m.Hops(src, dst))
	return hops*m.cfg.HopLatency + int64(m.Flits(payloadBytes)-1)
}

// ResetStats clears the traffic counters (not link state).
func (m *Mesh) ResetStats() {
	m.FlitHops, m.Packets, m.DataBytes = 0, 0, 0
}

// DiamondMCTiles returns the tiles hosting numMC memory controllers, placed
// in a diamond around the mesh center (Abts et al. [3]: diamond placement
// spreads traffic uniformly under XY routing). MCs are spaced evenly along
// Manhattan-distance rings of radius ~Dim/2.
func DiamondMCTiles(dim, numMC int) []int {
	if numMC <= 0 {
		return nil
	}
	if numMC > dim*dim {
		numMC = dim * dim
	}
	cx := float64(dim-1) / 2
	cy := float64(dim-1) / 2
	radius := float64(dim) / 2
	type cand struct {
		tile  int
		score float64 // distance from the ideal diamond ring
		angle float64
	}
	cands := make([]cand, 0, dim*dim)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			d := math.Abs(float64(x)-cx) + math.Abs(float64(y)-cy)
			cands = append(cands, cand{
				tile:  y*dim + x,
				score: math.Abs(d - radius),
				angle: math.Atan2(float64(y)-cy, float64(x)-cx),
			})
		}
	}
	// Keep the tiles closest to the ring, then spread picks across angles.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].angle < cands[j].angle
	})
	ring := cands
	if len(ring) > 4*numMC {
		ring = ring[:4*numMC]
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].angle < ring[j].angle })
	picked := make([]int, 0, numMC)
	seen := make(map[int]bool)
	for i := 0; i < numMC; i++ {
		j := i * len(ring) / numMC
		for seen[ring[j].tile] {
			j = (j + 1) % len(ring)
		}
		picked = append(picked, ring[j].tile)
		seen[ring[j].tile] = true
	}
	sort.Ints(picked)
	return picked
}
