package noc

import (
	"fmt"

	"github.com/impsim/imp/internal/snap"
)

// Snapshot appends the mesh's state to w: traffic counters plus every
// link's epoch-ring occupancy. Ring slots are encoded sparsely — most links
// are idle at any checkpoint, and an idle link costs one varint — but stale
// slots are preserved exactly: reserve consults the (epoch, used) pair it
// finds in a slot, so reproducing byte-identical contention requires the
// full ring contents, not just "live" reservations.
func (m *Mesh) Snapshot(w *snap.Writer) {
	w.U64(m.FlitHops)
	w.U64(m.Packets)
	w.U64(m.DataBytes)
	w.Int(len(m.links))
	for i := range m.links {
		l := &m.links[i]
		w.I64(l.hint)
		used := 0
		for s := 0; s < epochRing; s++ {
			if l.epoch[s] != 0 || l.used[s] != 0 {
				used++
			}
		}
		w.Int(used)
		for s := 0; s < epochRing; s++ {
			if l.epoch[s] != 0 || l.used[s] != 0 {
				w.Int(s)
				w.I64(l.epoch[s])
				w.I64(int64(l.used[s]))
			}
		}
	}
}

// Restore replaces the mesh's state with one written by Snapshot. The mesh
// must have been built with the same Config.
func (m *Mesh) Restore(r *snap.Reader) error {
	m.FlitHops = r.U64()
	m.Packets = r.U64()
	m.DataBytes = r.U64()
	if n := r.Int(); n != len(m.links) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("noc: snapshot has %d links, mesh has %d", n, len(m.links))
	}
	for i := range m.links {
		l := &m.links[i]
		*l = link{hint: r.I64()}
		used := r.Count(3) // slot + epoch + used, one varint byte each at minimum
		if r.Err() != nil {
			return r.Err()
		}
		for j := 0; j < used; j++ {
			s := r.Int()
			if s < 0 || s >= epochRing {
				return fmt.Errorf("noc: snapshot slot %d out of range", s)
			}
			l.epoch[s] = r.I64()
			l.used[s] = int32(r.I64())
		}
	}
	return r.Err()
}
