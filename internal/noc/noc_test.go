package noc

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		cfg := DefaultConfig(n)
		if cfg.Dim*cfg.Dim != n {
			t.Errorf("DefaultConfig(%d).Dim = %d", n, cfg.Dim)
		}
		if cfg.HopLatency != 2 || cfg.FlitBytes != 8 {
			t.Errorf("DefaultConfig(%d) = %+v, want 2-cycle hops, 8B flits", n, cfg)
		}
	}
}

func TestDefaultConfigRejectsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DefaultConfig(12) did not panic")
		}
	}()
	DefaultConfig(12)
}

func TestIntSqrt(t *testing.T) {
	for n := 0; n < 1000; n++ {
		r := intSqrt(n)
		if r*r > n || (r+1)*(r+1) <= n {
			t.Fatalf("intSqrt(%d) = %d", n, r)
		}
	}
}

func TestXYRoundTrip(t *testing.T) {
	m := New(DefaultConfig(64))
	for id := 0; id < 64; id++ {
		x, y := m.XY(id)
		if m.TileAt(x, y) != id {
			t.Errorf("TileAt(XY(%d)) = %d", id, m.TileAt(x, y))
		}
		if x < 0 || x >= 8 || y < 0 || y >= 8 {
			t.Errorf("XY(%d) = (%d,%d) out of range", id, x, y)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	m := New(DefaultConfig(64)) // 8x8
	cases := []struct {
		src, dst, want int
	}{
		{0, 0, 0},
		{0, 7, 7},   // along the top row
		{0, 56, 7},  // down the left column
		{0, 63, 14}, // corner to corner
		{m.TileAt(3, 4), m.TileAt(5, 1), 2 + 3},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
		if got := m.Hops(c.dst, c.src); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d (symmetry)", c.dst, c.src, got, c.want)
		}
	}
}

func TestFlitsCount(t *testing.T) {
	m := New(DefaultConfig(16))
	cases := []struct{ payload, want int }{
		{0, 1},  // header only
		{1, 2},  // header + 1 data flit
		{8, 2},  //
		{9, 3},  //
		{64, 9}, // full cacheline: 1 + 8
		{32, 5}, // half line: 1 + 4
		{16, 3}, //
	}
	for _, c := range cases {
		if got := m.Flits(c.payload); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.payload, got, c.want)
		}
	}
}

func TestUncontendedLatency(t *testing.T) {
	m := New(DefaultConfig(64))
	// Control packet (0B payload) across 14 hops: 14*2 + 0 tail cycles.
	if got := m.Send(0, 0, 63, 0); got != 28 {
		t.Errorf("corner-to-corner control packet = %d, want 28", got)
	}
	m2 := New(DefaultConfig(64))
	// Full line (9 flits) over 1 hop: 2 + 8 serialization.
	if got := m2.Send(0, 0, 1, 64); got != 10 {
		t.Errorf("one-hop data packet = %d, want 10", got)
	}
	if got := m2.LatencyNoContention(0, 1, 64); got != 10 {
		t.Errorf("LatencyNoContention = %d, want 10", got)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := New(DefaultConfig(16))
	if got := m.Send(100, 5, 5, 64); got != 102 {
		t.Errorf("local delivery = %d, want 102 (router latency only)", got)
	}
	if m.FlitHops != 0 {
		t.Errorf("local delivery consumed %d flit-hops, want 0", m.FlitHops)
	}
}

func TestContentionQueues(t *testing.T) {
	m := New(DefaultConfig(16))
	// The link budget is one flit per cycle, accounted in epochs: pushing
	// far more than an epoch's worth of full-line packets (9 flits each)
	// through one link must spill later packets into later epochs.
	var last int64
	for i := 0; i < 32; i++ {
		last = m.Send(0, 0, 1, 64) // 32*9 = 288 flits >> 64/epoch
	}
	uncontended := New(DefaultConfig(16)).Send(0, 0, 1, 64)
	if last < uncontended+3*64 {
		t.Errorf("saturated link: last packet at %d, want >= %d (queued epochs)",
			last, uncontended+3*64)
	}
	// A packet on a different link is unaffected.
	m2 := New(DefaultConfig(16))
	m2.Send(0, 0, 1, 64)
	far := m2.Send(0, 15, 14, 64)
	if far != 10 {
		t.Errorf("uncontended far packet = %d, want 10", far)
	}
}

func TestLinkIdleGapsUsable(t *testing.T) {
	m := New(DefaultConfig(16))
	// A reservation far in the future must not delay earlier traffic.
	m.Send(1_000_000, 0, 1, 64)
	early := m.Send(100, 0, 1, 64)
	if early != 110 {
		t.Errorf("early packet after future reservation = %d, want 110", early)
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := New(DefaultConfig(16))
	m.Send(0, 0, 3, 64) // 3 hops × 9 flits
	if m.FlitHops != 27 {
		t.Errorf("FlitHops = %d, want 27", m.FlitHops)
	}
	if m.DataBytes != 64 || m.Packets != 1 {
		t.Errorf("DataBytes=%d Packets=%d, want 64/1", m.DataBytes, m.Packets)
	}
	m.ResetStats()
	if m.FlitHops != 0 || m.DataBytes != 0 || m.Packets != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestPartialLineUsesFewerFlits(t *testing.T) {
	full := New(DefaultConfig(16))
	part := New(DefaultConfig(16))
	full.Send(0, 0, 3, 64)
	part.Send(0, 0, 3, 8) // one 8B sector
	if part.FlitHops >= full.FlitHops {
		t.Errorf("partial transfer flit-hops %d not below full %d", part.FlitHops, full.FlitHops)
	}
}

func TestSendMonotonicInTime(t *testing.T) {
	f := func(start uint16, srcRaw, dstRaw uint8, payload uint8) bool {
		m := New(DefaultConfig(64))
		src := int(srcRaw) % 64
		dst := int(dstRaw) % 64
		now := int64(start)
		arr := m.Send(now, src, dst, int(payload)%65)
		return arr >= now+m.Config().HopLatency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiamondMCPlacement(t *testing.T) {
	for _, tc := range []struct{ dim, mc int }{{4, 4}, {8, 8}, {16, 16}} {
		tiles := DiamondMCTiles(tc.dim, tc.mc)
		if len(tiles) != tc.mc {
			t.Fatalf("dim=%d: got %d MC tiles, want %d", tc.dim, len(tiles), tc.mc)
		}
		seen := make(map[int]bool)
		for _, tile := range tiles {
			if tile < 0 || tile >= tc.dim*tc.dim {
				t.Errorf("dim=%d: tile %d out of range", tc.dim, tile)
			}
			if seen[tile] {
				t.Errorf("dim=%d: duplicate MC tile %d", tc.dim, tile)
			}
			seen[tile] = true
		}
		// Diamond placement must not cluster all MCs in one row.
		rows := make(map[int]bool)
		for _, tile := range tiles {
			rows[tile/tc.dim] = true
		}
		if len(rows) < 2 {
			t.Errorf("dim=%d: all MCs in one row: %v", tc.dim, tiles)
		}
	}
}

func TestDiamondMCEdgeCases(t *testing.T) {
	if got := DiamondMCTiles(4, 0); got != nil {
		t.Errorf("0 MCs = %v, want nil", got)
	}
	if got := DiamondMCTiles(2, 100); len(got) != 4 {
		t.Errorf("over-asking returns %d tiles, want all 4", len(got))
	}
}
