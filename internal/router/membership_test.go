package router_test

// E2e tests for live ring membership (join warm-up, graceful-leave drain,
// the admin surface and its token gate) and regression tests for the
// config/stats bugfix sweep that rode along: -retries 0 must mean exactly
// one attempt, last_probe must surface in /v1/stats on every probe
// attempt, and the effective replication factor must track the live
// member count instead of the startup clamp. The TestCluster* tests here
// run in the CI cluster job under -race.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/cluster"
	"github.com/impsim/imp/internal/router"
)

// refusingBackend is a stub impserve that answers health checks but
// refuses every submission with 503 — the shape of a draining or
// queue-full backend — while counting the attempts it received.
func refusingBackend(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			hits.Add(1)
		}
		http.Error(w, "refusing", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// submitThroughRouter posts one valid spec at a router over the given
// backends with the given retry budget, returning the response code and
// the per-backend attempt counters.
func submitThroughRouter(t *testing.T, retries int, nBackends int) (int, int64) {
	t.Helper()
	var urls []string
	counters := make([]*atomic.Int64, nBackends)
	for i := 0; i < nBackends; i++ {
		srv, hits := refusingBackend(t)
		urls = append(urls, srv.URL)
		counters[i] = hits
	}
	rt, err := router.New(router.Config{
		Backends:       urls,
		Retries:        retries,
		HealthInterval: time.Hour, // no probes mid-test; backends start healthy
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	body := `{"sweep":[{"Workload":"spmv","Cores":4,"Scale":0.05,"System":"imp"}]}`
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var attempts int64
	for _, c := range counters {
		attempts += c.Load()
	}
	return resp.StatusCode, attempts
}

// TestRetriesZeroSingleAttempt is the -retries regression: an explicit 0
// must mean exactly one backend attempt, not silently become the
// try-everything default it used to alias.
func TestRetriesZeroSingleAttempt(t *testing.T) {
	code, attempts := submitThroughRouter(t, 0, 3)
	if code != http.StatusBadGateway {
		t.Fatalf("submit against all-refusing fleet: %d, want 502", code)
	}
	if attempts != 1 {
		t.Fatalf("-retries 0 made %d backend attempts, want exactly 1", attempts)
	}
}

// TestRetriesAllTriesEveryCandidate: the RetriesAll sentinel (the flag
// default) walks the whole candidate set.
func TestRetriesAllTriesEveryCandidate(t *testing.T) {
	code, attempts := submitThroughRouter(t, router.RetriesAll, 3)
	if code != http.StatusBadGateway {
		t.Fatalf("submit against all-refusing fleet: %d, want 502", code)
	}
	if attempts != 3 {
		t.Fatalf("RetriesAll made %d backend attempts, want all 3", attempts)
	}
}

// TestStatsLastProbe is the probe-time regression: /v1/stats must carry a
// parseable last_probe timestamp for every backend once probing starts —
// including a backend whose probes fail — where previously the recorded
// time was never surfaced at all.
func TestStatsLastProbe(t *testing.T) {
	live, _ := refusingBackend(t)
	rt, err := router.New(router.Config{
		// One reachable backend, one black hole: both must get stamped.
		Backends:       []string{live.URL, "http://127.0.0.1:1"},
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := rt.Stats(context.Background())
		stamped := 0
		for _, b := range st.Backends {
			if b.LastProbe == "" {
				continue
			}
			when, err := time.Parse(time.RFC3339Nano, b.LastProbe)
			if err != nil {
				t.Fatalf("backend %s last_probe %q is not RFC3339: %v", b.Name, b.LastProbe, err)
			}
			if age := time.Since(when); age < 0 || age > time.Minute {
				t.Fatalf("backend %s last_probe %q is implausible (age %v)", b.Name, b.LastProbe, age)
			}
			stamped++
		}
		if stamped == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/2 backends got a last_probe stamp; stats: %+v", stamped, st.Backends)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterEffectiveReplicasFollowsMembership is the stale-clamp
// regression: the factor reported (and used) must be min(configured,
// members) of the *live* topology — degrading 3 -> 2 when the fleet
// shrinks below the target and recovering when a member joins — not a
// min taken once at startup.
func TestClusterEffectiveReplicasFollowsMembership(t *testing.T) {
	c := startCluster(t, 4, cluster.Options{Router: router.Config{Replicas: 3}})
	ctx := context.Background()

	if st := c.Router.Stats(ctx); st.EffectiveReplicas != 3 {
		t.Fatalf("4 members, -replicas 3: effective %d, want 3", st.EffectiveReplicas)
	}
	if err := c.Remove(3, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(2, true); err != nil {
		t.Fatal(err)
	}
	if st := c.Router.Stats(ctx); st.EffectiveReplicas != 2 {
		t.Fatalf("shrunk to 2 members: effective %d, want 2 (degraded)", st.EffectiveReplicas)
	}
	if _, err := c.Add(); err != nil {
		t.Fatal(err)
	}
	if st := c.Router.Stats(ctx); st.EffectiveReplicas != 3 {
		t.Fatalf("rejoined to 3 members: effective %d, want 3 (recovered)", st.EffectiveReplicas)
	}
}

// TestClusterAdminTokenGate: with -admin-token set, the membership surface
// rejects missing and wrong tokens with 401 and accepts the right one,
// while the normal job surface stays open.
func TestClusterAdminTokenGate(t *testing.T) {
	const token = "cluster-admin-secret"
	c := startCluster(t, 2, cluster.Options{Router: router.Config{AdminToken: token}})
	ctx := context.Background()

	get := func(auth string) int {
		req, err := http.NewRequest(http.MethodGet, c.Front.URL+"/v1/backends", nil)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := c.Front.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(""); code != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", code)
	}
	if code := get("Bearer wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d, want 401", code)
	}
	if code := get("Bearer " + token); code != http.StatusOK {
		t.Fatalf("right token: %d, want 200", code)
	}

	// The client helper attaches the token on every call.
	admin := c.Client()
	admin.SetAdminToken(token)
	members, err := admin.Backends(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || members[0].Name != "b0" || members[1].Name != "b1" {
		t.Fatalf("membership listing: %+v", members)
	}
	// Mutations are gated identically.
	bare := c.Client()
	if _, err := bare.RemoveBackend(ctx, "b1", true); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("unauthenticated remove: %v, want 401", err)
	}
	// The job surface never requires the token.
	if _, err := bare.Jobs(ctx); err != nil {
		t.Fatalf("job listing should be open: %v", err)
	}
}

// scaleSpecs fabricates n distinct single-point sweeps (distinct result
// keys) that each run in milliseconds at test scale.
func scaleSpecs(n int) []api.JobSpec {
	workloads := []string{"spmv", "pagerank"}
	specs := make([]api.JobSpec, n)
	for i := range specs {
		specs[i] = api.JobSpec{Sweep: []imp.Config{{
			Workload: workloads[i%len(workloads)],
			Cores:    4, // mesh cores must be square
			Scale:    0.02 + 0.01*float64(i/len(workloads)),
			System:   imp.SystemIMP,
		}}}
	}
	return specs
}

// TestClusterJoinWarmsNewOwner: results computed before a join must be
// served from the joiner's warmed store afterwards — resubmitting the full
// spec set after scaling 3 -> 4 must execute nothing anywhere.
func TestClusterJoinWarmsNewOwner(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()
	specs := scaleSpecs(12)

	want := make([][]byte, len(specs))
	for i, spec := range specs {
		_, data, err := c.Client().Run(ctx, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = data
	}
	before := executedFleetWide(c, -1)

	idx, err := c.Add()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.WaitHealthy(4, 5*time.Second); got != 4 {
		t.Fatalf("router sees %d healthy backends after join, want 4", got)
	}
	st := c.Router.Stats(ctx)
	if st.Joins != 1 || st.TopologyVersion != 2 {
		t.Fatalf("join counters: joins=%d version=%d, want 1/2", st.Joins, st.TopologyVersion)
	}
	if st.HandoffKeys == 0 {
		t.Fatalf("join moved no keys across 12 stored results; hand-off is not running")
	}

	for i, spec := range specs {
		_, data, err := c.Client().Run(ctx, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want[i]) {
			t.Fatalf("spec %d result changed across the join", i)
		}
	}
	if after := executedFleetWide(c, -1); after != before {
		t.Fatalf("join caused recomputes: %d points executed before, %d after (joiner is index %d)", before, after, idx)
	}
}

// TestClusterGracefulLeaveHandsOff: retiring a member gracefully must
// drain its stored results to their new owners — resubmitting every spec
// afterwards is answered from stores, byte-identical, with zero new
// executions fleet-wide.
func TestClusterGracefulLeaveHandsOff(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()
	specs := scaleSpecs(10)

	want := make([][]byte, len(specs))
	owners := make([]int, len(specs))
	for i, spec := range specs {
		st, data, err := c.Client().Run(ctx, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i], owners[i] = data, ownerIndex(t, st.ID)
	}
	before := executedFleetWide(c, -1)

	// Retire the owner of spec 0 so at least one key provably changes hands.
	departing := owners[0]
	if err := c.Remove(departing, false); err != nil {
		t.Fatal(err)
	}
	st := c.Router.Stats(ctx)
	if st.Leaves != 1 || st.BackendCount != 2 {
		t.Fatalf("leave counters: leaves=%d backends=%d, want 1/2", st.Leaves, st.BackendCount)
	}
	if st.HandoffKeys == 0 {
		t.Fatalf("graceful leave of b%d moved no keys; drain is not running", departing)
	}

	for i, spec := range specs {
		st2, data, err := c.Client().Run(ctx, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := ownerIndex(t, st2.ID); got == departing {
			t.Fatalf("spec %d routed to retired backend b%d", i, got)
		}
		if !bytes.Equal(data, want[i]) {
			t.Fatalf("spec %d result changed across the leave", i)
		}
	}
	if after := executedFleetWide(c, -1); after != before {
		t.Fatalf("graceful leave caused recomputes: %d executed before, %d after", before, after)
	}
}

// TestClusterScaleUnderTraffic is the membership acceptance criterion:
// scale a live cluster 3 -> 4 -> 2 while clients keep submitting the same
// spec set, and require that every submission succeeds, results stay
// byte-identical throughout, and nothing is ever recomputed — each
// distinct spec executes exactly once fleet-wide across the whole
// scaling story. Runs in the CI cluster job under -race.
func TestClusterScaleUnderTraffic(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{Router: router.Config{Retries: router.RetriesAll}})
	ctx := context.Background()
	specs := scaleSpecs(10)

	// Phase 0: compute everything once, so the scaling phases operate on a
	// fully stored, replicated spec set.
	want := make([][]byte, len(specs))
	for i, spec := range specs {
		_, data, err := c.Client().Run(ctx, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = data
	}

	// Sustained traffic: three clients cycling the spec set. Submissions
	// must never fail (the router always has healthy members); result
	// fetches tolerate ids minted on a member removed moments later, but
	// any bytes that do come back must match phase 0.
	stop := make(chan struct{})
	errc := make(chan error, 3)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := (i*3 + w) % len(specs)
				st, err := cl.Submit(ctx, specs[idx])
				if err != nil {
					errc <- fmt.Errorf("worker %d: submit spec %d: %w", w, idx, err)
					return
				}
				if st.State != api.StateDone {
					continue // queued behind a repair or a just-moved key; fine
				}
				data, err := cl.Result(ctx, st.ID)
				if err != nil {
					continue // owner may have left between answer and fetch
				}
				if !bytes.Equal(data, want[idx]) {
					errc <- fmt.Errorf("worker %d: spec %d bytes diverged mid-scale", w, idx)
					return
				}
			}
		}(w)
	}

	scaleErr := func() error {
		if _, err := c.Add(); err != nil {
			return fmt.Errorf("scale up to 4: %w", err)
		}
		if got := c.WaitHealthy(4, 5*time.Second); got != 4 {
			return fmt.Errorf("router sees %d healthy after join, want 4", got)
		}
		time.Sleep(150 * time.Millisecond) // let traffic route through the 4-member ring
		for _, victim := range []int{0, 1} {
			if err := c.Remove(victim, false); err != nil {
				return fmt.Errorf("graceful leave of b%d: %w", victim, err)
			}
			time.Sleep(150 * time.Millisecond)
		}
		return nil
	}()
	close(stop)
	wg.Wait()
	if scaleErr != nil {
		t.Fatal(scaleErr)
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	st := c.Router.Stats(ctx)
	if st.Joins != 1 || st.Leaves != 2 || st.BackendCount != 2 || st.TopologyVersion != 4 {
		t.Fatalf("scaling story off: joins=%d leaves=%d backends=%d version=%d, want 1/2/2/4",
			st.Joins, st.Leaves, st.BackendCount, st.TopologyVersion)
	}
	if st.Failed != 0 {
		t.Fatalf("%d submissions failed during scaling; routing must survive membership changes", st.Failed)
	}

	// Final pass through the shrunken fleet: still cached, still identical.
	for i, spec := range specs {
		_, data, err := c.Client().Run(ctx, spec, nil)
		if err != nil {
			t.Fatalf("final pass spec %d: %v", i, err)
		}
		if !bytes.Equal(data, want[i]) {
			t.Fatalf("final pass spec %d: bytes diverged after scale-down", i)
		}
	}
	// The zero-recompute criterion, summed over every backend that ever
	// existed (removed members keep their counters): one execution per
	// distinct sweep point, full stop.
	var points uint64
	for _, spec := range specs {
		points += uint64(len(spec.Sweep))
	}
	if got := executedFleetWide(c, -1); got != points {
		t.Fatalf("fleet executed %d points across the scaling story, want exactly %d (zero recomputes)", got, points)
	}
}
