package router_test

// End-to-end tests of the sharding router over real in-process impserve
// backends (internal/cluster). These are the CI cluster job's payload: the
// byte-identity and locality tests here are the acceptance criteria for
// sharding — a client pointed at the router must be unable to tell it from
// a single instance, and identical submissions must keep landing on the
// backend that owns their cached result.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/cluster"
)

// testSweepSpec mirrors the service tests' small three-point sweep.
func testSweepSpec() api.JobSpec {
	return api.JobSpec{Sweep: []imp.Config{
		{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP},
		{Workload: "pagerank", Cores: 4, Scale: 0.05, System: imp.SystemBaseline},
		{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemNone},
	}}
}

func startCluster(t *testing.T, n int, opt cluster.Options) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		dumpStats(t, c)
		c.Close()
	})
	return c
}

// dumpStats writes the router's aggregated stats where the CI cluster job
// can pick them up as a failure artifact (CLUSTER_STATS_DIR).
func dumpStats(t *testing.T, c *cluster.Cluster) {
	dir := os.Getenv("CLUSTER_STATS_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("stats dump: %v", err)
		return
	}
	data, err := json.MarshalIndent(c.Router.Stats(context.Background()), "", "  ")
	if err != nil {
		t.Logf("stats dump: %v", err)
		return
	}
	name := strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()) + ".json"
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Logf("stats dump: %v", err)
	}
}

// ownerIndex resolves a composite job id ("b2.j-000017") to the backend
// index the router placed it on.
func ownerIndex(t *testing.T, compositeID string) int {
	t.Helper()
	name, _, ok := strings.Cut(compositeID, ".")
	if !ok || !strings.HasPrefix(name, "b") {
		t.Fatalf("job id %q is not composite", compositeID)
	}
	idx, err := strconv.Atoi(name[1:])
	if err != nil {
		t.Fatalf("job id %q has a malformed backend name", compositeID)
	}
	return idx
}

// TestClusterByteIdentitySweep is acceptance criterion one: a sweep routed
// through a 3-backend cluster returns bytes identical to direct
// imp.RunSweep output marshaled the canonical way.
func TestClusterByteIdentitySweep(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()

	st, got, err := c.Client().Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ownerIndex(t, st.ID) >= 3 {
		t.Fatalf("job landed on impossible backend: %s", st.ID)
	}

	direct, err := imp.RunSweep(ctx, testSweepSpec().Sweep, imp.SweepOptions{RunOptions: imp.RunOptions{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(api.SweepResult{Results: direct}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("routed result diverges from direct RunSweep output:\n--- router\n%s\n--- direct\n%s", got, want)
	}
}

// TestClusterByteIdentityGolden is acceptance criterion two: concurrent
// clients submitting the fig2 experiment through the router all read bytes
// identical to the committed golden table.
func TestClusterByteIdentityGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden_fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden = bytes.TrimSuffix(golden, []byte("\n"))

	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()
	spec := api.JobSpec{Experiment: "fig2", Cores: 4, Scale: 0.05, Workloads: []string{"spmv", "pagerank"}}

	const clients = 4
	var wg sync.WaitGroup
	results := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i], errs[i] = c.Client().Run(ctx, spec, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], golden) {
			t.Errorf("client %d result differs from golden table:\n--- router\n%s\n--- golden\n%s", i, results[i], golden)
		}
	}

	// Concurrent identical submissions must also have collapsed onto one
	// backend (and at most one execution) — cross-backend duplication would
	// mean routing ignored the result key.
	executed := 0
	for _, b := range c.Backends {
		executed += int(b.Service.Stats().Executed)
	}
	if executed != 1 {
		t.Errorf("%d executions across the fleet for %d identical submissions, want 1", executed, clients)
	}
}

// TestClusterLocality is acceptance criterion three: resubmitting an
// identical job lands on the same backend and is answered from that
// backend's live index or result store without re-executing, and the
// router's per-backend submit counters prove no other backend saw it.
func TestClusterLocality(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()

	st1, _, err := c.Client().Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerIndex(t, st1.ID)

	st2, err := c.Client().Submit(ctx, testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := ownerIndex(t, st2.ID); got != owner {
		t.Fatalf("resubmission routed to b%d, original ran on b%d", got, owner)
	}
	if !st2.Deduped && !st2.Cached {
		t.Errorf("resubmission was not served from the owning backend's index/store: %+v", st2)
	}
	if st2.State != api.StateDone {
		t.Errorf("resubmission not answered terminally: %+v", st2)
	}

	// Locality counters: the owner saw both submits and executed once; no
	// other backend was touched by a submit at all.
	rstats := c.Router.Stats(ctx)
	for i, b := range c.Backends {
		svc := b.Service.Stats()
		bs := rstats.Backends[i]
		if i == owner {
			if bs.Submits != 2 {
				t.Errorf("owner b%d submit counter = %d, want 2", i, bs.Submits)
			}
			if svc.Executed != 1 {
				t.Errorf("owner b%d executed %d jobs, want 1", i, svc.Executed)
			}
			if svc.Deduped+svc.Cached == 0 {
				t.Errorf("owner b%d answered the resubmission by executing, not from index/store: %+v", i, svc)
			}
			if svc.StorePuts != 1 {
				t.Errorf("owner b%d store puts = %d, want 1", i, svc.StorePuts)
			}
		} else {
			if bs.Submits != 0 {
				t.Errorf("backend b%d saw %d submits of a job it does not own", i, bs.Submits)
			}
			if svc.Executed != 0 {
				t.Errorf("backend b%d executed %d jobs it does not own", i, svc.Executed)
			}
		}
	}
	if rstats.Rehashes != 0 {
		t.Errorf("healthy cluster recorded %d rehashes", rstats.Rehashes)
	}
}

// TestClusterKeySpreads: distinct specs do not all pile onto one backend.
// (With 3 backends and 12 distinct keys the chance of a uniform hash
// assigning every key to one node is ~3/3^12; a constant-key routing bug
// always does.)
func TestClusterKeySpreads(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()
	owners := map[int]bool{}
	for i := 0; i < 12; i++ {
		spec := api.JobSpec{Sweep: []imp.Config{
			{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: int64(i + 1)},
		}}
		st, err := c.Client().Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		owners[ownerIndex(t, st.ID)] = true
	}
	if len(owners) < 2 {
		t.Errorf("12 distinct specs all routed to %d backend(s)", len(owners))
	}
}

// TestClusterStreamResume: the router preserves ?from= — a resumed stream
// replays exactly the suffix, ending with the same terminal event.
func TestClusterStreamResume(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()

	st, _, err := c.Client().Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var full []api.Event
	if err := c.Client().Stream(ctx, st.ID, 0, func(e api.Event) { full = append(full, e) }); err != nil {
		t.Fatal(err)
	}
	if len(full) != len(testSweepSpec().Sweep)+1 {
		t.Fatalf("full stream: %d events, want %d", len(full), len(testSweepSpec().Sweep)+1)
	}

	from := len(full) - 1
	var tail []api.Event
	if err := c.Client().Stream(ctx, st.ID, from, func(e api.Event) { tail = append(tail, e) }); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Seq != from || !tail[0].State.Terminal() {
		t.Fatalf("resumed stream from %d: %+v", from, tail)
	}

	// Resuming past the end of a finished job yields an empty stream — the
	// same "ended before the terminal event" a single instance produces —
	// and must not fabricate a failure event or evict the healthy owner.
	var past []api.Event
	err = c.Client().Stream(ctx, st.ID, len(full)+5, func(e api.Event) { past = append(past, e) })
	if err == nil || !strings.Contains(err.Error(), "before the terminal event") {
		t.Fatalf("resume past end: err=%v events=%+v", err, past)
	}
	if len(past) != 0 {
		t.Errorf("resume past end fabricated events: %+v", past)
	}
	if got := c.Router.Stats(ctx).HealthyCount; got != 3 {
		t.Errorf("resume past end evicted a healthy backend: %d/3 healthy", got)
	}
}

// TestClusterStatusAndList: per-job status rewrites the id back to its
// composite form, and the merged listing carries every backend's jobs.
func TestClusterStatusAndList(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()

	var ids []string
	for i := 0; i < 4; i++ {
		spec := api.JobSpec{Sweep: []imp.Config{
			{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: int64(i + 1)},
		}}
		st, _, err := c.Client().Run(ctx, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st, err := c.Client().Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.ID != id || st.State != api.StateDone {
			t.Errorf("status for %s came back as %+v", id, st)
		}
	}
	listed, err := c.Client().Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, st := range listed {
		have[st.ID] = true
	}
	for _, id := range ids {
		if !have[id] {
			t.Errorf("job %s missing from merged listing %v", id, listed)
		}
	}

	if _, err := c.Client().Status(ctx, "b9.j-000001"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown backend prefix not a 404: %v", err)
	}
	if _, err := c.Client().Status(ctx, "nodot"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("non-composite id not a 404: %v", err)
	}
}

// TestClusterStatsAggregation: /v1/stats folds each backend's own service
// counters into the router's per-backend view.
func TestClusterStatsAggregation(t *testing.T) {
	c := startCluster(t, 2, cluster.Options{})
	ctx := context.Background()
	if _, _, err := c.Client().Run(ctx, testSweepSpec(), nil); err != nil {
		t.Fatal(err)
	}

	st := c.Router.Stats(ctx)
	if st.BackendCount != 2 || st.HealthyCount != 2 {
		t.Fatalf("stats health view: %+v", st)
	}
	if st.Submitted != 1 {
		t.Errorf("router submitted = %d, want 1", st.Submitted)
	}
	totalExecuted := uint64(0)
	for _, bs := range st.Backends {
		if bs.Service == nil {
			t.Errorf("backend %s stats missing service payload", bs.Name)
			continue
		}
		totalExecuted += bs.Service.Executed
	}
	if totalExecuted != 1 {
		t.Errorf("aggregated executed = %v, want 1", totalExecuted)
	}

	// The catalogs pass through unchanged.
	wls, err := httpGetJSONList(c, "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) == 0 {
		t.Error("workload catalog empty through the router")
	}
}

func httpGetJSONList(c *cluster.Cluster, path string) ([]string, error) {
	resp, err := c.Front.Client().Get(c.Front.URL + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	var out []string
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// TestClusterBadSpecRejectedAtEdge: the router validates before routing —
// a malformed spec is a 400 from the router itself, with no backend
// counter moving.
func TestClusterBadSpecRejectedAtEdge(t *testing.T) {
	c := startCluster(t, 2, cluster.Options{})
	resp, err := c.Front.Client().Post(c.Front.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig2","sweep":[{"Workload":"spmv"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("both-kinds spec: %d, want 400", resp.StatusCode)
	}
	st := c.Router.Stats(context.Background())
	for _, bs := range st.Backends {
		if bs.Submits != 0 {
			t.Errorf("invalid spec reached backend %s", bs.Name)
		}
	}
}
