package router_test

// Failure-path coverage for the sharding router: a backend dying
// mid-stream, a ring reduced to one healthy member, a fleet-wide outage,
// and cancellation routed to the owning backend. All run against real
// in-process backends via internal/cluster; the CI cluster job executes
// them under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/cluster"
	"github.com/impsim/imp/internal/router"
	"github.com/impsim/imp/internal/service"
)

// slowSweepSpec runs ~8 serial points of ~60ms each on a Parallelism-1
// backend — long enough to kill or cancel the backend mid-job without
// racing the sweep's natural completion.
func slowSweepSpec() api.JobSpec {
	cfgs := make([]imp.Config, 8)
	for i := range cfgs {
		cfgs[i] = imp.Config{Workload: "spmv", Cores: 4, Scale: 0.2, System: imp.SystemIMP, Seed: int64(i + 1)}
	}
	return api.JobSpec{Sweep: cfgs}
}

// TestClusterBackendKilledMidStream: the backend serving a streamed job is
// killed hard mid-sweep. The streaming client must observe a well-formed
// terminal "failed" event (synthesized by the router, not a dropped
// connection), and resubmitting the same spec must rehash onto a healthy
// backend — excluding the dead owner — and produce the full result.
func TestClusterBackendKilledMidStream(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{Service: service.Config{Parallelism: 1}})
	ctx := context.Background()

	st, err := c.Client().Submit(ctx, slowSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerIndex(t, st.ID)

	var events []api.Event
	var once sync.Once
	err = c.Client().Stream(ctx, st.ID, 0, func(e api.Event) {
		events = append(events, e)
		once.Do(func() { c.Kill(owner) })
	})
	if err != nil {
		t.Fatalf("stream over a killed backend must still end terminally, got: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events relayed before the kill")
	}
	term := events[len(events)-1]
	if term.State != api.StateFailed {
		t.Fatalf("terminal event state %q, want failed: %+v", term.State, term)
	}
	if !strings.Contains(term.Error, "died mid-stream") {
		t.Errorf("terminal event does not name the backend death: %+v", term)
	}
	if term.Seq != events[len(events)-2].Seq+1 {
		t.Errorf("synthesized terminal event seq %d does not extend the stream (prev %d)", term.Seq, events[len(events)-2].Seq)
	}

	// The dead backend leaves the ring; the same spec now hashes onto a
	// healthy node and completes with the same bytes a direct run yields.
	if got := c.WaitHealthy(2, 5*time.Second); got != 2 {
		t.Fatalf("router still sees %d healthy backends after the kill", got)
	}
	st2, got, err := c.Client().Run(ctx, slowSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	reOwner := ownerIndex(t, st2.ID)
	if reOwner == owner {
		t.Fatalf("resubmission rehashed onto the dead backend b%d", owner)
	}
	direct, err := imp.RunSweep(ctx, slowSweepSpec().Sweep, imp.SweepOptions{RunOptions: imp.RunOptions{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(api.SweepResult{Results: direct}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("rehashed result diverges from direct RunSweep output")
	}
}

// TestClusterSingleHealthyBackend: with every other ring member dead, all
// traffic converges on the survivor and the router stays up.
func TestClusterSingleHealthyBackend(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()
	c.Kill(1)
	c.Kill(2)
	if got := c.WaitHealthy(1, 5*time.Second); got != 1 {
		t.Fatalf("router sees %d healthy backends, want 1", got)
	}

	for i := 0; i < 5; i++ {
		spec := api.JobSpec{Sweep: []imp.Config{
			{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: int64(i + 1)},
		}}
		st, _, err := c.Client().Run(ctx, spec, nil)
		if err != nil {
			t.Fatalf("submit %d with one healthy backend: %v", i, err)
		}
		if ownerIndex(t, st.ID) != 0 {
			t.Fatalf("job %d routed to dead backend: %s", i, st.ID)
		}
	}

	resp, err := c.Front.Client().Get(c.Front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(buf.String(), "1/3") {
		t.Errorf("healthz with one survivor: %d %q", resp.StatusCode, buf.String())
	}
}

// TestClusterAllBackendsDown: a fleet-wide outage yields a diagnosable 502
// on submit and a 503 router healthz — not a hang or a panic.
func TestClusterAllBackendsDown(t *testing.T) {
	c := startCluster(t, 2, cluster.Options{})
	ctx := context.Background()
	c.Kill(0)
	c.Kill(1)
	if got := c.WaitHealthy(0, 5*time.Second); got != 0 {
		t.Fatalf("router sees %d healthy backends, want 0", got)
	}

	_, err := c.Client().Submit(ctx, testSweepSpec())
	if err == nil {
		t.Fatal("submit succeeded with every backend dead")
	}
	if !strings.Contains(err.Error(), "502") || !strings.Contains(err.Error(), "submit failed") {
		t.Errorf("outage error not diagnosable: %v", err)
	}

	resp, err := c.Front.Client().Get(c.Front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("router healthz with no backends: %d, want 503", resp.StatusCode)
	}
}

// TestClusterSaturatedBackendDoesNotHang: when a backend's whole in-flight
// budget is held by open event streams, a new submit must fail fast with a
// capacity error — not block forever in the gate — and the saturated
// backend must NOT be evicted (saturation is load, not death).
func TestClusterSaturatedBackendDoesNotHang(t *testing.T) {
	c := startCluster(t, 1, cluster.Options{
		Service: service.Config{Parallelism: 1},
		Router:  router.Config{Inflight: 1, HealthTimeout: 200 * time.Millisecond},
	})
	ctx := context.Background()

	// ~24 serial points keep the job (and thus the slot-holding stream)
	// alive well past the saturated submit below, race detector or not.
	cfgs := make([]imp.Config, 24)
	for i := range cfgs {
		cfgs[i] = imp.Config{Workload: "spmv", Cores: 4, Scale: 0.2, System: imp.SystemIMP, Seed: int64(100 + i)}
	}
	st, err := c.Client().Submit(ctx, api.JobSpec{Sweep: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		c.Client().Stream(streamCtx, st.ID, 0, nil) // holds b0's only slot
	}()
	// Wait until the router observably holds the slot for the stream.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if c.Router.Stats(ctx).Backends[0].InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never took the backend's in-flight slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	_, err = c.Client().Submit(ctx, testSweepSpec())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("submit succeeded through a fully saturated gate")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("submit blocked %v behind a saturated backend instead of failing fast", elapsed)
	}
	if !strings.Contains(err.Error(), "in-flight capacity") {
		t.Errorf("saturation not named in the error: %v", err)
	}
	if got := c.Router.Stats(ctx).HealthyCount; got != 1 {
		t.Errorf("saturation evicted the backend: %d/1 healthy", got)
	}

	stopStream()
	<-streamDone
	// Put the long job down so cluster teardown does not drain 20+ points.
	if _, err := c.Client().Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}

// TestClusterCancelRoutedToOwner: cancel through the router reaches
// exactly the backend running the job, and only that backend records it.
func TestClusterCancelRoutedToOwner(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{Service: service.Config{Parallelism: 1}})
	ctx := context.Background()

	st, err := c.Client().Submit(ctx, slowSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerIndex(t, st.ID)

	if _, err := c.Client().Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var final api.JobStatus
	for {
		final, err = c.Client().Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State.Terminal() || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != api.StateCanceled {
		t.Fatalf("job state %q after cancel, want canceled", final.State)
	}

	// White-box: the owning backend holds the canceled job under its raw
	// id; the other backends never heard of it.
	_, rawID, _ := strings.Cut(st.ID, ".")
	j, err := c.Backends[owner].Service.Job(rawID)
	if err != nil {
		t.Fatalf("owner b%d does not know job %s: %v", owner, rawID, err)
	}
	if got := j.Status().State; got != api.StateCanceled {
		t.Errorf("owner's job state %q, want canceled", got)
	}
	for i, b := range c.Backends {
		if i == owner {
			continue
		}
		if _, err := b.Service.Job(rawID); err == nil {
			t.Errorf("backend b%d also holds job %s", i, rawID)
		}
	}
}
