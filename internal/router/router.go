// Package router implements improuter, the sharding front-end for a fleet
// of impserve backends. It speaks the same api/ wire protocol as a single
// instance — client/ works unchanged against either — and places each job
// by consistent-hashing its content-addressed result key (internal/jobkey,
// the same derivation the backends key their stores with) onto a ring of
// backends. Identical submissions therefore always land on the backend
// whose result store already holds (or is computing) that key, preserving
// the single-instance dedup and cache-hit guarantees across the fleet.
//
// Reliability model:
//
//   - Active health checks (GET /healthz per backend on an interval) evict
//     dead backends from routing and readmit them on recovery; transport
//     failures during proxying evict passively and immediately.
//   - Submissions retry with rehash: if the owning backend is down or
//     refuses (502/503/504), the next distinct backend in ring-walk order
//     is tried, excluding every node that already failed, up to a bounded
//     attempt budget.
//   - Per-backend in-flight caps (the imp.Gate seam the backends already
//     use for simulation load) bound concurrently proxied requests so one
//     slow backend cannot absorb every router connection.
//
// Job ids are rewritten on the way out: backend b2's "j-000017" becomes
// "b2.j-000017", so status/result/events/cancel route statelessly back to
// the owning backend with no id table in the router.
package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/admission"
	"github.com/impsim/imp/internal/httpx"
	"github.com/impsim/imp/internal/jobkey"
	"github.com/impsim/imp/internal/metrics"
)

// Config parameterizes a Router. Zero values select the defaults, except
// Retries, whose zero value is meaningful (see below): for every other
// numeric field an explicit zero is nonsense (a ring needs at least one
// virtual node, a result at least one copy), so zero can safely mean
// "default"; flag front-ends like cmd/improuter reject explicit nonsense
// loudly instead of letting it silently become the default.
type Config struct {
	// Backends lists the initial impserve base URLs ("http://host:port").
	// Backend i is named "b<i>" in composite job ids; membership can
	// change live afterwards via AddBackend/RemoveBackend (the admin
	// /v1/backends surface), with later joiners named in arrival order.
	Backends []string
	// Vnodes is the virtual-node count per backend on the hash ring
	// (default 64); more virtual nodes smooth key distribution.
	Vnodes int
	// Replicas is the number of backends holding a copy of each finished
	// result: the ring owner plus Replicas-1 healthy successors in walk
	// order (default 2). After a job completes on its owner the router
	// fans the result out asynchronously, and on submit a cold owner is
	// read-repaired from its successors before work is forwarded — so a
	// dead or restarted owner's results are served from replicas instead
	// of recomputed. 1 disables replication and read-repair. Replicas is
	// the configured target; the factor in effect at any moment is
	// min(Replicas, current member count), a property of the live topology
	// snapshot — a fleet that shrinks below the target degrades to the
	// copies it can hold and recovers the full target when members rejoin.
	Replicas int
	// ReplicaPoll is how often the replication watcher polls a submitted
	// job for completion before fanning its result out (default 250ms).
	ReplicaPoll time.Duration
	// Inflight caps concurrently proxied requests per backend (default 64),
	// enforced with an imp.Gate per backend. Event streams hold a slot for
	// their lifetime.
	Inflight int
	// Retries bounds additional backends tried after the owner fails.
	// 0 — the zero value — disables retries (the submit fails if the owner
	// does); any negative value, canonically RetriesAll, tries every
	// remaining candidate in walk order. 0 and "unset" must not be
	// conflated here: "-retries 0" is an explicit operator request for
	// no rehash retry, so the all-remaining default hides behind the -1
	// sentinel instead of behind 0.
	Retries int
	// HealthInterval is the active probe period (default 2s);
	// HealthTimeout bounds one probe (default 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// AdminToken, when set, gates the membership surface (/v1/backends):
	// requests must carry "Authorization: Bearer <token>". Empty leaves
	// the surface open — acceptable only when the router's listener is
	// itself unreachable from untrusted clients.
	AdminToken string
	// QuotaRate grants each tenant (the api.TenantHeader request header)
	// this many submissions per second at the router's front door, enforced
	// with a token bucket before any backend is touched; QuotaBurst is the
	// bucket capacity (default max(QuotaRate, 1)). QuotaRate <= 0 disables
	// router-level quotas. Backends can layer their own quota underneath
	// (service.Config.QuotaRate) — the router passes their 429s through.
	QuotaRate  float64
	QuotaBurst float64
	// Client issues backend requests; nil gets a client with no overall
	// timeout (event streams are long-lived).
	Client *http.Client
}

// RetriesAll is the canonical Config.Retries sentinel for "try every
// remaining backend" (any negative value behaves the same).
const RetriesAll = -1

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = 64
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	// Replicas is deliberately NOT clamped to len(c.Backends) here: the
	// startup backend list is just the initial membership, and a clamp
	// taken now would go stale on the first join or leave. The effective
	// factor is computed per topology snapshot (newTopology).
	if c.ReplicaPoll <= 0 {
		c.ReplicaPoll = 250 * time.Millisecond
	}
	if c.Inflight <= 0 {
		c.Inflight = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Stats is the router's aggregated /v1/stats payload — the shared wire
// type (api.StatsResponse).
type Stats = api.StatsResponse

// Router fronts a fleet of impserve backends behind one api/ endpoint.
type Router struct {
	cfg     Config
	hc      *http.Client
	limiter *admission.Limiter
	reg     *metrics.Registry

	// Registry-native instruments (single source of truth for their
	// numbers; /v1/stats reads them back).
	mQuotaRej  *metrics.CounterVec
	mSubmitDur *metrics.Histogram

	// topo is the current membership snapshot. Reads are lock-free and
	// always see one consistent ring+backends+replicas view; writes are
	// copy-on-write under memberMu (see membership.go). nextName numbers
	// backends across the router's lifetime — a joiner never reuses a
	// departed member's name, so stale composite job ids can never be
	// misrouted to an unrelated new backend.
	topo     atomic.Pointer[topology]
	memberMu sync.Mutex
	nextName int

	submitted atomic.Uint64
	rehashes  atomic.Uint64
	failed    atomic.Uint64

	joins       atomic.Uint64
	leaves      atomic.Uint64
	handoffKeys atomic.Uint64

	replicaPuts   atomic.Uint64
	replicaErrors atomic.Uint64
	readRepairs   atomic.Uint64
	repairMisses  atomic.Uint64

	// replMu guards the replication bookkeeping: replWatch is the set of
	// result keys with a live replication watcher (one watcher per key,
	// however many duplicate submissions arrive while it runs),
	// replConfirmed the keys verified fully replicated under the current
	// health picture (cleared on any health transition), and replClosed
	// stops new watchers once Close begins waiting for the old ones.
	replMu        sync.Mutex
	replWatch     map[string]bool
	replConfirmed map[string]bool
	replClosed    bool
	// healthEpoch advances on every healthy-set transition; confirmations
	// verified under an older epoch are discarded (see markConfirmed).
	healthEpoch atomic.Uint64

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// normalizeBackendURL validates one backend base URL and strips its
// trailing slash — the normalized form is the backend's ring identity.
func normalizeBackendURL(base string) (string, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("bad URL %q", base)
	}
	return strings.TrimRight(base, "/"), nil
}

// New builds a Router over cfg.Backends and starts its health loop; Close
// releases it. Backends start healthy — the first probe round corrects
// that within HealthInterval, and submit retries cover the gap.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: no backends configured")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg: cfg, hc: cfg.Client,
		limiter:       admission.New(cfg.QuotaRate, cfg.QuotaBurst),
		replWatch:     make(map[string]bool),
		replConfirmed: make(map[string]bool),
	}
	rt.initMetrics()
	backends := make([]*backend, 0, len(cfg.Backends))
	seen := make(map[string]int, len(cfg.Backends))
	for i, base := range cfg.Backends {
		addr, err := normalizeBackendURL(base)
		if err != nil {
			return nil, fmt.Errorf("router: backend %d: %w", i, err)
		}
		if j, dup := seen[addr]; dup {
			// Duplicates would stack identical virtual points (the ring
			// hashes by address) and split one backend's identity across
			// two names; reject rather than route ambiguously.
			return nil, fmt.Errorf("router: backend %d: %q duplicates backend %d", i, base, j)
		}
		seen[addr] = i
		backends = append(backends, rt.newBackend(addr))
	}
	rt.topo.Store(newTopology(1, backends, cfg.Vnodes, cfg.Replicas))
	ctx, cancel := context.WithCancel(context.Background())
	rt.baseCtx, rt.stop = ctx, cancel
	rt.wg.Add(1)
	go rt.healthLoop(ctx)
	return rt, nil
}

// newBackend allocates a ring member with the next lifetime-unique name.
// Callers hold memberMu or are inside New (no concurrent membership yet).
func (rt *Router) newBackend(addr string) *backend {
	b := &backend{
		name:    fmt.Sprintf("b%d", rt.nextName),
		base:    addr,
		gate:    imp.NewGate(rt.cfg.Inflight),
		healthy: true,
	}
	rt.nextName++
	return b
}

// initMetrics builds the router's Prometheus registry. Routing and
// replication counters already live on the Router as atomics, so they are
// exported through func collectors reading the live values; per-backend
// series are produced per scrape from the current topology snapshot (the
// label set follows ring membership). Quota rejections and the submit
// latency histogram are registry-native.
func (rt *Router) initMetrics() {
	r := metrics.New()
	rt.reg = r
	rt.mQuotaRej = r.CounterVec("imp_router_quota_rejections_total",
		"Submissions rejected at the router because the tenant's token bucket was empty (HTTP 429).", "tenant")
	rt.mSubmitDur = r.Histogram("imp_router_submit_seconds",
		"Submit latency through the router, including rehash retries.", nil)

	counter := func(name, help string, v *atomic.Uint64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("imp_router_submitted_total", "Submissions accepted by some backend.", &rt.submitted)
	counter("imp_router_rehashes_total", "Submit retries that moved a submission off its ring owner.", &rt.rehashes)
	counter("imp_router_failed_total", "Submissions no backend would take.", &rt.failed)
	counter("imp_router_joins_total", "Backends joined via the admin surface.", &rt.joins)
	counter("imp_router_leaves_total", "Backends removed via the admin surface.", &rt.leaves)
	counter("imp_router_handoff_keys_total", "Results bulk-copied between backends during membership changes.", &rt.handoffKeys)
	counter("imp_router_replica_puts_total", "Result copies written to ring successors.", &rt.replicaPuts)
	counter("imp_router_replica_errors_total", "Replication attempts that failed against some backend.", &rt.replicaErrors)
	counter("imp_router_read_repairs_total", "Cold owners refilled from a successor's replica before forwarding.", &rt.readRepairs)
	counter("imp_router_repair_misses_total", "Submissions where the owner and every probed successor missed.", &rt.repairMisses)

	r.GaugeFunc("imp_router_backends", "Current ring member count.",
		func() float64 { return float64(len(rt.topo.Load().backends)) })
	r.GaugeFunc("imp_router_healthy_backends", "Ring members currently passing health probes.",
		func() float64 { return float64(rt.topo.Load().healthyCount()) })
	r.GaugeFunc("imp_router_topology_version", "Version of the live membership snapshot.",
		func() float64 { return float64(rt.topo.Load().version) })
	r.GaugeFunc("imp_router_effective_replicas", "Replication factor the live topology sustains.",
		func() float64 { return float64(rt.topo.Load().replicas) })

	perBackend := func(name, help string, typ metrics.Type, v func(*backend) float64) {
		r.SampleFunc(name, help, typ, []string{"backend"}, func() []metrics.Sample {
			members := rt.topo.Load().backends
			out := make([]metrics.Sample, 0, len(members))
			for _, b := range members {
				out = append(out, metrics.Sample{Labels: []string{b.name}, Value: v(b)})
			}
			return out
		})
	}
	perBackend("imp_router_backend_healthy", "Backend health verdict (1 healthy, 0 evicted).",
		metrics.TypeGauge, func(b *backend) float64 {
			if b.isHealthy() {
				return 1
			}
			return 0
		})
	perBackend("imp_router_backend_inflight", "Requests currently proxied to the backend.",
		metrics.TypeGauge, func(b *backend) float64 { return float64(b.inflight.Load()) })
	perBackend("imp_router_backend_submits_total", "Jobs the backend accepted via the router.",
		metrics.TypeCounter, func(b *backend) float64 { return float64(b.submits.Load()) })
	perBackend("imp_router_backend_proxied_total", "Non-submit requests proxied to the backend.",
		metrics.TypeCounter, func(b *backend) float64 { return float64(b.proxied.Load()) })
	perBackend("imp_router_backend_errors_total", "Transport failures talking to the backend.",
		metrics.TypeCounter, func(b *backend) float64 { return float64(b.errors.Load()) })
	perBackend("imp_router_backend_evictions_total", "Healthy-to-unhealthy transitions.",
		metrics.TypeCounter, func(b *backend) float64 { return float64(b.evictions.Load()) })
	perBackend("imp_router_backend_replica_puts_total", "Replica copies written into the backend's store.",
		metrics.TypeCounter, func(b *backend) float64 { return float64(b.replicaPuts.Load()) })
}

// Metrics exposes the router's Prometheus registry (GET /metrics).
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// Close stops the health loop and any in-flight replication watchers.
func (rt *Router) Close() {
	// Refuse new watchers before waiting: a submit handler still unwinding
	// during shutdown must not wg.Add concurrently with wg.Wait.
	rt.replMu.Lock()
	rt.replClosed = true
	rt.replMu.Unlock()
	rt.stop()
	rt.wg.Wait()
}

// healthLoop probes every current ring member each interval, evicting and
// readmitting members as /healthz answers change. A change in the healthy
// set also wipes the confirmed-replicated key set: a readmitted backend
// may have restarted cold, so previously "fully replicated" keys must be
// re-verified by their next watcher. Membership is re-read from the
// topology snapshot every round, so joiners are probed from the next tick
// and departed members stop being probed; health state is tracked per
// backend identity, not per list position (positions shift as the fleet
// scales). Membership changes themselves invalidate the confirmed set in
// AddBackend/RemoveBackend, so only genuine health transitions do it here.
func (rt *Router) healthLoop(ctx context.Context) {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.HealthInterval)
	defer tick.Stop()
	prev := make(map[*backend]bool)
	for _, b := range rt.topo.Load().backends {
		prev[b] = b.isHealthy()
	}
	for {
		members := rt.topo.Load().backends
		var wg sync.WaitGroup
		for _, b := range members {
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				b.probe(ctx, rt.hc, rt.cfg.HealthTimeout)
			}(b)
		}
		wg.Wait()
		changed := false
		next := make(map[*backend]bool, len(members))
		for _, b := range members {
			h := b.isHealthy()
			next[b] = h
			if ph, known := prev[b]; known && ph != h {
				changed = true
			}
		}
		prev = next
		if changed {
			rt.invalidateConfirmed()
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// Handler returns the router's HTTP API — the same surface a single
// impserve exposes, plus aggregation on /v1/stats.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", rt.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob(http.MethodGet, "", true))
	mux.HandleFunc("GET /v1/jobs/{id}/result", rt.handleJob(http.MethodGet, "/result", false))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", rt.handleJob(http.MethodPost, "/cancel", true))
	mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleEvents)
	mux.HandleFunc("GET /v1/workloads", rt.handlePassthrough("/v1/workloads"))
	mux.HandleFunc("GET /v1/experiments", rt.handlePassthrough("/v1/experiments"))
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.Handle("GET /metrics", rt.reg.Handler())
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	// Membership admin surface (membership.go); gated by Config.AdminToken.
	mux.HandleFunc("GET /v1/backends", rt.requireAdmin(rt.handleBackendList))
	mux.HandleFunc("POST /v1/backends", rt.requireAdmin(rt.handleBackendJoin))
	mux.HandleFunc("DELETE /v1/backends/{name}", rt.requireAdmin(rt.handleBackendLeave))
	return mux
}

// maxSpecBytes mirrors the backend's submit body bound.
const maxSpecBytes = 1 << 20

// DecodeSpec parses and validates a submit body exactly as handleSubmit
// does, returning the normalized spec's result key. Exported for the fuzz
// target: arbitrary bytes must either fail here or key deterministically.
func DecodeSpec(body []byte) (api.JobSpec, string, error) {
	var spec api.JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return api.JobSpec{}, "", fmt.Errorf("decoding job spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return api.JobSpec{}, "", err
	}
	key, err := jobkey.ResultKey(spec)
	if err != nil {
		return api.JobSpec{}, "", err
	}
	return spec, key, nil
}

// handleSubmit keys the spec, walks the ring from its owner, and forwards
// the original body to the first candidate that takes it. Transport
// failures evict the backend and rehash to the next distinct node;
// refusals (502/503/504) rehash without evicting. Every other backend
// answer — success, a 4xx the client must see, or a 429 admission
// rejection (backpressure must reach the client, not trigger a rehash
// storm) — passes through with the job id rewritten.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { rt.mSubmitDur.Observe(time.Since(start).Seconds()) }()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading job spec: %w", err))
		return
	}
	_, key, err := DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Front-door admission: an over-quota tenant is answered here, before
	// any ring walk or backend round trip spends fleet capacity on it.
	tenant := r.Header.Get(api.TenantHeader)
	if ok, retryAfter := rt.limiter.Allow(tenant); !ok {
		name := tenant
		if name == "" {
			name = admission.DefaultTenant
		}
		rt.mQuotaRej.With(name).Inc()
		wire := api.Errorf(api.CodeOverQuota, "router: tenant %q over submission quota", name)
		wire.RetryAfter = retryAfter
		writeError(w, http.StatusTooManyRequests, wire)
		return
	}

	// One topology snapshot serves the whole submission: candidate order,
	// read-repair and replication scheduling all see the same membership,
	// even if a join or leave publishes mid-request.
	topo := rt.topo.Load()
	candidates := topo.candidates(key)
	// Before forwarding, make sure the backend about to receive this key
	// holds its result if any replica does: a cold owner (restarted, or
	// readmitted after its keys were served elsewhere) answers from its
	// refilled store instead of recomputing.
	rt.readRepair(r.Context(), topo, key, candidates)
	// Retries 0 means exactly one attempt (the owner); negative means
	// every candidate. The budget is computed against the live candidate
	// set, not the startup backend count — membership is dynamic now.
	budget := rt.cfg.Retries + 1
	if rt.cfg.Retries < 0 {
		budget = len(candidates)
	}
	var lastErr error
	for attempt, b := range candidates {
		if attempt >= budget {
			break
		}
		if attempt > 0 {
			rt.rehashes.Add(1)
		}
		var hdr http.Header
		if tenant != "" {
			// Relay the tenant so backend-level quotas and metrics see the
			// same identity the router admitted.
			hdr = http.Header{api.TenantHeader: []string{tenant}}
		}
		resp, err := rt.forward(r.Context(), b, http.MethodPost, "/v1/jobs", "", hdr, body)
		if err != nil {
			if clientGone(r) {
				return // the submitter went away, not the backend
			}
			if !errors.Is(err, errSaturated) {
				b.markDown(err) // saturation is load, not death — rehash only
			}
			lastErr = fmt.Errorf("backend %s: %w", b.name, err)
			continue
		}
		if retryableStatus(resp.StatusCode) {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = fmt.Errorf("backend %s: %s: %s", b.name, resp.Status, bytes.TrimSpace(msg))
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			copyResponse(w, resp)
			return
		}
		var st api.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("backend %s: decoding status: %w", b.name, err))
			return
		}
		rt.scheduleReplication(topo, key, b, st)
		st.ID = b.name + "." + st.ID
		b.submits.Add(1)
		rt.submitted.Add(1)
		writeJSON(w, resp.StatusCode, st)
		return
	}
	rt.failed.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no backend available")
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("router: submit failed after %d backend(s): %w", min(budget, len(candidates)), lastErr))
}

// retryableStatus marks backend answers that justify rehashing: the
// backend is up but refusing work (queue full, draining) or is itself a
// failing proxy. 4xx answers are the client's problem and pass through.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// clientGone reports whether a proxy failure was caused by the incoming
// request's own cancellation (client disconnect or timeout) rather than by
// the backend. Such failures must not evict the backend from the ring —
// one impatient client would otherwise cost every other client the key
// owner's warmed cache for a probe interval.
func clientGone(r *http.Request) bool {
	return r.Context().Err() != nil
}

// proxyFailure classifies a forward() error for a single-backend endpoint:
// only a genuine backend failure evicts (client disconnects and slot
// saturation do not), and saturation answers 503 rather than 502.
func proxyFailure(r *http.Request, b *backend, err error) (status int) {
	if errors.Is(err, errSaturated) {
		return http.StatusServiceUnavailable
	}
	if !clientGone(r) {
		b.markDown(err)
	}
	return http.StatusBadGateway
}

// forward issues one gated request to b. The in-flight slot is waited for
// at most HealthTimeout: a backend saturated with open streams yields
// errSaturated (rehash / 503 material) instead of absorbing the caller
// indefinitely — without that bound a full gate would make submits hang
// forever and the retry loop unreachable.
// hdr carries extra request headers to relay (the tenant header on
// submits); nil forwards none.
func (rt *Router) forward(ctx context.Context, b *backend, method, path, rawQuery string, hdr http.Header, body []byte) (*http.Response, error) {
	release, err := b.acquire(ctx, rt.cfg.HealthTimeout)
	if err != nil {
		return nil, err
	}
	u := b.base + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		release()
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		release()
		return nil, err
	}
	resp.Body = &releasingBody{ReadCloser: resp.Body, release: release}
	return resp, nil
}

// releasingBody frees the backend's in-flight slot when the proxied
// response body is closed, which for event streams is stream end.
type releasingBody struct {
	io.ReadCloser
	release func()
	once    sync.Once
}

func (b *releasingBody) Close() error {
	err := b.ReadCloser.Close()
	b.once.Do(b.release)
	return err
}

// splitID resolves a composite job id ("b2.j-000017") to its backend in
// the current topology. Ids minted before a backend left resolve to
// nothing — the job died with its node; resubmitting rehashes the spec
// onto the new owner (whose store was handed the result, so a finished
// job's resubmission is answered cached, not recomputed).
func (rt *Router) splitID(composite string) (*backend, string, error) {
	name, id, ok := strings.Cut(composite, ".")
	if ok && id != "" {
		if b := rt.topo.Load().byName(name); b != nil {
			return b, id, nil
		}
	}
	return nil, "", fmt.Errorf("router: unknown job %q", composite)
}

// handleJob proxies one per-job endpoint to the owning backend. rewrite
// re-addresses the returned JobStatus id; result bytes pass through
// untouched (they are the content-addressed payload — byte identity with
// direct library output is the contract).
func (rt *Router) handleJob(method, suffix string, rewrite bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		b, id, err := rt.splitID(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		b.proxied.Add(1)
		resp, err := rt.forward(r.Context(), b, method, "/v1/jobs/"+url.PathEscape(id)+suffix, "", nil, nil)
		if err != nil {
			writeError(w, proxyFailure(r, b, err), fmt.Errorf("router: backend %s: %w", b.name, err))
			return
		}
		defer resp.Body.Close()
		if !rewrite || resp.StatusCode/100 != 2 {
			copyResponse(w, resp)
			return
		}
		var st api.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("router: backend %s: decoding status: %w", b.name, err))
			return
		}
		st.ID = b.name + "." + st.ID
		writeJSON(w, resp.StatusCode, st)
	}
}

// handleEvents relays the owning backend's NDJSON stream line by line,
// flushing per event and preserving ?from= resume. If the backend dies
// mid-stream the relay does not just drop the connection — it emits a
// synthetic terminal "failed" event so a streaming client observes a
// well-formed end instead of hanging or resyncing blind, then evicts the
// backend.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	b, id, err := rt.splitID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	b.proxied.Add(1)
	resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/events", r.URL.RawQuery, nil, nil)
	if err != nil {
		writeError(w, proxyFailure(r, b, err), fmt.Errorf("router: backend %s: %w", b.name, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		copyResponse(w, resp)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	lastSeq := -1
	terminal := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.Event
		if json.Unmarshal(line, &ev) == nil {
			lastSeq = ev.Seq
			terminal = terminal || ev.State.Terminal()
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if terminal || clientGone(r) {
		// Relayed to a clean terminal end, or the client went away (which
		// also surfaces here as a read error on the proxied request) — the
		// backend did nothing wrong either way.
		return
	}
	cause := sc.Err()
	if cause == nil {
		// Clean EOF without a terminal line. A healthy backend does end one
		// kind of stream this way: resuming a finished job with ?from= past
		// its last event yields zero lines (a single instance behaves
		// identically, so the router must too). A status probe tells that
		// apart from a backend that vanished mid-job; a probe that fails
		// because the *client* just went away proves nothing about the
		// backend, so it must not evict or fabricate a failure either.
		st, perr := rt.jobStatus(r.Context(), b, id)
		if perr == nil && st.State.Terminal() {
			return
		}
		if clientGone(r) {
			return
		}
		cause = io.ErrUnexpectedEOF
	}
	b.markDown(cause)
	synth := api.Event{
		Seq:   lastSeq + 1,
		State: api.StateFailed,
		Error: fmt.Sprintf("router: backend %s died mid-stream: %v; resubmit to rehash onto a healthy backend", b.name, cause),
	}
	if data, err := json.Marshal(synth); err == nil {
		w.Write(append(data, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// jobStatus fetches one job's status straight from its backend (raw id),
// bounded by the health timeout. Deliberately ungated, like a health
// probe: the caller already holds one of b's in-flight slots for the
// stream being diagnosed, and the probe must not queue behind it when
// Inflight is small.
func (rt *Router) jobStatus(ctx context.Context, b *backend, id string) (api.JobStatus, error) {
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, b.base+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return api.JobStatus{}, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return api.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.JobStatus{}, fmt.Errorf("status probe: %s", resp.Status)
	}
	var st api.JobStatus
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// handleList fans the listing out to every healthy backend and merges the
// rewritten statuses in submission-time order. A backend that cannot be
// read is named in an X-Improuter-Partial header (the body stays a plain
// JobStatus list for client compatibility) instead of its jobs silently
// "vanishing"; if nothing was reachable at all the listing fails loudly.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	var all []api.JobStatus
	var missing []string
	reached := 0
	for _, b := range rt.topo.Load().backends {
		if !b.isHealthy() {
			continue
		}
		resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/jobs", "", nil, nil)
		if err != nil {
			if !clientGone(r) && !errors.Is(err, errSaturated) {
				b.markDown(err)
			}
			missing = append(missing, b.name)
			continue
		}
		var jobs []api.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&jobs)
		resp.Body.Close()
		if err != nil {
			missing = append(missing, b.name)
			continue
		}
		reached++
		for i := range jobs {
			jobs[i].ID = b.name + "." + jobs[i].ID
		}
		all = append(all, jobs...)
	}
	if reached == 0 && len(missing) > 0 {
		writeError(w, http.StatusBadGateway, fmt.Errorf("router: no backend listing reachable (tried %s)", strings.Join(missing, ", ")))
		return
	}
	if len(missing) > 0 {
		w.Header().Set("X-Improuter-Partial", strings.Join(missing, ","))
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].SubmittedAt.Equal(all[j].SubmittedAt) {
			return all[i].SubmittedAt.Before(all[j].SubmittedAt)
		}
		return all[i].ID < all[j].ID
	})
	if all == nil {
		all = []api.JobStatus{}
	}
	writeJSON(w, http.StatusOK, all)
}

// handlePassthrough proxies fleet-invariant endpoints (workload and
// experiment catalogs) to the first backend that answers.
func (rt *Router) handlePassthrough(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, healthyOnly := range []bool{true, false} {
			for _, b := range rt.topo.Load().backends {
				if healthyOnly != b.isHealthy() {
					continue
				}
				resp, err := rt.forward(r.Context(), b, http.MethodGet, path, "", nil, nil)
				if err != nil {
					if !clientGone(r) && !errors.Is(err, errSaturated) {
						b.markDown(err)
					}
					continue
				}
				defer resp.Body.Close()
				copyResponse(w, resp)
				return
			}
		}
		writeError(w, http.StatusBadGateway, errors.New("router: no backend available"))
	}
}

// Stats aggregates router counters with each live backend's own service
// stats. The per-backend fetches are best-effort, parallel, and ungated
// like health probes — /v1/stats is exactly what an operator reads when
// backends are saturated, so it must not queue behind the saturation it
// is reporting.
func (rt *Router) Stats(ctx context.Context) Stats {
	topo := rt.topo.Load()
	st := Stats{
		BackendCount:      len(topo.backends),
		TopologyVersion:   topo.version,
		EffectiveReplicas: topo.replicas,
		Joins:             rt.joins.Load(),
		Leaves:            rt.leaves.Load(),
		HandoffKeys:       rt.handoffKeys.Load(),
		Submitted:         rt.submitted.Load(),
		Rehashes:          rt.rehashes.Load(),
		Failed:            rt.failed.Load(),
		QuotaRejections:   rt.mQuotaRej.Total(),
		ReplicaPuts:       rt.replicaPuts.Load(),
		ReplicaErrors:     rt.replicaErrors.Load(),
		ReadRepairs:       rt.readRepairs.Load(),
		RepairMisses:      rt.repairMisses.Load(),
		Backends:          make([]BackendStats, len(topo.backends)),
	}
	var wg sync.WaitGroup
	for i, b := range topo.backends {
		bs := b.stats()
		if !bs.Healthy {
			st.Backends[i] = bs
			continue
		}
		st.HealthyCount++
		wg.Add(1)
		go func(i int, b *backend, bs BackendStats) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
			defer cancel()
			if req, err := http.NewRequestWithContext(sctx, http.MethodGet, b.base+"/v1/stats", nil); err == nil {
				if resp, err := rt.hc.Do(req); err == nil {
					json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&bs.Service)
					resp.Body.Close()
				}
			}
			st.Backends[i] = bs
		}(i, b, bs)
	}
	wg.Wait()
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats(r.Context()))
}

// handleHealthz reports the router healthy while it can route anywhere.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	topo := rt.topo.Load()
	healthy := topo.healthyCount()
	if healthy == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("router: no healthy backends"))
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok %d/%d backends\n", healthy, len(topo.backends))
}

// copyResponse passes a backend answer through verbatim. Retry-After must
// survive the relay: a backend 429 without its backoff hint would strip
// admission control of the half that tells clients what to do about it.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// writeJSON and writeError delegate to the shared envelope
// (internal/httpx) — the same bytes a backend would produce, so responses
// synthesized by the router are indistinguishable from relayed ones.
func writeJSON(w http.ResponseWriter, code int, v any) { httpx.WriteJSON(w, code, v) }

func writeError(w http.ResponseWriter, code int, err error) { httpx.WriteError(w, code, err) }
