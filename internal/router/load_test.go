package router_test

// Load-path e2e tests: priority lanes under a bulk storm, per-tenant quota
// admission at the router's front door, slow readers on relayed streams,
// and the Prometheus exposition both tiers serve. These are the acceptance
// tests for the production controls the impload harness measures.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/cluster"
	"github.com/impsim/imp/internal/metrics"
	"github.com/impsim/imp/internal/router"
	"github.com/impsim/imp/internal/service"
)

// slowSweep builds a bulk-lane sweep of `points` distinct ~60-90ms points
// (seeded so every call yields a fresh result key).
func slowSweep(points int, seed int64) api.JobSpec {
	spec := api.JobSpec{Priority: api.LaneBulk}
	for i := 0; i < points; i++ {
		spec.Sweep = append(spec.Sweep, imp.Config{
			Workload: "spmv", Cores: 16, Scale: 0.2, System: imp.SystemIMP,
			Seed: seed*100 + int64(i) + 1,
		})
	}
	return spec
}

// TestClusterInteractiveUnderBulkStorm: with a single executor saturated by
// a storm of bulk sweeps, a small interactive submit must jump the queue
// and finish while bulk work is still pending — the lane scheduler's whole
// reason to exist.
func TestClusterInteractiveUnderBulkStorm(t *testing.T) {
	c := startCluster(t, 1, cluster.Options{
		Service: service.Config{Executors: 1, Parallelism: 1, QueueDepth: 64},
	})
	ctx := context.Background()
	cl := c.Client()

	const storm = 8
	bulkIDs := make([]string, storm)
	for i := range bulkIDs {
		st, err := cl.Submit(ctx, slowSweep(4, int64(i)))
		if err != nil {
			t.Fatalf("bulk submit %d: %v", i, err)
		}
		bulkIDs[i] = st.ID
	}

	st, err := cl.Submit(ctx, api.JobSpec{
		Priority: api.LaneInteractive,
		Sweep:    []imp.Config{{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: 999}},
	})
	if err != nil {
		t.Fatalf("interactive submit: %v", err)
	}
	if err := cl.Stream(ctx, st.ID, 0, nil); err != nil {
		t.Fatalf("interactive stream: %v", err)
	}

	// The interactive job is done; the storm must not be. (With one
	// executor and ~0.3s per bulk job, the queue holds several jobs for
	// seconds — if the interactive submit had waited its FIFO turn, every
	// bulk job would already be terminal by the time it finished.)
	pending := 0
	for _, id := range bulkIDs {
		bst, err := cl.Status(ctx, id)
		if err != nil {
			t.Fatalf("bulk status: %v", err)
		}
		if !bst.State.Terminal() {
			pending++
		}
	}
	if pending == 0 {
		t.Fatal("interactive job finished after the whole bulk storm drained; priority lanes did not preempt the queue")
	}
	t.Logf("interactive done with %d/%d bulk jobs still pending", pending, storm)

	// Lane accounting must surface in the service stats view.
	ss, err := c.BackendClient(0).ServiceStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ss.QueuedBulk+ss.RunningBulk == 0 && pending > 0 {
		t.Errorf("stats show no bulk occupancy while %d bulk jobs pending: %+v", pending, ss)
	}

	// Cancel the rest of the storm so teardown does not wait out the queue.
	for _, id := range bulkIDs {
		cl.Cancel(ctx, id)
	}
}

// TestClusterQuotaRejectsOverLimitTenant: an over-quota tenant gets typed
// 429 + Retry-After from the router's front door while another tenant's
// traffic is admitted untouched.
func TestClusterQuotaRejectsOverLimitTenant(t *testing.T) {
	c := startCluster(t, 1, cluster.Options{
		Router: router.Config{QuotaRate: 0.5, QuotaBurst: 2},
	})
	ctx := context.Background()

	greedy := c.Client()
	greedy.SetTenant("team-greedy")
	var rejected *api.Error
	for i := 0; i < 4; i++ {
		_, err := greedy.Submit(ctx, api.JobSpec{
			Sweep: []imp.Config{{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: int64(i + 1)}},
		})
		if err != nil && errors.As(err, &rejected) {
			break
		}
		if err != nil {
			t.Fatalf("submit %d failed with an untyped error: %v", i, err)
		}
	}
	if rejected == nil {
		t.Fatal("4 rapid submits against burst 2 never hit the quota")
	}
	if rejected.Code != api.CodeOverQuota || rejected.Status != http.StatusTooManyRequests {
		t.Fatalf("rejection not typed over_quota/429: %+v", rejected)
	}
	if rejected.RetryAfter < 1 {
		t.Fatalf("rejection carries no Retry-After hint: %+v", rejected)
	}

	// A different tenant is a different bucket: admitted immediately.
	other := c.Client()
	other.SetTenant("team-frugal")
	st, err := other.Submit(ctx, api.JobSpec{
		Sweep: []imp.Config{{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: 77}},
	})
	if err != nil {
		t.Fatalf("other tenant rejected alongside the greedy one: %v", err)
	}
	if err := other.Stream(ctx, st.ID, 0, nil); err != nil {
		t.Fatalf("other tenant's job did not finish: %v", err)
	}

	// The rejection is visible to operators in both stats and metrics.
	rs, err := greedy.RouterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rs.QuotaRejections == 0 {
		t.Error("router stats count no quota rejections after a 429")
	}
	expo, err := greedy.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo, `imp_router_quota_rejections_total{tenant="team-greedy"}`) {
		t.Error("exposition missing the per-tenant rejection counter")
	}
}

// TestClusterSlowReaderStreamRelay: a client draining relayed events much
// slower than the backend produces them must still receive every event in
// order, and the backend must stay healthy — the router may not buffer
// unboundedly, drop events, or mistake a slow client for a dead backend.
func TestClusterSlowReaderStreamRelay(t *testing.T) {
	c := startCluster(t, 1, cluster.Options{})
	ctx := context.Background()
	cl := c.Client()

	const points = 10
	spec := api.JobSpec{Sweep: make([]imp.Config, points)}
	for i := range spec.Sweep {
		spec.Sweep[i] = imp.Config{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: int64(i + 1)}
	}
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	var seqs []int
	err = cl.Stream(ctx, st.ID, 0, func(ev api.Event) {
		seqs = append(seqs, ev.Seq)
		time.Sleep(40 * time.Millisecond) // ~8x slower than the backend produces
	})
	if err != nil {
		t.Fatalf("slow-read stream failed: %v", err)
	}
	if len(seqs) != points+1 { // one per point + the terminal event
		t.Fatalf("slow reader saw %d events, want %d: %v", len(seqs), points+1, seqs)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("events out of order or dropped at %d: %v", i, seqs)
		}
	}

	if got := c.Router.Stats(ctx).HealthyCount; got != 1 {
		t.Errorf("backend marked unhealthy under a slow reader: healthy=%d", got)
	}
}

// TestClusterMetricsExposition: both tiers serve valid Prometheus text
// exposition covering the families operators alert on, and the numbers
// agree with the /v1/stats view of the same registry.
func TestClusterMetricsExposition(t *testing.T) {
	c := startCluster(t, 2, cluster.Options{})
	ctx := context.Background()
	cl := c.Client()

	st, err := cl.Submit(ctx, api.JobSpec{
		Sweep: []imp.Config{{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Stream(ctx, st.ID, 0, nil); err != nil {
		t.Fatal(err)
	}

	front, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(front); err != nil {
		t.Fatalf("router exposition invalid: %v", err)
	}
	for _, family := range []string{
		"imp_router_submitted_total",
		"imp_router_healthy_backends",
		"imp_router_replica_puts_total",
		"imp_router_submit_seconds_bucket",
		`imp_router_backend_healthy{backend="b0"}`,
	} {
		if !strings.Contains(front, family) {
			t.Errorf("router exposition missing %s", family)
		}
	}
	rs, err := cl.RouterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("imp_router_submitted_total %d", rs.Submitted); !strings.Contains(front, want) {
		t.Errorf("exposition disagrees with /v1/stats: want %q", want)
	}

	// Every backend declares the full family set; the lane-labeled duration
	// histogram only grows series on the backend that actually executed the
	// job, so its _bucket samples are asserted fleet-wide.
	sawDuration := false
	for i := 0; i < 2; i++ {
		expo, err := c.BackendClient(i).Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.ValidateExposition(expo); err != nil {
			t.Fatalf("backend %d exposition invalid: %v", i, err)
		}
		for _, family := range []string{
			"imp_service_submitted_total",
			"imp_service_executed_total",
			`imp_service_queue_depth{lane="interactive"}`,
			`imp_service_running{lane="bulk"}`,
			"# TYPE imp_service_job_duration_seconds histogram",
			"imp_service_store_hits_total",
		} {
			if !strings.Contains(expo, family) {
				t.Errorf("backend %d exposition missing %s", i, family)
			}
		}
		sawDuration = sawDuration || strings.Contains(expo, "imp_service_job_duration_seconds_bucket")
	}
	if !sawDuration {
		t.Error("no backend recorded a job duration histogram sample")
	}
}
