package router

// Result replication and read-repair. Results are content-addressed and
// byte-identical across the fleet (the same property routing exploits), so
// copying them is always safe: two honest replicas of a key can never
// disagree, writes are idempotent, and there is no consistency protocol to
// run — just fan-out after completion and repair-on-read, memcache/dynamo
// style. With Replicas=R, each finished result lives on its ring owner
// plus the next R-1 healthy successors in walk order; when the owner dies,
// the rehashed submission lands on exactly those successors, whose stores
// answer without recomputing, and when a cold owner comes back, submit-time
// read-repair refills it from the replicas before work is forwarded.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/impsim/imp/api"
)

// scheduleReplication starts (at most) one background watcher for a key
// after its submission was accepted by b. st is the backend's own answer,
// raw id: a terminal done status (cached answers) fans out immediately,
// a live one is polled to completion first. Failed and canceled jobs have
// nothing to copy. topo is the snapshot the submission routed under; its
// effective replica count (already clamped to the member count) decides
// whether replication is worth starting at all.
func (rt *Router) scheduleReplication(topo *topology, key string, b *backend, st api.JobStatus) {
	if topo.replicas < 2 {
		return
	}
	if st.State.Terminal() && st.State != api.StateDone {
		return
	}
	rt.replMu.Lock()
	// replClosed: Close has (or is about to) run wg.Wait; adding to the
	// WaitGroup now would race it. replConfirmed: this key already fanned
	// out to its full replica complement and membership health has not
	// changed since — re-verifying every warm resubmission would multiply
	// the router's internal traffic by the replica count at steady state.
	if rt.replClosed || rt.replWatch[key] || rt.replConfirmed[key] {
		rt.replMu.Unlock()
		return
	}
	rt.replWatch[key] = true
	rt.wg.Add(1)
	rt.replMu.Unlock()
	go func() {
		defer rt.wg.Done()
		defer func() {
			rt.replMu.Lock()
			delete(rt.replWatch, key)
			rt.replMu.Unlock()
		}()
		rt.replicate(rt.baseCtx, key, b, st)
	}()
}

// maxConfirmedKeys bounds the confirmed-replicated set; beyond it the set
// resets, which only costs re-verification, never correctness.
const maxConfirmedKeys = 65536

// markConfirmed records that key is fully replicated — but only if the
// health picture is still the one the caller verified under (epoch from
// healthEpoch at the start of its fan-out). A watcher racing a health
// transition must not re-confirm a key it verified against backends that
// have since flapped: the readmitted one may be cold.
func (rt *Router) markConfirmed(key string, epoch uint64) {
	rt.replMu.Lock()
	if rt.healthEpoch.Load() == epoch {
		if len(rt.replConfirmed) >= maxConfirmedKeys {
			rt.replConfirmed = make(map[string]bool)
		}
		rt.replConfirmed[key] = true
	}
	rt.replMu.Unlock()
}

// invalidateConfirmed wipes the confirmed set on any health transition,
// since an evicted-then-readmitted backend may have restarted with a cold
// store, and bumps the epoch so in-flight watchers cannot re-add stale
// confirmations.
func (rt *Router) invalidateConfirmed() {
	rt.replMu.Lock()
	rt.healthEpoch.Add(1)
	if len(rt.replConfirmed) > 0 {
		rt.replConfirmed = make(map[string]bool)
	}
	rt.replMu.Unlock()
}

// replicate waits for the job to finish on its owner, then copies the
// result to the key's healthy ring successors (effective replica count
// minus the owner) that do not already hold it. The successor set is
// computed against the topology current at fan-out time, not at submit
// time: a join or leave while the job ran means the copies land where the
// new ring will actually look for them.
func (rt *Router) replicate(ctx context.Context, key string, owner *backend, st api.JobStatus) {
	epoch := rt.healthEpoch.Load()
	if !st.State.Terminal() {
		tick := time.NewTicker(rt.cfg.ReplicaPoll)
		defer tick.Stop()
		for {
			cur, err := rt.jobStatus(ctx, owner, st.ID)
			if err != nil {
				if ctx.Err() == nil {
					rt.replicaErrors.Add(1) // owner unreachable; health loop owns eviction
				}
				return
			}
			if cur.State.Terminal() {
				st = cur
				break
			}
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}
	if st.State != api.StateDone {
		return
	}
	data, ok, err := rt.storeGet(ctx, owner, key)
	if err != nil || !ok {
		if ctx.Err() == nil {
			rt.replicaErrors.Add(1)
		}
		return
	}
	topo := rt.topo.Load()
	succ := topo.successors(key, owner)
	placed := 0
	for _, b := range succ {
		if ok, err := rt.storeHas(ctx, b, key); err == nil && ok {
			placed++
			continue // replica already present; fan-out is idempotent
		}
		if err := rt.storePut(ctx, b, key, data); err != nil {
			if ctx.Err() == nil {
				rt.replicaErrors.Add(1)
			}
			continue
		}
		b.replicaPuts.Add(1)
		rt.replicaPuts.Add(1)
		placed++
	}
	if placed == len(succ) && placed == topo.replicas-1 {
		rt.markConfirmed(key, epoch) // full complement; skip re-verification until health changes
	}
}

// readRepair runs on the submit path, before the spec is forwarded: if the
// first candidate (the backend about to receive the work) misses its store
// for key, the key's successors are probed — one past the replica count,
// tolerating a dead successor — and the first replica found is copied onto
// the target, so the forwarded submission is answered from its store
// instead of executing. Probes and the copy are bounded and best-effort: a
// repair that cannot happen degrades to recomputation, never to an error.
func (rt *Router) readRepair(ctx context.Context, topo *topology, key string, candidates []*backend) {
	if topo.replicas < 2 || len(candidates) < 2 {
		return
	}
	target := candidates[0]
	if ok, err := rt.storeHas(ctx, target, key); err != nil || ok {
		return // warm — or unreachable, which the forward loop handles
	}
	probes := candidates[1:]
	if len(probes) > topo.replicas {
		probes = probes[:topo.replicas]
	}
	for _, b := range probes {
		data, ok, err := rt.storeGet(ctx, b, key)
		if err != nil || !ok {
			continue
		}
		if err := rt.storePut(ctx, target, key, data); err == nil {
			rt.readRepairs.Add(1)
		}
		return
	}
	rt.repairMisses.Add(1)
}

// maxStoreResultBytes mirrors the backend's replica-write bound.
const maxStoreResultBytes = 64 << 20

// storeTimeout bounds one store read or write. Store traffic is ungated,
// like health probes and status probes: replication runs in the background
// and read-repair runs ahead of a submit already queued for a gate slot,
// so neither may deadlock behind — or be starved by — open event streams.
func (rt *Router) storeTimeout() time.Duration { return 5 * rt.cfg.HealthTimeout }

// storeHas probes b's result store for key without transferring the body
// (HEAD; Go's GET mux patterns serve it for free). Presence checks run on
// every submit (read-repair) and per successor in the fan-out — paying a
// full result download just to learn "it exists" would tax the fleet with
// the result size on each.
func (rt *Router) storeHas(ctx context.Context, b *backend, key string) (bool, error) {
	sctx, cancel := context.WithTimeout(ctx, rt.storeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodHead, b.base+"/v1/results/"+url.PathEscape(key), nil)
	if err != nil {
		return false, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return false, err
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("store head %s: %s", b.name, resp.Status)
	}
}

// storeGet reads b's result store by content key. ok=false with a nil
// error is a clean miss (404); an error means b could not answer.
func (rt *Router) storeGet(ctx context.Context, b *backend, key string) (data []byte, ok bool, err error) {
	sctx, cancel := context.WithTimeout(ctx, rt.storeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, b.base+"/v1/results/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Read one byte past the bound so an oversized result is an error,
		// not a silent truncation that would then be replicated (with a
		// valid CRC over the truncated bytes!) as if canonical.
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxStoreResultBytes+1))
		if err != nil {
			return nil, false, err
		}
		if len(data) > maxStoreResultBytes {
			return nil, false, fmt.Errorf("store get %s: result exceeds %d bytes", b.name, maxStoreResultBytes)
		}
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("store get %s: %s", b.name, resp.Status)
	}
}

// storePut writes one result into b's store.
func (rt *Router) storePut(ctx context.Context, b *backend, key string, data []byte) error {
	sctx, cancel := context.WithTimeout(ctx, rt.storeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodPut, b.base+"/v1/results/"+url.PathEscape(key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("store put %s: %s", b.name, resp.Status)
	}
	return nil
}
