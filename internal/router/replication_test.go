package router_test

// E2e tests for result replication, disk persistence and read-repair: a
// dead backend's cached results must be served byte-identical from a ring
// successor with zero new executions fleet-wide, a backend restarted with
// a results dir must answer from disk without recompute, and a backend
// restarted cold must be refilled from its replicas at submit time. These
// run in the CI cluster job under -race.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/impsim/imp/internal/cluster"
	"github.com/impsim/imp/internal/router"
)

// waitReplica polls until some backend other than owner holds key in its
// store, returning its index (-1 on timeout). Replication is asynchronous;
// tests must settle it before killing the owner.
func waitReplica(c *cluster.Cluster, owner int, key string, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		for i, b := range c.Backends {
			if i == owner {
				continue
			}
			if _, ok := b.Service.StoredResult(key); ok {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return -1
}

// executedFleetWide sums Executed over every live backend.
func executedFleetWide(c *cluster.Cluster, skip int) uint64 {
	var total uint64
	for i, b := range c.Backends {
		if i == skip {
			continue
		}
		total += b.Service.Stats().Executed
	}
	return total
}

// TestClusterReplicaServesAfterOwnerDeath is the replication acceptance
// criterion: kill the backend that computed (and owns) a result, resubmit
// the identical spec, and the byte-identical cached result must come back
// from a ring successor's replica with zero new executions anywhere.
func TestClusterReplicaServesAfterOwnerDeath(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()

	st, want, err := c.Client().Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerIndex(t, st.ID)
	replica := waitReplica(c, owner, st.Key, 10*time.Second)
	if replica < 0 {
		t.Fatalf("result %s never replicated off its owner b%d", st.Key, owner)
	}

	c.Kill(owner)
	if got := c.WaitHealthy(2, 5*time.Second); got != 2 {
		t.Fatalf("router still sees %d healthy backends after the kill", got)
	}
	before := executedFleetWide(c, owner)

	st2, got, err := c.Client().Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if reOwner := ownerIndex(t, st2.ID); reOwner == owner {
		t.Fatalf("resubmission routed to the dead backend b%d", owner)
	}
	if !st2.Cached {
		t.Errorf("resubmission was not served from a replica store: %+v", st2)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("replica-served result diverges from the original:\n--- replica\n%s\n--- original\n%s", got, want)
	}
	if after := executedFleetWide(c, owner); after != before {
		t.Errorf("resubmission after owner death executed %d new job(s) fleet-wide, want 0", after-before)
	}
	if rs := c.Router.Stats(ctx); rs.ReplicaPuts == 0 {
		t.Errorf("router recorded no replica puts: %+v", rs)
	}
}

// TestClusterRestartWarmFromDisk is the persistence acceptance criterion:
// with -results-dir set and replication disabled (to isolate the disk
// path), a backend killed and restarted must serve its prior results from
// its on-disk store — same bytes, zero executions on the revived process.
func TestClusterRestartWarmFromDisk(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{
		ResultsDir: t.TempDir(),
		Router:     router.Config{Replicas: 1},
	})
	ctx := context.Background()

	st, want, err := c.Client().Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerIndex(t, st.ID)

	c.Kill(owner)
	if got := c.WaitHealthy(2, 5*time.Second); got != 2 {
		t.Fatalf("router still sees %d healthy backends after the kill", got)
	}
	if err := c.Restart(owner); err != nil {
		t.Fatal(err)
	}
	if got := c.WaitHealthy(3, 5*time.Second); got != 3 {
		t.Fatalf("restarted backend never readmitted: %d/3 healthy", got)
	}

	st2, got, err := c.Client().Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if reOwner := ownerIndex(t, st2.ID); reOwner != owner {
		t.Fatalf("resubmission routed to b%d, want the restarted owner b%d (static ring)", reOwner, owner)
	}
	if !st2.Cached {
		t.Errorf("restarted owner did not answer from its store: %+v", st2)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("disk-served result diverges from the original")
	}
	svc := c.Backends[owner].Service.Stats()
	if svc.Executed != 0 {
		t.Errorf("restarted owner executed %d job(s), want 0 (disk store should answer)", svc.Executed)
	}
	if svc.StoreDiskHits == 0 {
		t.Errorf("restarted owner served without a disk hit: %+v", svc)
	}
}

// TestClusterReadRepairRefillsColdOwner: a backend restarted *without* a
// results dir comes back cold, but the submit path must read-repair it
// from a replica before forwarding — the cold owner answers from its
// refilled store instead of recomputing, and the router counts the repair.
func TestClusterReadRepairRefillsColdOwner(t *testing.T) {
	c := startCluster(t, 3, cluster.Options{})
	ctx := context.Background()

	st, want, err := c.Client().Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerIndex(t, st.ID)
	if waitReplica(c, owner, st.Key, 10*time.Second) < 0 {
		t.Fatalf("result %s never replicated off its owner b%d", st.Key, owner)
	}

	c.Kill(owner)
	if got := c.WaitHealthy(2, 5*time.Second); got != 2 {
		t.Fatalf("router still sees %d healthy backends after the kill", got)
	}
	if err := c.Restart(owner); err != nil {
		t.Fatal(err)
	}
	if got := c.WaitHealthy(3, 5*time.Second); got != 3 {
		t.Fatalf("restarted backend never readmitted: %d/3 healthy", got)
	}
	before := executedFleetWide(c, -1)

	st2, err := c.Client().Submit(ctx, testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if reOwner := ownerIndex(t, st2.ID); reOwner != owner {
		t.Fatalf("resubmission routed to b%d, want the restarted owner b%d", reOwner, owner)
	}
	if !st2.Cached {
		t.Errorf("cold owner was not read-repaired before the submit: %+v", st2)
	}
	got, err := c.Client().Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read-repaired result diverges from the original")
	}
	if after := executedFleetWide(c, -1); after != before {
		t.Errorf("read-repaired resubmission executed %d new job(s), want 0", after-before)
	}

	rs := c.Router.Stats(ctx)
	if rs.ReadRepairs != 1 {
		t.Errorf("read repairs = %d, want 1", rs.ReadRepairs)
	}
	if rs.RepairMisses == 0 {
		t.Errorf("the first (genuinely new) submission did not count a repair miss: %+v", rs)
	}
	ownerSvc := c.Backends[owner].Service.Stats()
	if ownerSvc.StorePuts == 0 {
		t.Errorf("repair wrote nothing into the cold owner's store: %+v", ownerSvc)
	}
	if ownerSvc.Executed != 0 {
		t.Errorf("cold owner executed %d job(s) after repair, want 0", ownerSvc.Executed)
	}
}
