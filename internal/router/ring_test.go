package router

import (
	"fmt"
	"testing"
)

// testAddrs fabricates n distinct backend addresses.
func testAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return addrs
}

// TestRingWalkCoversAllBackends: every key's walk order is a permutation of
// all backends — the retry-with-rehash loop can always reach every node.
func TestRingWalkCoversAllBackends(t *testing.T) {
	r := newRing(testAddrs(5), 64)
	for i := 0; i < 100; i++ {
		order := r.walk(fmt.Sprintf("key-%d", i))
		if len(order) != 5 {
			t.Fatalf("walk(key-%d) covered %d backends, want 5", i, len(order))
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("walk(key-%d) not a permutation: %v", i, order)
			}
			seen[idx] = true
		}
	}
}

// TestRingStability: the same key always walks the same order, and the
// owner assignment is independent of lookup history.
func TestRingStability(t *testing.T) {
	a, b := newRing(testAddrs(4), 64), newRing(testAddrs(4), 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("job-%d", i)
		wa, wb := a.walk(key), b.walk(key)
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("walk(%q) differs between identical rings: %v vs %v", key, wa, wb)
			}
		}
	}
}

// TestRingReorderPreservesOwnership is the regression test for the
// positional-vnode bug: virtual nodes are hashed by backend address, so
// reordering the -backends list (a cosmetic config edit) must keep every
// key's walk order pointing at the same *addresses* — a positionally
// hashed ring remaps essentially every key and silently destroys the
// fleet's cache locality on restart.
func TestRingReorderPreservesOwnership(t *testing.T) {
	addrs := testAddrs(5)
	reordered := []string{addrs[3], addrs[0], addrs[4], addrs[2], addrs[1]}
	a, b := newRing(addrs, 64), newRing(reordered, 64)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("job-%d", i)
		wa, wb := a.walk(key), b.walk(key)
		if len(wa) != len(wb) {
			t.Fatalf("walk(%q) lengths differ: %d vs %d", key, len(wa), len(wb))
		}
		for j := range wa {
			if addrs[wa[j]] != reordered[wb[j]] {
				t.Fatalf("walk(%q)[%d]: original ring serves %s, reordered ring %s",
					key, j, addrs[wa[j]], reordered[wb[j]])
			}
		}
	}
}

// TestRingMembershipEditMovesOnlyLostKeys: removing one backend must remap
// only the keys it owned — every key owned by a surviving address keeps
// its owner. (Positional hashing shifted every index after the removed one
// and remapped their whole territories.)
func TestRingMembershipEditMovesOnlyLostKeys(t *testing.T) {
	addrs := testAddrs(5)
	shrunk := append(append([]string{}, addrs[:2]...), addrs[3:]...) // drop addrs[2]
	a, b := newRing(addrs, 64), newRing(shrunk, 64)
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("job-%d", i)
		ownerA := addrs[a.walk(key)[0]]
		ownerB := shrunk[b.walk(key)[0]]
		if ownerA == addrs[2] {
			moved++
			continue // its owner left; any new owner is correct
		}
		if ownerA != ownerB {
			t.Fatalf("walk(%q): owner moved %s -> %s though %s survived", key, ownerA, ownerB, ownerA)
		}
	}
	if moved == 0 || moved == keys {
		t.Fatalf("dropped backend owned %d/%d keys; expected a ~1/5 share", moved, keys)
	}
}

// TestRingDistribution: with enough virtual nodes no backend owns a wildly
// disproportionate key share (each of 3 backends gets >=15% of 3000 keys;
// a broken ring typically sends ~everything to one node).
func TestRingDistribution(t *testing.T) {
	const backends, keys = 3, 3000
	r := newRing(testAddrs(backends), 64)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.walk(fmt.Sprintf("%024x", i*7919))[0]]++
	}
	for idx, n := range counts {
		if n < keys*15/100 {
			t.Errorf("backend %d owns only %d/%d keys: %v", idx, n, keys, counts)
		}
	}
}

// TestRingSingleBackend: a one-node ring still resolves every key.
func TestRingSingleBackend(t *testing.T) {
	r := newRing(testAddrs(1), 8)
	if got := r.walk("anything"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("walk on single-backend ring: %v", got)
	}
}

// BenchmarkRingWalk pins the submit-path lookup cost (the seen-set is a
// flat slice, not a per-call map).
func BenchmarkRingWalk(b *testing.B) {
	r := newRing(testAddrs(8), 64)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("%024x", i*7919)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.walk(keys[i%len(keys)])
	}
}

// walkAddrs resolves a ring walk to address order for delta comparisons
// (indexes are positional and shift between member lists; addresses are
// the stable ring identity).
func walkAddrs(r *ring, addrs []string, key string) []string {
	idxs := r.walk(key)
	out := make([]string, len(idxs))
	for i, idx := range idxs {
		out[i] = addrs[idx]
	}
	return out
}

// TestRingMembershipDeltaProperty is the property live membership relies
// on: joining or leaving one backend must perturb each key's walk order
// only by inserting or deleting that backend — every surviving backend
// keeps its relative preference position. Filtering the changed address
// out of the larger ring's walk must therefore reproduce the smaller
// ring's walk exactly, for every key. This is strictly stronger than
// "owners rarely move": it pins the full fallback and replica-placement
// order, which is what join warm-up, graceful-leave drain, and read-repair
// all walk.
func TestRingMembershipDeltaProperty(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		grown := testAddrs(n + 1)
		base := grown[:n]  // the ring before the join / after the leave
		joined := grown[n] // the backend that joins (or, read backward, leaves)
		small := newRing(base, 64)
		big := newRing(grown, 64)
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("%024x", i*7919+n)
			wantOrder := walkAddrs(small, base, key)
			gotOrder := walkAddrs(big, grown, key)
			filtered := gotOrder[:0:0]
			for _, addr := range gotOrder {
				if addr != joined {
					filtered = append(filtered, addr)
				}
			}
			if len(filtered) != len(wantOrder) {
				t.Fatalf("n=%d walk(%q): filtered %d backends, want %d", n, key, len(filtered), len(wantOrder))
			}
			for j := range filtered {
				if filtered[j] != wantOrder[j] {
					t.Fatalf("n=%d walk(%q): surviving backend order changed at position %d: %v (minus %s) vs %v",
						n, key, j, gotOrder, joined, wantOrder)
				}
			}
		}
	}
}
