package router

import (
	"fmt"
	"testing"
)

// TestRingWalkCoversAllBackends: every key's walk order is a permutation of
// all backends — the retry-with-rehash loop can always reach every node.
func TestRingWalkCoversAllBackends(t *testing.T) {
	r := newRing(5, 64)
	for i := 0; i < 100; i++ {
		order := r.walk(fmt.Sprintf("key-%d", i))
		if len(order) != 5 {
			t.Fatalf("walk(key-%d) covered %d backends, want 5", i, len(order))
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("walk(key-%d) not a permutation: %v", i, order)
			}
			seen[idx] = true
		}
	}
}

// TestRingStability: the same key always walks the same order, and the
// owner assignment is independent of lookup history.
func TestRingStability(t *testing.T) {
	a, b := newRing(4, 64), newRing(4, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("job-%d", i)
		wa, wb := a.walk(key), b.walk(key)
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("walk(%q) differs between identical rings: %v vs %v", key, wa, wb)
			}
		}
	}
}

// TestRingDistribution: with enough virtual nodes no backend owns a wildly
// disproportionate key share (each of 3 backends gets >=15% of 3000 keys;
// a broken ring typically sends ~everything to one node).
func TestRingDistribution(t *testing.T) {
	const backends, keys = 3, 3000
	r := newRing(backends, 64)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.walk(fmt.Sprintf("%024x", i*7919))[0]]++
	}
	for idx, n := range counts {
		if n < keys*15/100 {
			t.Errorf("backend %d owns only %d/%d keys: %v", idx, n, keys, counts)
		}
	}
}

// TestRingSingleBackend: a one-node ring still resolves every key.
func TestRingSingleBackend(t *testing.T) {
	r := newRing(1, 8)
	if got := r.walk("anything"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("walk on single-backend ring: %v", got)
	}
}
