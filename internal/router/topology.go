package router

// topology is one immutable snapshot of ring membership: the backend set,
// the consistent-hash ring built over exactly those backends, and the
// replication factor that set can actually sustain. The router publishes
// the current snapshot through an atomic pointer and every lookup site —
// submit routing, read-repair, replication fan-out, stats, the health loop
// — loads it once and works against that one consistent view, so a
// membership change never tears a request between two rings. Mutation is
// copy-on-write under Router.memberMu: build the next snapshot, hand off
// the key ranges that move, then publish.
type topology struct {
	// version increases by one per membership change; it is exposed in
	// /v1/stats so operators (and the CI failure artifacts) can correlate
	// routing behavior with the topology it was decided under.
	version uint64
	// backends are the ring members; ring.walk indexes into this slice.
	backends []*backend
	ring     *ring
	// replicas is the replication factor this membership can sustain:
	// min(configured Replicas, len(backends)). It is a property of the
	// snapshot, not of the startup config — a fleet that shrinks below the
	// configured factor degrades to the copies it can hold instead of
	// counting unreachable successors as replication errors, and recovers
	// the full factor when members rejoin.
	replicas int
}

// newTopology builds a snapshot over backends. vnodes and the configured
// replication factor come from the router config; the effective factor is
// clamped to the member count here, at snapshot build, never at startup.
func newTopology(version uint64, backends []*backend, vnodes, replicas int) *topology {
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.base
	}
	if replicas > len(backends) {
		replicas = len(backends)
	}
	if replicas < 1 {
		replicas = 1
	}
	return &topology{
		version:  version,
		backends: backends,
		ring:     newRing(addrs, vnodes),
		replicas: replicas,
	}
}

// byName resolves a backend name ("b2") within this snapshot; nil if the
// name is not (or no longer) a member.
func (t *topology) byName(name string) *backend {
	for _, b := range t.backends {
		if b.name == name {
			return b
		}
	}
	return nil
}

// byAddr resolves a backend by its normalized base URL; nil if absent.
func (t *topology) byAddr(addr string) *backend {
	for _, b := range t.backends {
		if b.base == addr {
			return b
		}
	}
	return nil
}

// walk returns the backends that would serve key in preference order —
// the ring walk mapped onto this snapshot's member set.
func (t *topology) walk(key string) []*backend {
	order := t.ring.walk(key)
	out := make([]*backend, len(order))
	for i, idx := range order {
		out[i] = t.backends[idx]
	}
	return out
}

// candidates returns the backends to try for key: healthy members in walk
// order, then — only if none are healthy — every member in walk order, so
// a fleet-wide outage still makes one optimistic pass instead of failing
// without trying.
func (t *topology) candidates(key string) []*backend {
	order := t.walk(key)
	healthy := order[:0:0]
	for _, b := range order {
		if b.isHealthy() {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	return order
}

// successors returns up to replicas-1 healthy backends after owner in the
// key's walk order — the nodes a rehash would land on, which is exactly
// why they hold the replicas.
func (t *topology) successors(key string, owner *backend) []*backend {
	var out []*backend
	for _, b := range t.walk(key) {
		if b == owner || !b.isHealthy() {
			continue
		}
		out = append(out, b)
		if len(out) >= t.replicas-1 {
			break
		}
	}
	return out
}

// healthyCount reports the live member count in this snapshot.
func (t *topology) healthyCount() int {
	n := 0
	for _, b := range t.backends {
		if b.isHealthy() {
			n++
		}
	}
	return n
}
