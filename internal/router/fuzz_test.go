package router

// Native fuzz target for the router's request-decoding edge: arbitrary
// submit bodies must either be rejected with an error or key and route
// deterministically — never panic, never produce an empty or unstable
// routing key. CI runs this in its fuzz smoke step with the corpus cached
// between runs.

import (
	"testing"
	"unicode/utf8"
)

func FuzzSubmitDecode(f *testing.F) {
	f.Add([]byte(`{"sweep":[{"Workload":"spmv","Cores":4,"Scale":0.05,"System":"imp"}]}`))
	f.Add([]byte(`{"sweep":[{"Workload":"pagerank"},{"Workload":"spmv","OutOfOrder":true,"Seed":7}]}`))
	f.Add([]byte(`{"experiment":"fig2","cores":4,"scale":0.05,"workloads":["spmv","pagerank"]}`))
	f.Add([]byte(`{"experiment":"table3","parallelism":8,"timeout_sec":30}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"sweep":[]}`))
	f.Add([]byte(`{"sweep":[{"Workload":""}]}`))
	f.Add([]byte(`{"experiment":"fig2","sweep":[{"Workload":"spmv"}]}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"timeout_sec":-1,"experiment":"x"}`))

	ring := newRing(testAddrs(3), 64)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, key, err := DecodeSpec(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if key == "" {
			t.Fatalf("accepted spec %q produced an empty routing key", data)
		}
		_, key2, err2 := DecodeSpec(data)
		if err2 != nil || key2 != key {
			t.Fatalf("keying not deterministic for %q: %q/%v vs %q", data, key, err, key2)
		}
		order := ring.walk(key)
		if len(order) != 3 {
			t.Fatalf("key %q walked %d backends, want 3", key, len(order))
		}
		if !utf8.ValidString(key) {
			t.Fatalf("key %q is not valid UTF-8", key)
		}
	})
}
