package router

// Live ring membership. The ring is no longer fixed at startup: operators
// join a freshly started impserve with POST /v1/backends and retire one
// with DELETE /v1/backends/{name}, and the router rebuilds its topology
// snapshot copy-on-write — build the next ring, move the key ranges that
// change hands, then publish atomically. Because results are
// content-addressed (identical bytes wherever they live), "moving a key
// range" is a plain bulk copy over the existing PUT/GET /v1/results/{key}
// protocol, with no consensus round and no version reconciliation:
//
//   - Join: before the new member enters the lookup path, every stored key
//     whose new walk order places it on the joiner is copied in, so the
//     first submission it owns is answered from its warmed store instead
//     of recomputed. The copy is best-effort — a miss degrades to
//     submit-time read-repair (the old owner is still next in walk order).
//   - Graceful leave: the departing member's inventory is copied to each
//     key's new owners first; if the member cannot even be enumerated the
//     leave fails and the operator escalates to force.
//   - Forced leave (?force=true): the member is dropped immediately —
//     correct for a crashed or unreachable node — and its keys survive
//     only as the replicas already fanned out, plus recomputation.
//
// Membership changes are serialized under memberMu; request traffic never
// blocks on them (every lookup site reads the snapshot lock-free).

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/impsim/imp/api"
)

var (
	errAlreadyMember  = errors.New("router: backend already a ring member")
	errUnknownBackend = errors.New("router: no such backend")
	errLastBackend    = errors.New("router: refusing to remove the last backend")
	// errPrejoinProbe marks a join rejected because the candidate did not
	// answer /healthz — admitting it would add a black hole to the ring.
	errPrejoinProbe = errors.New("router: pre-join health check failed")
)

// Members lists the current ring membership.
func (rt *Router) Members() []api.BackendInfo {
	topo := rt.topo.Load()
	out := make([]api.BackendInfo, len(topo.backends))
	for i, b := range topo.backends {
		out[i] = api.BackendInfo{Name: b.name, URL: b.base, Healthy: b.isHealthy()}
	}
	return out
}

// AddBackend joins one impserve to the ring: verify it answers /healthz,
// warm it with the key ranges the new ring assigns it, then publish the
// topology that routes to it. The joiner serves no traffic until the final
// publish, so a half-warmed member is never consulted.
func (rt *Router) AddBackend(ctx context.Context, base string) (api.MembershipChange, error) {
	addr, err := normalizeBackendURL(base)
	if err != nil {
		return api.MembershipChange{}, fmt.Errorf("router: %w", err)
	}
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()
	cur := rt.topo.Load()
	if cur.byAddr(addr) != nil {
		return api.MembershipChange{}, fmt.Errorf("%w: %q", errAlreadyMember, addr)
	}
	if err := rt.checkHealthz(ctx, addr); err != nil {
		return api.MembershipChange{}, fmt.Errorf("%w: %q: %v", errPrejoinProbe, addr, err)
	}
	nb := rt.newBackend(addr)
	members := append(append([]*backend(nil), cur.backends...), nb)
	next := newTopology(cur.version+1, members, rt.cfg.Vnodes, rt.cfg.Replicas)
	moved := rt.handoffJoin(ctx, cur, next, nb)
	rt.topo.Store(next)
	rt.joins.Add(1)
	rt.handoffKeys.Add(uint64(moved))
	// Every confirmed-replicated verdict was reached under the old walk
	// order; successors may differ now, so re-verify on next submission.
	rt.invalidateConfirmed()
	return api.MembershipChange{
		Backend:         api.BackendInfo{Name: nb.name, URL: nb.base, Healthy: true},
		KeysMoved:       moved,
		Backends:        len(next.backends),
		TopologyVersion: next.version,
	}, nil
}

// RemoveBackend retires one ring member by name. A graceful leave (force
// false) first drains the member's stored results to their new owners and
// fails if the member cannot be enumerated; force drops it immediately and
// leaves recovery to the replicas and read-repair.
func (rt *Router) RemoveBackend(ctx context.Context, name string, force bool) (api.MembershipChange, error) {
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()
	cur := rt.topo.Load()
	departing := cur.byName(name)
	if departing == nil {
		return api.MembershipChange{}, fmt.Errorf("%w: %q", errUnknownBackend, name)
	}
	if len(cur.backends) == 1 {
		return api.MembershipChange{}, fmt.Errorf("%w (%q)", errLastBackend, name)
	}
	members := make([]*backend, 0, len(cur.backends)-1)
	for _, b := range cur.backends {
		if b != departing {
			members = append(members, b)
		}
	}
	next := newTopology(cur.version+1, members, rt.cfg.Vnodes, rt.cfg.Replicas)
	moved := 0
	if !force {
		var err error
		moved, err = rt.handoffLeave(ctx, next, departing)
		if err != nil {
			return api.MembershipChange{}, fmt.Errorf("router: graceful leave of %s: %w (retry with ?force=true to drop it without hand-off)", name, err)
		}
	}
	rt.topo.Store(next)
	rt.leaves.Add(1)
	rt.handoffKeys.Add(uint64(moved))
	rt.invalidateConfirmed()
	return api.MembershipChange{
		Backend:         api.BackendInfo{Name: departing.name, URL: departing.base, Healthy: departing.isHealthy()},
		KeysMoved:       moved,
		Backends:        len(next.backends),
		TopologyVersion: next.version,
	}, nil
}

// checkHealthz is the synchronous pre-join probe: one GET /healthz bounded
// by the health timeout, requiring 200.
func (rt *Router) checkHealthz(ctx context.Context, base string) error {
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// storeKeys fetches b's stored-result inventory (GET /v1/results).
func (rt *Router) storeKeys(ctx context.Context, b *backend) ([]string, error) {
	sctx, cancel := context.WithTimeout(ctx, rt.storeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, b.base+"/v1/results", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("store keys %s: %s", b.name, resp.Status)
	}
	var keys []string
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&keys); err != nil {
		return nil, fmt.Errorf("store keys %s: %w", b.name, err)
	}
	return keys, nil
}

// handoffJoin warms joiner with every key the next topology places on it
// (owner or replica slot within the effective factor), copied from any
// current holder — content addressing makes every holder's bytes
// canonical, so "any" is safe. Returns the number of copies written.
// Best-effort throughout: an unreachable holder or failed copy costs a
// read-repair later, never the join.
func (rt *Router) handoffJoin(ctx context.Context, cur, next *topology, joiner *backend) int {
	// One holder per key is enough; later backends listing the same key do
	// not displace the first (identical bytes either way).
	holders := make(map[string]*backend)
	for _, b := range cur.backends {
		if !b.isHealthy() {
			continue
		}
		keys, err := rt.storeKeys(ctx, b)
		if err != nil {
			continue
		}
		for _, key := range keys {
			if _, ok := holders[key]; !ok {
				holders[key] = b
			}
		}
	}
	moved := 0
	for key, holder := range holders {
		if !walkPlaces(next, key, joiner) {
			continue
		}
		if ok, err := rt.storeHas(ctx, joiner, key); err == nil && ok {
			continue // a rejoining node may still hold its old disk store
		}
		data, ok, err := rt.storeGet(ctx, holder, key)
		if err != nil || !ok {
			continue
		}
		if err := rt.storePut(ctx, joiner, key, data); err != nil {
			continue
		}
		joiner.replicaPuts.Add(1)
		moved++
	}
	return moved
}

// handoffLeave drains departing's stored results to each key's owners in
// the next topology. Enumeration failure fails the (graceful) leave;
// individual copies are best-effort — a key that cannot be placed anywhere
// survives as whatever replicas already exist, or is recomputed.
func (rt *Router) handoffLeave(ctx context.Context, next *topology, departing *backend) (int, error) {
	keys, err := rt.storeKeys(ctx, departing)
	if err != nil {
		return 0, err
	}
	moved := 0
	for _, key := range keys {
		order := next.walk(key)
		n := next.replicas
		if n > len(order) {
			n = len(order)
		}
		// The result bytes are fetched lazily, once per key, and only if
		// some new owner actually lacks its copy.
		var data []byte
		for _, b := range order[:n] {
			if !b.isHealthy() {
				continue
			}
			if ok, err := rt.storeHas(ctx, b, key); err != nil || ok {
				continue
			}
			if data == nil {
				var ok bool
				var err error
				data, ok, err = rt.storeGet(ctx, departing, key)
				if err != nil || !ok {
					break // departing lost the key mid-drain; replicas cover it
				}
			}
			if err := rt.storePut(ctx, b, key, data); err != nil {
				continue
			}
			b.replicaPuts.Add(1)
			moved++
		}
	}
	return moved, nil
}

// walkPlaces reports whether t's walk order stores key on b — b is within
// the first effective-replica-count distinct backends for it.
func walkPlaces(t *topology, key string, b *backend) bool {
	order := t.walk(key)
	n := t.replicas
	if n > len(order) {
		n = len(order)
	}
	for _, cand := range order[:n] {
		if cand == b {
			return true
		}
	}
	return false
}

// requireAdmin gates the membership surface with Config.AdminToken: when a
// token is configured, requests must carry "Authorization: Bearer <token>"
// (compared constant-time). An empty token leaves the surface open for
// deployments whose router listener is already private.
func (rt *Router) requireAdmin(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := rt.cfg.AdminToken
		if token != "" {
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="improuter admin"`)
				writeError(w, http.StatusUnauthorized, errors.New("router: admin token required"))
				return
			}
		}
		next(w, r)
	}
}

func (rt *Router) handleBackendList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Members())
}

func (rt *Router) handleBackendJoin(w http.ResponseWriter, r *http.Request) {
	var req api.JoinBackendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding join request: %w", err))
		return
	}
	change, err := rt.AddBackend(r.Context(), req.URL)
	if err != nil {
		writeError(w, membershipStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, change)
}

func (rt *Router) handleBackendLeave(w http.ResponseWriter, r *http.Request) {
	force := r.URL.Query().Get("force")
	change, err := rt.RemoveBackend(r.Context(), r.PathValue("name"), force == "true" || force == "1")
	if err != nil {
		writeError(w, membershipStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, change)
}

// membershipStatus maps membership errors onto HTTP codes: conflicts with
// the current ring are 409, unknown names 404, unreachable backends (the
// pre-join probe or a failed graceful drain) 502, the rest bad requests.
func membershipStatus(err error) int {
	switch {
	case errors.Is(err, errAlreadyMember), errors.Is(err, errLastBackend):
		return http.StatusConflict
	case errors.Is(err, errUnknownBackend):
		return http.StatusNotFound
	case errors.Is(err, errPrejoinProbe):
		return http.StatusBadGateway
	case strings.Contains(err.Error(), "graceful leave"):
		return http.StatusBadGateway
	default:
		return http.StatusBadRequest
	}
}
