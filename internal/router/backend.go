package router

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
)

// backend is one impserve instance behind the router. Its name ("b0",
// "b1", ...) is the stable half of every composite job id the router hands
// out, so a status or cancel for that id can be routed statelessly.
type backend struct {
	name string
	base string // URL, no trailing slash
	gate imp.Gate

	mu        sync.Mutex
	healthy   bool
	lastErr   string
	lastProbe time.Time

	inflight    atomic.Int64
	submits     atomic.Uint64 // jobs this backend accepted
	proxied     atomic.Uint64 // non-submit requests proxied to it
	errors      atomic.Uint64 // transport-level failures talking to it
	evictions   atomic.Uint64 // healthy -> unhealthy transitions
	readmits    atomic.Uint64 // unhealthy -> healthy transitions
	replicaPuts atomic.Uint64 // replica copies written into its store
}

// isHealthy reports the backend's current ring membership.
func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// markDown evicts the backend from the ring with the failure that caused
// it; the health loop readmits it once /healthz answers again.
func (b *backend) markDown(err error) {
	b.errors.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = err.Error()
	if b.healthy {
		b.healthy = false
		b.evictions.Add(1)
	}
}

// markUp readmits the backend after a successful health probe.
func (b *backend) markUp() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.healthy {
		b.healthy = true
		b.lastErr = ""
		b.readmits.Add(1)
	}
}

// errSaturated reports a backend whose in-flight slots are all held (by
// long-lived event streams, typically). It is not a health signal — the
// backend is alive, just full — so callers rehash or answer 503 without
// evicting it from the ring.
var errSaturated = errors.New("router: backend at in-flight capacity")

// acquire takes one of the backend's bounded in-flight slots, waiting at
// most wait (<=0: as long as ctx allows); a full backend yields
// errSaturated rather than blocking a submit forever behind open streams.
// The returned release must be called exactly once when the proxied
// request — including a long-lived event stream — has fully finished.
func (b *backend) acquire(ctx context.Context, wait time.Duration) (release func(), err error) {
	actx := ctx
	if wait > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, wait)
		defer cancel()
	}
	if err := b.gate.Acquire(actx); err != nil {
		if ctx.Err() == nil {
			return nil, errSaturated // our wait expired, not the caller's
		}
		return nil, err
	}
	b.inflight.Add(1)
	return func() {
		b.inflight.Add(-1)
		b.gate.Release()
	}, nil
}

// probe is one active health check: GET /healthz with a short deadline.
// The attempt time is recorded up front, before the request is even built:
// "when did the router last *try* to probe this backend" is the operator
// question last_probe answers, and an early exit (bad URL, dead transport)
// must not leave the timestamp frozen at the last success.
func (b *backend) probe(ctx context.Context, hc *http.Client, timeout time.Duration) {
	b.mu.Lock()
	b.lastProbe = time.Now()
	b.mu.Unlock()
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		b.markDown(err)
		return
	}
	resp, err := hc.Do(req)
	if err != nil {
		b.markDown(err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.markDown(fmt.Errorf("healthz: %s", resp.Status))
		return
	}
	b.markUp()
}

// BackendStats is one backend's slice of the router's aggregated /v1/stats
// — the shared wire type (api.BackendStats).
type BackendStats = api.BackendStats

func (b *backend) stats() BackendStats {
	b.mu.Lock()
	healthy, lastErr, lastProbe := b.healthy, b.lastErr, b.lastProbe
	b.mu.Unlock()
	probed := ""
	if !lastProbe.IsZero() {
		probed = lastProbe.UTC().Format(time.RFC3339Nano)
	}
	return BackendStats{
		Name: b.name, URL: b.base,
		Healthy: healthy, LastErr: lastErr, LastProbe: probed,
		Submits: b.submits.Load(), Proxied: b.proxied.Load(),
		Errors: b.errors.Load(), Evicted: b.evictions.Load(), Readmits: b.readmits.Load(),
		InFlight: b.inflight.Load(), ReplicaPuts: b.replicaPuts.Load(),
	}
}
