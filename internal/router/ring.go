package router

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over backend indexes. Each backend owns
// vnodes virtual points; a key is served by the first point at or after
// its hash, walking clockwise. Each ring instance is immutable — health is
// a filter applied at lookup time, not a ring rebuild, so a backend that
// flaps in and out of health keeps exactly the same key ownership and the
// caches it warmed stay warm. Membership changes (join/leave) build a new
// ring inside a new topology snapshot rather than mutating this one.
//
// Virtual points are hashed by backend *address*, not list position:
// "http://host:8080#17" rather than "b3#17". Position-derived points would
// remap every key in the fleet whenever the -backends list is reordered or
// a node is inserted mid-list, silently destroying cache locality on a
// purely cosmetic config edit; address-derived points pin each backend's
// ring territory to the backend itself, so a reordered list preserves key
// ownership exactly and an added or removed node only moves the keys it
// gains or loses.
type ring struct {
	points []ringPoint
	n      int // backend count
}

type ringPoint struct {
	hash uint64
	idx  int
}

// hash64 maps s onto the ring's keyspace. sha256 (truncated) rather than a
// fast non-crypto hash: vnode placement quality matters more than lookup
// cost here, and submits are not a hot path.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing places vnodes virtual points per backend address. Addresses
// should be unique (router.New enforces it); ties between identical
// addresses break by index only to keep construction deterministic.
func newRing(backends []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{points: make([]ringPoint, 0, len(backends)*vnodes), n: len(backends)}
	for idx, addr := range backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", addr, v)), idx: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].idx < r.points[j].idx
	})
	return r
}

// walk returns the distinct backend indexes that would serve key, in
// preference order: the owner first, then each successive fallback met
// walking clockwise. The order is what retry-with-rehash iterates — trying
// candidates in walk order, skipping unhealthy or already-failed ones,
// reproduces "rehash excluding the failed node" without mutating the ring —
// and what replication fans along: the owner's result is copied to the
// next Replicas-1 distinct backends in exactly this order.
func (r *ring) walk(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, r.n)
	// A flat seen-slice instead of a map: walk runs on every submit (and
	// now also per read-repair probe), and a map allocation plus hashing
	// per lookup is measurable noise next to indexing a few bytes.
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(order) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			order = append(order, p.idx)
		}
	}
	return order
}
