package router

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over backend indexes. Each backend owns
// Replicas virtual points; a key is served by the first point at or after
// its hash, walking clockwise. Membership is static for the router's
// lifetime — health is a filter applied at lookup time, not a ring rebuild,
// so a backend that flaps in and out of health keeps exactly the same key
// ownership and the caches it warmed stay warm.
type ring struct {
	points []ringPoint
	n      int // backend count
}

type ringPoint struct {
	hash uint64
	idx  int
}

// hash64 maps s onto the ring's keyspace. sha256 (truncated) rather than a
// fast non-crypto hash: vnode placement quality matters more than lookup
// cost here, and submits are not a hot path.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

func newRing(n, replicas int) *ring {
	if replicas < 1 {
		replicas = 1
	}
	r := &ring{points: make([]ringPoint, 0, n*replicas), n: n}
	for idx := 0; idx < n; idx++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("b%d#%d", idx, v)), idx: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// walk returns the distinct backend indexes that would serve key, in
// preference order: the owner first, then each successive fallback met
// walking clockwise. The order is what retry-with-rehash iterates — trying
// candidates in walk order, skipping unhealthy or already-failed ones,
// reproduces "rehash excluding the failed node" without mutating the ring.
func (r *ring) walk(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, r.n)
	seen := make(map[int]bool, r.n)
	for i := 0; i < len(r.points) && len(order) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			order = append(order, p.idx)
		}
	}
	return order
}
