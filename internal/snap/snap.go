// Package snap is the varint-packed field codec shared by the simulator's
// component snapshots. It is the serialization half of checkpointing: each
// component (cache, pipeline, prefetcher, directory, ...) appends its state
// to a Writer and reads it back from a Reader in the same order. The
// containing envelope — magic, format version, CRC — is owned by
// internal/sim, mirroring the binary trace format's discipline
// (internal/trace/binary.go); this package only packs fields.
//
// The Reader is sticky-error: decode methods return zero values after the
// first failure, so restore code reads fields linearly and checks Err once.
// Snapshots are CRC-verified by the envelope before any Reader sees them, so
// a decode error here means truncation or a writer/reader order mismatch,
// not silent corruption.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends packed fields to a growing buffer.
type Writer struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer with the given initial capacity hint.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// Data returns the bytes written so far. The slice aliases the Writer's
// buffer; further writes may invalidate it.
func (w *Writer) Data() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends v as a uvarint.
func (w *Writer) U64(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

// I64 appends v as a zigzag varint.
func (w *Writer) I64(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

// Int appends v as a zigzag varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// U8 appends one raw byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends b as one byte (0 or 1).
func (w *Writer) Bool(b bool) {
	if b {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 appends v as its IEEE 754 bits, little-endian, fixed 8 bytes.
func (w *Writer) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.buf = append(w.buf, b[:]...)
}

// Bytes appends b length-prefixed.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader decodes fields from a buffer in write order.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

// U64 decodes a uvarint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// I64 decodes a zigzag varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Int decodes a zigzag varint as an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Count decodes an element count for a restore loop and sanity-checks it
// against the buffer: every element encodes to at least elemMin bytes, so a
// count exceeding Remaining()/elemMin cannot come from a well-formed
// snapshot. Restore code must size allocations and loop bounds from Count,
// never from a bare Int — a corrupt (or hostile, CRC-valid) snapshot may
// hold an arbitrary value where a count belongs, and failing here turns
// that into a decode error instead of a runaway allocation.
func (r *Reader) Count(elemMin int) int {
	v := r.I64()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v < 0 || v > int64(len(r.buf)-r.pos)/int64(elemMin) {
		r.fail("implausible element count %d at offset %d (%d bytes remain, >=%d per element)",
			v, r.pos, len(r.buf)-r.pos, elemMin)
		return 0
	}
	return int(v)
}

// U8 decodes one raw byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("truncated byte at offset %d", r.pos)
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

// Bool decodes one byte as a bool; any value other than 0 or 1 is an error
// (it means the read cursor has desynchronized from the write order).
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.fail("bad bool byte %d at offset %d", v, r.pos-1)
		return false
	}
	return v == 1
}

// F64 decodes 8 little-endian bytes as a float64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.pos < 8 {
		r.fail("truncated float64 at offset %d", r.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v
}

// Bytes decodes a length-prefixed byte slice. The result aliases the
// Reader's buffer.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail("byte slice of %d exceeds remaining %d at offset %d", n, len(r.buf)-r.pos, r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}
