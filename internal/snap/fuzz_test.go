package snap

import (
	"testing"
)

// FuzzSnapReader drives a Reader over arbitrary bytes with an input-derived
// schedule of decode calls. The contract under test is the one every
// Restore path in the tree leans on: a Reader over corrupt bytes must fail
// with a sticky error and zero values, never panic, and Count must never
// admit a count the remaining bytes cannot hold.
func FuzzSnapReader(f *testing.F) {
	// A well-formed stream covering every encoder, so mutations start from
	// deep inside the decode branches rather than the first length check.
	w := NewWriter(0)
	w.U64(1 << 40)
	w.I64(-5)
	w.Int(7)
	w.U8(0xAB)
	w.Bool(true)
	w.F64(3.5)
	w.Bytes([]byte("payload"))
	f.Add(append([]byte{0}, w.Data()...))
	f.Add([]byte{})
	f.Add([]byte{7, 0xFF}) // truncated varint
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sched, buf := data[0], data[1:]
		r := NewReader(buf)
		for i := 0; i < 64; i++ {
			before := r.Remaining()
			switch (int(sched) + i) % 8 {
			case 0:
				r.U64()
			case 1:
				r.I64()
			case 2:
				r.Int()
			case 3:
				r.U8()
			case 4:
				r.Bool()
			case 5:
				r.F64()
			case 6:
				b := r.Bytes()
				if r.Err() == nil && len(b) > before {
					t.Fatalf("Bytes returned %d bytes with only %d in the buffer", len(b), before)
				}
			case 7:
				n := r.Count(3)
				if r.Err() == nil && n > before/3 {
					t.Fatalf("Count(3) admitted %d with only %d bytes remaining", n, before)
				}
			}
			if r.Err() != nil {
				break
			}
		}
		if r.Err() == nil {
			return
		}
		// Sticky failure: every decoder must return its zero value from
		// here on, so restore loops wound down by Count cannot spin on
		// garbage.
		first := r.Err()
		if r.U64() != 0 || r.I64() != 0 || r.U8() != 0 || r.Bool() || r.F64() != 0 ||
			r.Bytes() != nil || r.Count(1) != 0 {
			t.Fatal("reads after a decode error returned non-zero values")
		}
		if r.Err() != first {
			t.Fatalf("sticky error changed after failure: %v -> %v", first, r.Err())
		}
	})
}
