//go:build ignore

// gen_fuzz_corpus regenerates the committed seed corpus for FuzzSnapReader
// (fuzz_test.go):
//
//	cd internal/snap && go run gen_fuzz_corpus.go
//
// The seeds pair a schedule byte (which decode calls run, see fuzz_test.go)
// with a stream exercising every encoder, plus truncations and bit flips so
// the fuzzer starts inside the error paths too.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/impsim/imp/internal/snap"
)

func main() {
	w := snap.NewWriter(0)
	w.U64(1 << 40)
	w.I64(-5)
	w.Int(7)
	w.U8(0xAB)
	w.Bool(true)
	w.F64(3.5)
	w.Bytes([]byte("payload"))
	valid := w.Data()

	seeds := map[string][]byte{
		"seed-valid":     append([]byte{0}, valid...),
		"seed-offset":    append([]byte{3}, valid...), // schedule out of phase with the stream
		"seed-empty":     nil,
		"seed-truncated": append([]byte{0}, valid[:len(valid)/2]...),
		"seed-bad-bool":  append([]byte{4}, 0x07),
		"seed-huge-len": append([]byte{6},
			0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F), // varint length far past the buffer
	}
	for i, off := range []int{0, len(valid) / 2, len(valid) - 1} {
		mut := append([]byte{0}, valid...)
		mut[1+off] ^= 0x80
		seeds[fmt.Sprintf("seed-flip-%d", i)] = mut
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzSnapReader")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d seeds for FuzzSnapReader\n", len(seeds))
}
