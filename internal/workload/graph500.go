package workload

import (
	"fmt"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// Graph500 (§5.3): level-synchronized BFS over an R-MAT power-law graph.
// Scanning the frontier yields indirect row-pointer reads (rowptr[F[i]] and
// rowptr[F[i]+1]: multi-way, coeff 8); scanning adjacency yields indirect
// visited-bit probes (coeff 1/8).
const (
	bfsPCFrontier trace.PC = 0x130 + iota
	bfsPCRowPtr
	bfsPCRowPtr2
	bfsPCCol
	bfsPCVisited
	bfsPCVisStore
	bfsPCNFStore
	bfsPCPref
)

func init() {
	register(&Workload{
		Name:        "graph500",
		Description: "Graph500 BFS on an R-MAT graph; indirect rowptr[F[i]] (coeff 8) and visited-bit probes (coeff 1/8)",
		Build:       buildGraph500,
	})
}

func buildGraph500(opt Options) (*trace.Program, error) {
	opt = opt.withDefaults()
	// The visited bitmap (n/8 bytes) must be large enough that concurrent
	// discovery stores from different cores rarely collide on a line, as at
	// Graph500 scale; a tiny bitmap would put the coherence storm, not the
	// indirection, in charge.
	n := opt.scaled(262144, 64*opt.Cores)
	const avgDeg = 10
	g := GenRMAT(n, avgDeg, opt.Seed)

	// Pick a root with non-trivial reach.
	root := 0
	for v := 0; v < n; v++ {
		if g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	levels := BFSLevels(g, root)
	if len(levels) < 2 {
		return nil, fmt.Errorf("graph500: degenerate BFS (%d levels)", len(levels))
	}

	s := mem.NewSpace()
	rowptr := s.AllocInt64("rowptr", n+1)
	copy(rowptr.Int64s(), g.RowPtr)
	col := s.AllocInt32("col", g.NNZ())
	copy(col.Int32s(), g.Col)
	visited := s.AllocBytes("visited", (n+7)/8)
	// Write-once frontier arenas, one region per BFS level, so the memory
	// image the prefetcher reads matches what the traced execution saw.
	frontier := make([]*mem.Region, len(levels))
	for l, f := range levels {
		frontier[l] = s.AllocInt32("frontier", len(f))
		copy(frontier[l].Int32s(), f)
	}

	seen := make([]bool, n)
	seen[root] = true
	traces := make([]*trace.Trace, opt.Cores)
	builders := make([]*trace.Builder, opt.Cores)
	for c := range builders {
		builders[c] = trace.NewBuilder()
	}
	// next[c] tracks each core's write cursor into the next frontier arena.
	for l := 0; l < len(levels); l++ {
		f := levels[l]
		var nextPos int
		for c := 0; c < opt.Cores; c++ {
			tb := builders[c]
			lo, hi := partition(len(f), opt.Cores, c)
			for i := lo; i < hi; i++ {
				u := int(f[i])
				tb.Load(bfsPCFrontier, frontier[l].Addr(i), 4, trace.KindStream)
				tb.LoadDep(bfsPCRowPtr, rowptr.Addr(u), 8, trace.KindIndirect)
				tb.LoadDep(bfsPCRowPtr2, rowptr.Addr(u+1), 8, trace.KindIndirect)
				tb.Compute(2)
				base := int(g.RowPtr[u])
				row := g.Row(u)
				for k, v := range row {
					tb.Load(bfsPCCol, col.Addr(base+k), 4, trace.KindStream)
					tb.LoadDep(bfsPCVisited, visited.Addr(int(v)>>3), 1, trace.KindIndirect)
					tb.Compute(4)
					if opt.SoftwarePrefetch && k+swDist(opt, len(row)) < len(row) {
						pv := row[k+swDist(opt, len(row))]
						tb.SWPrefetch(bfsPCPref, visited.Addr(int(pv)>>3), SWPrefetchOverhead)
					}
					if !seen[v] {
						seen[v] = true
						tb.Store(bfsPCVisStore, visited.Addr(int(v)>>3), 1, trace.KindIndirect)
						if l+1 < len(levels) {
							tb.Store(bfsPCNFStore, frontier[l+1].Addr(nextPos), 4, trace.KindOther)
							nextPos++
						}
						tb.Compute(6)
					}
				}
			}
			tb.Barrier()
		}
	}
	for c := range builders {
		traces[c] = builders[c].Trace()
	}
	return &trace.Program{Space: s, Traces: traces}, nil
}
