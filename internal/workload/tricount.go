package workload

import (
	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// Triangle counting (§5.3): intersect each vertex's neighbor list with its
// neighbors' neighbor lists over an acyclic directed graph. The local
// neighborhood is converted to a bit vector that is probed indirectly —
// the paper's coefficient-1/8 (shift −3) pattern — and each neighbor's row
// pointer is a second indirect pattern (coeff 8) on the same index stream.
const (
	tcPCColBuild trace.PC = 0x120 + iota
	tcPCBVSet
	tcPCNbr
	tcPCRowPtrU
	tcPCColInner
	tcPCBVTest
	tcPCBVClear
	tcPCClearLd
	tcPCPref
)

func init() {
	register(&Workload{
		Name:        "tri_count",
		Description: "Triangle counting on a DAG; bit-vector probes (coeff 1/8) and row-pointer lookups (coeff 8)",
		Build:       buildTriCount,
	})
}

func buildTriCount(opt Options) (*trace.Program, error) {
	opt = opt.withDefaults()
	// The bit vector (n/8 bytes) must exceed the 32 KB L1 for the paper's
	// premise to hold; a uniform-degree graph bounds the O(E·deg) probe
	// work that R-MAT hubs would square, and the outer loop samples every
	// sampleStride-th vertex (approximate counting) so the trace stays
	// tractable at full bit-vector scale.
	n := opt.scaled(196608, 64*opt.Cores)
	const avgDeg = 32
	const sampleStride = 32
	g := GenUniform(n, avgDeg, opt.Seed)

	s := mem.NewSpace()
	rowptr := s.AllocInt64("rowptr", n+1)
	copy(rowptr.Int64s(), g.RowPtr)
	col := s.AllocInt32("col", g.NNZ())
	copy(col.Int32s(), g.Col)
	// One private bit vector per core (threads keep their own scratch).
	bv := make([]*mem.Region, opt.Cores)
	for c := range bv {
		bv[c] = s.AllocBytes("bv", (n+7)/8)
	}

	traces := make([]*trace.Trace, opt.Cores)
	triangles := 0
	for c := 0; c < opt.Cores; c++ {
		tb := trace.NewBuilder()
		lo, hi := partition(n/sampleStride, opt.Cores, c)
		marks := bv[c].Bytes()
		for vi := lo; vi < hi; vi++ {
			v := vi * sampleStride
			row := g.Row(v)
			// Build the neighborhood bit vector.
			for e, w := range row {
				tb.Load(tcPCColBuild, col.Addr(int(g.RowPtr[v])+e), 4, trace.KindStream)
				tb.Store(tcPCBVSet, bv[c].Addr(int(w)>>3), 1, trace.KindIndirect)
				marks[int(w)>>3] |= 1 << (uint(w) & 7)
				tb.Compute(3)
			}
			// Intersect each neighbor's list with the bit vector.
			for e, u := range row {
				tb.Load(tcPCNbr, col.Addr(int(g.RowPtr[v])+e), 4, trace.KindStream)
				tb.LoadDep(tcPCRowPtrU, rowptr.Addr(int(u)), 8, trace.KindIndirect)
				uRow := g.Row(int(u))
				base := int(g.RowPtr[int(u)])
				for k, w := range uRow {
					tb.Load(tcPCColInner, col.Addr(base+k), 4, trace.KindStream)
					tb.LoadDep(tcPCBVTest, bv[c].Addr(int(w)>>3), 1, trace.KindIndirect)
					if marks[int(w)>>3]&(1<<(uint(w)&7)) != 0 {
						triangles++
					}
					tb.Compute(6)
					if opt.SoftwarePrefetch && k+swDist(opt, len(uRow)) < len(uRow) {
						pw := uRow[k+swDist(opt, len(uRow))]
						tb.SWPrefetch(tcPCPref, bv[c].Addr(int(pw)>>3), SWPrefetchOverhead)
					}
				}
			}
			// Clear the bit vector.
			for e, w := range row {
				tb.Load(tcPCClearLd, col.Addr(int(g.RowPtr[v])+e), 4, trace.KindStream)
				tb.Store(tcPCBVClear, bv[c].Addr(int(w)>>3), 1, trace.KindIndirect)
				marks[int(w)>>3] = 0
				tb.Compute(2)
			}
			tb.Compute(8)
		}
		traces[c] = tb.Trace()
	}
	_ = triangles
	return &trace.Program{Space: s, Traces: traces}, nil
}
