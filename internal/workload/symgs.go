package workload

import (
	"math/rand"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// SymGS (§5.3): the symmetric Gauss-Seidel smoother from HPCG — a forward
// then a backward triangular solve over the stencil matrix. Rows are
// processed in a block-colored order held in a permutation array ([33]'s
// row grouping for parallelism), so the row-pointer read rowptr[perm[i]] is
// a *multi-level* indirect pattern; the inner loop adds the x[col[k]]
// pattern. The backward sweep scans the permutation in reverse (descending
// stream). SymGS synchronizes with busy-wait barriers, which inflates its
// instruction count with runtime (Fig 10).
const (
	sgsPCPerm trace.PC = 0x170 + iota
	sgsPCRowPtr
	sgsPCRowPtr2
	sgsPCVal
	sgsPCCol
	sgsPCX
	sgsPCXStore
	sgsPCPref
)

func init() {
	register(&Workload{
		Name:        "symgs",
		Description: "HPCG SymGS: block-colored forward+backward sweeps; multi-level rowptr[perm[i]] and x[col[k]]",
		Build:       buildSymGS,
	})
}

func buildSymGS(opt Options) (*trace.Program, error) {
	opt = opt.withDefaults()
	g := hpcgMatrix(opt)
	n := g.N
	rng := rand.New(rand.NewSource(opt.Seed))

	// Block red-black coloring: even-indexed row blocks first, then odd.
	// Rows inside a color are independent enough to process in parallel;
	// colors separate with a barrier.
	const blockRows = 128
	var perm []int32
	var colorStart [3]int
	colorStart[0] = 0
	for parity := 0; parity < 2; parity++ {
		for b := parity; b*blockRows < n; b += 2 {
			lo := b * blockRows
			hi := lo + blockRows
			if hi > n {
				hi = n
			}
			for r := lo; r < hi; r++ {
				perm = append(perm, int32(r))
			}
		}
		colorStart[parity+1] = len(perm)
	}

	s := mem.NewSpace()
	rowptr := s.AllocInt64("rowptr", n+1)
	copy(rowptr.Int64s(), g.RowPtr)
	col := s.AllocInt32("col", g.NNZ())
	copy(col.Int32s(), g.Col)
	vals := s.AllocFloat64("vals", g.NNZ())
	for i := range vals.Float64s() {
		vals.Float64s()[i] = rng.Float64() + 0.1
	}
	permR := s.AllocInt32("perm", len(perm))
	copy(permR.Int32s(), perm)
	x := s.AllocFloat64("x", n)
	b := s.AllocFloat64("b", n)
	for i := 0; i < n; i++ {
		x.Float64s()[i] = 0
		b.Float64s()[i] = 1
	}

	traces := make([]*trace.Trace, opt.Cores)
	builders := make([]*trace.Builder, opt.Cores)
	for c := range builders {
		builders[c] = trace.NewBuilder()
	}

	// sweep emits one color's rows for every core; backward reverses the
	// scan direction over the permutation slice.
	sweep := func(from, to int, backward bool) {
		for c := 0; c < opt.Cores; c++ {
			tb := builders[c]
			lo, hi := partition(to-from, opt.Cores, c)
			lo, hi = from+lo, from+hi
			for i := 0; i < hi-lo; i++ {
				idx := lo + i
				if backward {
					idx = hi - 1 - i
				}
				row := int(perm[idx])
				tb.Load(sgsPCPerm, permR.Addr(idx), 4, trace.KindStream)
				tb.LoadDep(sgsPCRowPtr, rowptr.Addr(row), 8, trace.KindIndirect)
				tb.LoadDep(sgsPCRowPtr2, rowptr.Addr(row+1), 8, trace.KindIndirect)
				start, end := g.RowPtr[row], g.RowPtr[row+1]
				sum := b.Float64s()[row]
				var diag float64 = 1
				for e := start; e < end; e++ {
					j := int(g.Col[e])
					tb.Load(sgsPCVal, vals.Addr(int(e)), 8, trace.KindStream)
					tb.Load(sgsPCCol, col.Addr(int(e)), 4, trace.KindStream)
					tb.LoadDep(sgsPCX, x.Addr(j), 8, trace.KindIndirect)
					if j == row {
						diag = vals.Float64s()[e]
					} else {
						sum -= vals.Float64s()[e] * x.Float64s()[j]
					}
					tb.Compute(8)
					if opt.SoftwarePrefetch {
						pe := e + int64(swDist(opt, int(end-start)))
						if pe < end {
							tb.SWPrefetch(sgsPCPref, x.Addr(int(g.Col[pe])), SWPrefetchOverhead)
						}
					}
				}
				x.Float64s()[row] = sum / diag
				tb.Store(sgsPCXStore, x.Addr(row), 8, trace.KindIndirect)
				tb.Compute(24)
			}
			tb.Barrier()
		}
	}

	// Forward sweep: color 0 then color 1; backward sweep: reverse order.
	sweep(colorStart[0], colorStart[1], false)
	sweep(colorStart[1], colorStart[2], false)
	sweep(colorStart[1], colorStart[2], true)
	sweep(colorStart[0], colorStart[1], true)

	for c := range builders {
		traces[c] = builders[c].Trace()
	}
	return &trace.Program{Space: s, Traces: traces, SpinBarriers: true}, nil
}
