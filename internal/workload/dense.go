package workload

import (
	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// Dense is the control workload for the paper's §6.1 SPLASH-2 experiment:
// a blocked dense stencil with streaming and strided accesses but no
// indirection. IMP must neither trigger nor hurt here.
const (
	densePCLoadA trace.PC = 0x180 + iota
	densePCLoadB
	densePCStore
)

func init() {
	register(&Workload{
		Name:        "dense",
		Description: "dense streaming stencil (SPLASH-2 stand-in): no indirection; IMP must be harmless",
		Build:       buildDense,
	})
}

func buildDense(opt Options) (*trace.Program, error) {
	opt = opt.withDefaults()
	n := opt.scaled(1<<19, 64*opt.Cores) // elements
	s := mem.NewSpace()
	a := s.AllocFloat64("a", n)
	bArr := s.AllocFloat64("b", n)
	out := s.AllocFloat64("out", n)
	for i := 0; i < n; i++ {
		a.Float64s()[i] = float64(i)
		bArr.Float64s()[i] = float64(n - i)
	}

	traces := make([]*trace.Trace, opt.Cores)
	for c := 0; c < opt.Cores; c++ {
		tb := trace.NewBuilder()
		lo, hi := partition(n, opt.Cores, c)
		for i := lo; i < hi; i++ {
			tb.Load(densePCLoadA, a.Addr(i), 8, trace.KindStream)
			tb.Load(densePCLoadB, bArr.Addr(i), 8, trace.KindStream)
			out.Float64s()[i] = a.Float64s()[i]*0.5 + bArr.Float64s()[i]*0.5
			tb.Store(densePCStore, out.Addr(i), 8, trace.KindOther)
			tb.Compute(6)
		}
		tb.Barrier()
		traces[c] = tb.Trace()
	}
	return &trace.Program{Space: s, Traces: traces}, nil
}
