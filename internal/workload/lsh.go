package workload

import (
	"math/rand"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// LSH (§5.3): locality-sensitive hashing for nearest-neighbor search. The
// dominant filtering phase scans each query's candidate list (matching hash
// buckets concatenated) and computes distances to the full data points —
// indirect accesses over the entire dataset with the candidate list as the
// index array (precomputed element offsets, coeff 8).
const (
	lshPCCand trace.PC = 0x150 + iota
	lshPCPoint
	lshPCPointRest
	lshPCQuery
	lshPCPref
)

// lshDims is the data dimensionality (16 doubles = 128 B per point).
const lshDims = 16

func init() {
	register(&Workload{
		Name:        "lsh",
		Description: "LSH nearest-neighbor filtering; indirect dataset-row reads off candidate lists (coeff 8)",
		Build:       buildLSH,
	})
}

func buildLSH(opt Options) (*trace.Program, error) {
	opt = opt.withDefaults()
	points := opt.scaled(16384, 8*opt.Cores)
	queries := opt.scaled(1024, opt.Cores)
	const tables, candPerTable = 4, 24
	rng := rand.New(rand.NewSource(opt.Seed))

	s := mem.NewSpace()
	data := s.AllocFloat64("data", points*lshDims)
	for i := range data.Float64s() {
		data.Float64s()[i] = rng.Float64()
	}
	qdata := s.AllocFloat64("queries", queries*lshDims)
	for i := range qdata.Float64s() {
		qdata.Float64s()[i] = rng.Float64()
	}

	// Bucket lookups concatenate per-table candidate lists. The lists are
	// materialized in one write-once arena so the memory image matches the
	// traced execution. Candidates store precomputed row offsets.
	candStart := make([]int, queries+1)
	var cands []int32
	for q := 0; q < queries; q++ {
		candStart[q] = len(cands)
		for t := 0; t < tables; t++ {
			// Hash collisions cluster around a pseudo-random bucket center.
			center := rng.Intn(points)
			for j := 0; j < candPerTable; j++ {
				p := (center + j*j*31) % points
				cands = append(cands, int32(p*lshDims))
			}
		}
	}
	candStart[queries] = len(cands)
	candidates := s.AllocInt32("candidates", len(cands))
	copy(candidates.Int32s(), cands)

	const rowBytes = lshDims * 8
	traces := make([]*trace.Trace, opt.Cores)
	for c := 0; c < opt.Cores; c++ {
		tb := trace.NewBuilder()
		lo, hi := partition(queries, opt.Cores, c)
		for q := lo; q < hi; q++ {
			// Hash the query (compute) and read the query point.
			tb.Load(lshPCQuery, qdata.Addr(q*lshDims), 8, trace.KindOther)
			tb.Compute(20 * tables)
			start, end := candStart[q], candStart[q+1]
			for k := start; k < end; k++ {
				off := int(cands[k])
				tb.Load(lshPCCand, candidates.Addr(k), 4, trace.KindStream)
				rowLoads(tb, lshPCPoint, lshPCPointRest, data.Addr(off), rowBytes)
				// Distance computation then threshold compare.
				d := 0.0
				for f := 0; f < lshDims; f++ {
					diff := data.Float64s()[off+f] - qdata.Float64s()[q*lshDims+f]
					d += diff * diff
				}
				_ = d
				tb.Compute(2*lshDims + 8)
				if opt.SoftwarePrefetch && k+opt.SWDistance < end {
					tb.SWPrefetch(lshPCPref, data.Addr(int(cands[k+opt.SWDistance])), SWPrefetchOverhead)
				}
			}
		}
		traces[c] = tb.Trace()
	}
	return &trace.Program{Space: s, Traces: traces}, nil
}
