package workload

import (
	"math/rand"
	"sort"
)

// Graph is a CSR adjacency structure shared by the graph kernels and the
// sparse matrices (cols double as column indices).
type Graph struct {
	N      int
	RowPtr []int64 // length N+1
	Col    []int32 // length nnz
}

// NNZ returns the number of edges / non-zeros.
func (g *Graph) NNZ() int { return len(g.Col) }

// Degree returns the out-degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Row returns the adjacency slice of vertex v.
func (g *Graph) Row(v int) []int32 { return g.Col[g.RowPtr[v]:g.RowPtr[v+1]] }

// GenRMAT generates a power-law graph with n vertices and ~n*avgDeg edges
// using R-MAT recursive quadrant sampling (Graph500's generator family).
// Self-loops are kept (harmless for access-pattern purposes); duplicate
// edges are removed. Adjacency lists are sorted.
func GenRMAT(n, avgDeg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for 1<<levels < n {
		levels++
	}
	size := 1 << levels
	edges := n * avgDeg

	adj := make([][]int32, n)
	const a, b, c = 0.57, 0.19, 0.19 // d = 0.05
	for e := 0; e < edges; e++ {
		src, dst := 0, 0
		for bit := size / 2; bit >= 1; bit /= 2 {
			r := rng.Float64()
			switch {
			case r < a:
			case r < a+b:
				dst += bit
			case r < a+b+c:
				src += bit
			default:
				src += bit
				dst += bit
			}
		}
		if src >= n || dst >= n {
			continue
		}
		adj[src] = append(adj[src], int32(dst))
	}
	return fromAdj(adj)
}

// GenUniform generates a uniform random graph (each edge endpoint uniform).
func GenUniform(n, avgDeg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int32, n)
	for e := 0; e < n*avgDeg; e++ {
		src := rng.Intn(n)
		adj[src] = append(adj[src], int32(rng.Intn(n)))
	}
	return fromAdj(adj)
}

// GenDAG generates an acyclic directed power-law graph for triangle
// counting: each undirected edge is oriented from its lower-degree endpoint
// to its higher-degree one (ties by id). This is the standard arboricity
// orientation ([7] in the paper): out-degrees stay bounded even at hubs, so
// the intersection work is O(E^1.5) rather than quadratic in hub degree.
func GenDAG(n, avgDeg int, seed int64) *Graph {
	g := GenRMAT(n, avgDeg, seed)
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] += int32(g.Degree(v))
		for _, w := range g.Row(v) {
			deg[w]++
		}
	}
	less := func(a, b int32) bool {
		if deg[a] != deg[b] {
			return deg[a] < deg[b]
		}
		return a < b
	}
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Row(v) {
			if int(w) == v {
				continue
			}
			if less(int32(v), w) {
				adj[v] = append(adj[v], w)
			} else {
				adj[w] = append(adj[w], int32(v))
			}
		}
	}
	return fromAdj(adj)
}

// GenStencil27 builds the HPCG-style sparse matrix: a 27-point stencil on a
// k×k×k grid (n = k³ rows, up to 27 nnz per row), symmetric and banded.
func GenStencil27(k int) *Graph {
	n := k * k * k
	adj := make([][]int32, n)
	at := func(x, y, z int) int { return (z*k+y)*k + x }
	for z := 0; z < k; z++ {
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				row := at(x, y, z)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx, ny, nz := x+dx, y+dy, z+dz
							if nx < 0 || ny < 0 || nz < 0 || nx >= k || ny >= k || nz >= k {
								continue
							}
							adj[row] = append(adj[row], int32(at(nx, ny, nz)))
						}
					}
				}
			}
		}
	}
	return fromAdj(adj)
}

// GenBanded builds a banded sparse matrix: n rows, nnzPerRow nonzeros
// spread uniformly inside a band of `band` columns around the diagonal,
// plus the diagonal itself.
//
// This stands in for a *large* HPCG stencil grid: on a full-size 192³ grid
// the x-vector window touched by one row span (~2·192² elements) far
// exceeds a 32 KB L1, so x[col[k]] misses dominate. A literally
// scaled-down 27-point grid would have a window that fits in the L1 and
// invert that premise, so we scale the band, not the stencil.
func GenBanded(n, nnzPerRow, band int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int32, n)
	for r := 0; r < n; r++ {
		row := make([]int32, 0, nnzPerRow)
		row = append(row, int32(r)) // diagonal
		for k := 1; k < nnzPerRow; k++ {
			c := r + rng.Intn(2*band+1) - band
			if c < 0 {
				c = 0
			}
			if c >= n {
				c = n - 1
			}
			row = append(row, int32(c))
		}
		adj[r] = row
	}
	return fromAdj(adj)
}

func fromAdj(adj [][]int32) *Graph {
	n := len(adj)
	g := &Graph{N: n, RowPtr: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		row := adj[v]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		// Deduplicate.
		out := row[:0]
		var prev int32 = -1
		for _, w := range row {
			if w != prev {
				out = append(out, w)
				prev = w
			}
		}
		adj[v] = out
		g.RowPtr[v+1] = g.RowPtr[v] + int64(len(out))
	}
	g.Col = make([]int32, g.RowPtr[n])
	for v := 0; v < n; v++ {
		copy(g.Col[g.RowPtr[v]:], adj[v])
	}
	return g
}

// BFSLevels runs a breadth-first search from root and returns the frontier
// of each level (Graph500's reference kernel, executed for real so traces
// reflect the true traversal).
func BFSLevels(g *Graph, root int) [][]int32 {
	visited := make([]bool, g.N)
	visited[root] = true
	frontier := []int32{int32(root)}
	var levels [][]int32
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Row(int(u)) {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return levels
}

// Ratings is the SGD input: nr (user, item) pairs with ratings.
type Ratings struct {
	Users, Items int
	U, I         []int32
}

// GenRatings samples nr ratings over users×items with a power-law item
// popularity (a few hot items, like real recommender data).
func GenRatings(users, items, nr int, seed int64) *Ratings {
	rng := rand.New(rand.NewSource(seed))
	r := &Ratings{Users: users, Items: items, U: make([]int32, nr), I: make([]int32, nr)}
	for k := 0; k < nr; k++ {
		r.U[k] = int32(rng.Intn(users))
		// Quadratic skew for item popularity.
		f := rng.Float64()
		r.I[k] = int32(float64(items-1) * f * f)
	}
	return r
}
