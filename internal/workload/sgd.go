package workload

import (
	"sort"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// SGD collaborative filtering (§5.3): stochastic gradient descent on the
// matrix-factorization problem. For each rating (u, i) the kernel reads the
// user row U[u] and the item row V[i] (16 features each), computes the
// prediction error and writes both rows back. The index arrays store
// precomputed element offsets (u×F), as optimized sparse codes do, so the
// indirect coefficient stays 8 (shift 3).
const (
	sgdPCUOff trace.PC = 0x140 + iota
	sgdPCIOff
	sgdPCRating
	sgdPCURow
	sgdPCURowRest
	sgdPCVRow
	sgdPCVRowRest
	sgdPCUStore
	sgdPCUStoreRest
	sgdPCVStore
	sgdPCVStoreRest
	sgdPCPref
)

// sgdFeatures is the factorization rank (16 doubles = 128 B per row).
const sgdFeatures = 16

func init() {
	register(&Workload{
		Name:        "sgd",
		Description: "SGD matrix factorization; indirect user/item feature-row accesses (coeff 8 via precomputed offsets)",
		Build:       buildSGD,
	})
}

func buildSGD(opt Options) (*trace.Program, error) {
	opt = opt.withDefaults()
	users := opt.scaled(8192, 2*opt.Cores)
	items := opt.scaled(4096, 2*opt.Cores)
	nr := opt.scaled(65536, 8*opt.Cores)
	r := GenRatings(users, items, nr, opt.Seed)
	// Partition ratings by user (contiguous user ranges per core), as
	// parallel SGD implementations do: user rows stay core-private and only
	// item rows are write-shared.
	sort.Stable(byUser{r})

	s := mem.NewSpace()
	uoff := s.AllocInt32("uoff", nr)
	ioff := s.AllocInt32("ioff", nr)
	rating := s.AllocFloat64("rating", nr)
	u := s.AllocFloat64("U", users*sgdFeatures)
	v := s.AllocFloat64("V", items*sgdFeatures)
	for k := 0; k < nr; k++ {
		uoff.Int32s()[k] = r.U[k] * sgdFeatures
		ioff.Int32s()[k] = r.I[k] * sgdFeatures
		rating.Float64s()[k] = float64(k%5) + 1
	}
	for k := range u.Float64s() {
		u.Float64s()[k] = 0.1
	}
	for k := range v.Float64s() {
		v.Float64s()[k] = 0.1
	}

	const rowBytes = sgdFeatures * 8
	traces := make([]*trace.Trace, opt.Cores)
	for c := 0; c < opt.Cores; c++ {
		tb := trace.NewBuilder()
		lo, hi := partition(nr, opt.Cores, c)
		for k := lo; k < hi; k++ {
			uo, io := int(uoff.Int32s()[k]), int(ioff.Int32s()[k])
			tb.Load(sgdPCUOff, uoff.Addr(k), 4, trace.KindStream)
			tb.Load(sgdPCIOff, ioff.Addr(k), 4, trace.KindStream)
			tb.Load(sgdPCRating, rating.Addr(k), 8, trace.KindStream)
			if opt.SoftwarePrefetch && k+opt.SWDistance < hi {
				tb.SWPrefetch(sgdPCPref, u.Addr(int(uoff.Int32s()[k+opt.SWDistance])), SWPrefetchOverhead)
				tb.SWPrefetch(sgdPCPref, v.Addr(int(ioff.Int32s()[k+opt.SWDistance])), SWPrefetchOverhead)
			}
			rowLoads(tb, sgdPCURow, sgdPCURowRest, u.Addr(uo), rowBytes)
			rowLoads(tb, sgdPCVRow, sgdPCVRowRest, v.Addr(io), rowBytes)
			// Dot product + error (compute-heavy: SGD is the paper's
			// compute-bound case, §6.3.1).
			dot := 0.0
			for f := 0; f < sgdFeatures; f++ {
				dot += u.Float64s()[uo+f] * v.Float64s()[io+f]
			}
			err := rating.Float64s()[k] - dot
			tb.Compute(2*sgdFeatures + 8)
			// Update both rows (least-squares step).
			const lr, reg = 0.01, 0.05
			for f := 0; f < sgdFeatures; f++ {
				uf, vf := u.Float64s()[uo+f], v.Float64s()[io+f]
				u.Float64s()[uo+f] += lr * (err*vf - reg*uf)
				v.Float64s()[io+f] += lr * (err*uf - reg*vf)
			}
			rowStores(tb, sgdPCUStore, sgdPCUStoreRest, u.Addr(uo), rowBytes)
			rowStores(tb, sgdPCVStore, sgdPCVStoreRest, v.Addr(io), rowBytes)
			tb.Compute(4 * sgdFeatures)
		}
		tb.Barrier()
		traces[c] = tb.Trace()
	}
	return &trace.Program{Space: s, Traces: traces}, nil
}

// byUser sorts ratings by user id for core partitioning.
type byUser struct{ r *Ratings }

func (b byUser) Len() int { return len(b.r.U) }
func (b byUser) Swap(i, j int) {
	b.r.U[i], b.r.U[j] = b.r.U[j], b.r.U[i]
	b.r.I[i], b.r.I[j] = b.r.I[j], b.r.I[i]
}
func (b byUser) Less(i, j int) bool { return b.r.U[i] < b.r.U[j] }
