package workload

import (
	"testing"

	"github.com/impsim/imp/internal/trace"
)

var tinyOpt = Options{Cores: 4, Scale: 0.05}

func TestRegistryComplete(t *testing.T) {
	want := []string{"pagerank", "tri_count", "graph500", "sgd", "lsh", "spmv", "symgs", "dense"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if len(PaperSet()) != 7 {
		t.Errorf("PaperSet() = %v, want the 7 evaluation workloads", PaperSet())
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get accepted unknown workload")
	}
}

func TestAllWorkloadsBuildValidPrograms(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Build(name, tinyOpt)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			if p.Cores() != 4 {
				t.Errorf("cores = %d, want 4", p.Cores())
			}
			if p.TotalAccesses() == 0 {
				t.Error("no memory accesses traced")
			}
			// Work must be reasonably balanced across cores.
			var minA, maxA uint64 = 1 << 62, 0
			for _, tr := range p.Traces {
				a := tr.MemoryAccesses()
				if a < minA {
					minA = a
				}
				if a > maxA {
					maxA = a
				}
			}
			if minA == 0 {
				t.Error("a core traced zero accesses")
			}
		})
	}
}

func TestPaperWorkloadsHaveIndirectAccesses(t *testing.T) {
	for _, name := range PaperSet() {
		p, err := Build(name, tinyOpt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var ind, total uint64
		for _, tr := range p.Traces {
			kc := tr.KindCounts()
			ind += kc[trace.KindIndirect]
			total += tr.MemoryAccesses()
		}
		frac := float64(ind) / float64(total)
		if frac < 0.1 {
			t.Errorf("%s: indirect fraction = %.2f, want >= 0.1", name, frac)
		}
	}
}

func TestDenseHasNoIndirect(t *testing.T) {
	p, err := Build("dense", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range p.Traces {
		if n := tr.KindCounts()[trace.KindIndirect]; n != 0 {
			t.Errorf("dense traced %d indirect accesses", n)
		}
	}
}

func TestSoftwarePrefetchVariantAddsInstructions(t *testing.T) {
	for _, name := range PaperSet() {
		plain, err := Build(name, tinyOpt)
		if err != nil {
			t.Fatal(err)
		}
		swOpt := tinyOpt
		swOpt.SoftwarePrefetch = true
		sw, err := Build(name, swOpt)
		if err != nil {
			t.Fatal(err)
		}
		if sw.TotalInstructions() <= plain.TotalInstructions() {
			t.Errorf("%s: software prefetching did not add instructions (%d vs %d)",
				name, sw.TotalInstructions(), plain.TotalInstructions())
		}
		// Demand accesses must be identical: prefetches are non-binding.
		if sw.TotalAccesses() != plain.TotalAccesses() {
			t.Errorf("%s: SW prefetch changed demand accesses (%d vs %d)",
				name, sw.TotalAccesses(), plain.TotalAccesses())
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Build("pagerank", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("pagerank", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalAccesses() != b.TotalAccesses() || a.TotalInstructions() != b.TotalInstructions() {
		t.Error("generation is not deterministic")
	}
	for c := range a.Traces {
		if len(a.Traces[c].Records) != len(b.Traces[c].Records) {
			t.Fatalf("core %d record counts differ", c)
		}
	}
	// A different seed must change the input.
	seeded := tinyOpt
	seeded.Seed = 7
	d, err := Build("pagerank", seeded)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalAccesses() == a.TotalAccesses() && d.TotalInstructions() == a.TotalInstructions() {
		t.Log("seed change produced identical totals (possible but unlikely)")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	small, err := Build("spmv", Options{Cores: 4, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build("spmv", Options{Cores: 4, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if big.TotalAccesses() <= small.TotalAccesses() {
		t.Errorf("scale 0.2 (%d accesses) not larger than 0.05 (%d)",
			big.TotalAccesses(), small.TotalAccesses())
	}
}

func TestGenRMATPowerLaw(t *testing.T) {
	g := GenRMAT(4096, 8, 1)
	if g.N != 4096 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NNZ() < 4096 {
		t.Fatalf("too few edges: %d", g.NNZ())
	}
	// Power-law: the max degree should far exceed the average.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := g.NNZ() / g.N
	if maxDeg < 5*avg {
		t.Errorf("max degree %d vs avg %d: not heavy-tailed", maxDeg, avg)
	}
	// CSR invariants.
	if g.RowPtr[0] != 0 || int(g.RowPtr[g.N]) != g.NNZ() {
		t.Error("rowptr endpoints wrong")
	}
	for v := 0; v < g.N; v++ {
		if g.RowPtr[v] > g.RowPtr[v+1] {
			t.Fatalf("rowptr not monotone at %d", v)
		}
		row := g.Row(v)
		for i := 1; i < len(row); i++ {
			if row[i] <= row[i-1] {
				t.Fatalf("row %d not sorted/deduped", v)
			}
		}
	}
}

func TestGenDAGAcyclic(t *testing.T) {
	g := GenDAG(2048, 8, 2)
	// Kahn's algorithm must consume every vertex: the degree orientation is
	// a total order, so the graph is acyclic.
	indeg := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		for _, w := range g.Row(v) {
			if int(w) == v {
				t.Fatalf("self loop at %d", v)
			}
			indeg[w]++
		}
	}
	queue := make([]int, 0, g.N)
	for v := 0; v < g.N; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, w := range g.Row(v) {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, int(w))
			}
		}
	}
	if seen != g.N {
		t.Fatalf("cycle detected: only %d/%d vertices topologically sorted", seen, g.N)
	}
}

func TestGenStencil27Shape(t *testing.T) {
	k := 6
	g := GenStencil27(k)
	if g.N != k*k*k {
		t.Fatalf("N = %d, want %d", g.N, k*k*k)
	}
	// Interior rows have exactly 27 nonzeros; corners have 8.
	interior := (k/2)*k*k + (k/2)*k + k/2
	if d := g.Degree(interior); d != 27 {
		t.Errorf("interior degree = %d, want 27", d)
	}
	if d := g.Degree(0); d != 8 {
		t.Errorf("corner degree = %d, want 8", d)
	}
	// Every row touches the diagonal.
	for v := 0; v < g.N; v++ {
		found := false
		for _, w := range g.Row(v) {
			if int(w) == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("row %d missing diagonal", v)
		}
	}
}

func TestBFSLevelsCoverComponent(t *testing.T) {
	g := GenRMAT(2048, 16, 3)
	root := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	levels := BFSLevels(g, root)
	if len(levels) < 2 {
		t.Fatalf("only %d BFS levels", len(levels))
	}
	seen := make(map[int32]bool)
	for _, f := range levels {
		for _, v := range f {
			if seen[v] {
				t.Fatalf("vertex %d appears in two levels", v)
			}
			seen[v] = true
		}
	}
	if len(seen) < g.N/4 {
		t.Errorf("BFS reached only %d/%d vertices", len(seen), g.N)
	}
}

func TestGenRatingsBounds(t *testing.T) {
	r := GenRatings(100, 50, 1000, 9)
	for k := 0; k < 1000; k++ {
		if r.U[k] < 0 || int(r.U[k]) >= 100 || r.I[k] < 0 || int(r.I[k]) >= 50 {
			t.Fatalf("rating %d out of bounds: u=%d i=%d", k, r.U[k], r.I[k])
		}
	}
}

func TestPartitionCoversAll(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		for _, cores := range []int{1, 4, 16} {
			covered := 0
			prev := 0
			for c := 0; c < cores; c++ {
				lo, hi := partition(n, cores, c)
				if lo != prev {
					t.Fatalf("n=%d cores=%d: gap at core %d", n, cores, c)
				}
				covered += hi - lo
				prev = hi
			}
			if covered != n {
				t.Fatalf("n=%d cores=%d: covered %d", n, cores, covered)
			}
		}
	}
}

func TestGenBandedShape(t *testing.T) {
	g := GenBanded(4096, 16, 512, 5)
	if g.N != 4096 {
		t.Fatalf("N = %d", g.N)
	}
	for r := 0; r < g.N; r++ {
		hasDiag := false
		for _, c := range g.Row(r) {
			if int(c) == r {
				hasDiag = true
			}
			if int(c) < r-512 || int(c) > r+512 {
				t.Fatalf("row %d: col %d outside band", r, c)
			}
		}
		if !hasDiag {
			t.Fatalf("row %d missing diagonal", r)
		}
	}
	// Rows should average close to nnzPerRow (dedup loses a few).
	if avg := g.NNZ() / g.N; avg < 10 || avg > 16 {
		t.Errorf("avg nnz/row = %d, want ~16", avg)
	}
}

func TestBuild256CoresTiny(t *testing.T) {
	// Even at tiny scale every core must receive work on a 256-core mesh.
	p, err := Build("pagerank", Options{Cores: 256, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for c, tr := range p.Traces {
		if tr.MemoryAccesses() == 0 {
			t.Fatalf("core %d has no work", c)
		}
	}
}
