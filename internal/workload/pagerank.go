package workload

import (
	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// Pagerank (§5.3): iterative rank updates over a power-law web graph in
// CSR form. The inner loop reads each neighbor's rank and degree —
// two indirect patterns (multi-way) off the column-index stream.
const (
	prPCRowPtr trace.PC = 0x110 + iota
	prPCCol
	prPCRank
	prPCDeg
	prPCStore
	prPCPref
)

func init() {
	register(&Workload{
		Name:        "pagerank",
		Description: "PageRank over an R-MAT web graph; indirect rank[col[e]] and deg[col[e]] (multi-way, coeff 8)",
		Build:       buildPagerank,
	})
}

func buildPagerank(opt Options) (*trace.Program, error) {
	opt = opt.withDefaults()
	n := opt.scaled(16384, 4*opt.Cores)
	const avgDeg, iters = 8, 2
	g := GenRMAT(n, avgDeg, opt.Seed)

	s := mem.NewSpace()
	rowptr := s.AllocInt64("rowptr", n+1)
	copy(rowptr.Int64s(), g.RowPtr)
	col := s.AllocInt32("col", g.NNZ())
	copy(col.Int32s(), g.Col)
	deg := s.AllocFloat64("deg", n)
	rank := [2]*mem.Region{s.AllocFloat64("rank0", n), s.AllocFloat64("rank1", n)}
	for v := 0; v < n; v++ {
		deg.Float64s()[v] = float64(g.Degree(v))
		rank[0].Float64s()[v] = 1.0 / float64(n)
	}

	traces := make([]*trace.Trace, opt.Cores)
	for c := 0; c < opt.Cores; c++ {
		tb := trace.NewBuilder()
		lo, hi := partition(n, opt.Cores, c)
		for it := 0; it < iters; it++ {
			src, dst := rank[it%2], rank[(it+1)%2]
			for v := lo; v < hi; v++ {
				tb.Load(prPCRowPtr, rowptr.Addr(v), 8, trace.KindStream)
				start, end := g.RowPtr[v], g.RowPtr[v+1]
				sum := 0.0
				for e := start; e < end; e++ {
					u := int(g.Col[e])
					tb.Load(prPCCol, col.Addr(int(e)), 4, trace.KindStream)
					tb.LoadDep(prPCRank, src.Addr(u), 8, trace.KindIndirect)
					tb.LoadDep(prPCDeg, deg.Addr(u), 8, trace.KindIndirect)
					if d := deg.Float64s()[u]; d > 0 {
						sum += src.Float64s()[u] / d
					}
					tb.Compute(20)
					if opt.SoftwarePrefetch {
						pe := e + int64(swDist(opt, int(end-start)))
						if pe < end {
							pu := int(g.Col[pe])
							tb.SWPrefetch(prPCPref, src.Addr(pu), SWPrefetchOverhead)
							tb.SWPrefetch(prPCPref, deg.Addr(pu), SWPrefetchOverhead)
						}
					}
				}
				dst.Float64s()[v] = 0.15/float64(n) + 0.85*sum
				tb.Store(prPCStore, dst.Addr(v), 8, trace.KindOther)
				tb.Compute(24)
			}
			tb.Barrier()
		}
		traces[c] = tb.Trace()
	}
	return &trace.Program{Space: s, Traces: traces}, nil
}
