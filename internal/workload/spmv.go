package workload

import (
	"math/rand"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// SpMV (§5.3): sparse matrix-vector multiplication from HPCG, CSR matrix ×
// dense vector. Scanning values and column indices streams; x[col[k]] is
// the indirect pattern (coeff 8).
const (
	spmvPCRowPtr trace.PC = 0x160 + iota
	spmvPCVal
	spmvPCCol
	spmvPCX
	spmvPCY
	spmvPCPref
)

func init() {
	register(&Workload{
		Name:        "spmv",
		Description: "HPCG SpMV: banded CSR × dense vector; indirect x[col[k]] (coeff 8)",
		Build:       buildSpMV,
	})
}

// hpcgMatrix builds the banded stand-in for the HPCG stencil at this
// scale: the band is wide enough that the x window busts the L1, as the
// full-size grid does (see GenBanded).
func hpcgMatrix(opt Options) *Graph {
	n := opt.scaled(24576, 8*opt.Cores)
	const nnzPerRow, band = 16, 8192
	b := band
	if b > n/2 {
		b = n / 2
	}
	return GenBanded(n, nnzPerRow, b, opt.Seed)
}

func buildSpMV(opt Options) (*trace.Program, error) {
	opt = opt.withDefaults()
	g := hpcgMatrix(opt)
	n := g.N
	rng := rand.New(rand.NewSource(opt.Seed))

	s := mem.NewSpace()
	rowptr := s.AllocInt64("rowptr", n+1)
	copy(rowptr.Int64s(), g.RowPtr)
	col := s.AllocInt32("col", g.NNZ())
	copy(col.Int32s(), g.Col)
	vals := s.AllocFloat64("vals", g.NNZ())
	for i := range vals.Float64s() {
		vals.Float64s()[i] = rng.Float64()
	}
	x := s.AllocFloat64("x", n)
	y := s.AllocFloat64("y", n)
	for i := range x.Float64s() {
		x.Float64s()[i] = 1.0
	}

	traces := make([]*trace.Trace, opt.Cores)
	for c := 0; c < opt.Cores; c++ {
		tb := trace.NewBuilder()
		lo, hi := partition(n, opt.Cores, c)
		for row := lo; row < hi; row++ {
			tb.Load(spmvPCRowPtr, rowptr.Addr(row), 8, trace.KindStream)
			start, end := g.RowPtr[row], g.RowPtr[row+1]
			sum := 0.0
			for e := start; e < end; e++ {
				j := int(g.Col[e])
				tb.Load(spmvPCVal, vals.Addr(int(e)), 8, trace.KindStream)
				tb.Load(spmvPCCol, col.Addr(int(e)), 4, trace.KindStream)
				tb.LoadDep(spmvPCX, x.Addr(j), 8, trace.KindIndirect)
				sum += vals.Float64s()[e] * x.Float64s()[j]
				tb.Compute(8)
				if opt.SoftwarePrefetch {
					pe := e + int64(swDist(opt, int(end-start)))
					if pe < end {
						tb.SWPrefetch(spmvPCPref, x.Addr(int(g.Col[pe])), SWPrefetchOverhead)
					}
				}
			}
			y.Float64s()[row] = sum
			tb.Store(spmvPCY, y.Addr(row), 8, trace.KindOther)
			tb.Compute(6)
		}
		tb.Barrier()
		traces[c] = tb.Trace()
	}
	return &trace.Program{Space: s, Traces: traces}, nil
}
