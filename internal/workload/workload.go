// Package workload implements the seven applications of §5.3 (pagerank,
// triangle counting, Graph500 BFS, SGD collaborative filtering, LSH, SpMV,
// SymGS) plus a dense control kernel, as instrumented Go programs: each
// kernel really executes its algorithm on synthetic inputs while emitting
// per-core memory access traces for the timing simulator.
//
// Ground-truth access kinds (stream / indirect / other) annotate each
// access for the paper's Fig 1/Fig 2 breakdowns; the IMP hardware model
// never sees them.
package workload

import (
	"fmt"
	"sort"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// Options parameterize trace generation.
type Options struct {
	// Cores is the number of cores to trace for.
	Cores int
	// Scale multiplies the default input size (1.0 = benchmark size).
	Scale float64
	// SoftwarePrefetch inserts Mowry-style indirect prefetch instructions
	// (§5.4 Software Prefetching) with SWDistance lookahead.
	SoftwarePrefetch bool
	// SWDistance is the software prefetch distance in loop iterations.
	SWDistance int
	// Seed perturbs input generation; 0 uses the workload default.
	Seed int64
}

// GenVersion identifies the trace-generation logic. It is part of the
// on-disk trace cache key: bump it whenever any workload generator, the
// tracer, or input construction changes output for identical Options, or
// stale cached traces will silently keep serving the old behavior.
const GenVersion = 1

// WithDefaults returns o with unset fields resolved to their defaults —
// the canonical form under which two Options describe the same trace
// (used by the trace cache to key builds).
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Cores <= 0 {
		o.Cores = 64
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.SWDistance <= 0 {
		o.SWDistance = 16
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// scaled applies the size multiplier with a floor.
func (o Options) scaled(n, floor int) int {
	v := int(float64(n) * o.Scale)
	if v < floor {
		v = floor
	}
	return v
}

// SWPrefetchOverhead is the extra instructions per software indirect
// prefetch: compute i+Δ, load B[i+Δ], compute the target address (§6.1.2).
const SWPrefetchOverhead = 3

// swDist clamps the software prefetch distance to the inner-loop trip
// count (Mowry's algorithm picks a per-loop distance; a distance beyond
// the loop end would never fire).
func swDist(opt Options, tripCount int) int {
	d := opt.SWDistance
	if d >= tripCount {
		d = tripCount / 2
	}
	if d < 2 {
		d = 2
	}
	return d
}

// Workload is one traceable kernel.
type Workload struct {
	// Name as used in the paper's figures.
	Name string
	// Description summarizes the kernel and its indirect pattern.
	Description string
	// Build generates the traced program.
	Build func(opt Options) (*trace.Program, error)
}

var registry []*Workload

// paperOrder is the x-axis order of the paper's figures.
var paperOrder = []string{"pagerank", "tri_count", "graph500", "sgd", "lsh", "spmv", "symgs", "dense"}

func register(w *Workload) { registry = append(registry, w) }

// Names returns the registered workload names in the paper's figure order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, name := range paperOrder {
		for _, w := range registry {
			if w.Name == name {
				out = append(out, name)
			}
		}
	}
	return out
}

// PaperSet returns the seven evaluation workloads (excluding the dense
// control kernel).
func PaperSet() []string {
	var out []string
	for _, name := range Names() {
		if name != "dense" {
			out = append(out, name)
		}
	}
	return out
}

// Get looks a workload up by name.
func Get(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("workload: unknown %q (have %v)", name, known)
}

// Build generates the traced program for the named workload.
func Build(name string, opt Options) (*trace.Program, error) {
	w, err := Get(name)
	if err != nil {
		return nil, err
	}
	return w.Build(opt)
}

// partition splits n items into per-core contiguous [lo, hi) ranges.
func partition(n, cores, c int) (lo, hi int) {
	lo = c * n / cores
	hi = (c + 1) * n / cores
	return lo, hi
}

// rowLoads emits the loads for a dense row of rowBytes starting at addr:
// the first access is the indirect one (address came from an index); the
// remaining cachelines of the row are sequential follow-on loads.
func rowLoads(tb *trace.Builder, pcFirst, pcRest trace.PC, addr mem.Addr, rowBytes int) {
	tb.LoadDep(pcFirst, addr, 8, trace.KindIndirect)
	for off := int(64 - addr.Offset()); off < rowBytes; off += 64 {
		tb.Load(pcRest, addr+mem.Addr(off), 8, trace.KindOther)
	}
}

// rowStores emits stores covering a dense row (update write-back).
func rowStores(tb *trace.Builder, pcFirst, pcRest trace.PC, addr mem.Addr, rowBytes int) {
	tb.Store(pcFirst, addr, 8, trace.KindIndirect)
	for off := int(64 - addr.Offset()); off < rowBytes; off += 64 {
		tb.Store(pcRest, addr+mem.Addr(off), 8, trace.KindOther)
	}
}
