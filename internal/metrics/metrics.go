// Package metrics is a dependency-free Prometheus client: a registry of
// counters, gauges and histograms (optionally labeled) that renders the
// text exposition format on GET /metrics. impserve and improuter each own
// one Registry; their /v1/stats JSON documents are thin views over the same
// underlying values, so dashboards, alerting and the bespoke JSON can never
// disagree.
//
// Only the slice of the exposition format the repo needs is implemented:
//
//   - counter, gauge and (cumulative-bucket) histogram families;
//   - HELP/TYPE comment lines, label escaping, deterministic output order
//     (families sorted by name, series sorted by label values);
//   - func-backed families, for values whose source of truth already lives
//     elsewhere (service counters under their own mutex, per-backend
//     atomics that come and go with ring membership).
//
// Instrument values are atomics; registration is not expected after
// serving starts but is mutex-guarded anyway. Registration mistakes
// (invalid names, duplicates) panic: they are programmer errors a unit
// test hits immediately, not runtime conditions.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Type is a metric family's advertised type.
type Type string

// The supported family types.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// DurationBuckets is the default histogram layout for request and job
// latencies: 1ms to 60s, roughly geometric. Sub-millisecond work saturates
// the first bucket and anything over a minute the last — both ends are
// outside the latency range the fleet promises, so resolution is spent in
// the middle.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implied
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sample is one func-backed series: label values (matching the family's
// label names) and the current value.
type Sample struct {
	Labels []string
	Value  float64
}

// maxVecSeries bounds the distinct label sets one vec family retains.
// Labels like tenant names are caller-controlled; beyond the bound new
// label sets collapse into a catch-all "_other" series so an adversarial
// client cannot grow the registry without bound.
const maxVecSeries = 512

// CounterVec is a counter family with one counter per label-value set.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label values (created on first
// use; collapsed to the "_other" series past the family's series bound).
func (v *CounterVec) With(labelValues ...string) *Counter {
	s := v.fam.series(labelValues)
	return s.counter
}

// Total sums every series in the family.
func (v *CounterVec) Total() uint64 {
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	var total uint64
	for _, s := range v.fam.byKey {
		total += s.counter.Value()
	}
	return total
}

// GaugeVec is a gauge family with one gauge per label-value set.
type GaugeVec struct {
	fam *family
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.series(labelValues).gauge
}

// HistogramVec is a histogram family with one histogram per label-value set.
type HistogramVec struct {
	fam *family
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.series(labelValues).hist
}

// series is one (labelSet -> instrument) entry of a vec family; exactly one
// of the instrument fields is non-nil, per the family type.
type series struct {
	labels  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is one named metric family.
type family struct {
	name   string
	help   string
	typ    Type
	labels []string

	// Static families: series instruments, keyed by joined label values.
	mu    sync.Mutex
	byKey map[string]*series
	order []string // insertion order of keys; sorted at write time

	// Histogram families share bucket bounds across series.
	bounds []float64

	// Func families: fn is called at write time and its samples rendered
	// instead of byKey. For histograms fn is unsupported (nothing needs it).
	fn func() []Sample
}

func (f *family) series(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label value(s), got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	if len(f.byKey) >= maxVecSeries {
		// Collapse into the catch-all series rather than growing without
		// bound; create it if this is the first overflow.
		other := make([]string, len(f.labels))
		for i := range other {
			other[i] = "_other"
		}
		key = strings.Join(other, "\x00")
		if s, ok := f.byKey[key]; ok {
			return s
		}
		labelValues = other
	}
	s := &series{labels: append([]string(nil), labelValues...)}
	switch f.typ {
	case TypeCounter:
		s.counter = &Counter{}
	case TypeGauge:
		s.gauge = &Gauge{}
	case TypeHistogram:
		s.hist = newHistogram(f.bounds)
	}
	f.byKey[key] = s
	f.order = append(f.order, key)
	return s
}

// Registry holds metric families and renders them as text exposition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameRe  = `^[a-zA-Z_:][a-zA-Z0-9_:]*$`
	labelRe = `^[a-zA-Z_][a-zA-Z0-9_]*$`
)

func validName(s, re string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c == ':' && re == nameRe) || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, typ Type, labels []string, bounds []float64, fn func() []Sample) *family {
	if !validName(name, nameRe) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l, labelRe) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	if typ == TypeHistogram {
		if fn != nil {
			panic(fmt.Sprintf("metrics: func-backed histogram %q unsupported", name))
		}
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("metrics: unsorted buckets on %q", name))
		}
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		byKey:  make(map[string]*series),
		bounds: bounds, fn: fn,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.families[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil, nil)
	return f.series(nil).counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, TypeCounter, labels, nil, nil)}
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil, nil)
	return f.series(nil).gauge
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, TypeGauge, labels, nil, nil)}
}

// Histogram registers and returns an unlabeled histogram with the given
// bucket upper bounds (nil selects DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, bounds, nil)
	return f.series(nil).hist
}

// HistogramVec registers a labeled histogram family (nil bounds selects
// DurationBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, TypeHistogram, labels, bounds, nil)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for counts whose source of truth already lives elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, nil, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// SampleFunc registers a labeled family whose series are produced by fn at
// scrape time — for per-entity values where the entity set changes at
// runtime (per-backend counters under live ring membership).
func (r *Registry) SampleFunc(name, help string, typ Type, labels []string, fn func() []Sample) {
	if typ != TypeCounter && typ != TypeGauge {
		panic(fmt.Sprintf("metrics: SampleFunc %q: unsupported type %q", name, typ))
	}
	r.register(name, help, typ, labels, nil, fn)
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, HELP and TYPE comments first,
// series sorted by label values.
func (r *Registry) WriteText(w *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			samples := f.fn()
			sort.Slice(samples, func(i, j int) bool {
				return lessLabels(samples[i].Labels, samples[j].Labels)
			})
			for _, s := range samples {
				writeSample(w, f.name, f.labels, s.Labels, "", s.Value)
			}
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.byKey[k])
		}
		f.mu.Unlock()
		for _, s := range sers {
			switch f.typ {
			case TypeCounter:
				writeSample(w, f.name, f.labels, s.labels, "", float64(s.counter.Value()))
			case TypeGauge:
				writeSample(w, f.name, f.labels, s.labels, "", float64(s.gauge.Value()))
			case TypeHistogram:
				writeHistogram(w, f, s)
			}
		}
	}
}

// Text renders the registry to a string (WriteText over a fresh builder).
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// Handler serves GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(r.Text()))
	})
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// (le label last, per convention), then _sum and _count.
func writeHistogram(w *strings.Builder, f *family, s *series) {
	h := s.hist
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, f.name+"_bucket", append(f.labels, "le"),
			append(append([]string(nil), s.labels...), formatFloat(bound)), "", float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, f.name+"_bucket", append(f.labels, "le"),
		append(append([]string(nil), s.labels...), "+Inf"), "", float64(cum))
	writeSample(w, f.name+"_sum", f.labels, s.labels, "", math.Float64frombits(h.sumBits.Load()))
	writeSample(w, f.name+"_count", f.labels, s.labels, "", float64(cum))
}

func writeSample(w *strings.Builder, name string, labelNames, labelValues []string, suffix string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labelNames) > 0 {
		w.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				w.WriteByte(',')
			}
			val := ""
			if i < len(labelValues) {
				val = labelValues[i]
			}
			fmt.Fprintf(w, `%s=%q`, ln, escapeLabel(val))
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders values the way Prometheus expects: integers without
// a decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format; the %q in
// writeSample adds the quotes and escapes backslash/quote/newline already,
// so this only has to pass the value through — kept as a seam in case the
// quoting strategy changes.
func escapeLabel(s string) string { return s }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// lessLabels orders label-value slices lexicographically.
func lessLabels(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
