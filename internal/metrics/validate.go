package metrics

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	helpLine   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)
)

// ValidateExposition checks every line of a text-format body against the
// grammar subset this package emits, and that each sample belongs to the
// family most recently declared by a TYPE line. Exported for reuse by the
// cluster tests that scrape live servers.
func ValidateExposition(body string) error {
	var curFam string
	var curType string
	seenFams := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpLine.MatchString(line) {
				return fmt.Errorf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeLine.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("line %d: malformed TYPE: %q", i+1, line)
			}
			if seenFams[m[1]] {
				return fmt.Errorf("line %d: duplicate TYPE for %q", i+1, m[1])
			}
			seenFams[m[1]] = true
			curFam, curType = m[1], m[2]
		case line == "":
			return fmt.Errorf("line %d: blank line", i+1)
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("line %d: malformed sample: %q", i+1, line)
			}
			name := m[1]
			ok := name == curFam
			if curType == "histogram" {
				ok = name == curFam+"_bucket" || name == curFam+"_sum" || name == curFam+"_count"
			}
			if !ok {
				return fmt.Errorf("line %d: sample %q outside its TYPE block (current family %q)", i+1, name, curFam)
			}
		}
	}
	// Histogram buckets must be cumulative; spot-check by re-parsing.
	return validateHistogramCumulative(body)
}

func validateHistogramCumulative(body string) error {
	counts := map[string][]float64{}
	for _, line := range strings.Split(body, "\n") {
		idx := strings.Index(line, "_bucket")
		if idx < 0 || strings.HasPrefix(line, "#") {
			continue
		}
		fam := line[:idx]
		sp := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return fmt.Errorf("bucket line %q: %v", line, err)
		}
		counts[fam] = append(counts[fam], v)
	}
	for fam, vs := range counts {
		if !sort.Float64sAreSorted(vs) {
			return fmt.Errorf("histogram %q buckets not cumulative: %v", fam, vs)
		}
	}
	return nil
}
