package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "Total jobs.")
	g := r.Gauge("queue_depth", "Current depth.")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	text := r.Text()
	for _, want := range []string{
		"# HELP jobs_total Total jobs.\n",
		"# TYPE jobs_total counter\n",
		"jobs_total 5\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 5\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestVecLabelsAndOrdering(t *testing.T) {
	r := New()
	v := r.CounterVec("rejections_total", "Rejections by reason.", "reason", "tenant")
	v.With("quota", "tb").Add(2)
	v.With("queue", "ta").Inc()
	v.With("quota", "ta").Add(3)
	if v.Total() != 6 {
		t.Fatalf("Total = %d, want 6", v.Total())
	}
	text := r.Text()
	// Series must appear in deterministic (sorted) order regardless of
	// creation order.
	iQueue := strings.Index(text, `rejections_total{reason="queue",tenant="ta"} 1`)
	iQuotaA := strings.Index(text, `rejections_total{reason="quota",tenant="ta"} 3`)
	iQuotaB := strings.Index(text, `rejections_total{reason="quota",tenant="tb"} 2`)
	if iQueue < 0 || iQuotaA < 0 || iQuotaB < 0 {
		t.Fatalf("missing series:\n%s", text)
	}
	if !(iQueue < iQuotaA && iQuotaA < iQuotaB) {
		t.Fatalf("series out of order:\n%s", text)
	}
	// Render twice: output must be identical (stable ordering).
	if again := r.Text(); again != text {
		t.Fatalf("unstable exposition:\nfirst:\n%s\nsecond:\n%s", text, again)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	v := r.GaugeVec("backend_up", "Backend health.", "url")
	v.With(`http://x/"quoted"\path` + "\n").Set(1)
	text := r.Text()
	want := `backend_up{url="http://x/\"quoted\"\\path\n"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("escaped series %q missing:\n%s", want, text)
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	text := r.Text()
	for _, want := range []string{
		"# TYPE latency_seconds histogram\n",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05\n",
		"latency_seconds_count 5\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := New()
	v := r.HistogramVec("queue_wait_seconds", "Queue wait.", []float64{1}, "lane")
	v.With("interactive").Observe(0.5)
	v.With("bulk").Observe(2)
	text := r.Text()
	for _, want := range []string{
		`queue_wait_seconds_bucket{lane="bulk",le="1"} 0`,
		`queue_wait_seconds_bucket{lane="bulk",le="+Inf"} 1`,
		`queue_wait_seconds_bucket{lane="interactive",le="1"} 1`,
		`queue_wait_seconds_count{lane="interactive"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestFuncFamilies(t *testing.T) {
	r := New()
	var n uint64 = 41
	r.CounterFunc("submitted_total", "Submissions.", func() float64 { return float64(n) })
	r.GaugeFunc("inflight", "In flight.", func() float64 { return 3 })
	r.SampleFunc("backend_submits_total", "Per-backend submits.", TypeCounter,
		[]string{"backend"}, func() []Sample {
			return []Sample{
				{Labels: []string{"b1"}, Value: 9},
				{Labels: []string{"b0"}, Value: 2},
			}
		})
	n++
	text := r.Text()
	for _, want := range []string{
		"submitted_total 42\n",
		"inflight 3\n",
		`backend_submits_total{backend="b0"} 2`,
		`backend_submits_total{backend="b1"} 9`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Func-family samples must also be sorted.
	if strings.Index(text, `{backend="b0"}`) > strings.Index(text, `{backend="b1"}`) {
		t.Fatalf("func samples out of order:\n%s", text)
	}
}

func TestSeriesBound(t *testing.T) {
	r := New()
	v := r.CounterVec("per_tenant_total", "Per tenant.", "tenant")
	for i := 0; i < maxVecSeries+50; i++ {
		v.With(fmt.Sprintf("t%d", i)).Inc()
	}
	if v.Total() != maxVecSeries+50 {
		t.Fatalf("Total = %d, want %d", v.Total(), maxVecSeries+50)
	}
	text := r.Text()
	if !strings.Contains(text, `per_tenant_total{tenant="_other"} 50`) {
		t.Fatalf("overflow series missing or wrong:\n%s", text)
	}
}

func TestRegistrationPanics(t *testing.T) {
	for name, fn := range map[string]func(r *Registry){
		"bad metric name": func(r *Registry) { r.Counter("bad-name", "") },
		"bad label name":  func(r *Registry) { r.CounterVec("ok_name", "", "bad-label") },
		"duplicate":       func(r *Registry) { r.Counter("dup", ""); r.Gauge("dup", "") },
		"unsorted buckets": func(r *Registry) {
			r.Histogram("h", "", []float64{2, 1})
		},
		"wrong label count": func(r *Registry) {
			r.CounterVec("v", "", "a", "b").With("only-one")
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic")
				}
			}()
			fn(New())
		})
	}
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("x_total", "X.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "x_total 1\n") {
		t.Fatalf("body:\n%s", body)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "", []float64{1})
	c := r.Counter("c_total", "")
	v := r.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
				c.Inc()
				v.With(strconv.Itoa(i % 3)).Inc()
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 || v.Total() != 8000 {
		t.Fatalf("counts: hist=%d counter=%d vec=%d, want 8000 each",
			h.Count(), c.Value(), v.Total())
	}
	if got := math.Float64frombits(h.sumBits.Load()); got != 4000 {
		t.Fatalf("sum = %v, want 4000", got)
	}
}

// TestExpositionWellFormed runs the whole rendered output through a line
// validator covering the slice of the text format the repo emits — the
// same check the cluster e2e applies to live /metrics bodies.
func TestExpositionWellFormed(t *testing.T) {
	r := New()
	r.Counter("a_total", "Help with\nnewline and back\\slash.").Add(3)
	r.GaugeVec("g", "G.", "l").With(`weird "value"`).Set(-2)
	h := r.Histogram("h_seconds", "H.", nil)
	h.Observe(0.003)
	h.Observe(120)
	r.SampleFunc("f_total", "F.", TypeCounter, []string{"x"}, func() []Sample {
		return []Sample{{Labels: []string{"v"}, Value: 1.5}}
	})
	if err := ValidateExposition(r.Text()); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, r.Text())
	}
}
