package core

import (
	"fmt"
	"math/bits"

	"github.com/impsim/imp/internal/mem"
)

// StorageCost reports the hardware budget of an IMP configuration in bits,
// following §6.4 of the paper (48-bit addresses; the stream-table portion
// of the PT is charged to the baseline stream prefetcher, not to IMP).
type StorageCost struct {
	PTBits       int // indirect-table portion of the Prefetch Table
	IPDBits      int
	GPBits       int // granularity predictor (only when Partial)
	PTEntryBits  int
	IPDEntryBits int
	GPEntryBits  int
}

// TotalBits returns the full IMP budget (PT + IPD + GP).
func (c StorageCost) TotalBits() int { return c.PTBits + c.IPDBits + c.GPBits }

func (c StorageCost) String() string {
	return fmt.Sprintf("PT %d bits (%d/entry), IPD %d bits (%d/entry), GP %d bits (%d/entry), total %.2f KB",
		c.PTBits, c.PTEntryBits, c.IPDBits, c.IPDEntryBits, c.GPBits, c.GPEntryBits,
		float64(c.TotalBits())/8/1024)
}

func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Storage computes the §6.4 storage model for the configured parameters.
func (p Params) Storage() StorageCost {
	addr := mem.AddressBits

	// Indirect-table portion of a PT entry (Fig 5 + Fig 6): enable bit,
	// shift selector, BaseAddr, index, saturating hit counter, read/write
	// predictor bit, indirection type, and three entry links.
	// The prefetch-distance ramp is not charged, matching the paper's
	// "less than 120 bits" accounting.
	link := log2Ceil(p.PTEntries)
	ptEntry := 1 + // enable
		log2Ceil(len(p.Shifts)) +
		addr + // BaseAddr
		addr + // index
		log2Ceil(p.ConfidenceMax+1) +
		1 + // read/write predictor
		2 + // ind_type
		3*link // next_way, next_level, prev

	// IPD entry (Fig 4): two index values plus the BaseAddr array with one
	// candidate per (shift, miss slot), plus small counters.
	ipdEntry := 2*addr +
		len(p.Shifts)*p.BaseAddrArrayLen*addr +
		2*log2Ceil(p.BaseAddrArrayLen+1) + // miss counters
		link // owner PT entry

	cost := StorageCost{
		PTEntryBits:  ptEntry,
		PTBits:       p.PTEntries * ptEntry,
		IPDEntryBits: ipdEntry,
		IPDBits:      p.IPDEntries * ipdEntry,
	}

	if p.Partial {
		// GP entry (Fig 8): per sample an address tag (48 - log2(64) bits)
		// and a touch bit vector; plus tot_sector, min_granu, granu, evict.
		// Granularities are powers of two, so 2 bits encode {1,2,4,8}
		// sectors; evict wraps at GPSamples.
		sectors := 64 / p.L1SectorBytes
		sample := (addr - mem.LineShift) + sectors
		gpEntry := p.GPSamples*sample +
			log2Ceil(p.GPSamples*sectors+1) + // tot_sector
			log2Ceil(log2Ceil(sectors)+1) + // min_granu (log encoding)
			log2Ceil(log2Ceil(sectors)+1) + // granu (log encoding)
			log2Ceil(p.GPSamples) // evict
		cost.GPEntryBits = gpEntry
		cost.GPBits = p.PTEntries * gpEntry
	}
	return cost
}
