package core

import (
	"fmt"
	"sort"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/snap"
	"github.com/impsim/imp/internal/trace"
)

// Snapshot appends the prefetcher's full architectural state to w: the
// prefetch table, the pattern detector, the granularity predictor, clock and
// stats. The memory tap and the in-flight request scratch slice are not
// state — the tap is re-attached on restore and the scratch only lives
// inside one Observe call.
func (m *IMP) Snapshot(w *snap.Writer) {
	w.U64(m.clock)
	w.U64(m.stats.IndexAccesses)
	w.U64(m.stats.StreamPrefetches)
	w.U64(m.stats.IndirectPrefetches)
	w.U64(m.stats.PatternsDetected)
	w.U64(m.stats.SecondaryDetected)
	w.U64(m.stats.DetectionFailures)
	w.U64(m.stats.ConfidenceDrops)

	w.Int(len(m.pt))
	for i := range m.pt {
		e := &m.pt[i]
		w.Bool(e.valid)
		if !e.valid {
			continue
		}
		w.U64(e.lru)
		w.U64(uint64(e.pc))
		w.U64(uint64(e.lastAddr))
		w.U8(e.elemSize)
		w.I64(int64(e.dir))
		w.Int(e.streamHits)
		w.U64(e.aheadLine)
		w.U64(e.streamCount)
		w.Bool(e.enabled)
		w.I64(int64(e.shift))
		w.U64(e.baseAddr)
		w.U64(e.index)
		w.Bool(e.indexValid)
		w.Int(e.hitCnt)
		w.Int(e.prefDist)
		w.U64(uint64(e.aheadAddr))
		w.Int(e.storeSeen)
		w.Int(e.loadSeen)
		w.Int(e.failCount)
		w.U64(e.backoffTill)
		w.U8(uint8(e.indType))
		w.I64(int64(e.nextWay))
		w.I64(int64(e.nextLevel))
		w.I64(int64(e.prev))
	}

	w.Int(len(m.ipd))
	for i := range m.ipd {
		e := &m.ipd[i]
		w.Bool(e.valid)
		if !e.valid {
			continue
		}
		w.Int(e.ptIndex)
		w.U8(uint8(e.kind))
		w.U64(e.idx1)
		w.U64(e.idx2)
		w.Bool(e.hasIdx2)
		w.Int(e.miss1)
		w.Int(e.miss2)
		w.Int(len(e.baseaddrs))
		for _, b := range e.baseaddrs {
			w.U64(b)
		}
		w.Int(e.parentPT)
	}

	w.Bool(m.gp != nil)
	if m.gp != nil {
		m.gp.snapshot(w)
	}
}

// Restore replaces the prefetcher's state with one written by Snapshot. The
// instance must have been built with the same Params (and a fresh memory
// tap over the equivalent address space).
func (m *IMP) Restore(r *snap.Reader) error {
	m.clock = r.U64()
	m.stats = Stats{
		IndexAccesses:      r.U64(),
		StreamPrefetches:   r.U64(),
		IndirectPrefetches: r.U64(),
		PatternsDetected:   r.U64(),
		SecondaryDetected:  r.U64(),
		DetectionFailures:  r.U64(),
		ConfidenceDrops:    r.U64(),
	}

	if n := r.Int(); n != len(m.pt) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("core: snapshot has %d PT entries, table has %d", n, len(m.pt))
	}
	for i := range m.pt {
		e := &m.pt[i]
		*e = ptEntry{valid: r.Bool()}
		if !e.valid {
			continue
		}
		e.lru = r.U64()
		e.pc = trace.PC(r.U64())
		e.lastAddr = mem.Addr(r.U64())
		e.elemSize = r.U8()
		e.dir = int8(r.I64())
		e.streamHits = r.Int()
		e.aheadLine = r.U64()
		e.streamCount = r.U64()
		e.enabled = r.Bool()
		e.shift = int8(r.I64())
		e.baseAddr = r.U64()
		e.index = r.U64()
		e.indexValid = r.Bool()
		e.hitCnt = r.Int()
		e.prefDist = r.Int()
		e.aheadAddr = mem.Addr(r.U64())
		e.storeSeen = r.Int()
		e.loadSeen = r.Int()
		e.failCount = r.Int()
		e.backoffTill = r.U64()
		e.indType = indType(r.U8())
		e.nextWay = int8(r.I64())
		e.nextLevel = int8(r.I64())
		e.prev = int8(r.I64())
	}

	if n := r.Int(); n != len(m.ipd) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("core: snapshot has %d IPD entries, table has %d", n, len(m.ipd))
	}
	for i := range m.ipd {
		e := &m.ipd[i]
		*e = ipdEntry{valid: r.Bool()}
		if !e.valid {
			continue
		}
		e.ptIndex = r.Int()
		e.kind = indType(r.U8())
		e.idx1 = r.U64()
		e.idx2 = r.U64()
		e.hasIdx2 = r.Bool()
		e.miss1 = r.Int()
		e.miss2 = r.Int()
		nb := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		want := len(m.p.Shifts) * m.p.BaseAddrArrayLen
		if nb != want {
			return fmt.Errorf("core: snapshot IPD entry has %d base addrs, params need %d", nb, want)
		}
		e.baseaddrs = make([]uint64, nb)
		for j := range e.baseaddrs {
			e.baseaddrs[j] = r.U64()
		}
		e.parentPT = r.Int()
	}

	hasGP := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasGP != (m.gp != nil) {
		return fmt.Errorf("core: snapshot GP presence %v, params say %v", hasGP, m.gp != nil)
	}
	if m.gp != nil {
		if err := m.gp.restore(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// snapshot appends the granularity predictor's state. The tracked map is
// written sorted by line id so equal predictors snapshot to equal bytes.
func (g *GranularityPredictor) snapshot(w *snap.Writer) {
	w.Int(len(g.entries))
	for i := range g.entries {
		e := &g.entries[i]
		w.Bool(e.valid)
		if !e.valid {
			continue
		}
		w.Int(e.granuSectors)
		w.Int(e.minGranu)
		w.Int(e.totSectors)
		w.Int(e.evicts)
		w.U64(e.issued)
		w.Int(len(e.samples))
		for _, s := range e.samples {
			w.U64(s)
		}
	}
	lines := make([]uint64, 0, len(g.tracked))
	for l := range g.tracked {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.Int(len(lines))
	for _, l := range lines {
		w.U64(l)
		w.Int(g.tracked[l])
	}
}

func (g *GranularityPredictor) restore(r *snap.Reader) error {
	if n := r.Int(); n != len(g.entries) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("core: snapshot has %d GP entries, table has %d", n, len(g.entries))
	}
	for i := range g.entries {
		e := &g.entries[i]
		*e = gpEntry{valid: r.Bool()}
		if !e.valid {
			continue
		}
		e.granuSectors = r.Int()
		e.minGranu = r.Int()
		e.totSectors = r.Int()
		e.evicts = r.Int()
		e.issued = r.U64()
		ns := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if ns < 0 || ns > g.p.GPSamples {
			return fmt.Errorf("core: snapshot GP entry has %d samples, cap is %d", ns, g.p.GPSamples)
		}
		e.samples = make([]uint64, ns, g.p.GPSamples)
		for j := range e.samples {
			e.samples[j] = r.U64()
		}
	}
	nt := r.Count(2) // line + count, one varint byte each at minimum
	if r.Err() != nil {
		return r.Err()
	}
	g.tracked = make(map[uint64]int, nt)
	for i := 0; i < nt; i++ {
		line := r.U64()
		g.tracked[line] = r.Int()
	}
	return r.Err()
}
