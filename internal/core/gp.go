package core

import (
	"math/bits"

	"github.com/impsim/imp/internal/mem"
)

// GranularityPredictor implements §4.2 (Fig 8): one entry per PT pattern,
// each sampling up to GPSamples prefetched cachelines. The L1 keeps the
// per-line touch bit vector (8-byte words demand-touched); on eviction the
// simulator hands it to NoteEviction and the GP updates tot_sector,
// min_granu and evict, re-running Algorithm 1 after every GPSamples
// evictions.
//
// The paper stores the touch vector in the GP's sample slots; we read it
// from the evicted line's metadata instead — the information content and
// update points are identical, only the storage location differs (and the
// storage-cost model still charges the GP for it, §6.4.2).
type GranularityPredictor struct {
	//imp:nosnap configuration, fixed at construction
	p       Params
	entries []gpEntry
	tracked map[uint64]int // sampled lineID -> PT pattern index
}

type gpEntry struct {
	valid        bool
	granuSectors int // current prefetch granularity, in L1 sectors
	minGranu     int
	totSectors   int
	evicts       int
	issued       uint64 // prefetches issued for this pattern (sampling clock)
	samples      []uint64
}

func newGP(p Params) *GranularityPredictor {
	return &GranularityPredictor{
		p:       p,
		entries: make([]gpEntry, p.PTEntries),
		tracked: make(map[uint64]int),
	}
}

func (g *GranularityPredictor) sectorsPerLine() int { return 64 / g.p.L1SectorBytes }

// allocate initializes the GP entry when a pattern is detected: the access
// granularity starts at a full cacheline (§4.2).
func (g *GranularityPredictor) allocate(pt int) {
	g.release(pt)
	g.entries[pt] = gpEntry{
		valid:        true,
		granuSectors: g.sectorsPerLine(),
		minGranu:     g.sectorsPerLine(),
		samples:      make([]uint64, 0, g.p.GPSamples),
	}
}

// release drops the GP entry and its tracked lines when the PT entry is
// reclaimed.
func (g *GranularityPredictor) release(pt int) {
	if !g.entries[pt].valid {
		return
	}
	for _, line := range g.entries[pt].samples {
		delete(g.tracked, line)
	}
	g.entries[pt] = gpEntry{}
}

// Granularity returns the current prediction for pattern pt, in L1
// sectors, or the full line if the pattern has no GP entry.
func (g *GranularityPredictor) Granularity(pt int) int {
	if pt < 0 || pt >= len(g.entries) || !g.entries[pt].valid {
		return g.sectorsPerLine()
	}
	return g.entries[pt].granuSectors
}

// prefetchBytes returns the request size for an indirect prefetch of
// pattern pt targeting target, and samples the prefetched line (every few
// issues) for touch tracking.
func (g *GranularityPredictor) prefetchBytes(pt int, target mem.Addr) int {
	if pt < 0 || pt >= len(g.entries) || !g.entries[pt].valid {
		return 0
	}
	e := &g.entries[pt]
	e.issued++
	// Sample roughly one in four prefetched lines while slots are free
	// ("randomly selects up to N prefetched cachelines", §4.2); a strided
	// pick keeps runs reproducible.
	if len(e.samples) < g.p.GPSamples && e.issued%4 == 1 {
		line := target.LineID()
		if _, dup := g.tracked[line]; !dup {
			e.samples = append(e.samples, line)
			g.tracked[line] = pt
		}
	}
	if e.granuSectors >= g.sectorsPerLine() {
		return 0 // full line
	}
	return e.granuSectors * g.p.L1SectorBytes
}

// noteEviction receives the touch vector of an evicted L1 line. touch has
// one bit per 8-byte word demand-touched while resident.
func (g *GranularityPredictor) noteEviction(lineID uint64, touch uint8) {
	pt, ok := g.tracked[lineID]
	if !ok {
		return
	}
	delete(g.tracked, lineID)
	e := &g.entries[pt]
	if !e.valid {
		return
	}
	for i, l := range e.samples {
		if l == lineID {
			e.samples = append(e.samples[:i], e.samples[i+1:]...)
			break
		}
	}

	// Touch bits are tracked per 8-byte word; convert to L1 sectors.
	sectors := touchToSectors(touch, g.p.L1SectorBytes)
	e.evicts++
	e.totSectors += bits.OnesCount8(uint8(sectors))
	if run := minConsecutiveRun(uint8(sectors)); run > 0 && run < e.minGranu {
		e.minGranu = run
	}

	if e.evicts < g.p.GPSamples {
		return
	}
	// Algorithm 1.
	n := g.p.GPSamples
	costFull := n * (g.sectorsPerLine() + 1)
	costPartial := e.totSectors
	if e.minGranu > 0 {
		costPartial += e.totSectors / e.minGranu
	}
	if costFull <= costPartial || e.totSectors == 0 {
		e.granuSectors = g.sectorsPerLine()
	} else {
		e.granuSectors = e.minGranu
	}
	e.evicts = 0
	e.totSectors = 0
	e.minGranu = g.sectorsPerLine()
}

// touchToSectors widens the 8-bit word-touch vector to the GP's sector
// granularity: a sector is touched if any of its words is.
func touchToSectors(touch uint8, sectorBytes int) uint8 {
	wordsPerSector := sectorBytes / 8
	if wordsPerSector <= 1 {
		return touch
	}
	var out uint8
	numSectors := 8 / wordsPerSector
	for s := 0; s < numSectors; s++ {
		maskBits := uint8(1<<wordsPerSector-1) << (s * wordsPerSector)
		if touch&maskBits != 0 {
			out |= 1 << s
		}
	}
	return out
}

// minConsecutiveRun returns the length of the shortest maximal run of set
// bits (the paper's "smallest number of consecutive touched sectors"), or
// 0 when no bit is set.
func minConsecutiveRun(v uint8) int {
	best := 0
	run := 0
	for i := 0; i < 9; i++ {
		bit := i < 8 && v&(1<<i) != 0
		if bit {
			run++
			continue
		}
		if run > 0 && (best == 0 || run < best) {
			best = run
		}
		run = 0
	}
	return best
}
