package core

import (
	"testing"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// TestDescendingStreamDetection covers SymGS's backward sweep: the index
// array is scanned in decreasing address order and the indirect pattern
// must still be detected and prefetched ahead (downward).
func TestDescendingStreamDetection(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(128, 1<<18)
	b, a := buildAB(h, idx, 1<<18)

	for i := 100; i >= 40; i-- {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(idx[i])), 8, false)
	}
	e, _ := h.m.lookupStream(pcIndex)
	if e == nil || !e.enabled {
		t.Fatal("no pattern detected on a descending scan")
	}
	if e.dir != -1 {
		t.Fatalf("direction = %d, want -1", e.dir)
	}
	// Earlier (lower-index) targets must have been prefetched before use.
	covered := 0
	for i := 60; i > 45; i-- {
		if h.hasPrefetchFor(a.Addr(int(idx[i]))) {
			covered++
		}
	}
	if covered < 10 {
		t.Errorf("descending coverage %d/15", covered)
	}
	if h.m.Stats().IndirectPrefetches == 0 {
		t.Error("no indirect prefetches on a descending stream")
	}
}

// TestDirectionReversalRetrains covers the forward-then-backward sweep
// boundary: reversing direction must not wedge the stream entry.
func TestDirectionReversalRetrains(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(128, 1<<18)
	b, a := buildAB(h, idx, 1<<18)

	drive(h, b, a, 40) // forward
	fwd := h.m.Stats().IndirectPrefetches
	if fwd == 0 {
		t.Fatal("setup: no forward prefetching")
	}
	// Backward sweep from the end.
	for i := 120; i >= 60; i-- {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(idx[i])), 8, false)
	}
	e, _ := h.m.lookupStream(pcIndex)
	if e.dir != -1 {
		t.Fatalf("direction after reversal = %d, want -1", e.dir)
	}
	if got := h.m.Stats().IndirectPrefetches; got <= fwd {
		t.Error("no indirect prefetches after direction reversal")
	}
}

// TestIMPReadsThroughMemoryImage pins the WordReader contract: prefetch
// targets must be computed from the actual index contents.
func TestIMPReadsThroughMemoryImage(t *testing.T) {
	h := newHarness(DefaultParams())
	b := h.space.AllocInt32("B", 64)
	a := h.space.AllocFloat64("A", 1<<12)
	// Handcrafted indices with a recognizable target set.
	for i := range b.Int32s() {
		b.Int32s()[i] = int32((i*37 + 11) % 4096)
	}
	for i := 0; i < 40; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(b.Int32s()[i])), 8, false)
	}
	// Every indirect prefetch to A must land exactly on an element that the
	// index array names.
	valid := make(map[uint64]bool)
	for _, v := range b.Int32s() {
		valid[a.Addr(int(v)).LineID()] = true
	}
	for _, r := range h.reqs {
		if r.Addr >= a.Base && r.Addr < a.End() {
			if !valid[r.Addr.LineID()] {
				t.Fatalf("prefetch %v targets a line no index names", r.Addr)
			}
		}
	}
}

// TestPTEntryLimit checks Table 2 sizing is honored: more concurrent
// streams than PT entries must not grow the table.
func TestPTEntryLimit(t *testing.T) {
	p := DefaultParams()
	p.PTEntries = 4
	h := newHarness(p)
	if len(h.m.pt) != 4 {
		t.Fatalf("PT size = %d", len(h.m.pt))
	}
	regions := make([]*mem.Region, 8)
	for i := range regions {
		regions[i] = h.space.AllocInt32("s", 256)
	}
	for round := 0; round < 16; round++ {
		for s, r := range regions {
			h.access(trace.PC(100+s), r.Addr(round), 4, false)
		}
	}
	valid := 0
	for i := range h.m.pt {
		if h.m.pt[i].valid {
			valid++
		}
	}
	if valid > 4 {
		t.Errorf("%d valid PT entries in a 4-entry table", valid)
	}
}
