package core

import (
	"fmt"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/prefetch"
	"github.com/impsim/imp/internal/trace"
)

// WordReader resolves a word load by virtual address, standing in for the
// hardware reading index values out of fetched cachelines. *mem.Space
// implements it.
type WordReader interface {
	ReadWord(mem.Addr) uint64
}

// indType distinguishes primary patterns from secondary indirections
// (Fig 6).
type indType uint8

const (
	primary indType = iota
	secondWay
	secondLevel
)

func (t indType) String() string {
	switch t {
	case secondWay:
		return "second-way"
	case secondLevel:
		return "second-level"
	default:
		return "primary"
	}
}

const none = int8(-1)

// ptEntry is one Prefetch Table entry: the stream-table portion (pc, addr,
// hit cnt of Fig 5) plus the indirect table portion (enable, shift, base
// addr, index, hit cnt) and the secondary-indirection links of Fig 6.
type ptEntry struct {
	valid bool
	lru   uint64

	// Stream table portion (primary entries only).
	pc          trace.PC
	lastAddr    mem.Addr // address of the most recent index element
	elemSize    uint8    // index element size in bytes, learned from accesses
	dir         int8     // +1 ascending scan, -1 descending (backward sweeps)
	streamHits  int
	aheadLine   uint64 // furthest index line already stream-prefetched
	streamCount uint64 // index accesses seen (back-off clock)

	// Indirect table portion.
	enabled    bool
	shift      int8
	baseAddr   uint64 // BaseAddr of Eq. 2 (may exceed any region; raw arithmetic)
	index      uint64 // most recent index value
	indexValid bool   // index written and not yet matched
	hitCnt     int    // saturating confidence counter
	prefDist   int    // current prefetch distance (ramps to max)
	aheadAddr  mem.Addr
	storeSeen  int // read/write predictor: matched stores
	loadSeen   int // matched loads

	// Detection back-off (§3.2.2).
	failCount   int
	backoffTill uint64 // streamCount before which no new detection starts

	// Secondary indirection links (Fig 6).
	indType   indType
	nextWay   int8
	nextLevel int8
	prev      int8
}

// expected returns the predicted indirect target for the current index.
func (e *ptEntry) expected() mem.Addr {
	return mem.Addr(e.baseAddr + shiftApply(e.index, e.shift))
}

// target computes Eq. 2 for an arbitrary index value.
func (e *ptEntry) target(idx uint64) mem.Addr {
	return mem.Addr(e.baseAddr + shiftApply(idx, e.shift))
}

// Stats counts IMP activity for the evaluation harness.
type Stats struct {
	IndexAccesses      uint64
	StreamPrefetches   uint64
	IndirectPrefetches uint64
	PatternsDetected   uint64
	SecondaryDetected  uint64
	DetectionFailures  uint64
	ConfidenceDrops    uint64
}

// IMP is one per-L1 prefetcher instance.
type IMP struct {
	//imp:nosnap configuration, fixed at construction (restore cross-checks geometry)
	p Params
	//imp:nosnap value tap, reattached over the equivalent address space at build
	memory WordReader
	pt     []ptEntry
	ipd    []ipdEntry
	gp     *GranularityPredictor
	clock  uint64
	stats  Stats
	//imp:nosnap scratch, dead outside one Observe call
	reqs []prefetch.Request // the in-flight Observe output (caller's slice)
}

// New builds an IMP instance reading index values through memory.
func New(p Params, memory WordReader) *IMP {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	m := &IMP{p: p, memory: memory, pt: make([]ptEntry, p.PTEntries), ipd: make([]ipdEntry, p.IPDEntries)}
	if p.Partial {
		m.gp = newGP(p)
	}
	return m
}

// Name implements prefetch.Prefetcher.
func (m *IMP) Name() string {
	if m.p.Partial {
		return "imp+partial"
	}
	return "imp"
}

// Stats returns a copy of the counters.
func (m *IMP) Stats() Stats { return m.stats }

// GP returns the granularity predictor, or nil when partial accessing is
// disabled.
func (m *IMP) GP() *GranularityPredictor { return m.gp }

// Observe implements prefetch.Prefetcher: it is called once per L1 demand
// access with the hit/miss outcome and, for loads, the loaded value. New
// requests are appended to reqs (Parent indexes the full returned slice).
func (m *IMP) Observe(a prefetch.Access, reqs []prefetch.Request) []prefetch.Request {
	m.clock++
	m.reqs = reqs

	// 1. Match the access against enabled patterns: confidence bump and
	//    second-level index capture (§3.2.3, §3.3.2).
	m.matchPatterns(a)

	// 2. Stream table processing: is this an index access?
	m.observeStream(a)

	// 3. Feed misses to active IPD entries (§3.2.2).
	if a.Miss {
		m.ipdObserveMiss(a.Addr)
	}

	out := m.reqs
	m.reqs = nil
	return out
}

// matchPatterns checks the access address against every enabled pattern's
// predicted target.
func (m *IMP) matchPatterns(a prefetch.Access) {
	for i := range m.pt {
		e := &m.pt[i]
		if !e.valid || !e.enabled || !e.indexValid {
			continue
		}
		if a.Addr != e.expected() {
			continue
		}
		e.indexValid = false
		if e.hitCnt < m.p.ConfidenceMax {
			e.hitCnt++
		}
		if a.Store {
			e.storeSeen++
		} else {
			e.loadSeen++
		}
		// The value loaded at a primary target is a candidate second-level
		// index (§3.3.2).
		if !a.Store && m.levelOf(i) < m.p.MaxIndirectLevels {
			m.ipdFeedLevel(i, a.Value)
		}
	}
}

// levelOf returns the indirection depth of PT entry i (primary = 1).
func (m *IMP) levelOf(i int) int {
	depth := 1
	for m.pt[i].indType == secondLevel && m.pt[i].prev != none {
		depth++
		i = int(m.pt[i].prev)
	}
	return depth
}

// observeStream runs the word-granularity stream table (§3.2, Fig 5).
func (m *IMP) observeStream(a prefetch.Access) {
	if a.Store {
		return
	}
	e, idx := m.lookupStream(a.PC)
	if e == nil {
		e, idx = m.allocPT(a.PC)
		if e == nil {
			return
		}
		e.lastAddr = a.Addr
		e.elemSize = uint8(a.Size)
		return
	}
	e.lru = m.clock
	step := mem.Addr(e.elemSize)
	sizeOK := uint8(a.Size) == e.elemSize
	switch {
	case a.Addr == e.lastAddr:
		// Re-read of the same element: no stream progress.
		return
	case sizeOK && a.Addr == e.lastAddr+step:
		// Ascending index access.
		if e.dir != 1 {
			e.dir, e.streamHits, e.aheadLine, e.aheadAddr = 1, 0, 0, 0
		}
		m.onIndexAccess(e, idx, a)
	case sizeOK && a.Addr == e.lastAddr-step:
		// Descending index access (backward sweeps, §5.3 SymGS).
		if e.dir != -1 {
			e.dir, e.streamHits, e.aheadLine, e.aheadAddr = -1, 0, 0, 0
		}
		m.onIndexAccess(e, idx, a)
	default:
		// Stream broken: a nested loop restarted the scan elsewhere. Keep
		// the pattern and just move the stream position (§3.3.1).
		e.lastAddr = a.Addr
		e.elemSize = uint8(a.Size)
		e.aheadLine = 0
		e.aheadAddr = 0
		if e.indexValid {
			e.indexValid = false
			if e.hitCnt > 0 {
				e.hitCnt--
			}
		}
	}
}

// onIndexAccess handles one confirmed sequential index read.
func (m *IMP) onIndexAccess(e *ptEntry, idx int, a prefetch.Access) {
	m.stats.IndexAccesses++
	e.streamCount++
	e.streamHits++
	e.lastAddr = a.Addr

	// Overwriting an unmatched index decrements confidence (§3.2.3). A
	// pattern whose confidence drains completely is dead (e.g. the data
	// array moved between iterations): disable it so the IPD can re-learn.
	if e.enabled && e.indexValid {
		if e.hitCnt > 0 {
			e.hitCnt--
			m.stats.ConfidenceDrops++
		}
		if e.hitCnt == 0 {
			m.disablePattern(idx)
		}
	}
	e.index = a.Value
	e.indexValid = true

	// Keep feeding the IPD the index stream: idx2 capture and entry
	// release both happen on index accesses.
	m.ipdAdvance(idx, a.Value)

	if e.streamHits < m.p.StreamHitThreshold {
		return
	}

	// Stream prefetching of the index array itself (line granularity).
	m.streamPrefetch(e, a.Addr)

	switch {
	case e.enabled && e.hitCnt >= m.p.ConfidenceThreshold:
		m.indirectPrefetch(e, idx, a.Addr)
	case !e.enabled && m.clock >= e.backoffTill:
		// Try to detect an indirect pattern for this stream.
		m.ipdEnsure(idx, primary, a.Value)
	}
	// An enabled primary with room for more ways keeps a detection going
	// to find second-way patterns (§3.3.2).
	if e.enabled && e.indType == primary && m.waysOf(idx) < m.p.MaxIndirectWays &&
		m.clock >= e.backoffTill {
		m.ipdEnsure(idx, secondWay, a.Value)
	}
}

// disablePattern retires a dead pattern on entry idx: the indirect state is
// cleared (the stream side keeps training) and secondary children are
// released, so a fresh IPD detection can rebuild the tree.
func (m *IMP) disablePattern(idx int) {
	e := &m.pt[idx]
	e.enabled = false
	e.indexValid = false
	e.prefDist = 0
	e.aheadAddr = 0
	e.storeSeen, e.loadSeen = 0, 0
	if e.nextWay != none {
		m.invalidateTree(int(e.nextWay))
		e.nextWay = none
	}
	if e.nextLevel != none {
		m.invalidateTree(int(e.nextLevel))
		e.nextLevel = none
	}
	if m.gp != nil {
		m.gp.release(idx)
	}
	for i := range m.ipd {
		if m.ipd[i].valid && m.ipd[i].ptIndex == idx && m.ipd[i].kind != primary {
			m.ipd[i] = ipdEntry{}
		}
	}
}

// waysOf counts the patterns hanging off entry idx's index stream.
func (m *IMP) waysOf(idx int) int {
	n := 1
	for w := m.pt[idx].nextWay; w != none; w = m.pt[w].nextWay {
		n++
	}
	return n
}

// streamPrefetch keeps the index array StreamPrefetchDistance lines ahead
// of the scan, in the stream's direction.
func (m *IMP) streamPrefetch(e *ptEntry, addr mem.Addr) {
	line := addr.LineID()
	dist := m.p.StreamPrefetchDistance
	// When indirect prefetching runs ahead, the index lines it reads from
	// must be resident too; extend the stream window to cover it.
	if e.enabled {
		need := (e.prefDist*int(e.elemSize))/mem.LineSize + 1
		if need > dist {
			dist = need
		}
	}
	for d := 1; d <= dist; d++ {
		l := line + uint64(int64(d)*int64(e.dir))
		if e.aheadLine != 0 && coveredBy(e.dir, e.aheadLine, l) {
			continue
		}
		m.reqs = append(m.reqs, prefetch.Request{Addr: mem.Addr(l << mem.LineShift), Parent: -1})
		m.stats.StreamPrefetches++
		e.aheadLine = l
	}
}

// coveredBy reports whether the prefetch high-water mark already covers
// line l in direction dir.
func coveredBy(dir int8, mark, l uint64) bool {
	if dir >= 0 {
		return mark >= l
	}
	return mark <= l
}

// indirectPrefetch issues the indirect prefetches triggered by one index
// access at idxAddr (§3.2.3), walking the secondary-indirection tree
// (§3.3.2). The prefetch distance ramps linearly up to the maximum.
func (m *IMP) indirectPrefetch(e *ptEntry, idx int, idxAddr mem.Addr) {
	if e.prefDist < m.p.MaxPrefetchDistance {
		e.prefDist++
	}
	step := int64(e.elemSize) * int64(e.dir)
	issued := 0
	for d := 1; d <= e.prefDist && issued < m.p.MaxBurst; d++ {
		at := mem.Addr(int64(idxAddr) + int64(d)*step)
		if e.aheadAddr != 0 && coveredBy(e.dir, uint64(e.aheadAddr), uint64(at)) {
			continue
		}
		w := m.memory.ReadWord(at)
		m.emitPattern(e, idx, w, -1)
		issued++
		e.aheadAddr = at
	}
}

// emitPattern emits the prefetch for pattern entry idx with index value w,
// then recurses into its second-way and second-level children. parent is
// the request this one depends on (-1 for the root).
func (m *IMP) emitPattern(e *ptEntry, idx int, w uint64, parent int) {
	target := e.target(w)
	req := prefetch.Request{
		Addr:      target,
		Bytes:     m.prefetchBytes(idx, target),
		Parent:    parent,
		Exclusive: e.storeSeen > e.loadSeen,
	}
	m.reqs = append(m.reqs, req)
	m.stats.IndirectPrefetches++
	self := len(m.reqs) - 1

	// Second-way children share the index value and issue immediately.
	for w8 := e.nextWay; w8 != none; w8 = m.pt[w8].nextWay {
		c := &m.pt[w8]
		t2 := c.target(w)
		m.reqs = append(m.reqs, prefetch.Request{
			Addr: t2, Bytes: m.prefetchBytes(int(w8), t2), Parent: parent,
			Exclusive: c.storeSeen > c.loadSeen,
		})
		m.stats.IndirectPrefetches++
	}
	// Second-level children need the parent's data: chain on the parent
	// request and read the value through the memory image.
	if e.nextLevel != none {
		c := &m.pt[e.nextLevel]
		v2 := m.memory.ReadWord(target)
		m.emitPattern(c, int(e.nextLevel), v2, self)
	}
}

// prefetchBytes asks the granularity predictor how much of the line to
// fetch for pattern idx (full line when partial accessing is off).
func (m *IMP) prefetchBytes(idx int, target mem.Addr) int {
	if m.gp == nil {
		return 0 // full line
	}
	return m.gp.prefetchBytes(idx, target)
}

// lookupStream finds the primary PT entry tracking pc.
func (m *IMP) lookupStream(pc trace.PC) (*ptEntry, int) {
	for i := range m.pt {
		if m.pt[i].valid && m.pt[i].indType == primary && m.pt[i].pc == pc {
			return &m.pt[i], i
		}
	}
	return nil, -1
}

// allocPT claims a PT entry for a new stream (or secondary pattern),
// evicting the LRU entry. Entries that anchor an enabled pattern are
// preferred as survivors over plain stream entries.
func (m *IMP) allocPT(pc trace.PC) (*ptEntry, int) {
	victim := -1
	for i := range m.pt {
		if !m.pt[i].valid {
			victim = i
			break
		}
	}
	if victim == -1 {
		var bestScore uint64
		for i := range m.pt {
			score := m.pt[i].lru
			if m.pt[i].enabled {
				// Bias: keep detected patterns resident longer.
				score += 1 << 20
			}
			if victim == -1 || score < bestScore {
				victim, bestScore = i, score
			}
		}
		m.unlink(victim)
	}
	m.pt[victim] = ptEntry{
		valid: true, pc: pc, lru: m.clock,
		nextWay: none, nextLevel: none, prev: none,
	}
	return &m.pt[victim], victim
}

// unlink removes entry v from any secondary-indirection tree: a way-chain
// member is spliced out (the rest of the chain survives); a root takes its
// whole tree down with it, since orphaned children could never trigger.
func (m *IMP) unlink(v int) {
	e := &m.pt[v]
	spliced := false
	if e.prev != none && m.pt[e.prev].valid {
		p := &m.pt[e.prev]
		if p.nextWay == int8(v) {
			p.nextWay = e.nextWay
			if e.nextWay != none {
				m.pt[e.nextWay].prev = e.prev
			}
			spliced = true
		}
		if p.nextLevel == int8(v) {
			p.nextLevel = none
		}
	}
	if e.nextLevel != none {
		m.invalidateTree(int(e.nextLevel))
	}
	if e.nextWay != none && !spliced {
		m.invalidateTree(int(e.nextWay))
	}
	// Drop IPD entries pointing at v.
	for i := range m.ipd {
		if m.ipd[i].valid && (m.ipd[i].ptIndex == v || m.ipd[i].parentPT == v) {
			m.ipd[i] = ipdEntry{}
		}
	}
	if m.gp != nil {
		m.gp.release(v)
	}
}

func (m *IMP) invalidateTree(i int) {
	if i < 0 || i >= len(m.pt) || !m.pt[i].valid {
		return
	}
	nw, nl := m.pt[i].nextWay, m.pt[i].nextLevel
	m.pt[i] = ptEntry{}
	if m.gp != nil {
		m.gp.release(i)
	}
	if nw != none {
		m.invalidateTree(int(nw))
	}
	if nl != none {
		m.invalidateTree(int(nl))
	}
}

// NoteEviction informs the granularity predictor that the L1 evicted
// lineID with the given 8-byte-word touch vector.
func (m *IMP) NoteEviction(lineID uint64, touch uint8) {
	if m.gp != nil {
		m.gp.noteEviction(lineID, touch)
	}
}

// String summarizes the table state for debugging.
func (m *IMP) String() string {
	active := 0
	enabled := 0
	for i := range m.pt {
		if m.pt[i].valid {
			active++
			if m.pt[i].enabled {
				enabled++
			}
		}
	}
	return fmt.Sprintf("IMP{pt: %d/%d valid, %d enabled, detected=%d}",
		active, len(m.pt), enabled, m.stats.PatternsDetected)
}
