package core

import (
	"testing"

	"github.com/impsim/imp/internal/mem"
)

func TestMinConsecutiveRun(t *testing.T) {
	cases := []struct {
		v    uint8
		want int
	}{
		{0b0000_0000, 0},
		{0b0000_0001, 1},
		{0b1000_0000, 1},
		{0b0000_0011, 2},
		{0b1111_1111, 8},
		{0b0110_0001, 1}, // runs of 2 and 1: min is 1
		{0b0110_0110, 2},
		{0b1011_0111, 1}, // runs 3, 2, 1
	}
	for _, c := range cases {
		if got := minConsecutiveRun(c.v); got != c.want {
			t.Errorf("minConsecutiveRun(%08b) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestTouchToSectors(t *testing.T) {
	// 8-byte sectors: identity.
	if got := touchToSectors(0b1010_0001, 8); got != 0b1010_0001 {
		t.Errorf("8B sectors: %08b", got)
	}
	// 32-byte sectors: words 0-3 -> sector 0, words 4-7 -> sector 1.
	if got := touchToSectors(0b0000_0001, 32); got != 0b01 {
		t.Errorf("32B low: %08b", got)
	}
	if got := touchToSectors(0b1000_0000, 32); got != 0b10 {
		t.Errorf("32B high: %08b", got)
	}
	if got := touchToSectors(0b0001_1000, 32); got != 0b11 {
		t.Errorf("32B straddle: %08b", got)
	}
	if got := touchToSectors(0, 32); got != 0 {
		t.Errorf("32B empty: %08b", got)
	}
}

func gpWithPattern(t *testing.T) (*GranularityPredictor, int) {
	t.Helper()
	p := DefaultParams()
	p.Partial = true
	g := newGP(p)
	g.allocate(3)
	return g, 3
}

func TestGPStartsFullLine(t *testing.T) {
	g, pt := gpWithPattern(t)
	if got := g.Granularity(pt); got != 8 {
		t.Errorf("initial granularity = %d sectors, want 8 (full line)", got)
	}
	if got := g.prefetchBytes(pt, mem.Addr(0x1000)); got != 0 {
		t.Errorf("initial prefetch bytes = %d, want 0 (full line)", got)
	}
	// Unknown pattern: full line.
	if got := g.Granularity(99999 % len(g.entries)); got != 8 {
		t.Errorf("unallocated entry granularity = %d", got)
	}
}

// evictSamples issues prefetches until n lines are sampled, then evicts
// them all with the given touch vector.
func evictSamples(g *GranularityPredictor, pt int, touch uint8) {
	var sampled []uint64
	line := uint64(1000)
	for len(sampled) < g.p.GPSamples {
		g.prefetchBytes(pt, mem.Addr(line<<mem.LineShift))
		if _, ok := g.tracked[line]; ok {
			sampled = append(sampled, line)
		}
		line++
	}
	for _, l := range sampled {
		g.noteEviction(l, touch)
	}
}

func TestGPShrinksOnSparseTouch(t *testing.T) {
	g, pt := gpWithPattern(t)
	// Every sampled line touched in exactly one 8-byte word.
	evictSamples(g, pt, 0b0000_1000)
	if got := g.Granularity(pt); got != 1 {
		t.Errorf("granularity after single-word touches = %d sectors, want 1", got)
	}
	// Algorithm 1: costFull = 4*(8+1) = 36; costPartial = 4 + 4/1 = 8.
	if got := g.prefetchBytes(pt, mem.Addr(0x5000)); got != 8 {
		t.Errorf("prefetch bytes = %d, want 8 (one sector)", got)
	}
}

func TestGPStaysFullOnDenseTouch(t *testing.T) {
	g, pt := gpWithPattern(t)
	evictSamples(g, pt, 0xFF)
	// costFull = 36; costPartial = 32 + 32/8 = 36; full wins ties.
	if got := g.Granularity(pt); got != 8 {
		t.Errorf("granularity after full touches = %d, want 8", got)
	}
}

func TestGPTwoWordRuns(t *testing.T) {
	g, pt := gpWithPattern(t)
	evictSamples(g, pt, 0b0001_1000) // one run of 2 sectors
	// tot = 8, min = 2: costPartial = 8 + 4 = 12 < 36.
	if got := g.Granularity(pt); got != 2 {
		t.Errorf("granularity = %d, want 2", got)
	}
	if got := g.prefetchBytes(pt, mem.Addr(0x5000)); got != 16 {
		t.Errorf("prefetch bytes = %d, want 16", got)
	}
}

func TestGPUntouchedLinesKeepFull(t *testing.T) {
	g, pt := gpWithPattern(t)
	evictSamples(g, pt, 0)
	// Nothing touched: no evidence; stay at full line.
	if got := g.Granularity(pt); got != 8 {
		t.Errorf("granularity after untouched evictions = %d, want 8", got)
	}
}

func TestGPReconsidersAfterEachWindow(t *testing.T) {
	g, pt := gpWithPattern(t)
	evictSamples(g, pt, 0b0000_0001)
	if g.Granularity(pt) != 1 {
		t.Fatal("setup: expected shrink to 1 sector")
	}
	// Workload changes: now every sector is touched; after another sample
	// window the GP must grow back to full lines.
	evictSamples(g, pt, 0xFF)
	if got := g.Granularity(pt); got != 8 {
		t.Errorf("granularity after dense window = %d, want 8 (grows back)", got)
	}
}

func TestGPEvictionOfUntrackedLineIgnored(t *testing.T) {
	g, pt := gpWithPattern(t)
	g.noteEviction(424242, 0xFF)
	if got := g.Granularity(pt); got != 8 {
		t.Errorf("untracked eviction changed granularity to %d", got)
	}
}

func TestGPRelease(t *testing.T) {
	g, pt := gpWithPattern(t)
	// Sample some lines, then release: tracked map must be clean.
	for i := 0; i < 16; i++ {
		g.prefetchBytes(pt, mem.Addr(uint64(2000+i)<<mem.LineShift))
	}
	g.release(pt)
	if len(g.tracked) != 0 {
		t.Errorf("%d lines still tracked after release", len(g.tracked))
	}
	if g.entries[pt].valid {
		t.Error("entry still valid after release")
	}
}

func TestStorageCostMatchesPaper(t *testing.T) {
	p := DefaultParams()
	c := p.Storage()
	// §6.4.1: each PT indirect entry < 120 bits; 16 entries < 2 Kbit.
	if c.PTEntryBits > 120 {
		t.Errorf("PT entry = %d bits, paper says < 120", c.PTEntryBits)
	}
	if c.PTBits > 2048 {
		t.Errorf("PT total = %d bits, paper says < 2 Kbit", c.PTBits)
	}
	// §6.4.1: IPD ~3.5 Kbit (two 48b indices + 4x4 48b BaseAddrs per entry).
	if c.IPDBits < 3000 || c.IPDBits > 4096 {
		t.Errorf("IPD total = %d bits, paper says ~3.5 Kbit", c.IPDBits)
	}
	// Overall ~5.5 Kbit = ~0.7 KB without the GP.
	total := c.TotalBits()
	if total < 4500 || total > 6500 {
		t.Errorf("total = %d bits, paper says ~5.5 Kbit", total)
	}

	// §6.4.2: GP entry ~210 bits (the paper's "less than 210" rounds its
	// counter fields slightly harder than our explicit accounting), total
	// ~3.4 Kbit.
	p.Partial = true
	cg := p.Storage()
	if cg.GPEntryBits > 215 {
		t.Errorf("GP entry = %d bits, paper says ~210", cg.GPEntryBits)
	}
	if cg.GPBits < 2800 || cg.GPBits > 3600 {
		t.Errorf("GP total = %d bits, paper says ~3.4 Kbit", cg.GPBits)
	}
	if cg.String() == "" {
		t.Error("empty storage description")
	}
}

func TestIMPWithPartialEmitsPartialRequests(t *testing.T) {
	p := DefaultParams()
	p.Partial = true
	h := newHarness(p)
	idx := scatteredIndices(512, 1<<20)
	b, a := buildAB(h, idx, 1<<20)
	drive(h, b, a, 64)
	if h.m.GP() == nil {
		t.Fatal("partial IMP has no GP")
	}
	// Evict the sampled lines with sparse touches so the GP shrinks.
	for line, pt := range h.m.GP().tracked {
		_ = pt
		h.m.NoteEviction(line, 0b0000_0001)
	}
	drive(h, b, a, 128)
	partial := 0
	for _, r := range h.reqs {
		if r.Bytes > 0 && r.Bytes < 64 {
			partial++
		}
	}
	if partial == 0 {
		t.Error("no partial-line prefetch requests after GP shrink")
	}
}
