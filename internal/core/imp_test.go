package core

import (
	"testing"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/prefetch"
	"github.com/impsim/imp/internal/trace"
)

// harness drives an IMP instance with a synthetic access stream over a real
// address space, mimicking what the L1 feeds the prefetcher. A toy
// fully-associative "cache" of prefetched/accessed lines decides hit/miss.
type harness struct {
	m     *IMP
	space *mem.Space
	lines map[uint64]bool
	// every request IMP issued, in order
	reqs []prefetch.Request
}

func newHarness(p Params) *harness {
	s := mem.NewSpace()
	h := &harness{space: s, lines: make(map[uint64]bool)}
	h.m = New(p, s)
	return h
}

// access plays one demand access: miss if the line was never fetched.
func (h *harness) access(pc trace.PC, addr mem.Addr, size int, store bool) []prefetch.Request {
	miss := !h.lines[addr.LineID()]
	h.lines[addr.LineID()] = true
	a := prefetch.Access{PC: pc, Addr: addr, Size: size, Store: store, Miss: miss}
	if !store {
		a.Value = h.space.ReadWord(addr)
	}
	reqs := h.m.Observe(a, nil)
	for _, r := range reqs {
		h.lines[r.Addr.LineID()] = true
	}
	h.reqs = append(h.reqs, reqs...)
	return reqs
}

// hasPrefetchFor reports whether any issued request covers addr.
func (h *harness) hasPrefetchFor(addr mem.Addr) bool {
	for _, r := range h.reqs {
		if r.Addr.LineID() == addr.LineID() {
			return true
		}
	}
	return false
}

const (
	pcIndex trace.PC = 1
	pcData  trace.PC = 2
	pcData2 trace.PC = 3
)

// scatteredIndices returns n index values with no arithmetic pattern, all
// below limit.
func scatteredIndices(n, limit int) []int32 {
	out := make([]int32, n)
	x := uint64(88172645463325252)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = int32(x % uint64(limit))
	}
	return out
}

// buildAB allocates an index array B (int32) holding idx values and a data
// array A of float64 (coefficient 8, shift 3).
func buildAB(h *harness, idx []int32, aLen int) (b, a *mem.Region) {
	b = h.space.AllocInt32("B", len(idx))
	copy(b.Int32s(), idx)
	a = h.space.AllocFloat64("A", aLen)
	return b, a
}

// drive runs n iterations of the canonical loop: load B[i]; load A[B[i]].
func drive(h *harness, b, a *mem.Region, n int) {
	for i := 0; i < n && i < b.Len(); i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(b.Int32s()[i])), 8, false)
	}
}

func TestDetectsShift3Pattern(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(64, 4096)
	b, a := buildAB(h, idx, 4096)
	drive(h, b, a, 32)

	if got := h.m.Stats().PatternsDetected; got != 1 {
		t.Fatalf("patterns detected = %d, want 1 (%v)", got, h.m)
	}
	e, _ := h.m.lookupStream(pcIndex)
	if e == nil || !e.enabled {
		t.Fatal("stream entry not enabled after detection")
	}
	if e.shift != 3 {
		t.Errorf("shift = %d, want 3 (coefficient 8)", e.shift)
	}
	if mem.Addr(e.baseAddr) != a.Base {
		t.Errorf("baseAddr = %#x, want %v", e.baseAddr, a.Base)
	}
}

func TestIndirectPrefetchesCoverFutureTargets(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(128, 1<<20)
	b, a := buildAB(h, idx, 1<<20)
	drive(h, b, a, 64)

	if h.m.Stats().IndirectPrefetches == 0 {
		t.Fatal("no indirect prefetches issued")
	}
	// After warmup, future targets must have been prefetched before their
	// demand access: drive far enough that i=40..60 were prefetched.
	covered := 0
	for i := 40; i < 60; i++ {
		if h.hasPrefetchFor(a.Addr(int(idx[i]))) {
			covered++
		}
	}
	if covered < 18 {
		t.Errorf("only %d/20 future targets covered by prefetches", covered)
	}
}

func TestPrefetchDistanceRamps(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(256, 1<<20)
	b, a := buildAB(h, idx, 1<<20)
	drive(h, b, a, 200)
	e, _ := h.m.lookupStream(pcIndex)
	if e.prefDist != DefaultParams().MaxPrefetchDistance {
		t.Errorf("prefetch distance = %d, want ramped to %d", e.prefDist, DefaultParams().MaxPrefetchDistance)
	}
}

func TestShift2Coefficient4(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(64, 4096)
	b := h.space.AllocInt32("B", len(idx))
	copy(b.Int32s(), idx)
	a := h.space.AllocInt32("A32", 4096) // 4-byte elements: shift 2
	for i := 0; i < 32; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(idx[i])), 4, false)
	}
	e, _ := h.m.lookupStream(pcIndex)
	if !e.enabled || e.shift != 2 {
		t.Errorf("enabled=%v shift=%d, want shift 2", e.enabled, e.shift)
	}
}

func TestShift4Coefficient16(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(64, 2048)
	b := h.space.AllocInt32("B", len(idx))
	copy(b.Int32s(), idx)
	// 16-byte structures: allocate raw bytes, access element starts.
	a := h.space.AllocBytes("A16", 2048*16)
	for i := 0; i < 32; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(idx[i])*16), 8, false)
	}
	e, _ := h.m.lookupStream(pcIndex)
	if !e.enabled || e.shift != 4 {
		t.Errorf("enabled=%v shift=%d, want shift 4", e.enabled, e.shift)
	}
}

func TestShiftMinus3BitVector(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(64, 1<<18)
	b := h.space.AllocInt32("B", len(idx))
	copy(b.Int32s(), idx)
	bv := h.space.AllocBytes("bits", 1<<15) // bit vector: byte = idx >> 3
	for i := 0; i < 40; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, bv.Addr(int(idx[i])>>3), 1, false)
	}
	e, _ := h.m.lookupStream(pcIndex)
	if !e.enabled || e.shift != -3 {
		t.Errorf("enabled=%v shift=%d, want shift -3 (coefficient 1/8)", e.enabled, e.shift)
	}
}

func TestNoDetectionWithoutIndirection(t *testing.T) {
	h := newHarness(DefaultParams())
	b := h.space.AllocInt32("B", 512)
	for i := range b.Int32s() {
		b.Int32s()[i] = int32(i * 7)
	}
	// Pure streaming: no dependent access follows the index loads.
	for i := 0; i < 256; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
	}
	if got := h.m.Stats().PatternsDetected; got != 0 {
		t.Errorf("detected %d patterns on a pure stream", got)
	}
	if h.m.Stats().IndirectPrefetches != 0 {
		t.Error("issued indirect prefetches without a pattern")
	}
	// Stream prefetches of the index array itself are expected.
	if h.m.Stats().StreamPrefetches == 0 {
		t.Error("no stream prefetches on a sequential scan")
	}
}

func TestRandomTrafficNoFalsePattern(t *testing.T) {
	h := newHarness(DefaultParams())
	data := h.space.AllocFloat64("heap", 1<<16)
	x := uint64(2463534242)
	for i := 0; i < 400; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		h.access(trace.PC(100+(x%3)), data.Addr(int(x%(1<<16))), 8, false)
	}
	if got := h.m.Stats().PatternsDetected; got != 0 {
		t.Errorf("detected %d patterns in random traffic", got)
	}
}

func TestConfidenceGatesPrefetching(t *testing.T) {
	// With a confidence threshold higher than the matches the short run can
	// accumulate, no indirect prefetch may ever issue (§3.2.3: prefetching
	// starts only once the saturating counter reaches the threshold).
	p := DefaultParams()
	p.ConfidenceThreshold = 8
	p.ConfidenceMax = 8
	h := newHarness(p)
	idx := scatteredIndices(64, 1<<16)
	b, a := buildAB(h, idx, 1<<16)

	drive(h, b, a, 8) // detects the pattern but accumulates < 8 matches
	e, _ := h.m.lookupStream(pcIndex)
	if e == nil || !e.enabled {
		t.Skip("pattern not yet detected at iteration 8; detection timing changed")
	}
	// Break the pattern so confidence can never reach the threshold.
	other := h.space.AllocFloat64("other", 1024)
	for i := 8; i < 16; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, other.Addr(i), 8, false) // never matches predictions
	}
	if got := h.m.Stats().IndirectPrefetches; got != 0 {
		t.Errorf("issued %d indirect prefetches below the confidence threshold", got)
	}
}

func TestConfidenceDropsStopPrefetching(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(256, 1<<20)
	b, a := buildAB(h, idx, 1<<20)
	drive(h, b, a, 40) // detected + prefetching

	e, _ := h.m.lookupStream(pcIndex)
	if !e.enabled || e.hitCnt < DefaultParams().ConfidenceThreshold {
		t.Fatal("pattern not confident after 40 iterations")
	}
	// Break the pattern: keep streaming the index but stop touching A.
	other := h.space.AllocFloat64("other", 4096)
	for i := 40; i < 80; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData2, other.Addr(i), 8, false)
	}
	mid := h.m.Stats().IndirectPrefetches
	for i := 80; i < 120; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData2, other.Addr(i), 8, false)
	}
	if got := h.m.Stats().IndirectPrefetches; got != mid {
		t.Errorf("still issuing indirect prefetches (%d more) after the pattern broke", got-mid)
	}
}

func TestNestedLoopResumesWithoutRelearning(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(512, 1<<20)
	b, a := buildAB(h, idx, 1<<20)

	// Inner loop 1: iterate 32 elements, enough to detect and prefetch.
	drive(h, b, a, 32)
	detected := h.m.Stats().PatternsDetected
	if detected != 1 {
		t.Fatalf("patterns after first inner loop = %d", detected)
	}

	// Outer loop restarts the scan at a far position (stream hiccup).
	start := 300
	issuedBefore := h.m.Stats().IndirectPrefetches
	for i := start; i < start+8; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(idx[i])), 8, false)
	}
	if got := h.m.Stats().PatternsDetected; got != detected {
		t.Errorf("re-detected pattern after restart (%d total), want reuse", got)
	}
	if got := h.m.Stats().IndirectPrefetches; got <= issuedBefore {
		t.Error("no indirect prefetches after nested-loop restart")
	}
	// And they must target the new position's future indices.
	found := false
	for i := start + 1; i < start+16; i++ {
		if h.hasPrefetchFor(a.Addr(int(idx[i]))) {
			found = true
			break
		}
	}
	if !found {
		t.Error("post-restart prefetches do not cover the new scan position")
	}
}

func TestMultiWayDetection(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(128, 1<<16)
	b := h.space.AllocInt32("B", len(idx))
	copy(b.Int32s(), idx)
	a := h.space.AllocFloat64("A", 1<<16)
	c := h.space.AllocInt64("C", 1<<16)
	// load B[i]; load A[B[i]]; load C[B[i]]  (Listing 2)
	for i := 0; i < 64; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(idx[i])), 8, false)
		h.access(pcData2, c.Addr(int(idx[i])), 8, false)
	}
	st := h.m.Stats()
	if st.PatternsDetected != 1 {
		t.Fatalf("primary patterns = %d, want 1", st.PatternsDetected)
	}
	if st.SecondaryDetected < 1 {
		t.Fatalf("secondary patterns = %d, want >= 1 (second way)", st.SecondaryDetected)
	}
	e, ei := h.m.lookupStream(pcIndex)
	if e.nextWay == none {
		t.Fatal("primary entry has no way child")
	}
	child := &h.m.pt[e.nextWay]
	if child.indType != secondWay || child.prev != int8(ei) {
		t.Errorf("way child: type=%v prev=%d, want second-way linked to %d", child.indType, child.prev, ei)
	}
	// Both arrays' future elements must be prefetched.
	futureA, futureC := 0, 0
	for i := 40; i < 60; i++ {
		if h.hasPrefetchFor(a.Addr(int(idx[i]))) {
			futureA++
		}
		if h.hasPrefetchFor(c.Addr(int(idx[i]))) {
			futureC++
		}
	}
	if futureA < 15 || futureC < 15 {
		t.Errorf("coverage A=%d/20 C=%d/20, want both high", futureA, futureC)
	}
}

func TestMultiLevelDetection(t *testing.T) {
	h := newHarness(DefaultParams())
	// Listing 3: load A[B[C[i]]]. C scanned; B int64 indexed by C values;
	// A indexed by B values.
	cIdx := scatteredIndices(128, 2048)
	c := h.space.AllocInt32("C", len(cIdx))
	copy(c.Int32s(), cIdx)
	b := h.space.AllocInt64("B", 2048)
	bIdx := scatteredIndices(2048, 1<<16)
	for i, v := range bIdx {
		b.Int64s()[i] = int64(v)
	}
	a := h.space.AllocFloat64("A", 1<<16)

	for i := 0; i < 96; i++ {
		ci := int(cIdx[i])
		h.access(pcIndex, c.Addr(i), 4, false)
		h.access(pcData, b.Addr(ci), 8, false)
		h.access(pcData2, a.Addr(int(b.Int64s()[ci])), 8, false)
	}
	st := h.m.Stats()
	if st.PatternsDetected < 1 {
		t.Fatal("no primary pattern detected")
	}
	if st.SecondaryDetected < 1 {
		t.Fatal("no second-level pattern detected")
	}
	e, _ := h.m.lookupStream(pcIndex)
	if e.nextLevel == none {
		t.Fatal("primary entry has no level child")
	}
	child := &h.m.pt[e.nextLevel]
	if child.indType != secondLevel {
		t.Errorf("level child type = %v", child.indType)
	}
	// Future second-level targets covered.
	covered := 0
	for i := 60; i < 80; i++ {
		if h.hasPrefetchFor(a.Addr(int(b.Int64s()[int(cIdx[i])]))) {
			covered++
		}
	}
	if covered < 10 {
		t.Errorf("second-level coverage %d/20", covered)
	}
	// Chained requests must carry the parent dependency.
	dep := false
	for _, r := range h.reqs {
		if r.Parent >= 0 {
			dep = true
			break
		}
	}
	if !dep {
		t.Error("no request carries a parent dependency (second level must wait)")
	}
}

func TestBackoffAfterFailedDetection(t *testing.T) {
	h := newHarness(DefaultParams())
	b := h.space.AllocInt32("B", 4096)
	for i := range b.Int32s() {
		b.Int32s()[i] = int32(i * 13 % 509)
	}
	// Stream B but follow each index with a miss that matches no Eq. 2
	// relation (a second independent stream).
	junk := h.space.AllocFloat64("junk", 1<<18)
	x := 1
	for i := 0; i < 600; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		x = (x * 29) % (1 << 18)
		h.access(pcData, junk.Addr(x), 8, false)
	}
	st := h.m.Stats()
	if st.DetectionFailures == 0 {
		t.Fatal("no detection failures recorded")
	}
	e, _ := h.m.lookupStream(pcIndex)
	if e.failCount == 0 || e.backoffTill <= h.m.clock-500 {
		t.Errorf("no back-off in effect: failCount=%d backoffTill=%d clock=%d",
			e.failCount, e.backoffTill, h.m.clock)
	}
	// Back-off must be exponential: failures far fewer than index accesses.
	if st.DetectionFailures > st.IndexAccesses/4 {
		t.Errorf("failures %d vs %d index accesses: back-off not slowing detection",
			st.DetectionFailures, st.IndexAccesses)
	}
}

func TestPTEvictionKeepsPatternsWhenPossible(t *testing.T) {
	p := DefaultParams()
	p.PTEntries = 4
	h := newHarness(p)
	idx := scatteredIndices(64, 1<<16)
	b, a := buildAB(h, idx, 1<<16)
	drive(h, b, a, 32)
	if h.m.Stats().PatternsDetected != 1 {
		t.Fatal("setup: pattern not detected")
	}
	// Touch many unrelated streaming PCs to pressure the PT.
	for pc := trace.PC(50); pc < 53; pc++ {
		r := h.space.AllocInt32("noise", 256)
		for i := 0; i < 16; i++ {
			h.access(pc, r.Addr(i), 4, false)
		}
	}
	e, _ := h.m.lookupStream(pcIndex)
	if e == nil || !e.enabled {
		t.Error("enabled pattern evicted while plain stream entries existed")
	}
}

func TestExclusivePrefetchForStores(t *testing.T) {
	h := newHarness(DefaultParams())
	idx := scatteredIndices(128, 1<<16)
	b, a := buildAB(h, idx, 1<<16)
	// A[B[i]] is stored to, not loaded (e.g. scatter updates).
	for i := 0; i < 64; i++ {
		h.access(pcIndex, b.Addr(i), 4, false)
		h.access(pcData, a.Addr(int(idx[i])), 8, true)
	}
	if h.m.Stats().PatternsDetected != 1 {
		t.Fatal("store-target pattern not detected")
	}
	exclusive := 0
	total := 0
	for _, r := range h.reqs {
		if r.Bytes == 0 && r.Addr >= a.Base && r.Addr < a.End() {
			total++
			if r.Exclusive {
				exclusive++
			}
		}
	}
	if total == 0 || exclusive*2 < total {
		t.Errorf("exclusive prefetches %d/%d, want majority (read/write predictor)", exclusive, total)
	}
}

func TestStatsString(t *testing.T) {
	h := newHarness(DefaultParams())
	if got := h.m.String(); got == "" {
		t.Error("empty String()")
	}
	if h.m.Name() != "imp" {
		t.Errorf("Name = %q", h.m.Name())
	}
	p := DefaultParams()
	p.Partial = true
	if New(p, h.space).Name() != "imp+partial" {
		t.Error("partial name wrong")
	}
}

func TestValidateParams(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.PTEntries = 0
	if bad.Validate() == nil {
		t.Error("accepted zero PT entries")
	}
	bad = DefaultParams()
	bad.Shifts = nil
	if bad.Validate() == nil {
		t.Error("accepted empty shift set")
	}
	bad = DefaultParams()
	bad.Shifts = []int8{9}
	if bad.Validate() == nil {
		t.Error("accepted out-of-range shift")
	}
}

func TestShiftApply(t *testing.T) {
	cases := []struct {
		v    uint64
		s    int8
		want uint64
	}{
		{5, 2, 20}, {5, 3, 40}, {5, 4, 80}, {40, -3, 5}, {41, -3, 5}, {7, 0, 7},
	}
	for _, c := range cases {
		if got := shiftApply(c.v, c.s); got != c.want {
			t.Errorf("shiftApply(%d,%d) = %d, want %d", c.v, c.s, got, c.want)
		}
	}
}
