package core

import "github.com/impsim/imp/internal/mem"

// ipdEntry is one Indirect Pattern Detector entry (Fig 4). Each entry tries
// to solve Eq. 2 for one candidate pattern: it pairs the first
// BaseAddrArrayLen misses after an index read with idx1 (computing a
// candidate BaseAddr per shift), then compares the BaseAddrs implied by
// misses after the next index read (idx2). A match on the same shift means
// two equations agree on (shift, BaseAddr): a detected pattern.
type ipdEntry struct {
	valid bool
	// ptIndex is the PT entry that owns the index stream being analyzed:
	// the stream entry for primary and second-way detection, the parent
	// pattern entry for second-level detection.
	ptIndex int
	kind    indType
	idx1    uint64
	idx2    uint64
	hasIdx2 bool
	miss1   int // misses recorded against idx1
	miss2   int // misses compared against idx2
	// baseaddrs holds the candidate BaseAddr per (shift, slot):
	// baseaddrs[si*BaseAddrArrayLen+k] pairs Shifts[si] with the k-th miss.
	baseaddrs []uint64
	// parentPT is kept for unlink bookkeeping (same as ptIndex today).
	parentPT int
}

// ipdFind returns the live detector for (owner, kind), or nil.
func (m *IMP) ipdFind(owner int, kind indType) *ipdEntry {
	for i := range m.ipd {
		if m.ipd[i].valid && m.ipd[i].ptIndex == owner && m.ipd[i].kind == kind {
			return &m.ipd[i]
		}
	}
	return nil
}

// ipdAdvance feeds the next index value of owner's raw index stream to any
// detector keyed on it (primary and second-way detection run off the same
// stream). A detector that already had both indices gets released: the
// third index arrived without a match, so no pattern exists (§3.2.2).
func (m *IMP) ipdAdvance(owner int, value uint64) {
	for i := range m.ipd {
		e := &m.ipd[i]
		if !e.valid || e.ptIndex != owner || e.kind == secondLevel {
			continue
		}
		m.ipdStep(e, value)
	}
}

// ipdStep advances one detector with the next index value.
func (m *IMP) ipdStep(e *ipdEntry, value uint64) {
	if !e.hasIdx2 {
		if value == e.idx1 {
			// Equal indices cannot disambiguate BaseAddr; wait for a
			// distinct one. Misses keep accumulating against idx1, which
			// remains correct since B[i] == B[i+1].
			return
		}
		e.idx2 = value
		e.hasIdx2 = true
		return
	}
	// Third distinct index without a match: give up and back off.
	owner := e.ptIndex
	*e = ipdEntry{}
	m.registerFailure(owner)
}

// ipdEnsure allocates a detector for (owner, kind) with first index value
// if none is live and a free IPD slot exists. The caller is responsible
// for back-off checks.
func (m *IMP) ipdEnsure(owner int, kind indType, value uint64) {
	if m.ipdFind(owner, kind) != nil {
		return
	}
	for i := range m.ipd {
		if m.ipd[i].valid {
			continue
		}
		m.ipd[i] = ipdEntry{
			valid: true, ptIndex: owner, parentPT: owner, kind: kind, idx1: value,
			baseaddrs: make([]uint64, len(m.p.Shifts)*m.p.BaseAddrArrayLen),
		}
		return
	}
	// IPD full: the stream retries on a later index access.
}

// ipdFeedLevel feeds a value loaded at pattern owner's predicted target:
// the candidate index stream of a second-level indirection (§3.3.2).
func (m *IMP) ipdFeedLevel(owner int, value uint64) {
	if m.pt[owner].nextLevel != none {
		return // level child already detected
	}
	if e := m.ipdFind(owner, secondLevel); e != nil {
		m.ipdStep(e, value)
		return
	}
	if m.clock >= m.pt[owner].backoffTill {
		m.ipdEnsure(owner, secondLevel, value)
	}
}

// ipdObserveMiss pairs an L1 miss with every live detector (§3.2.2).
func (m *IMP) ipdObserveMiss(addr mem.Addr) {
	for i := range m.ipd {
		e := &m.ipd[i]
		if !e.valid {
			continue
		}
		// Secondary detection must not re-discover the pattern whose
		// predictions already explain this miss.
		if e.kind != primary && m.predictedByAnyPattern(addr) {
			continue
		}
		if !e.hasIdx2 {
			if e.miss1 < m.p.BaseAddrArrayLen {
				for si, s := range m.p.Shifts {
					e.baseaddrs[si*m.p.BaseAddrArrayLen+e.miss1] = uint64(addr) - shiftApply(e.idx1, s)
				}
				e.miss1++
			}
			continue
		}
		if e.miss2 >= m.p.BaseAddrArrayLen {
			continue
		}
		e.miss2++
		if si, base, ok := m.ipdMatch(e, addr); ok {
			m.detect(i, m.p.Shifts[si], base)
		}
	}
}

// ipdMatch compares the BaseAddrs implied by (idx2, addr) for each shift
// against those recorded for idx1, returning the matching shift index and
// BaseAddr.
func (m *IMP) ipdMatch(e *ipdEntry, addr mem.Addr) (int, uint64, bool) {
	for si, s := range m.p.Shifts {
		cand := uint64(addr) - shiftApply(e.idx2, s)
		for k := 0; k < e.miss1; k++ {
			if e.baseaddrs[si*m.p.BaseAddrArrayLen+k] == cand {
				return si, cand, true
			}
		}
	}
	return 0, 0, false
}

// predictedByAnyPattern reports whether addr equals the current predicted
// target of any enabled pattern.
func (m *IMP) predictedByAnyPattern(addr mem.Addr) bool {
	for i := range m.pt {
		e := &m.pt[i]
		if e.valid && e.enabled && e.indexValid && e.expected() == addr {
			return true
		}
	}
	return false
}

// detect turns a successful IPD match into a live PT pattern and releases
// the detector entry.
func (m *IMP) detect(ipdIdx int, shift int8, base uint64) {
	e := m.ipd[ipdIdx]
	m.ipd[ipdIdx] = ipdEntry{}
	owner := e.ptIndex
	if owner < 0 || owner >= len(m.pt) || !m.pt[owner].valid {
		return
	}

	// Reject duplicates of patterns already hanging off this stream.
	if m.duplicatePattern(owner, shift, base) {
		return
	}

	switch e.kind {
	case primary:
		o := &m.pt[owner]
		o.enabled = true
		o.shift = shift
		o.baseAddr = base
		o.hitCnt = 0
		o.prefDist = 1
		o.aheadAddr = 0
		o.failCount = 0
		o.indexValid = false
		m.stats.PatternsDetected++
		if m.gp != nil {
			m.gp.allocate(owner)
		}
	case secondWay:
		child, ci := m.allocSecondary(owner)
		if child == nil {
			return
		}
		child.indType = secondWay
		child.enabled = true
		child.shift = shift
		child.baseAddr = base
		// Append to the owner's way chain; prev points at the chain
		// predecessor so splicing on eviction works.
		at := owner
		for m.pt[at].nextWay != none {
			at = int(m.pt[at].nextWay)
		}
		m.pt[at].nextWay = int8(ci)
		child.prev = int8(at)
		m.stats.SecondaryDetected++
		if m.gp != nil {
			m.gp.allocate(ci)
		}
	case secondLevel:
		if m.pt[owner].nextLevel != none {
			return
		}
		child, ci := m.allocSecondary(owner)
		if child == nil {
			return
		}
		child.indType = secondLevel
		child.enabled = true
		child.shift = shift
		child.baseAddr = base
		child.prev = int8(owner)
		m.pt[owner].nextLevel = int8(ci)
		m.stats.SecondaryDetected++
		if m.gp != nil {
			m.gp.allocate(ci)
		}
	}
}

// duplicatePattern reports whether (shift, base) already exists in owner's
// pattern tree (including owner itself).
func (m *IMP) duplicatePattern(owner int, shift int8, base uint64) bool {
	root := owner
	for m.pt[root].prev != none {
		root = int(m.pt[root].prev)
	}
	var walk func(i int) bool
	walk = func(i int) bool {
		if i < 0 || !m.pt[i].valid {
			return false
		}
		e := &m.pt[i]
		if e.enabled && e.shift == shift && e.baseAddr == base {
			return true
		}
		if e.nextLevel != none && walk(int(e.nextLevel)) {
			return true
		}
		if e.nextWay != none && walk(int(e.nextWay)) {
			return true
		}
		return false
	}
	return walk(root)
}

// allocSecondary claims a PT entry for a secondary pattern without evicting
// anything in owner's own tree.
func (m *IMP) allocSecondary(owner int) (*ptEntry, int) {
	protected := make(map[int]bool)
	root := owner
	for m.pt[root].prev != none {
		root = int(m.pt[root].prev)
	}
	var mark func(i int)
	mark = func(i int) {
		if i < 0 || protected[i] {
			return
		}
		protected[i] = true
		if m.pt[i].nextWay != none {
			mark(int(m.pt[i].nextWay))
		}
		if m.pt[i].nextLevel != none {
			mark(int(m.pt[i].nextLevel))
		}
	}
	mark(root)

	victim := -1
	var bestScore uint64
	for i := range m.pt {
		if protected[i] {
			continue
		}
		if !m.pt[i].valid {
			victim = i
			break
		}
		score := m.pt[i].lru
		if m.pt[i].enabled {
			score += 1 << 20
		}
		if victim == -1 || score < bestScore {
			victim, bestScore = i, score
		}
	}
	if victim == -1 {
		return nil, -1
	}
	if m.pt[victim].valid {
		m.unlink(victim)
	}
	m.pt[victim] = ptEntry{
		valid: true, lru: m.clock,
		nextWay: none, nextLevel: none, prev: none,
	}
	return &m.pt[victim], victim
}

// registerFailure applies the exponential detection back-off (§3.2.2).
func (m *IMP) registerFailure(owner int) {
	if owner < 0 || owner >= len(m.pt) || !m.pt[owner].valid {
		return
	}
	e := &m.pt[owner]
	e.failCount++
	m.stats.DetectionFailures++
	exp := e.failCount
	if exp > m.p.MaxBackoffLog2 {
		exp = m.p.MaxBackoffLog2
	}
	e.backoffTill = m.clock + (1 << uint(exp))
}
