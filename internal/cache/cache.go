// Package cache implements the set-associative sector caches used for both
// L1 and the distributed L2 slices.
//
// Lines carry per-sector valid bits (§4.1 of the paper): a full-line cache
// is simply a sector cache with one 64-byte sector. Lines also carry a fill
// timestamp so the simulator can model late prefetches (a demand access to a
// line whose fill is still in flight stalls only for the residual latency),
// plus prefetched/used bits for accuracy accounting and an 8-byte-granular
// touch vector feeding IMP's Granularity Predictor.
package cache

import (
	"fmt"
	"math/bits"

	"github.com/impsim/imp/internal/mem"
)

// State is the coherence state of a line. The directory protocol is MSI;
// Exclusive is folded into Modified as is conventional for simple models.
type State uint8

// Line states.
const (
	Invalid State = iota
	Shared
	Modified
)

func (s State) String() string {
	switch s {
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return "I"
	}
}

// SectorMask is a bitmask over the sectors of one line, bit i covering
// bytes [i*sectorBytes, (i+1)*sectorBytes).
type SectorMask uint8

// FullMask returns the mask covering all sectors of a line with the given
// sector size.
func FullMask(sectorBytes int) SectorMask {
	n := mem.LineSize / sectorBytes
	return SectorMask(1<<n - 1)
}

// MaskForRange returns the sector mask covering bytes
// [offset, offset+size) of a line.
func MaskForRange(offset, size uint64, sectorBytes int) SectorMask {
	if size == 0 {
		size = 1
	}
	lo := offset / uint64(sectorBytes)
	hi := (offset + size - 1) / uint64(sectorBytes)
	var m SectorMask
	for i := lo; i <= hi && i < uint64(mem.LineSize/sectorBytes); i++ {
		m |= 1 << i
	}
	return m
}

// Count returns the number of sectors in the mask.
func (m SectorMask) Count() int { return bits.OnesCount8(uint8(m)) }

// Line is one cache frame. Fields are exported so the simulator and the
// Granularity Predictor can inspect evicted lines.
type Line struct {
	Tag        uint64 // line id (address >> 6); meaningful only when State != Invalid
	State      State
	Valid      SectorMask
	FillTime   int64 // cycle at which the most recent fill completes
	Prefetched bool  // brought in by a prefetch and not yet demand-touched
	Used       bool  // demand-touched since fill
	Touch      uint8 // 8-byte words touched by demand accesses since fill
	lru        uint64
}

// Config sizes a cache.
type Config struct {
	SizeBytes   int // total capacity
	Ways        int
	SectorBytes int // 64 for a conventional cache; 8 (L1) or 32 (L2) sectored
}

// Validate checks that the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive size or ways: %+v", c)
	}
	if c.SizeBytes%(c.Ways*mem.LineSize) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*linesize", c.SizeBytes)
	}
	switch c.SectorBytes {
	case 8, 16, 32, 64:
	default:
		return fmt.Errorf("cache: unsupported sector size %d", c.SectorBytes)
	}
	sets := c.SizeBytes / (c.Ways * mem.LineSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// LookupResult describes the outcome of a cache access.
type LookupResult int

// Lookup outcomes.
const (
	// Miss: the line is not present at all.
	Miss LookupResult = iota
	// SectorMiss: the line is present but one or more requested sectors are
	// invalid (partial-line caches only).
	SectorMiss
	// Hit: line present with all requested sectors valid.
	Hit
)

func (r LookupResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case SectorMiss:
		return "sector-miss"
	default:
		return "miss"
	}
}

// Cache is a single set-associative sector cache. It is not safe for
// concurrent use; the simulator serializes accesses.
type Cache struct {
	cfg      Config
	sets     [][]Line
	setMask  uint64
	fullMask SectorMask
	clock    uint64
}

// New builds a cache from cfg; it panics on invalid configuration, which is
// a programming error in experiment setup.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.Ways * mem.LineSize)
	sets := make([][]Line, numSets)
	frames := make([]Line, numSets*cfg.Ways)
	for i := range sets {
		sets[i], frames = frames[:cfg.Ways], frames[cfg.Ways:]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(numSets - 1),
		fullMask: FullMask(cfg.SectorBytes),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// SectorsPerLine returns the number of sectors in each line.
func (c *Cache) SectorsPerLine() int { return mem.LineSize / c.cfg.SectorBytes }

// FullMask returns the all-sectors mask for this cache.
func (c *Cache) FullMask() SectorMask { return c.fullMask }

// MaskFor returns the sector mask an access of size bytes at addr needs.
func (c *Cache) MaskFor(addr mem.Addr, size int) SectorMask {
	return MaskForRange(addr.Offset(), uint64(size), c.cfg.SectorBytes)
}

func (c *Cache) set(lineID uint64) []Line { return c.sets[lineID&c.setMask] }

// find returns the frame holding lineID, or nil.
func (c *Cache) find(lineID uint64) *Line {
	set := c.set(lineID)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == lineID {
			return &set[i]
		}
	}
	return nil
}

// Probe returns the frame holding lineID without updating replacement
// state, or nil if absent.
func (c *Cache) Probe(lineID uint64) *Line { return c.find(lineID) }

// Lookup accesses the sectors in need of lineID, updating LRU on presence.
// It reports the outcome and the frame (nil on Miss). For a write
// (needStore), a Shared line reports SectorMiss semantics via the
// upgradeNeeded result instead; callers check State themselves, so Lookup
// only concerns data presence.
func (c *Cache) Lookup(lineID uint64, need SectorMask) (LookupResult, *Line) {
	ln := c.find(lineID)
	if ln == nil {
		return Miss, nil
	}
	c.clock++
	ln.lru = c.clock
	if ln.Valid&need != need {
		return SectorMiss, ln
	}
	return Hit, ln
}

// MarkDemandUse records a demand access of the 8-byte words covering
// [offset, offset+size) on a line: sets Used, clears the
// not-yet-demand-touched prefetch marker, and accumulates the touch vector.
// It returns true if this was the first demand touch of a prefetched line
// (the event accuracy accounting counts as a "useful prefetch").
func MarkDemandUse(ln *Line, offset, size uint64) (firstUseOfPrefetch bool) {
	if size == 0 {
		size = 1
	}
	lo := offset / 8
	hi := (offset + size - 1) / 8
	for i := lo; i <= hi && i < 8; i++ {
		ln.Touch |= 1 << i
	}
	firstUseOfPrefetch = ln.Prefetched && !ln.Used
	ln.Used = true
	return firstUseOfPrefetch
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	LineID     uint64
	State      State
	Valid      SectorMask
	Prefetched bool // was prefetched and never demand-used
	Used       bool
	Touch      uint8
}

// Insert places lineID with the given sectors, state and fill time,
// evicting the LRU frame if the set is full. If the line is already
// present, the sectors and state are merged instead (a sector fill) and the
// fill time advances to the later of the two.
// The returned eviction has State != Invalid only when a valid line was
// displaced.
func (c *Cache) Insert(lineID uint64, sectors SectorMask, st State, fillTime int64, prefetched bool) Eviction {
	if ln := c.find(lineID); ln != nil {
		ln.Valid |= sectors
		if st > ln.State {
			ln.State = st
		}
		if fillTime > ln.FillTime {
			ln.FillTime = fillTime
		}
		c.clock++
		ln.lru = c.clock
		return Eviction{}
	}
	set := c.set(lineID)
	victim := &set[0]
	for i := range set {
		if set[i].State == Invalid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	ev := Eviction{}
	if victim.State != Invalid {
		ev = Eviction{
			LineID:     victim.Tag,
			State:      victim.State,
			Valid:      victim.Valid,
			Prefetched: victim.Prefetched && !victim.Used,
			Used:       victim.Used,
			Touch:      victim.Touch,
		}
	}
	c.clock++
	*victim = Line{
		Tag: lineID, State: st, Valid: sectors, FillTime: fillTime,
		Prefetched: prefetched, lru: c.clock,
	}
	return ev
}

// Invalidate removes lineID (coherence invalidation). It returns the line's
// prior state (Invalid if it was not present) and whether the line was a
// never-used prefetch.
func (c *Cache) Invalidate(lineID uint64) (State, bool) {
	ln := c.find(lineID)
	if ln == nil {
		return Invalid, false
	}
	st := ln.State
	wasted := ln.Prefetched && !ln.Used
	*ln = Line{}
	return st, wasted
}

// Downgrade moves lineID from Modified to Shared (directory recall),
// reporting whether the line was present and modified.
func (c *Cache) Downgrade(lineID uint64) bool {
	ln := c.find(lineID)
	if ln == nil || ln.State != Modified {
		return false
	}
	ln.State = Shared
	return true
}

// ForEachValid calls fn for every valid line. Used by tests and end-of-run
// accuracy accounting (prefetched lines still resident count as unused).
func (c *Cache) ForEachValid(fn func(*Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].State != Invalid {
				fn(&c.sets[s][w])
			}
		}
	}
}
