// Package cache implements the set-associative sector caches used for both
// L1 and the distributed L2 slices.
//
// Lines carry per-sector valid bits (§4.1 of the paper): a full-line cache
// is simply a sector cache with one 64-byte sector. Lines also carry a fill
// timestamp so the simulator can model late prefetches (a demand access to a
// line whose fill is still in flight stalls only for the residual latency),
// plus prefetched/used bits for accuracy accounting and an 8-byte-granular
// touch vector feeding IMP's Granularity Predictor.
package cache

import (
	"fmt"
	"math/bits"

	"github.com/impsim/imp/internal/mem"
)

// State is the coherence state of a line. The directory protocol is MSI;
// Exclusive is folded into Modified as is conventional for simple models.
type State uint8

// Line states.
const (
	Invalid State = iota
	Shared
	Modified
)

func (s State) String() string {
	switch s {
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return "I"
	}
}

// SectorMask is a bitmask over the sectors of one line, bit i covering
// bytes [i*sectorBytes, (i+1)*sectorBytes).
type SectorMask uint8

// FullMask returns the mask covering all sectors of a line with the given
// sector size.
func FullMask(sectorBytes int) SectorMask {
	n := mem.LineSize / sectorBytes
	return SectorMask(1<<n - 1)
}

// MaskForRange returns the sector mask covering bytes
// [offset, offset+size) of a line. Computed arithmetically — this runs once
// per simulated access, where the per-sector loop showed up in profiles.
func MaskForRange(offset, size uint64, sectorBytes int) SectorMask {
	if size == 0 {
		size = 1
	}
	n := uint64(mem.LineSize / sectorBytes)
	lo := offset / uint64(sectorBytes)
	if lo >= n {
		return 0
	}
	hi := (offset + size - 1) / uint64(sectorBytes)
	if hi >= n {
		hi = n - 1
	}
	// Bits [lo, hi] set; hi < 8 so the shifts stay in range.
	return SectorMask((uint(1)<<(hi+1) - 1) &^ (uint(1)<<lo - 1))
}

// Count returns the number of sectors in the mask.
func (m SectorMask) Count() int { return bits.OnesCount8(uint8(m)) }

// Line is one cache frame. Fields are exported so the simulator and the
// Granularity Predictor can inspect evicted lines. Callers may flip State
// between Shared and Modified in place, but removing a line must go through
// Invalidate so the cache's tag index stays in sync.
type Line struct {
	Tag        uint64 // line id (address >> 6); meaningful only when State != Invalid
	State      State
	Valid      SectorMask
	FillTime   int64 // cycle at which the most recent fill completes
	Prefetched bool  // brought in by a prefetch and not yet demand-touched
	Used       bool  // demand-touched since fill
	Touch      uint8 // 8-byte words touched by demand accesses since fill
	lru        uint64
}

// Config sizes a cache.
type Config struct {
	SizeBytes   int // total capacity
	Ways        int
	SectorBytes int // 64 for a conventional cache; 8 (L1) or 32 (L2) sectored
}

// Validate checks that the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive size or ways: %+v", c)
	}
	if c.SizeBytes%(c.Ways*mem.LineSize) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*linesize", c.SizeBytes)
	}
	switch c.SectorBytes {
	case 8, 16, 32, 64:
	default:
		return fmt.Errorf("cache: unsupported sector size %d", c.SectorBytes)
	}
	sets := c.SizeBytes / (c.Ways * mem.LineSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// LookupResult describes the outcome of a cache access.
type LookupResult int

// Lookup outcomes.
const (
	// Miss: the line is not present at all.
	Miss LookupResult = iota
	// SectorMiss: the line is present but one or more requested sectors are
	// invalid (partial-line caches only).
	SectorMiss
	// Hit: line present with all requested sectors valid.
	Hit
)

func (r LookupResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case SectorMiss:
		return "sector-miss"
	default:
		return "miss"
	}
}

// tagFree marks an empty frame in the tag array. Line ids are addresses
// shifted right by 6 within a 48-bit space, so no real line ever matches.
const tagFree = ^uint64(0)

// Cache is a single set-associative sector cache. It is not safe for
// concurrent use; the simulator serializes accesses.
//
// Tags live in a dense parallel array rather than in the Line frames: the
// way scan in find is the hottest loop of the whole simulator, and scanning
// packed uint64 tags touches one cacheline per set instead of one per way.
type Cache struct {
	//imp:nosnap geometry, reconstructed from Config at build
	cfg Config
	//imp:nosnap geometry, reconstructed from Config at build
	ways  int
	tags  []uint64 // numSets*ways; tagFree when the frame is Invalid
	lines []Line   // parallel to tags
	//imp:nosnap geometry, reconstructed from Config at build
	setMask uint64
	//imp:nosnap geometry, reconstructed from Config at build
	fullMask SectorMask
	clock    uint64
}

// New builds a cache from cfg; it panics on invalid configuration, which is
// a programming error in experiment setup.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.Ways * mem.LineSize)
	tags := make([]uint64, numSets*cfg.Ways)
	for i := range tags {
		tags[i] = tagFree
	}
	return &Cache{
		cfg:      cfg,
		ways:     cfg.Ways,
		tags:     tags,
		lines:    make([]Line, numSets*cfg.Ways),
		setMask:  uint64(numSets - 1),
		fullMask: FullMask(cfg.SectorBytes),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.tags) / c.ways }

// SectorsPerLine returns the number of sectors in each line.
func (c *Cache) SectorsPerLine() int { return mem.LineSize / c.cfg.SectorBytes }

// FullMask returns the all-sectors mask for this cache.
func (c *Cache) FullMask() SectorMask { return c.fullMask }

// MaskFor returns the sector mask an access of size bytes at addr needs.
func (c *Cache) MaskFor(addr mem.Addr, size int) SectorMask {
	return MaskForRange(addr.Offset(), uint64(size), c.cfg.SectorBytes)
}

// setBase returns the first frame index of lineID's set.
func (c *Cache) setBase(lineID uint64) int { return int(lineID&c.setMask) * c.ways }

// find returns the frame holding lineID, or nil.
func (c *Cache) find(lineID uint64) *Line {
	base := c.setBase(lineID)
	tags := c.tags[base : base+c.ways]
	for i, tg := range tags {
		if tg == lineID {
			return &c.lines[base+i]
		}
	}
	return nil
}

// Probe returns the frame holding lineID without updating replacement
// state, or nil if absent.
func (c *Cache) Probe(lineID uint64) *Line { return c.find(lineID) }

// Lookup accesses the sectors in need of lineID, updating LRU on presence.
// It reports the outcome and the frame (nil on Miss). For a write
// (needStore), a Shared line reports SectorMiss semantics via the
// upgradeNeeded result instead; callers check State themselves, so Lookup
// only concerns data presence.
func (c *Cache) Lookup(lineID uint64, need SectorMask) (LookupResult, *Line) {
	ln := c.find(lineID)
	if ln == nil {
		return Miss, nil
	}
	c.clock++
	ln.lru = c.clock
	if ln.Valid&need != need {
		return SectorMiss, ln
	}
	return Hit, ln
}

// MarkDemandUse records a demand access of the 8-byte words covering
// [offset, offset+size) on a line: sets Used, clears the
// not-yet-demand-touched prefetch marker, and accumulates the touch vector.
// It returns true if this was the first demand touch of a prefetched line
// (the event accuracy accounting counts as a "useful prefetch").
func MarkDemandUse(ln *Line, offset, size uint64) (firstUseOfPrefetch bool) {
	if size == 0 {
		size = 1
	}
	lo := offset / 8
	hi := (offset + size - 1) / 8
	for i := lo; i <= hi && i < 8; i++ {
		ln.Touch |= 1 << i
	}
	firstUseOfPrefetch = ln.Prefetched && !ln.Used
	ln.Used = true
	return firstUseOfPrefetch
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	LineID     uint64
	State      State
	Valid      SectorMask
	Prefetched bool // was prefetched and never demand-used
	Used       bool
	Touch      uint8
}

// Insert places lineID with the given sectors, state and fill time,
// evicting the LRU frame if the set is full. If the line is already
// present, the sectors and state are merged instead (a sector fill) and the
// fill time advances to the later of the two.
// The returned eviction has State != Invalid only when a valid line was
// displaced.
func (c *Cache) Insert(lineID uint64, sectors SectorMask, st State, fillTime int64, prefetched bool) Eviction {
	if ln := c.find(lineID); ln != nil {
		ln.Valid |= sectors
		if st > ln.State {
			ln.State = st
		}
		if fillTime > ln.FillTime {
			ln.FillTime = fillTime
		}
		c.clock++
		ln.lru = c.clock
		return Eviction{}
	}
	base := c.setBase(lineID)
	set := c.lines[base : base+c.ways]
	// Prefer a free way (cheap tag scan); otherwise evict the LRU frame.
	vi := -1
	for i, tg := range c.tags[base : base+c.ways] {
		if tg == tagFree {
			vi = i
			break
		}
	}
	if vi < 0 {
		vi = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[vi].lru {
				vi = i
			}
		}
	}
	victim := &set[vi]
	ev := Eviction{}
	if victim.State != Invalid {
		ev = Eviction{
			LineID:     victim.Tag,
			State:      victim.State,
			Valid:      victim.Valid,
			Prefetched: victim.Prefetched && !victim.Used,
			Used:       victim.Used,
			Touch:      victim.Touch,
		}
	}
	c.clock++
	*victim = Line{
		Tag: lineID, State: st, Valid: sectors, FillTime: fillTime,
		Prefetched: prefetched, lru: c.clock,
	}
	c.tags[base+vi] = lineID
	return ev
}

// Invalidate removes lineID (coherence invalidation). It returns the line's
// prior state (Invalid if it was not present) and whether the line was a
// never-used prefetch.
func (c *Cache) Invalidate(lineID uint64) (State, bool) {
	base := c.setBase(lineID)
	tags := c.tags[base : base+c.ways]
	for i, tg := range tags {
		if tg != lineID {
			continue
		}
		ln := &c.lines[base+i]
		st := ln.State
		wasted := ln.Prefetched && !ln.Used
		*ln = Line{}
		tags[i] = tagFree
		return st, wasted
	}
	return Invalid, false
}

// Downgrade moves lineID from Modified to Shared (directory recall),
// reporting whether the line was present and modified.
func (c *Cache) Downgrade(lineID uint64) bool {
	ln := c.find(lineID)
	if ln == nil || ln.State != Modified {
		return false
	}
	ln.State = Shared
	return true
}

// ForEachValid calls fn for every valid line. Used by tests and end-of-run
// accuracy accounting (prefetched lines still resident count as unused).
func (c *Cache) ForEachValid(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(&c.lines[i])
		}
	}
}
