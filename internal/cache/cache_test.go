package cache

import (
	"testing"
	"testing/quick"

	"github.com/impsim/imp/internal/mem"
)

func smallCache(t *testing.T, sectorBytes int) *Cache {
	t.Helper()
	return New(Config{SizeBytes: 4 * 1024, Ways: 4, SectorBytes: sectorBytes})
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{32 * 1024, 4, 64},
		{32 * 1024, 4, 8},
		{256 * 1024, 8, 32},
		{4 * 1024, 1, 64},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{0, 4, 64},
		{32 * 1024, 0, 64},
		{32 * 1024, 4, 7},
		{32 * 1024, 4, 128},
		{100, 4, 64},        // not divisible
		{3 * 64 * 4, 4, 64}, // 3 sets: not a power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestMaskForRange(t *testing.T) {
	cases := []struct {
		offset, size uint64
		sectorBytes  int
		want         SectorMask
	}{
		{0, 4, 64, 0b1},
		{60, 4, 64, 0b1},
		{0, 8, 8, 0b0000_0001},
		{8, 8, 8, 0b0000_0010},
		{56, 8, 8, 0b1000_0000},
		{4, 8, 8, 0b0000_0011}, // straddles two 8B sectors
		{0, 64, 8, 0b1111_1111},
		{0, 1, 32, 0b01},
		{32, 1, 32, 0b10},
		{31, 2, 32, 0b11},
	}
	for _, c := range cases {
		if got := MaskForRange(c.offset, c.size, c.sectorBytes); got != c.want {
			t.Errorf("MaskForRange(%d,%d,%d) = %08b, want %08b",
				c.offset, c.size, c.sectorBytes, got, c.want)
		}
	}
}

func TestFullMask(t *testing.T) {
	if FullMask(64) != 0b1 {
		t.Error("FullMask(64) != 1 bit")
	}
	if FullMask(32) != 0b11 {
		t.Error("FullMask(32) != 2 bits")
	}
	if FullMask(8) != 0xFF {
		t.Error("FullMask(8) != 8 bits")
	}
}

func TestMissInsertHit(t *testing.T) {
	c := smallCache(t, 64)
	res, _ := c.Lookup(100, c.FullMask())
	if res != Miss {
		t.Fatalf("initial lookup = %v, want miss", res)
	}
	if ev := c.Insert(100, c.FullMask(), Shared, 50, false); ev.State != Invalid {
		t.Fatalf("insert into empty set evicted %+v", ev)
	}
	res, ln := c.Lookup(100, c.FullMask())
	if res != Hit || ln == nil {
		t.Fatalf("lookup after insert = %v", res)
	}
	if ln.FillTime != 50 || ln.State != Shared {
		t.Errorf("line metadata = %+v", ln)
	}
}

func TestSectorMissAndMergeFill(t *testing.T) {
	c := smallCache(t, 8)
	low := MaskForRange(0, 8, 8)
	high := MaskForRange(56, 8, 8)
	c.Insert(7, low, Shared, 10, true)

	if res, _ := c.Lookup(7, low); res != Hit {
		t.Errorf("low sector lookup = %v, want hit", res)
	}
	res, ln := c.Lookup(7, high)
	if res != SectorMiss || ln == nil {
		t.Fatalf("high sector lookup = %v, want sector-miss with frame", res)
	}
	// Merge the missing sector in; both must now hit and fill time advances.
	if ev := c.Insert(7, high, Shared, 99, false); ev.State != Invalid {
		t.Fatalf("merge fill evicted %+v", ev)
	}
	if res, _ := c.Lookup(7, low|high); res != Hit {
		t.Errorf("combined lookup after merge = %v, want hit", res)
	}
	if ln.FillTime != 99 {
		t.Errorf("merge fill time = %d, want 99", ln.FillTime)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t, 64) // 4KB/4way/64B = 16 sets
	sets := uint64(c.NumSets())
	// Fill all 4 ways of set 0 with lines 0, 16, 32, 48 (same set index).
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*sets, c.FullMask(), Shared, 0, false)
	}
	// Touch line 0 to make line 16 (=sets) the LRU.
	c.Lookup(0, c.FullMask())
	ev := c.Insert(4*sets, c.FullMask(), Shared, 0, false)
	if ev.State == Invalid || ev.LineID != sets {
		t.Errorf("evicted %+v, want line %d", ev, sets)
	}
	if res, _ := c.Lookup(0, c.FullMask()); res != Hit {
		t.Error("recently used line was evicted")
	}
}

func TestEvictionReportsPrefetchWaste(t *testing.T) {
	c := smallCache(t, 64)
	sets := uint64(c.NumSets())
	c.Insert(0, c.FullMask(), Shared, 0, true) // prefetched, never used
	for i := uint64(1); i <= 4; i++ {
		c.Insert(i*sets, c.FullMask(), Shared, 0, false)
	}
	// Line 0 must have been evicted; re-insert to confirm it is gone.
	if res, _ := c.Lookup(0, c.FullMask()); res != Miss {
		t.Fatal("line 0 should have been evicted")
	}
}

func TestMarkDemandUse(t *testing.T) {
	ln := &Line{Prefetched: true}
	first := MarkDemandUse(ln, 8, 8)
	if !first {
		t.Error("first touch of prefetched line must report first use")
	}
	if ln.Touch != 0b0000_0010 {
		t.Errorf("touch vector = %08b, want word 1", ln.Touch)
	}
	second := MarkDemandUse(ln, 0, 4)
	if second {
		t.Error("second touch must not report first use")
	}
	if ln.Touch != 0b0000_0011 {
		t.Errorf("touch vector = %08b, want words 0..1", ln.Touch)
	}
	// A 16-byte access spanning words 6..7.
	MarkDemandUse(ln, 48, 16)
	if ln.Touch != 0b1100_0011 {
		t.Errorf("touch vector = %08b, want words 0,1,6,7", ln.Touch)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t, 64)
	c.Insert(5, c.FullMask(), Modified, 0, true)
	st, wasted := c.Invalidate(5)
	if st != Modified || !wasted {
		t.Errorf("Invalidate = (%v, %v), want (M, true)", st, wasted)
	}
	if res, _ := c.Lookup(5, c.FullMask()); res != Miss {
		t.Error("line still present after invalidate")
	}
	if st, _ := c.Invalidate(5); st != Invalid {
		t.Error("double invalidate must report Invalid")
	}
}

func TestDowngrade(t *testing.T) {
	c := smallCache(t, 64)
	c.Insert(5, c.FullMask(), Modified, 0, false)
	if !c.Downgrade(5) {
		t.Error("Downgrade of M line must report true")
	}
	_, ln := c.Lookup(5, c.FullMask())
	if ln.State != Shared {
		t.Errorf("state after downgrade = %v, want S", ln.State)
	}
	if c.Downgrade(5) {
		t.Error("Downgrade of S line must report false")
	}
	if c.Downgrade(999) {
		t.Error("Downgrade of absent line must report false")
	}
}

func TestInsertUpgradesState(t *testing.T) {
	c := smallCache(t, 64)
	c.Insert(9, c.FullMask(), Shared, 0, false)
	c.Insert(9, c.FullMask(), Modified, 0, false)
	_, ln := c.Lookup(9, c.FullMask())
	if ln.State != Modified {
		t.Errorf("state = %v, want M after upgrade insert", ln.State)
	}
	// Re-inserting Shared must not downgrade.
	c.Insert(9, c.FullMask(), Shared, 0, false)
	if ln.State != Modified {
		t.Errorf("state = %v, M must not be downgraded by S insert", ln.State)
	}
}

func TestForEachValidCounts(t *testing.T) {
	c := smallCache(t, 64)
	for i := uint64(0); i < 10; i++ {
		c.Insert(i, c.FullMask(), Shared, 0, false)
	}
	n := 0
	c.ForEachValid(func(*Line) { n++ })
	if n != 10 {
		t.Errorf("valid lines = %d, want 10", n)
	}
}

// TestInclusionProperty checks that a cache never holds two frames with the
// same tag and that occupancy never exceeds capacity, under random traffic.
func TestInclusionProperty(t *testing.T) {
	c := smallCache(t, 8)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			id := uint64(op % 512)
			sector := SectorMask(1 << (op % 8))
			if op%3 == 0 {
				c.Insert(id, sector, Shared, int64(op), op%5 == 0)
			} else {
				c.Lookup(id, sector)
			}
		}
		seen := make(map[uint64]int)
		total := 0
		c.ForEachValid(func(ln *Line) {
			seen[ln.Tag]++
			total++
			if ln.Valid == 0 {
				t.Errorf("valid line with empty sector mask: %+v", ln)
			}
		})
		for id, n := range seen {
			if n > 1 {
				t.Errorf("line %d present in %d frames", id, n)
				return false
			}
		}
		return total <= c.NumSets()*c.Config().Ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaskForAddrHelper(t *testing.T) {
	c := smallCache(t, 8)
	// Address at byte 20 of its line, 8-byte access: sectors 2 and 3.
	a := mem.Addr(64*100 + 20)
	if got := c.MaskFor(a, 8); got != 0b0000_1100 {
		t.Errorf("MaskFor = %08b, want 00001100", got)
	}
}
