package cache

import (
	"fmt"

	"github.com/impsim/imp/internal/snap"
)

// Snapshot appends the cache's mutable state — replacement clock plus every
// frame — to w. Geometry (sets, ways, sector size) is not encoded; it is
// reconstructed from the Config when the owning simulator rebuilds the cache,
// and Restore cross-checks the frame count.
func (c *Cache) Snapshot(w *snap.Writer) {
	w.U64(c.clock)
	w.Int(len(c.lines))
	for i := range c.lines {
		if c.tags[i] == tagFree {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		ln := &c.lines[i]
		w.U64(ln.Tag)
		w.U8(uint8(ln.State))
		w.U8(uint8(ln.Valid))
		w.I64(ln.FillTime)
		w.Bool(ln.Prefetched)
		w.Bool(ln.Used)
		w.U8(ln.Touch)
		w.U64(ln.lru)
	}
}

// Restore overwrites the cache's frames and clock with a state written by
// Snapshot. The cache must have been built with the same Config.
func (c *Cache) Restore(r *snap.Reader) error {
	c.clock = r.U64()
	if n := r.Int(); n != len(c.lines) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("cache: snapshot has %d frames, cache has %d", n, len(c.lines))
	}
	for i := range c.lines {
		if !r.Bool() {
			c.lines[i] = Line{}
			c.tags[i] = tagFree
			continue
		}
		ln := &c.lines[i]
		ln.Tag = r.U64()
		ln.State = State(r.U8())
		ln.Valid = SectorMask(r.U8())
		ln.FillTime = r.I64()
		ln.Prefetched = r.Bool()
		ln.Used = r.Bool()
		ln.Touch = r.U8()
		ln.lru = r.U64()
		c.tags[i] = ln.Tag
	}
	return r.Err()
}
