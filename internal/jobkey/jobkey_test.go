package jobkey

import (
	"testing"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
)

// TestRouterBackendKeyIdentity is the property the router's cache locality
// rests on: the key computed from a raw submitted spec equals the key of
// the same spec after the backend has normalized it. If these ever diverge,
// the router would hash jobs onto one backend while another owns the
// cached result.
func TestRouterBackendKeyIdentity(t *testing.T) {
	raw := api.JobSpec{Sweep: []imp.Config{
		{Workload: "spmv", System: imp.SystemIMP}, // Cores/Scale defaulted
		{Workload: "pagerank", Cores: 8, Scale: 0.5, System: imp.SystemBaseline},
	}}
	routed, err := ResultKey(raw)
	if err != nil {
		t.Fatal(err)
	}

	normalized := api.JobSpec{Sweep: []imp.Config{
		{Workload: "spmv", Cores: 64, Scale: 1.0, System: imp.SystemIMP},
		{Workload: "pagerank", Cores: 8, Scale: 0.5, System: imp.SystemBaseline},
	}}
	normalized.Normalize()
	backend, err := ResultKey(normalized)
	if err != nil {
		t.Fatal(err)
	}
	if routed != backend {
		t.Fatalf("router key %s != backend key %s for the same work", routed, backend)
	}

	hinted := raw
	hinted.Parallelism = 7
	hinted.TimeoutSec = 30
	if k, _ := ResultKey(hinted); k != routed {
		t.Errorf("execution hints changed the key: %s != %s", k, routed)
	}

	exp := api.JobSpec{Experiment: "fig2", Workloads: []string{"spmv"}}
	ek, err := ResultKey(exp)
	if err != nil {
		t.Fatal(err)
	}
	if ek == routed {
		t.Error("experiment and sweep specs share a key")
	}
}

// TestValidKey: every ResultKey output validates; nothing that could
// misbehave as a file name or URL segment does.
func TestValidKey(t *testing.T) {
	k, err := ResultKey(api.JobSpec{Experiment: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if !ValidKey(k) {
		t.Fatalf("ResultKey output %q does not validate", k)
	}
	if len(k) != KeyLen {
		t.Fatalf("key length %d, want %d", len(k), KeyLen)
	}
	for _, bad := range []string{
		"",
		"abc",
		k + "0",                                // too long
		k[:KeyLen-1] + "G",                     // uppercase hex
		k[:KeyLen-1] + "/",                     // path separator
		"../../../etc/passwd00000000"[:KeyLen], // traversal shape
	} {
		if ValidKey(bad) {
			t.Errorf("ValidKey accepted %q", bad)
		}
	}
}
