// Package jobkey derives the content address of a job's result from its
// api.JobSpec. It is the single definition shared by the impserve backends
// (internal/service keys its result store with it) and the improuter
// front-end (internal/router hashes it onto the backend ring), so a spec
// routed by the router lands on the backend whose store already holds — or
// will hold — that key. Splitting the two definitions would silently break
// cache locality; keep them one.
package jobkey

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

// ResultKey derives the content address of a job's result. Like the trace
// cache key (internal/progcache), it covers everything the output depends
// on: the normalized spec plus the trace format and workload generator
// versions, so bumping either invalidates stale results implicitly.
// Parallelism, timeout and priority are execution hints, not inputs —
// results are byte-identical at any setting — so they are zeroed out of
// the key (an interactive and a bulk submission of the same work share
// one cached result).
func ResultKey(spec api.JobSpec) (string, error) {
	spec.Normalize()
	spec.Parallelism = 0
	spec.TimeoutSec = 0
	spec.Priority = ""
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("jobkey: keying job spec: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "impjob|fmt%d|gen%d|", trace.FormatVersion, workload.GenVersion)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)[:keyBytes]), nil
}

// keyBytes is the truncated digest length; KeyLen is its hex width.
const (
	keyBytes = 12
	// KeyLen is the exact length of every key ResultKey produces.
	KeyLen = 2 * keyBytes
)

// ValidKey reports whether s is well-formed as a ResultKey output:
// lowercase hex of exactly KeyLen characters. The store layers check it
// before a caller-supplied key (the replication surface's
// PUT/GET /v1/results/{key}) becomes a file name or a ring position.
func ValidKey(s string) bool {
	if len(s) != KeyLen {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
