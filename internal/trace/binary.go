// Binary trace format.
//
// Traces replayed at full scale hold millions of 24-byte records per core;
// rebuilding them from the workload generators dominates experiment setup
// time. The binary format makes traces cheap to persist and re-load: a
// versioned container holding the address-space image plus per-core record
// streams encoded as varint deltas (~6-8 bytes per access record instead
// of 24), terminated by a CRC.
//
// Layout (all integers little-endian or uvarint/zigzag-varint):
//
//	magic   "IMPT"
//	u16     format version (FormatVersion)
//	u8      flags (bit 0: SpinBarriers)
//	u8      reserved (0)
//	u32     core count
//	u32     region count
//	regions, each:
//	    u8       mem.Kind
//	    uvarint  name length, name bytes
//	    uvarint  base address
//	    uvarint  element count
//	    raw      element data, little-endian (float64 as IEEE 754 bits)
//	cores, each:
//	    uvarint  record count
//	    uvarint  barrier count
//	    uvarint  payload byte length
//	    payload  delta-encoded records (see below)
//	u32     IEEE CRC-32 of everything above
//
// Record encoding, with per-core running (prevAddr, prevPC) state:
//
//	u8  flags
//	barrier / gap-only records: uvarint gap — nothing else
//	access records:
//	    u8      kind<<6 | (size-1)    (size in 1..64)
//	    uvarint gap
//	    zigzag  pc  - prevPC
//	    zigzag  addr - prevAddr
//
// The per-core section header carries record and barrier counts so a
// streaming reader (FileSource) can validate barrier alignment across
// cores without decoding every record. ReadProgram verifies the CRC;
// FileSource, which never reads the whole file, does not.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"github.com/impsim/imp/internal/mem"
)

// FormatVersion is the binary trace format version written by WriteTo.
// Readers reject any other version.
const FormatVersion = 1

var traceMagic = [4]byte{'I', 'M', 'P', 'T'}

// ErrVersion is returned (wrapped) when a trace file was written by an
// incompatible format version.
var ErrVersion = errors.New("unsupported trace format version")

// Guards for length fields read from untrusted input, so a corrupted
// header cannot drive huge allocations or near-endless loops. The decode
// paths additionally bound every variable-size field by the input size
// (an N-element region needs N*elemSize bytes of input to back it).
const (
	maxCores   = 1 << 20 // far beyond the largest square mesh simulated
	maxRegions = 1 << 16
	maxNameLen = 1 << 12
)

// WriteTo encodes the program in the binary trace format. It validates the
// program first (the encoding assumes record invariants) and returns the
// number of bytes written.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(w, crc)}
	bw := bufio.NewWriterSize(cw, 1<<16)

	bw.Write(traceMagic[:])
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], FormatVersion)
	bw.Write(u16[:])
	var flags byte
	if p.SpinBarriers {
		flags |= 1
	}
	bw.WriteByte(flags)
	bw.WriteByte(0)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(p.Cores()))
	bw.Write(u32[:])
	regions := p.Space.Regions()
	binary.LittleEndian.PutUint32(u32[:], uint32(len(regions)))
	bw.Write(u32[:])

	var varbuf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(varbuf[:], v)
		bw.Write(varbuf[:n])
	}
	for _, r := range regions {
		if err := writeRegion(bw, putUvarint, r); err != nil {
			return cw.n, err
		}
	}

	// Each core's payload is encoded into a reusable buffer first: the
	// section header carries its byte length so streaming readers can seek
	// between cores.
	var payload []byte
	for _, t := range p.Traces {
		payload = appendRecords(payload[:0], t.Records)
		barriers := 0
		for _, r := range t.Records {
			if r.IsBarrier() {
				barriers++
			}
		}
		putUvarint(uint64(len(t.Records)))
		putUvarint(uint64(barriers))
		putUvarint(uint64(len(payload)))
		bw.Write(payload)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// CRC of everything written so far, outside the checksummed stream.
	binary.LittleEndian.PutUint32(u32[:], crc.Sum32())
	if _, err := w.Write(u32[:]); err != nil {
		return cw.n, err
	}
	return cw.n + 4, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if err != nil && c.err == nil {
		c.err = err
	}
	return n, err
}

func writeRegion(bw *bufio.Writer, putUvarint func(uint64), r *mem.Region) error {
	bw.WriteByte(byte(r.Kind()))
	putUvarint(uint64(len(r.Name)))
	bw.WriteString(r.Name)
	putUvarint(uint64(r.Base))
	putUvarint(uint64(r.Len()))
	var b8 [8]byte
	switch r.Kind() {
	case mem.KindInt32:
		for _, v := range r.Int32s() {
			binary.LittleEndian.PutUint32(b8[:4], uint32(v))
			bw.Write(b8[:4])
		}
	case mem.KindInt64:
		for _, v := range r.Int64s() {
			binary.LittleEndian.PutUint64(b8[:], uint64(v))
			bw.Write(b8[:])
		}
	case mem.KindFloat64:
		for _, v := range r.Float64s() {
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
			bw.Write(b8[:])
		}
	case mem.KindBytes:
		bw.Write(r.Bytes())
	default:
		return fmt.Errorf("trace: cannot encode region %q of kind %v", r.Name, r.Kind())
	}
	return nil
}

// appendRecords delta-encodes recs onto buf.
func appendRecords(buf []byte, recs []Record) []byte {
	var prevAddr uint64
	var prevPC uint32
	var tmp [binary.MaxVarintLen64]byte
	for _, r := range recs {
		buf = append(buf, r.Flags)
		if r.IsBarrier() || r.IsGapOnly() {
			n := binary.PutUvarint(tmp[:], uint64(r.Gap))
			buf = append(buf, tmp[:n]...)
			continue
		}
		buf = append(buf, byte(r.Kind)<<6|byte(r.Size-1))
		n := binary.PutUvarint(tmp[:], uint64(r.Gap))
		buf = append(buf, tmp[:n]...)
		n = binary.PutVarint(tmp[:], int64(int32(uint32(r.PC)-prevPC)))
		buf = append(buf, tmp[:n]...)
		n = binary.PutVarint(tmp[:], int64(uint64(r.Addr)-prevAddr))
		buf = append(buf, tmp[:n]...)
		prevPC = uint32(r.PC)
		prevAddr = uint64(r.Addr)
	}
	return buf
}

// recordDecoder decodes one core's delta-encoded record stream.
type recordDecoder struct {
	r         io.ByteReader
	prevAddr  uint64
	prevPC    uint32
	remaining uint64
}

// next decodes one record. It returns io.EOF (exactly) only via its caller
// tracking remaining; a short underlying stream yields ErrUnexpectedEOF.
func (d *recordDecoder) next() (Record, error) {
	flags, err := d.r.ReadByte()
	if err != nil {
		return Record{}, eofToUnexpected(err)
	}
	rec := Record{Flags: flags}
	if rec.IsBarrier() || rec.IsGapOnly() {
		gap, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Record{}, eofToUnexpected(err)
		}
		if gap > math.MaxUint16 {
			return Record{}, fmt.Errorf("trace: gap %d overflows", gap)
		}
		rec.Gap = uint16(gap)
		return rec, nil
	}
	ks, err := d.r.ReadByte()
	if err != nil {
		return Record{}, eofToUnexpected(err)
	}
	rec.Kind = Kind(ks >> 6)
	rec.Size = (ks & 0x3f) + 1
	if rec.Kind > KindIndirect {
		return Record{}, fmt.Errorf("trace: bad kind %d", rec.Kind)
	}
	gap, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Record{}, eofToUnexpected(err)
	}
	if gap > math.MaxUint16 {
		return Record{}, fmt.Errorf("trace: gap %d overflows", gap)
	}
	rec.Gap = uint16(gap)
	dpc, err := binary.ReadVarint(d.r)
	if err != nil {
		return Record{}, eofToUnexpected(err)
	}
	d.prevPC += uint32(dpc)
	rec.PC = PC(d.prevPC)
	daddr, err := binary.ReadVarint(d.r)
	if err != nil {
		return Record{}, eofToUnexpected(err)
	}
	d.prevAddr += uint64(daddr)
	rec.Addr = mem.Addr(d.prevAddr)
	return rec, nil
}

func eofToUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadProgram decodes a program written by WriteTo, verifying the trailing
// CRC. The whole program is materialized in memory (the input is slurped up
// front so the checksum covers exactly the encoded bytes); use
// NewFileSource to stream records instead.
func ReadProgram(r io.Reader) (*Program, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading input: %w", err)
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("trace: input too short (%d bytes): %w", len(data), io.ErrUnexpectedEOF)
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(foot)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("trace: CRC mismatch: file says %#x, content is %#x", want, got)
	}

	maxBytes := int64(len(body))
	br := bufio.NewReaderSize(bytes.NewReader(body), 1<<16)
	hdr, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	space, err := readRegions(br, hdr.regions, maxBytes)
	if err != nil {
		return nil, err
	}
	p := &Program{Space: space, SpinBarriers: hdr.spin}
	for c := 0; c < hdr.cores; c++ {
		count, _, _, err := readCoreHeader(br, maxBytes)
		if err != nil {
			return nil, fmt.Errorf("trace: core %d: %w", c, err)
		}
		dec := recordDecoder{r: br}
		// Cap the pre-allocation: a lying count field must not allocate
		// ahead of what the input can actually back.
		prealloc := count
		if prealloc > 1<<20 {
			prealloc = 1 << 20
		}
		recs := make([]Record, 0, prealloc)
		for i := uint64(0); i < count; i++ {
			rec, err := dec.next()
			if err != nil {
				return nil, fmt.Errorf("trace: core %d record %d: %w", c, i, err)
			}
			recs = append(recs, rec)
		}
		p.Traces = append(p.Traces, &Trace{Records: recs})
	}
	return p, nil
}

type header struct {
	spin    bool
	cores   int
	regions int
}

func readHeader(br *bufio.Reader) (header, error) {
	var h header
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return h, fmt.Errorf("trace: reading magic: %w", eofToUnexpected(err))
	}
	if magic != traceMagic {
		return h, fmt.Errorf("trace: bad magic %q (not an IMP trace file)", magic[:])
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:8]); err != nil {
		return h, fmt.Errorf("trace: reading header: %w", eofToUnexpected(err))
	}
	if v := binary.LittleEndian.Uint16(buf[0:2]); v != FormatVersion {
		return h, fmt.Errorf("trace: %w %d (this build reads version %d)", ErrVersion, v, FormatVersion)
	}
	h.spin = buf[2]&1 != 0
	h.cores = int(binary.LittleEndian.Uint32(buf[4:8]))
	var reg [4]byte
	if _, err := io.ReadFull(br, reg[:]); err != nil {
		return h, fmt.Errorf("trace: reading header: %w", eofToUnexpected(err))
	}
	h.regions = int(binary.LittleEndian.Uint32(reg[:]))
	if h.cores <= 0 || h.cores > maxCores || h.regions < 0 || h.regions > maxRegions {
		return h, fmt.Errorf("trace: implausible header (cores=%d regions=%d)", h.cores, h.regions)
	}
	return h, nil
}

// readRegions decodes n regions. maxBytes is the total input size; no
// single region may claim more element data than that.
func readRegions(br *bufio.Reader, n int, maxBytes int64) (*mem.Space, error) {
	space := mem.NewSpace()
	for i := 0; i < n; i++ {
		if err := readRegion(br, space, maxBytes); err != nil {
			return nil, fmt.Errorf("trace: region %d: %w", i, err)
		}
	}
	return space, nil
}

func readRegion(br *bufio.Reader, space *mem.Space, maxBytes int64) error {
	kb, err := br.ReadByte()
	if err != nil {
		return eofToUnexpected(err)
	}
	kind := mem.Kind(kb)
	elemSize, err := kindElemSize(kind)
	if err != nil {
		return err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("bad name length: %w", eofToUnexpected(err))
	}
	if nameLen > maxNameLen {
		return fmt.Errorf("implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return eofToUnexpected(err)
	}
	base, err := binary.ReadUvarint(br)
	if err != nil {
		return eofToUnexpected(err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return eofToUnexpected(err)
	}
	if count > uint64(maxBytes)/uint64(elemSize) {
		return fmt.Errorf("region %q claims %d elements, more than the input can back", name, count)
	}
	r, err := space.AllocAt(string(name), kind, mem.Addr(base), int(count))
	if err != nil {
		return err
	}
	var b8 [8]byte
	switch kind {
	case mem.KindInt32:
		dst := r.Int32s()
		for i := range dst {
			if _, err := io.ReadFull(br, b8[:4]); err != nil {
				return eofToUnexpected(err)
			}
			dst[i] = int32(binary.LittleEndian.Uint32(b8[:4]))
		}
	case mem.KindInt64:
		dst := r.Int64s()
		for i := range dst {
			if _, err := io.ReadFull(br, b8[:]); err != nil {
				return eofToUnexpected(err)
			}
			dst[i] = int64(binary.LittleEndian.Uint64(b8[:]))
		}
	case mem.KindFloat64:
		dst := r.Float64s()
		for i := range dst {
			if _, err := io.ReadFull(br, b8[:]); err != nil {
				return eofToUnexpected(err)
			}
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b8[:]))
		}
	case mem.KindBytes:
		if _, err := io.ReadFull(br, r.Bytes()); err != nil {
			return eofToUnexpected(err)
		}
	default:
		return fmt.Errorf("unknown region kind %d", kb)
	}
	return nil
}

// readCoreHeader decodes one per-core section header. maxBytes is the
// total input size: a section cannot hold more payload than the input, and
// every encoded record takes at least two bytes.
func readCoreHeader(br io.ByteReader, maxBytes int64) (count, barriers, payloadLen uint64, err error) {
	if count, err = binary.ReadUvarint(br); err != nil {
		return 0, 0, 0, eofToUnexpected(err)
	}
	if barriers, err = binary.ReadUvarint(br); err != nil {
		return 0, 0, 0, eofToUnexpected(err)
	}
	if payloadLen, err = binary.ReadUvarint(br); err != nil {
		return 0, 0, 0, eofToUnexpected(err)
	}
	if payloadLen > uint64(maxBytes) || count > payloadLen/2 {
		return 0, 0, 0, fmt.Errorf("implausible core section (records=%d bytes=%d)", count, payloadLen)
	}
	return count, barriers, payloadLen, nil
}

// kindElemSize mirrors mem.Kind element widths for input validation.
func kindElemSize(k mem.Kind) (int, error) {
	switch k {
	case mem.KindInt32:
		return 4, nil
	case mem.KindInt64, mem.KindFloat64:
		return 8, nil
	case mem.KindBytes:
		return 1, nil
	default:
		return 0, fmt.Errorf("unknown region kind %d", k)
	}
}

// WriteFile encodes the program to path via a temp file and atomic rename.
func (p *Program) WriteFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".imptrace-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := p.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
