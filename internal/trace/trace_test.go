package trace

import (
	"testing"
	"testing/quick"

	"github.com/impsim/imp/internal/mem"
)

func TestBuilderBasicSequence(t *testing.T) {
	b := NewBuilder()
	b.Compute(3)
	b.Load(1, 0x1000, 4, KindStream)
	b.LoadDep(2, 0x2000, 8, KindIndirect)
	b.Compute(5)
	b.Store(3, 0x3000, 8, KindOther)
	tr := b.Trace()

	if len(tr.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(tr.Records))
	}
	r0, r1, r2 := tr.Records[0], tr.Records[1], tr.Records[2]
	if r0.Gap != 3 || r0.PC != 1 || r0.Kind != KindStream || r0.IsStore() {
		t.Errorf("bad first record: %v", r0)
	}
	if !r1.DependsOnPrev() || r1.Kind != KindIndirect {
		t.Errorf("bad dependent record: %v", r1)
	}
	if !r2.IsStore() || r2.Gap != 5 {
		t.Errorf("bad store record: %v", r2)
	}
}

func TestInstructionsCounting(t *testing.T) {
	b := NewBuilder()
	b.Compute(10)
	b.Load(1, 0x1000, 4, KindOther) // 10 + 1
	b.Barrier()                     // 0
	b.Compute(2)
	b.Store(2, 0x1040, 8, KindOther) // 2 + 1
	tr := b.Trace()
	if got := tr.Instructions(); got != 14 {
		t.Errorf("Instructions = %d, want 14", got)
	}
	if got := tr.MemoryAccesses(); got != 2 {
		t.Errorf("MemoryAccesses = %d, want 2", got)
	}
}

func TestSWPrefetchChargesOverhead(t *testing.T) {
	b := NewBuilder()
	b.SWPrefetch(9, 0x4000, 3)
	tr := b.Trace()
	if len(tr.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(tr.Records))
	}
	r := tr.Records[0]
	if !r.IsSWPrefetch() {
		t.Error("record not marked as software prefetch")
	}
	// 3 overhead instructions + the prefetch instruction itself.
	if got := tr.Instructions(); got != 4 {
		t.Errorf("Instructions = %d, want 4", got)
	}
	if got := tr.MemoryAccesses(); got != 0 {
		t.Errorf("software prefetch must not count as demand access, got %d", got)
	}
}

func TestGapOverflowSplits(t *testing.T) {
	b := NewBuilder()
	b.Compute(200_000) // > 3 * 65535
	b.Load(1, 0x1000, 4, KindOther)
	tr := b.Trace()
	if got := tr.Instructions(); got != 200_001 {
		t.Errorf("Instructions = %d, want 200001", got)
	}
	gapOnly := 0
	for _, r := range tr.Records {
		if r.IsGapOnly() {
			gapOnly++
			if r.Gap == 0 {
				t.Error("gap-only record with zero gap")
			}
		}
	}
	if gapOnly != 3 {
		t.Errorf("gap-only records = %d, want 3", gapOnly)
	}
}

func TestTrailingGapPreserved(t *testing.T) {
	b := NewBuilder()
	b.Load(1, 0x1000, 4, KindOther)
	b.Compute(42)
	tr := b.Trace()
	if got := tr.Instructions(); got != 43 {
		t.Errorf("Instructions = %d, want 43", got)
	}
}

func TestKindCounts(t *testing.T) {
	b := NewBuilder()
	b.Load(1, 0x1000, 4, KindStream)
	b.Load(1, 0x1004, 4, KindStream)
	b.LoadDep(2, 0x2000, 8, KindIndirect)
	b.Store(3, 0x3000, 8, KindOther)
	b.SWPrefetch(4, 0x5000, 2)
	b.Barrier()
	m := b.Trace().KindCounts()
	if m[KindStream] != 2 || m[KindIndirect] != 1 || m[KindOther] != 1 {
		t.Errorf("KindCounts = %v, want stream:2 indirect:1 other:1", m)
	}
}

func TestInstructionsPropertyNonNegativeAndAdditive(t *testing.T) {
	f := func(gaps []uint16) bool {
		b := NewBuilder()
		var want uint64
		for _, g := range gaps {
			b.Compute(int(g))
			b.Load(1, 0x1000, 4, KindOther)
			want += uint64(g) + 1
		}
		return b.Trace().Instructions() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildValidProgram(t *testing.T) *Program {
	t.Helper()
	s := mem.NewSpace()
	r := s.AllocInt32("data", 1024)
	var traces []*Trace
	for c := 0; c < 4; c++ {
		b := NewBuilder()
		b.Load(1, r.Addr(c), 4, KindStream)
		b.Barrier()
		b.Store(2, r.Addr(c+16), 4, KindOther)
		traces = append(traces, b.Trace())
	}
	return &Program{Space: s, Traces: traces}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	p := buildValidProgram(t)
	if err := p.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
	if p.Cores() != 4 {
		t.Errorf("Cores = %d, want 4", p.Cores())
	}
}

func TestValidateRejectsBarrierMismatch(t *testing.T) {
	p := buildValidProgram(t)
	b := NewBuilder()
	b.Load(1, p.Space.Regions()[0].Addr(0), 4, KindOther)
	// No barrier on this core.
	p.Traces[0] = b.Trace()
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted mismatched barrier counts")
	}
}

func TestValidateRejectsUnmappedAddress(t *testing.T) {
	p := buildValidProgram(t)
	b := NewBuilder()
	b.Load(1, 0xDEAD_0000_0000, 8, KindOther)
	b.Barrier()
	p.Traces[2] = b.Trace()
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted unmapped address")
	}
}

func TestValidateRejectsEmptyProgram(t *testing.T) {
	p := &Program{}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted empty program")
	}
}

func TestProgramTotals(t *testing.T) {
	p := buildValidProgram(t)
	if got := p.TotalAccesses(); got != 8 {
		t.Errorf("TotalAccesses = %d, want 8", got)
	}
	if got := p.TotalInstructions(); got != 8 {
		t.Errorf("TotalInstructions = %d, want 8", got)
	}
}
