// Package trace defines the memory access trace format shared between the
// instrumented workloads and the timing simulator.
//
// A trace is a per-core sequence of records. Each record is one memory
// access annotated with the PC of the instruction (synthetic, one per static
// load/store site), the number of non-memory instructions executed since the
// previous record, and a ground-truth access kind used for reporting
// (Fig 1/2 of the paper) and for the idealized configurations — the IMP
// hardware model never consults the kind.
package trace

import (
	"fmt"
	"sync"

	"github.com/impsim/imp/internal/mem"
)

// Kind is the ground-truth classification of an access, mirroring the
// categories in Fig 1 of the paper.
type Kind uint8

const (
	// KindOther is any access that is neither a streaming index read nor an
	// indirect data read: scalars, stack-like traffic, result writes.
	KindOther Kind = iota
	// KindStream is a sequential scan of an index (or value) array, i.e. the
	// B[i] side of A[B[i]].
	KindStream
	// KindIndirect is a data access whose address came from an index value,
	// i.e. the A[B[i]] side.
	KindIndirect
)

func (k Kind) String() string {
	switch k {
	case KindStream:
		return "stream"
	case KindIndirect:
		return "indirect"
	default:
		return "other"
	}
}

// Flags carried by a record.
const (
	// FlagStore marks the access as a write.
	FlagStore uint8 = 1 << iota
	// FlagDepPrev marks the access as data-dependent on the immediately
	// preceding load (used by the OoO core model: an indirect access cannot
	// issue before its index load returns).
	FlagDepPrev
	// FlagSWPrefetch marks a software prefetch instruction (Mowry-style).
	// It occupies the pipeline and injects a non-binding line fetch but
	// never stalls.
	FlagSWPrefetch
	// FlagBarrier marks a synchronization point: the core waits until all
	// cores have reached the same barrier index. Addr/PC are unused.
	FlagBarrier
)

// PC identifies a static instruction site. Workloads allocate small dense
// ids so prefetcher tables can key on them exactly as hardware keys on
// instruction addresses.
type PC uint32

// Record is one entry of a core's trace. The layout is kept compact
// (24 bytes) because traces hold millions of records.
type Record struct {
	Addr  mem.Addr // virtual byte address of the access
	PC    PC       // static instruction site
	Gap   uint16   // non-memory instructions executed before this access
	Flags uint8
	Kind  Kind
	Size  uint8 // access size in bytes (1..8)
}

// IsStore reports whether the record is a write.
func (r Record) IsStore() bool { return r.Flags&FlagStore != 0 }

// IsBarrier reports whether the record is a barrier synchronization point.
func (r Record) IsBarrier() bool { return r.Flags&FlagBarrier != 0 }

// IsSWPrefetch reports whether the record is a software prefetch.
func (r Record) IsSWPrefetch() bool { return r.Flags&FlagSWPrefetch != 0 }

// DependsOnPrev reports whether the record depends on the preceding load.
func (r Record) DependsOnPrev() bool { return r.Flags&FlagDepPrev != 0 }

func (r Record) String() string {
	op := "LD"
	if r.IsStore() {
		op = "ST"
	}
	if r.IsBarrier() {
		return "BARRIER"
	}
	if r.IsSWPrefetch() {
		op = "PF"
	}
	return fmt.Sprintf("%s pc=%d addr=%v size=%d kind=%s gap=%d", op, r.PC, r.Addr, r.Size, r.Kind, r.Gap)
}

// Instructions returns the number of dynamic instructions the record
// represents: its leading compute gap plus the access itself (barriers are
// synchronization only and gap-only fillers carry no access).
func (r Record) Instructions() uint64 {
	n := uint64(r.Gap)
	if !r.IsBarrier() && !r.IsGapOnly() {
		n++
	}
	return n
}

// Trace is the access sequence of one core.
type Trace struct {
	Records []Record
}

// Instructions returns the total dynamic instruction count of the trace.
func (t *Trace) Instructions() uint64 {
	var n uint64
	for _, r := range t.Records {
		n += r.Instructions()
	}
	return n
}

// MemoryAccesses returns the number of demand loads and stores (software
// prefetches and barriers excluded).
func (t *Trace) MemoryAccesses() uint64 {
	var n uint64
	for _, r := range t.Records {
		if !r.IsBarrier() && !r.IsSWPrefetch() {
			n++
		}
	}
	return n
}

// KindCounts returns the number of demand accesses per kind.
func (t *Trace) KindCounts() map[Kind]uint64 {
	m := make(map[Kind]uint64, 3)
	for _, r := range t.Records {
		if r.IsBarrier() || r.IsSWPrefetch() {
			continue
		}
		m[r.Kind]++
	}
	return m
}

// Builder accumulates one core's trace. It implements the instrumentation
// interface the workloads program against.
type Builder struct {
	t          Trace
	pendingGap uint64
}

// NewBuilder returns an empty trace builder.
func NewBuilder() *Builder { return &Builder{} }

// flushGap folds the accumulated compute gap into the next record's Gap
// field. Gaps wider than the 16-bit field spill into gap-only filler
// records so no compute time is lost.
func (b *Builder) flushGap() uint16 {
	const maxGap = 1<<16 - 1
	for b.pendingGap > maxGap {
		b.t.Records = append(b.t.Records, Record{Gap: maxGap, Flags: flagGapOnly})
		b.pendingGap -= maxGap
	}
	g := uint16(b.pendingGap)
	b.pendingGap = 0
	return g
}

// flagGapOnly marks an internal record that carries only compute cycles.
// It is not exported: the simulator treats it as Gap instructions and no
// memory access.
const flagGapOnly uint8 = 1 << 7

// IsGapOnly reports whether the record only carries compute instructions.
func (r Record) IsGapOnly() bool { return r.Flags&flagGapOnly != 0 }

// Load appends a load of size bytes at addr.
func (b *Builder) Load(pc PC, addr mem.Addr, size int, kind Kind) {
	b.t.Records = append(b.t.Records, Record{
		Addr: addr, PC: pc, Gap: b.flushGap(), Kind: kind, Size: uint8(size),
	})
}

// LoadDep appends a load that depends on the immediately preceding load
// (an indirect access consuming the just-read index).
func (b *Builder) LoadDep(pc PC, addr mem.Addr, size int, kind Kind) {
	b.t.Records = append(b.t.Records, Record{
		Addr: addr, PC: pc, Gap: b.flushGap(), Kind: kind, Size: uint8(size),
		Flags: FlagDepPrev,
	})
}

// Store appends a store of size bytes at addr.
func (b *Builder) Store(pc PC, addr mem.Addr, size int, kind Kind) {
	b.t.Records = append(b.t.Records, Record{
		Addr: addr, PC: pc, Gap: b.flushGap(), Kind: kind, Size: uint8(size),
		Flags: FlagStore,
	})
}

// SWPrefetch appends a software prefetch of the line containing addr and
// charges overhead extra instructions for computing the prefetch address
// (the paper's §6.1.2 instruction overhead).
func (b *Builder) SWPrefetch(pc PC, addr mem.Addr, overhead int) {
	b.Compute(overhead)
	b.t.Records = append(b.t.Records, Record{
		Addr: addr, PC: pc, Gap: b.flushGap(), Kind: KindOther, Size: 8,
		Flags: FlagSWPrefetch,
	})
}

// Compute charges n non-memory instructions.
func (b *Builder) Compute(n int) {
	if n > 0 {
		b.pendingGap += uint64(n)
	}
}

// Barrier appends a global synchronization point.
func (b *Builder) Barrier() {
	b.t.Records = append(b.t.Records, Record{Gap: b.flushGap(), Flags: FlagBarrier})
}

// Trace finalizes and returns the built trace. Any trailing compute gap is
// attached to a final gap-only record.
func (b *Builder) Trace() *Trace {
	if b.pendingGap > 0 {
		g := b.flushGap()
		if g > 0 {
			b.t.Records = append(b.t.Records, Record{Gap: g, Flags: flagGapOnly})
		}
	}
	return &b.t
}

// Program is a set of per-core traces plus the address space they reference.
// Programs are built once and then shared read-only across concurrent
// simulations; do not mutate Traces after the first Validate call.
type Program struct {
	Space  *mem.Space
	Traces []*Trace // one per core
	// SpinBarriers marks that cores busy-wait (consuming instructions) at
	// barriers instead of sleeping; used by SymGS.
	SpinBarriers bool

	// Validate scans every record, which is too expensive to repeat for
	// each of the many simulations sharing one program; the verdict is
	// cached after the first call.
	validateOnce sync.Once
	validateErr  error
}

// Cores returns the number of cores the program was traced for.
func (p *Program) Cores() int { return len(p.Traces) }

// TotalInstructions sums instruction counts across cores.
func (p *Program) TotalInstructions() uint64 {
	var n uint64
	for _, t := range p.Traces {
		n += t.Instructions()
	}
	return n
}

// TotalAccesses sums demand memory accesses across cores.
func (p *Program) TotalAccesses() uint64 {
	var n uint64
	for _, t := range p.Traces {
		n += t.MemoryAccesses()
	}
	return n
}

// Validate checks structural invariants: barrier counts match across cores
// and every access lands in the mapped address space. It returns the first
// violation found. The full scan runs once per program; subsequent calls
// return the cached verdict.
func (p *Program) Validate() error {
	p.validateOnce.Do(func() { p.validateErr = p.validate() })
	return p.validateErr
}

func (p *Program) validate() error {
	if len(p.Traces) == 0 {
		return fmt.Errorf("trace: program has no cores")
	}
	barriers := -1
	for cid, t := range p.Traces {
		n := 0
		for i, r := range t.Records {
			if r.IsBarrier() {
				n++
				continue
			}
			if r.IsGapOnly() {
				continue
			}
			if r.Size == 0 || r.Size > 64 {
				return fmt.Errorf("trace: core %d record %d has bad size %d", cid, i, r.Size)
			}
			if p.Space != nil && !p.Space.Mapped(r.Addr) {
				return fmt.Errorf("trace: core %d record %d (%v) touches unmapped address", cid, i, r)
			}
		}
		if barriers == -1 {
			barriers = n
		} else if n != barriers {
			return fmt.Errorf("trace: core %d has %d barriers, core 0 has %d", cid, n, barriers)
		}
	}
	return nil
}
