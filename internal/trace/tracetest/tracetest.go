// Package tracetest provides the shared seed-trace construction used by
// the binary-format fuzz targets (trace's fuzz_test.go) and the committed
// corpus generator (trace/gen_fuzz_corpus.go), so the two can never drift
// apart on which record flavors the corpus exercises.
package tracetest

import (
	"bytes"
	"fmt"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// TinyProgram builds a small hand-rolled two-core program covering every
// record flavor (load, dependent load, store, software prefetch, barrier,
// gap spill) and two region kinds.
func TinyProgram() *trace.Program {
	space := mem.NewSpace()
	idx := space.AllocInt32("idx", 16)
	vals := space.AllocFloat64("vals", 16)
	for i := range idx.Int32s() {
		idx.Int32s()[i] = int32(15 - i)
	}
	for i := range vals.Float64s() {
		vals.Float64s()[i] = float64(i) * 1.5
	}
	p := &trace.Program{Space: space}
	for c := 0; c < 2; c++ {
		b := trace.NewBuilder()
		for i := 0; i < 4; i++ {
			b.Load(1, idx.Base+mem.Addr(4*i), 4, trace.KindStream)
			b.LoadDep(2, vals.Base+mem.Addr(8*i), 8, trace.KindIndirect)
			b.Compute(3)
		}
		b.Barrier()
		b.SWPrefetch(3, vals.Base, 3)
		b.Store(4, vals.Base+mem.Addr(8*c), 8, trace.KindOther)
		b.Compute(1 << 17) // spills into gap-only records
		b.Barrier()
		p.Traces = append(p.Traces, b.Trace())
	}
	return p
}

// EncodeTiny returns TinyProgram in the binary trace format.
func EncodeTiny() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := TinyProgram().WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("tracetest: encoding tiny program: %w", err)
	}
	return buf.Bytes(), nil
}

// Corruptions derives the structured corruption seeds from a valid
// encoding: bad magic, unsupported version, truncation, and an in-payload
// bit flip (caught only by the CRC).
func Corruptions(valid []byte) map[string][]byte {
	badMagic := append([]byte(nil), valid...)
	copy(badMagic, "JUNK")
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 0xff
	bitflip := append([]byte(nil), valid...)
	bitflip[len(bitflip)/2] ^= 0x40
	return map[string][]byte{
		"badmagic":   badMagic,
		"badversion": badVersion,
		"truncated":  valid[:len(valid)/2],
		"bitflip":    bitflip,
	}
}
