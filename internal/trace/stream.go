package trace

import "github.com/impsim/imp/internal/mem"

// RecordStream iterates one core's records in order. The simulator replays
// records strictly forward with a bounded lookahead (the idealized PerfPref
// configuration peeks a fixed distance ahead), so the interface exposes a
// cursor with windowed views rather than a per-record Next call — one
// interface call per replay batch instead of one per record.
// Implementations need not be safe for concurrent use; the simulator
// drives each core's stream from a single goroutine.
type RecordStream interface {
	// Window returns a read-only view of up to max records starting at the
	// cursor, without consuming them. It returns fewer than max records
	// only at the end of the stream (or on a decode error — see Err).
	// The view stays readable until the next Advance call; a later, larger
	// Window call does not invalidate it.
	Window(max int) []Record
	// Advance consumes n records. n must not exceed the length of the
	// most recent Window result.
	Advance(n int)
	// Err returns the first I/O or decode error encountered, if any.
	// Streams over in-memory traces always return nil; file-backed streams
	// report truncation or corruption here after Window comes up short.
	Err() error
}

// Source is the simulator's view of a traced program: per-core record
// sequences plus the address space they reference. A Source may be a fully
// materialized in-memory Program or a FileSource streaming records from an
// encoded trace, which bounds replay memory to the lookahead window.
type Source interface {
	// Cores returns the number of cores the program was traced for.
	Cores() int
	// Memory returns the shared address space (read-only during replay).
	Memory() *mem.Space
	// SpinBarrierWait reports whether cores busy-wait at barriers.
	SpinBarrierWait() bool
	// Validate checks structural invariants before replay.
	Validate() error
	// Open returns a fresh stream over core's records. Each call returns
	// an independent cursor positioned at the first record.
	Open(core int) RecordStream
}

// Source returns the in-memory Source view of p. Multiple simulations may
// hold sources of the same program concurrently; each Open call returns an
// independent cursor.
func (p *Program) Source() Source { return programSource{p} }

type programSource struct{ p *Program }

func (s programSource) Cores() int            { return s.p.Cores() }
func (s programSource) Memory() *mem.Space    { return s.p.Space }
func (s programSource) SpinBarrierWait() bool { return s.p.SpinBarriers }
func (s programSource) Validate() error       { return s.p.Validate() }
func (s programSource) Open(core int) RecordStream {
	return &sliceStream{recs: s.p.Traces[core].Records}
}

// sliceStream streams a materialized record slice; Window is a reslice.
type sliceStream struct {
	recs []Record
	pos  int
}

func (s *sliceStream) Window(max int) []Record {
	end := s.pos + max
	if end > len(s.recs) {
		end = len(s.recs)
	}
	return s.recs[s.pos:end]
}

func (s *sliceStream) Advance(n int) { s.pos += n }

func (s *sliceStream) Err() error { return nil }
