package trace_test

// External test package so the round-trip tests can build real workload
// traces (workload imports trace; the reverse import is only legal from
// trace_test).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

func buildSmall(t *testing.T, name string) *trace.Program {
	t.Helper()
	p, err := workload.Build(name, workload.Options{Cores: 4, Scale: 0.05})
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	return p
}

func newFS(t *testing.T, data []byte) (*trace.FileSource, error) {
	t.Helper()
	return trace.NewFileSource(bytes.NewReader(data), int64(len(data)))
}

func encode(t *testing.T, p *trace.Program) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestRoundTripAllWorkloads pins lossless encoding for every registered
// workload: records, address-space layout and region contents must all
// survive encode/decode exactly.
func TestRoundTripAllWorkloads(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := buildSmall(t, name)
			data := encode(t, p)
			got, err := trace.ReadProgram(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.SpinBarriers != p.SpinBarriers || got.Cores() != p.Cores() {
				t.Fatalf("shape changed: spin=%v cores=%d", got.SpinBarriers, got.Cores())
			}
			for c := range p.Traces {
				if !reflect.DeepEqual(got.Traces[c].Records, p.Traces[c].Records) {
					t.Fatalf("core %d records differ after round trip", c)
				}
			}
			wantRegs, gotRegs := p.Space.Regions(), got.Space.Regions()
			if len(wantRegs) != len(gotRegs) {
				t.Fatalf("region count %d != %d", len(gotRegs), len(wantRegs))
			}
			for i, wr := range wantRegs {
				gr := gotRegs[i]
				if gr.Name != wr.Name || gr.Base != wr.Base || gr.Kind() != wr.Kind() || gr.Len() != wr.Len() {
					t.Fatalf("region %d header differs: %+v vs %+v", i, gr, wr)
				}
				// Word-level spot check plus full typed compare.
				switch wr.Kind() {
				case mem.KindInt32:
					if !reflect.DeepEqual(gr.Int32s(), wr.Int32s()) {
						t.Fatalf("region %q int32 data differs", wr.Name)
					}
				case mem.KindInt64:
					if !reflect.DeepEqual(gr.Int64s(), wr.Int64s()) {
						t.Fatalf("region %q int64 data differs", wr.Name)
					}
				case mem.KindFloat64:
					if !reflect.DeepEqual(gr.Float64s(), wr.Float64s()) {
						t.Fatalf("region %q float64 data differs", wr.Name)
					}
				case mem.KindBytes:
					if !bytes.Equal(gr.Bytes(), wr.Bytes()) {
						t.Fatalf("region %q byte data differs", wr.Name)
					}
				}
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("decoded program invalid: %v", err)
			}
		})
	}
}

// TestRoundTripSWPrefetch covers the software-prefetch record flavor.
func TestRoundTripSWPrefetch(t *testing.T) {
	p, err := workload.Build("spmv", workload.Options{Cores: 4, Scale: 0.05, SoftwarePrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadProgram(bytes.NewReader(encode(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	for c := range p.Traces {
		if !reflect.DeepEqual(got.Traces[c].Records, p.Traces[c].Records) {
			t.Fatalf("core %d records differ", c)
		}
	}
}

func TestEncodedDensity(t *testing.T) {
	p := buildSmall(t, "pagerank")
	data := encode(t, p)
	var records, regionBytes int
	for _, tr := range p.Traces {
		records += len(tr.Records)
	}
	for _, r := range p.Space.Regions() {
		regionBytes += r.Size()
	}
	perRecord := float64(len(data)-regionBytes) / float64(records)
	if perRecord > 10 {
		t.Errorf("record encoding density %.1f B/record, want <= 10", perRecord)
	}
}

func TestTruncatedInputs(t *testing.T) {
	p := buildSmall(t, "spmv")
	data := encode(t, p)
	// Truncations at several depths: magic, header, regions, records, CRC.
	for _, cut := range []int{0, 2, 7, 40, len(data) / 2, len(data) - 5, len(data) - 1} {
		if _, err := trace.ReadProgram(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded; want error", cut, len(data))
		}
	}
}

func TestCorruptedPayloadFailsCRC(t *testing.T) {
	p := buildSmall(t, "spmv")
	data := encode(t, p)
	// Flip one bit near the end of the record section (after the regions,
	// before the CRC) — decode must not silently return wrong records.
	data[len(data)-20] ^= 0x10
	if _, err := trace.ReadProgram(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted trace decoded without error")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := trace.ReadProgram(bytes.NewReader([]byte("nonsense data here"))); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func TestCrossVersionHeaderRejected(t *testing.T) {
	p := buildSmall(t, "spmv")
	data := encode(t, p)
	// Bump the version field (bytes 4..6 after the magic) and re-seal the
	// CRC so the version check, not the checksum, is what rejects the file.
	binary.LittleEndian.PutUint16(data[4:6], trace.FormatVersion+1)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	_, err := trace.ReadProgram(bytes.NewReader(data))
	if !errors.Is(err, trace.ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
	// FileSource must reject it the same way.
	if _, err := trace.NewFileSource(bytes.NewReader(data), int64(len(data))); !errors.Is(err, trace.ErrVersion) {
		t.Fatalf("FileSource on future version: got %v, want ErrVersion", err)
	}
}

// TestFileSourceStreamsIdenticalRecords drains a FileSource window-by-window
// and compares against the in-memory records, exercising windowed reads and
// Advance compaction.
func TestFileSourceStreamsIdenticalRecords(t *testing.T) {
	p := buildSmall(t, "graph500")
	fs, err := newFS(t, encode(t, p))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Cores() != p.Cores() {
		t.Fatalf("cores %d != %d", fs.Cores(), p.Cores())
	}
	if err := fs.Validate(); err != nil {
		t.Fatal(err)
	}
	if fs.Memory().Footprint() != p.Space.Footprint() {
		t.Fatalf("footprint %d != %d", fs.Memory().Footprint(), p.Space.Footprint())
	}
	for c := 0; c < fs.Cores(); c++ {
		want := p.Traces[c].Records
		rs := fs.Open(c)
		var got []trace.Record
		for {
			win := rs.Window(7) // odd size to shake boundary handling
			if len(win) == 0 {
				break
			}
			// Consume fewer records than the window holds to force overlap.
			n := len(win)
			if n > 3 {
				n = 3
			}
			got = append(got, win[:n]...)
			rs.Advance(n)
		}
		if err := rs.Err(); err != nil {
			t.Fatalf("core %d stream error: %v", c, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("core %d: streamed %d records differ from in-memory %d", c, len(got), len(want))
		}
	}
}

// TestFileSourceTruncatedPayload checks that a stream over a truncated file
// surfaces the error through Err rather than panicking or succeeding.
func TestFileSourceTruncatedPayload(t *testing.T) {
	p := buildSmall(t, "spmv")
	data := encode(t, p)
	fs, err := trace.NewFileSource(bytes.NewReader(data[:len(data)-40]), int64(len(data)-40))
	if err != nil {
		// Acceptable: the cut hit the section index itself.
		return
	}
	last := fs.Cores() - 1
	rs := fs.Open(last)
	for len(rs.Window(64)) > 0 {
		rs.Advance(len(rs.Window(64)))
	}
	if rs.Err() == nil {
		t.Fatal("truncated payload streamed to completion without error")
	}
	if !errors.Is(rs.Err(), io.ErrUnexpectedEOF) {
		t.Logf("note: stream error is %v (not ErrUnexpectedEOF); acceptable if decode failed another way", rs.Err())
	}
}

func TestWriteFileAndOpenFile(t *testing.T) {
	p := buildSmall(t, "dense")
	path := filepath.Join(t.TempDir(), "dense.imptrace")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fs, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Records() == 0 || int(fs.Records()) != countRecords(p) {
		t.Fatalf("Records() = %d, want %d", fs.Records(), countRecords(p))
	}
	back, err := trace.ReadProgram(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalAccesses() != p.TotalAccesses() {
		t.Fatalf("accesses %d != %d", back.TotalAccesses(), p.TotalAccesses())
	}
}

func countRecords(p *trace.Program) int {
	n := 0
	for _, tr := range p.Traces {
		n += len(tr.Records)
	}
	return n
}

func mustOpen(t *testing.T, path string) io.Reader {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}
