//go:build ignore

// gen_fuzz_corpus regenerates the committed seed corpus for the binary
// trace fuzz targets (fuzz_test.go):
//
//	cd internal/trace && go run gen_fuzz_corpus.go
//
// Rerun after any format change (FormatVersion bump) so the corpus keeps
// seeding the current decoder's deep branches rather than the version
// check. Seed construction is shared with the fuzz harness via
// internal/trace/tracetest, so the two cannot drift.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/impsim/imp/internal/trace/tracetest"
)

func main() {
	valid, err := tracetest.EncodeTiny()
	if err != nil {
		log.Fatal(err)
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	for _, target := range []string{"FuzzReadProgram", "FuzzRecordStream"} {
		write(target, "seed-valid", valid)
		for name, data := range tracetest.Corruptions(valid) {
			write(target, "seed-"+name, data)
		}
	}
	write("FuzzReadProgram", "seed-empty", nil)
	write("FuzzRecordStream", "seed-magic-only", []byte("IMPT"))
	fmt.Println("wrote seed corpus for FuzzReadProgram and FuzzRecordStream")
}
