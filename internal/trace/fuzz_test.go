package trace_test

// Native fuzz targets for the binary trace format. The decoder consumes
// untrusted bytes (trace files travel between machines and live in shared
// caches), so the contract under fuzzing is: never panic, never allocate
// unboundedly — corrupt input yields an error, nothing else. Seed corpus
// files live under testdata/fuzz/ (regenerate with
// `go run gen_fuzz_corpus.go`); the harness additionally seeds the same
// valid encode in-process (internal/trace/tracetest) so mutation always
// starts from structured input.
//
// Run locally:
//
//	go test -run '^$' -fuzz '^FuzzReadProgram$' -fuzztime 30s ./internal/trace
//	go test -run '^$' -fuzz '^FuzzRecordStream$' -fuzztime 30s ./internal/trace

import (
	"bytes"
	"testing"

	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/trace/tracetest"
)

func addSeeds(f *testing.F) []byte {
	valid, err := tracetest.EncodeTiny()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, data := range tracetest.Corruptions(valid) {
		f.Add(data)
	}
	return valid
}

// FuzzReadProgram: the materializing, checksum-verifying load path must
// return an error on any corrupt input — panics and unbounded allocation
// are the bugs being hunted.
func FuzzReadProgram(f *testing.F) {
	addSeeds(f)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := trace.ReadProgram(bytes.NewReader(data))
		if err != nil {
			if p != nil {
				t.Fatal("ReadProgram returned both a program and an error")
			}
			return
		}
		// A successfully decoded program must survive its own invariants
		// without panicking; Validate may still reject it (the CRC protects
		// integrity, not semantics).
		// And it must re-encode if valid — a decode/encode loop must not
		// crash on anything the decoder accepted.
		if p.Validate() == nil {
			if _, err := p.WriteTo(bytes.NewBuffer(nil)); err != nil {
				t.Fatalf("decoded program failed to re-encode: %v", err)
			}
		}
	})
}

// FuzzRecordStream: the streaming path (header + section index + lazy
// per-core decode) must surface corruption through RecordStream.Err, never
// a panic, and must terminate for any input.
func FuzzRecordStream(f *testing.F) {
	addSeeds(f)
	f.Add([]byte("IMPT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs, err := trace.NewFileSource(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		_ = fs.Validate()
		_ = fs.Records()
		for c := 0; c < fs.Cores(); c++ {
			s := fs.Open(c)
			for {
				w := s.Window(97)
				if len(w) == 0 {
					break
				}
				for _, r := range w {
					// Touch every accessor; corrupt records must stay
					// representable even when semantically invalid.
					_ = r.Instructions()
					_ = r.String()
				}
				s.Advance(len(w))
			}
			_ = s.Err() // corruption lands here, never as a panic
		}
	})
}
