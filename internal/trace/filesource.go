package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"github.com/impsim/imp/internal/mem"
)

// FileSource is a Source backed by an encoded trace (see binary.go) that
// decodes each core's records on the fly. Only the address-space image and
// the per-core section index are materialized up front; replay memory for
// records is bounded by the simulator's lookahead window, so arbitrarily
// long traces replay in constant record memory.
//
// The underlying ReaderAt must support concurrent ReadAt calls (os.File
// and bytes.Reader do); each Open stream reads its own file section.
// FileSource does not verify the file CRC — use ReadProgram for a fully
// checked, materialized load.
type FileSource struct {
	ra     io.ReaderAt
	closer io.Closer // non-nil when opened via OpenFile
	space  *mem.Space
	spin   bool
	cores  []coreSection
}

type coreSection struct {
	off      int64 // absolute payload offset
	bytes    int64
	count    uint64
	barriers uint64
}

// NewFileSource indexes an encoded trace of the given total size in
// bytes. It reads the header, the address space and the per-core section
// table, but no records. Unlike ReadProgram it never sees the whole input,
// so it cannot verify the CRC; the size bounds every length field instead,
// keeping corrupted headers from driving huge allocations.
func NewFileSource(ra io.ReaderAt, size int64) (*FileSource, error) {
	if size <= 0 {
		return nil, fmt.Errorf("trace: non-positive trace size %d", size)
	}
	or := &offsetReader{ra: ra}
	br := bufio.NewReaderSize(or, 1<<16)
	hdr, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	space, err := readRegions(br, hdr.regions, size)
	if err != nil {
		return nil, err
	}
	fs := &FileSource{ra: ra, space: space, spin: hdr.spin}
	for c := 0; c < hdr.cores; c++ {
		count, barriers, plen, err := readCoreHeader(br, size)
		if err != nil {
			return nil, fmt.Errorf("trace: core %d section: %w", c, err)
		}
		pos := or.off - int64(br.Buffered())
		fs.cores = append(fs.cores, coreSection{
			off: pos, bytes: int64(plen), count: count, barriers: barriers,
		})
		for skip := plen; skip > 0; {
			chunk := skip
			const maxChunk = 1 << 30
			if chunk > maxChunk {
				chunk = maxChunk
			}
			if _, err := br.Discard(int(chunk)); err != nil {
				return nil, fmt.Errorf("trace: core %d payload: %w", c, eofToUnexpected(err))
			}
			skip -= chunk
		}
	}
	return fs, nil
}

// OpenFile opens an encoded trace file as a streaming Source. Close the
// source when done.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fs, err := NewFileSource(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	fs.closer = f
	return fs, nil
}

// Close releases the underlying file (no-op for NewFileSource over a
// caller-owned reader).
func (fs *FileSource) Close() error {
	if fs.closer == nil {
		return nil
	}
	return fs.closer.Close()
}

// Cores implements Source.
func (fs *FileSource) Cores() int { return len(fs.cores) }

// Memory implements Source.
func (fs *FileSource) Memory() *mem.Space { return fs.space }

// SpinBarrierWait implements Source.
func (fs *FileSource) SpinBarrierWait() bool { return fs.spin }

// Validate implements Source. Record-level invariants (sizes, mapped
// addresses) were enforced when the file was encoded; here the cheap
// cross-core invariant is checked against the section headers without
// decoding any records.
func (fs *FileSource) Validate() error {
	if len(fs.cores) == 0 {
		return fmt.Errorf("trace: program has no cores")
	}
	want := fs.cores[0].barriers
	for c, cs := range fs.cores {
		if cs.barriers != want {
			return fmt.Errorf("trace: core %d has %d barriers, core 0 has %d", c, cs.barriers, want)
		}
	}
	return nil
}

// Records returns the total record count across cores (header metadata; no
// decoding).
func (fs *FileSource) Records() uint64 {
	var n uint64
	for _, cs := range fs.cores {
		n += cs.count
	}
	return n
}

// Open implements Source: an independent decoding cursor over one core's
// section.
func (fs *FileSource) Open(core int) RecordStream {
	cs := fs.cores[core]
	sr := io.NewSectionReader(fs.ra, cs.off, cs.bytes)
	return &fileStream{
		dec:       recordDecoder{r: bufio.NewReaderSize(sr, 1<<15)},
		remaining: cs.count,
	}
}

// fileStream decodes records lazily into a sliding buffer. The buffer only
// ever holds the simulator's current window plus lookahead, so memory stays
// bounded regardless of trace length.
type fileStream struct {
	dec       recordDecoder
	remaining uint64
	buf       []Record
	head      int
	err       error
}

// compactAt bounds the dead prefix retained in buf between Advance calls.
const compactAt = 4096

func (s *fileStream) Window(max int) []Record {
	for len(s.buf)-s.head < max && s.remaining > 0 && s.err == nil {
		rec, err := s.dec.next()
		if err != nil {
			s.err = err
			break
		}
		s.remaining--
		s.buf = append(s.buf, rec)
	}
	end := s.head + max
	if end > len(s.buf) {
		end = len(s.buf)
	}
	return s.buf[s.head:end]
}

func (s *fileStream) Advance(n int) {
	s.head += n
	if s.head >= len(s.buf) {
		s.buf = s.buf[:0]
		s.head = 0
	} else if s.head >= compactAt {
		kept := copy(s.buf, s.buf[s.head:])
		s.buf = s.buf[:kept]
		s.head = 0
	}
}

func (s *fileStream) Err() error { return s.err }

// offsetReader adapts a ReaderAt to a Reader while tracking the absolute
// offset, so section positions can be computed under a bufio layer.
type offsetReader struct {
	ra  io.ReaderAt
	off int64
}

func (o *offsetReader) Read(p []byte) (int, error) {
	n, err := o.ra.ReadAt(p, o.off)
	o.off += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}
