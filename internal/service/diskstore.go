package service

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/impsim/imp/internal/jobkey"
)

// diskStore layers a persistent directory under the in-memory LRU,
// mirroring the trace cache's on-disk store (internal/progcache): one
// key-named file per result, an integrity envelope (size + CRC-32), writes
// via temp-file-and-rename so concurrent processes never observe partial
// entries, and corrupt-entry eviction — a file that fails its check is
// removed and counted, never served and never fatal.
//
// Memory is the fast path; a get that misses it falls through to disk and
// promotes the hit back into the LRU. Puts write through best-effort: a
// full or read-only disk must not fail the job whose result is being
// published (the in-memory layer still serves it for the process lifetime).
// The directory itself is unbounded, like the trace cache — results are
// small JSON documents and the operator owns the directory.
type diskStore struct {
	mem *memStore
	dir string

	mu       sync.Mutex
	diskHits uint64
	diskPuts uint64
	corrupt  uint64
}

func newDiskStore(max int, dir string) *diskStore {
	return &diskStore{mem: newMemStore(max), dir: dir}
}

func (d *diskStore) path(key string) string {
	// Keys are validated hex (jobkey.ValidKey) before they reach the store,
	// so they are safe as file names.
	return filepath.Join(d.dir, key+".impresult")
}

func (d *diskStore) get(key string) ([]byte, bool) {
	if data, ok := d.mem.get(key); ok {
		return data, true
	}
	path := d.path(key)
	data, err := readResultFile(path)
	switch {
	case err == nil:
		d.mem.promote(key, data)
		d.mu.Lock()
		d.diskHits++
		d.mu.Unlock()
		return data, true
	case errors.Is(err, errCorruptResult):
		// Corrupt or truncated: evict it on the spot so the poisoned entry
		// cannot greet the next read (or the next process), and treat the
		// lookup as a miss — the result is recomputed or read-repaired,
		// never failed.
		_ = os.Remove(path)
		d.mu.Lock()
		d.corrupt++
		d.mu.Unlock()
		return nil, false
	default:
		// Transient read trouble (fd exhaustion, EIO, permissions) is a
		// miss, not corruption — deleting a CRC-intact file over a passing
		// error would permanently destroy a valid result.
		return nil, false
	}
}

func (d *diskStore) put(key string, data []byte) {
	d.mem.put(key, data)
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return
	}
	if err := writeResultFile(d.dir, d.path(key), data); err == nil {
		d.mu.Lock()
		d.diskPuts++
		d.mu.Unlock()
	}
}

// keys unions the in-memory entries with the persistent directory, so a
// restarted backend's full disk inventory is visible to the router's
// membership hand-off even before anything has been promoted into memory.
// Files that do not look like result entries (temp files, foreign junk)
// are skipped; the integrity of each entry is still only checked on read.
func (d *diskStore) keys() []string {
	seen := make(map[string]bool)
	for _, key := range d.mem.keys() {
		seen[key] = true
	}
	if entries, err := os.ReadDir(d.dir); err == nil {
		for _, e := range entries {
			name, ok := strings.CutSuffix(e.Name(), ".impresult")
			if !ok || e.IsDir() || !jobkey.ValidKey(name) {
				continue
			}
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for key := range seen {
		out = append(out, key)
	}
	return out
}

func (d *diskStore) stats() storeStats {
	st := d.mem.stats()
	d.mu.Lock()
	st.Hits += d.diskHits // disk hits bypass the memory counter
	st.DiskHits, st.DiskPuts, st.Corrupt = d.diskHits, d.diskPuts, d.corrupt
	d.mu.Unlock()
	return st
}

// resultMagic opens every on-disk result entry; bump the trailing version
// digits when the envelope changes so old files read as corrupt, not as
// garbage payloads.
var resultMagic = [8]byte{'i', 'm', 'p', 'r', 'e', 's', '0', '1'}

var errCorruptResult = errors.New("service: corrupt result file")

// writeResultFile persists data as magic | uint64 payload length | payload
// | CRC-32 (IEEE) of the payload, through a temp file renamed into place.
func writeResultFile(dir, path string, data []byte) error {
	f, err := os.CreateTemp(dir, ".impresult-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	var header [16]byte
	copy(header[:8], resultMagic[:])
	binary.BigEndian.PutUint64(header[8:], uint64(len(data)))
	var footer [4]byte
	binary.BigEndian.PutUint32(footer[:], crc32.ChecksumIEEE(data))
	_, err = f.Write(header[:])
	if err == nil {
		_, err = f.Write(data)
	}
	if err == nil {
		_, err = f.Write(footer[:])
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
	}
	return err
}

// readResultFile loads and verifies one entry; a missing file surfaces as
// os.ErrNotExist, anything malformed as errCorruptResult.
func readResultFile(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < 16+4 || [8]byte(b[:8]) != resultMagic {
		return nil, errCorruptResult
	}
	n := binary.BigEndian.Uint64(b[8:16])
	if uint64(len(b)) != 16+n+4 {
		return nil, errCorruptResult
	}
	data := b[16 : 16+n]
	if crc32.ChecksumIEEE(data) != binary.BigEndian.Uint32(b[16+n:]) {
		return nil, errCorruptResult
	}
	return data, nil
}
