package service

// Unit tests for the result store layers: LRU semantics of the in-memory
// store, round-trip/corruption behavior of the disk layer, the
// /v1/results/{key} replication surface, and warm restart from disk.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testKey fabricates a well-formed result key (24 hex chars) from i.
func testKey(i int) string { return fmt.Sprintf("%024x", i) }

// TestStoreLRUEvictionOrder: eviction removes the least recently *used*
// entry, with gets counting as use — not merely the oldest put.
func TestStoreLRUEvictionOrder(t *testing.T) {
	s := newMemStore(3)
	for i := 0; i < 3; i++ {
		s.put(testKey(i), []byte{byte(i)})
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, ok := s.get(testKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	s.put(testKey(3), []byte{3})
	if _, ok := s.get(testKey(1)); ok {
		t.Error("key 1 (least recently used) survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.get(testKey(i)); !ok {
			t.Errorf("key %d evicted out of LRU order", i)
		}
	}
	if st := s.stats(); st.Entries != 3 {
		t.Errorf("entries = %d, want 3", st.Entries)
	}
}

// TestStoreOverwriteDuplicatePut: re-putting a key replaces its bytes in
// place — no duplicate entry, no spurious eviction.
func TestStoreOverwriteDuplicatePut(t *testing.T) {
	s := newMemStore(2)
	s.put(testKey(0), []byte("v1"))
	s.put(testKey(1), []byte("other"))
	s.put(testKey(0), []byte("v2"))
	if st := s.stats(); st.Entries != 2 || st.Puts != 3 {
		t.Fatalf("after overwrite: %+v", st)
	}
	if data, ok := s.get(testKey(0)); !ok || !bytes.Equal(data, []byte("v2")) {
		t.Errorf("overwritten key reads %q, want v2", data)
	}
	if _, ok := s.get(testKey(1)); !ok {
		t.Error("overwrite evicted an unrelated key")
	}
}

// TestDiskStoreRoundTrip: a put lands on disk and a *fresh* store over the
// same directory serves it (counted as a disk hit and promoted to memory).
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d1 := newDiskStore(4, dir)
	d1.put(testKey(7), []byte("payload"))
	if st := d1.stats(); st.DiskPuts != 1 {
		t.Fatalf("disk puts = %d, want 1: %+v", st.DiskPuts, st)
	}

	d2 := newDiskStore(4, dir)
	data, ok := d2.get(testKey(7))
	if !ok || !bytes.Equal(data, []byte("payload")) {
		t.Fatalf("fresh store over same dir: ok=%v data=%q", ok, data)
	}
	st := d2.stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("first read not counted as disk hit: %+v", st)
	}
	// Second read is served from the promoted in-memory entry.
	if _, ok := d2.get(testKey(7)); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := d2.stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Errorf("promotion did not serve the second read from memory: %+v", st)
	}
}

// TestDiskStoreCorruptEviction mirrors progcache's corrupt-entry handling:
// a flipped byte or truncated file reads as a miss, is counted in Corrupt,
// and is removed so it cannot poison later reads.
func TestDiskStoreCorruptEviction(t *testing.T) {
	for name, corrupt := range map[string]func(path string) error{
		"byte-flip": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			b[len(b)-7] ^= 0x40 // inside the payload/CRC envelope
			return os.WriteFile(path, b, 0o644)
		},
		"truncation": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)/2], 0o644)
		},
		"bad-magic": func(path string) error {
			return os.WriteFile(path, []byte("not a result file"), 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d := newDiskStore(4, dir)
			d.put(testKey(1), []byte("precious bytes"))
			path := d.path(testKey(1))
			if err := corrupt(path); err != nil {
				t.Fatal(err)
			}
			fresh := newDiskStore(4, dir) // cold memory forces the disk read
			if _, ok := fresh.get(testKey(1)); ok {
				t.Fatal("corrupt entry was served")
			}
			if st := fresh.stats(); st.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt file not evicted from disk: %v", err)
			}
		})
	}
}

// TestStoreResultKeyValidation: only well-formed result keys reach the
// store — anything else could become a hostile file name on disk.
func TestStoreResultKeyValidation(t *testing.T) {
	svc, _ := startService(t, Config{})
	for _, bad := range []string{"", "short", strings.Repeat("g", 24), "../../../../etc/passwd", strings.Repeat("a", 25)} {
		if err := svc.StoreResult(bad, []byte("x")); err == nil {
			t.Errorf("StoreResult accepted malformed key %q", bad)
		}
		if _, ok := svc.StoredResult(bad); ok {
			t.Errorf("StoredResult answered malformed key %q", bad)
		}
	}
}

// TestResultsEndpoints exercises the replication surface over HTTP: PUT
// stores bytes a later GET returns verbatim, a missing key is 404, a
// malformed key 400 — and a Submit whose spec keys to an injected result
// is answered from the store without executing (the read-repair contract).
func TestResultsEndpoints(t *testing.T) {
	svc, c := startService(t, Config{})
	ctx := context.Background()

	spec := testSweepSpec()
	key, err := ResultKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"results":"injected"}`)
	if err := c.PutStoredResult(ctx, key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.StoredResult(ctx, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("store round-trip over HTTP: %q, %v", got, err)
	}

	if _, err := c.StoredResult(ctx, testKey(42)); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing key not a 404: %v", err)
	}
	if err := c.PutStoredResult(ctx, "not-a-key", []byte("x")); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("malformed key not a 400: %v", err)
	}

	// The injected result satisfies a submission of the matching spec
	// without any execution — exactly what a router read-repair relies on.
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached || st.State != "done" {
		t.Fatalf("submission not served from the injected store entry: %+v", st)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil || !bytes.Equal(res, payload) {
		t.Fatalf("served result is not the injected bytes: %q, %v", res, err)
	}
	if stats := svc.Stats(); stats.Executed != 0 {
		t.Errorf("store-served submission executed %d job(s)", stats.Executed)
	}
}

// TestResultsPutTooLarge: replica writes beyond the bound are refused with
// 413, not stored.
func TestResultsPutTooLarge(t *testing.T) {
	_, c := startService(t, Config{})
	err := c.PutStoredResult(context.Background(), testKey(1), make([]byte, maxResultBytes+1))
	if err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("oversized put: %v", err)
	}
}

// TestServiceRestartWarmFromDisk: a service restarted over the same
// results dir answers a previously computed job from disk — zero
// executions, byte-identical result, disk hit counted.
func TestServiceRestartWarmFromDisk(t *testing.T) {
	dir := t.TempDir()
	svc1, c1 := startService(t, Config{ResultsDir: dir})
	ctx := context.Background()
	_, want, err := c1.Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := svc1.Stats(); st.StoreDiskPuts != 1 {
		t.Fatalf("result not persisted: %+v", st)
	}
	closeCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	svc1.Close(closeCtx)
	cancel()

	svc2, c2 := startService(t, Config{ResultsDir: dir})
	st, err := c2.Submit(ctx, testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached || st.State != "done" {
		t.Fatalf("restarted service did not answer from disk: %+v", st)
	}
	got, err := c2.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("disk-restored result diverges from the original")
	}
	if stats := svc2.Stats(); stats.Executed != 0 || stats.StoreDiskHits != 1 {
		t.Errorf("restart-warm stats: %+v", stats)
	}

	// The disk layer is write-through: the restarted service's memory now
	// holds the promoted entry, so a repeat submission skips disk too.
	if st, err := c2.Submit(ctx, testSweepSpec()); err != nil || !st.Cached {
		t.Fatalf("repeat submission after promotion: %+v, %v", st, err)
	}
	if stats := svc2.Stats(); stats.StoreDiskHits != 1 {
		t.Errorf("repeat submission read disk again: %+v", stats)
	}
}

// TestDiskStoreUnusableDirDegrades: an unwritable results dir must not
// fail puts — the in-memory layer still serves the process.
func TestDiskStoreUnusableDirDegrades(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(parent, 0o755) })
	d := newDiskStore(4, filepath.Join(parent, "sub"))
	d.put(testKey(3), []byte("kept in memory"))
	if data, ok := d.get(testKey(3)); !ok || !bytes.Equal(data, []byte("kept in memory")) {
		t.Fatalf("memory layer lost the result: ok=%v", ok)
	}
	if st := d.stats(); st.DiskPuts != 0 {
		t.Errorf("disk puts counted against an unwritable dir: %+v", st)
	}
}

// BenchmarkStoreChurn measures put-with-eviction under steady churn — the
// regression this guards is the old full-map victim scan (O(n) per put,
// quadratic under churn), replaced by the intrusive LRU list.
func BenchmarkStoreChurn(b *testing.B) {
	const maxEntries = 1024
	s := newMemStore(maxEntries)
	keys := make([]string, 4*maxEntries)
	for i := range keys {
		keys[i] = testKey(i)
	}
	data := []byte("result bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.put(keys[i%len(keys)], data)
		s.get(keys[(i*7)%len(keys)])
	}
}

// TestStoredKeysInventory: GET /v1/results enumerates the store — the
// inventory the router's membership hand-off walks. The memory-only store
// lists exactly its entries, sorted; a disk-backed store also lists
// entries that exist only on disk (a restarted backend's full inventory,
// before anything is promoted into memory), skipping files that are not
// result entries.
func TestStoredKeysInventory(t *testing.T) {
	_, c := startService(t, Config{})
	ctx := context.Background()
	for i := 3; i > 0; i-- {
		if err := c.PutStoredResult(ctx, testKey(i), []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := c.StoredKeys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != testKey(1) || keys[1] != testKey(2) || keys[2] != testKey(3) {
		t.Fatalf("memory inventory: %v, want sorted keys 1..3", keys)
	}

	dir := t.TempDir()
	svc1, c1 := startService(t, Config{ResultsDir: dir})
	if err := c1.PutStoredResult(ctx, testKey(7), []byte("{}")); err != nil {
		t.Fatal(err)
	}
	closeCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	svc1.Close(closeCtx)
	cancel()
	// Foreign junk next to real entries must not appear in the inventory.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz.impresult"), []byte("x"), 0o644); err != nil {
		t.Fatal(err) // .impresult suffix but not a valid key
	}
	_, c2 := startService(t, Config{ResultsDir: dir})
	keys, err = c2.StoredKeys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != testKey(7) {
		t.Fatalf("disk inventory after restart: %v, want just %s", keys, testKey(7))
	}
}
