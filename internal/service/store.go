package service

import (
	"container/list"
	"sync"

	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/jobkey"
)

// ResultKey derives the content address of a job's result. The definition
// lives in internal/jobkey — shared with the improuter front-end, which
// hashes the same key onto its backend ring so every spec is routed to the
// backend whose store owns that key.
func ResultKey(spec api.JobSpec) (string, error) {
	return jobkey.ResultKey(spec)
}

// resultStore is the seam between the Service and its content-addressed
// result cache: key -> canonical result bytes. Completed jobs publish here;
// submissions whose key is present are answered without executing anything,
// and the replication surface (PUT/GET /v1/results/{key}) reads and writes
// it directly. Implementations: memStore (LRU, in-process only) and
// diskStore (memStore over a persistent directory, so a restarted backend
// comes back warm). All methods are safe for concurrent use; callers must
// treat returned and handed-in byte slices as immutable — they are shared
// across requests and replicas.
type resultStore interface {
	get(key string) ([]byte, bool)
	put(key string, data []byte)
	// keys lists every key the store can currently answer (memory and, for
	// the disk-backed store, the persistent directory). The improuter
	// front-end enumerates it during ring membership changes to bulk-copy
	// the key ranges a joining or leaving backend hands off.
	keys() []string
	stats() storeStats
}

// storeStats snapshots one store's counters. The disk fields stay zero for
// the pure in-memory store.
type storeStats struct {
	Hits    uint64 // gets served, memory or disk
	Puts    uint64 // results published via put
	Entries int    // in-memory entries
	// DiskHits counts gets that missed memory and were served (and
	// re-promoted) from the disk layer; DiskPuts counts results persisted;
	// Corrupt counts on-disk entries that failed their integrity check and
	// were evicted rather than served.
	DiskHits uint64
	DiskPuts uint64
	Corrupt  uint64
}

// memStore is the in-memory LRU layer. Eviction is O(1): entries live on an
// intrusive recency list (front = most recently used) and the map indexes
// list elements, so evicting beyond the cap pops the back of the list
// instead of scanning the whole map under the lock (the store grows with
// replication, and a full scan per put is quadratic under churn).
type memStore struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // of *memEntry, most recently used first
	entries map[string]*list.Element
	hits    uint64
	puts    uint64
}

type memEntry struct {
	key  string
	data []byte
}

func newMemStore(max int) *memStore {
	if max < 1 {
		max = 1
	}
	return &memStore{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

func (s *memStore) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.hits++
	return el.Value.(*memEntry).data, true
}

func (s *memStore) put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.insertLocked(key, data)
}

// promote refreshes an entry without counting a put — the disk layer uses
// it to pull disk hits back into memory, which is a cache movement, not a
// new result.
func (s *memStore) promote(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(key, data)
}

func (s *memStore) insertLocked(key string, data []byte) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*memEntry).data = data
		s.ll.MoveToFront(el)
		return
	}
	s.entries[key] = s.ll.PushFront(&memEntry{key: key, data: data})
	for len(s.entries) > s.max {
		back := s.ll.Back()
		delete(s.entries, back.Value.(*memEntry).key)
		s.ll.Remove(back)
	}
}

func (s *memStore) keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for key := range s.entries {
		out = append(out, key)
	}
	return out
}

func (s *memStore) stats() storeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return storeStats{Hits: s.hits, Puts: s.puts, Entries: len(s.entries)}
}
