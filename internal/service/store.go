package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

// ResultKey derives the content address of a job's result. Like the trace
// cache key (internal/progcache), it covers everything the output depends
// on: the normalized spec plus the trace format and workload generator
// versions, so bumping either invalidates stale results implicitly.
// Parallelism and timeout are execution hints, not inputs — results are
// byte-identical at any setting — so they are zeroed out of the key.
func ResultKey(spec api.JobSpec) (string, error) {
	spec.Normalize()
	spec.Parallelism = 0
	spec.TimeoutSec = 0
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("service: keying job spec: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "impjob|fmt%d|gen%d|", trace.FormatVersion, workload.GenVersion)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)[:12]), nil
}

// store is the in-memory content-addressed result cache: key -> canonical
// result bytes, LRU-bounded. Completed jobs publish here; submissions whose
// key is present are answered without executing anything. (In-flight
// deduplication — singleflight on the key — lives in the Service's byKey
// index; the store only holds finished results.)
type store struct {
	mu      sync.Mutex
	entries map[string]*storeEntry
	max     int
	tick    uint64
	hits    uint64
	puts    uint64
}

type storeEntry struct {
	data    []byte
	lastUse uint64
}

func newStore(max int) *store {
	if max < 1 {
		max = 1
	}
	return &store{entries: make(map[string]*storeEntry), max: max}
}

// get returns the cached result bytes for key. Callers must treat the
// returned slice as read-only (it is shared across requests).
func (s *store) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.tick++
	e.lastUse = s.tick
	s.hits++
	return e.data, true
}

func (s *store) put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	s.puts++
	s.entries[key] = &storeEntry{data: data, lastUse: s.tick}
	for len(s.entries) > s.max {
		victim := ""
		var use uint64
		for k, e := range s.entries {
			if victim == "" || e.lastUse < use {
				victim, use = k, e.lastUse
			}
		}
		delete(s.entries, victim)
	}
}

func (s *store) stats() (hits, puts uint64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.puts, len(s.entries)
}
