package service

import (
	"sync"

	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/jobkey"
)

// ResultKey derives the content address of a job's result. The definition
// lives in internal/jobkey — shared with the improuter front-end, which
// hashes the same key onto its backend ring so every spec is routed to the
// backend whose store owns that key.
func ResultKey(spec api.JobSpec) (string, error) {
	return jobkey.ResultKey(spec)
}

// store is the in-memory content-addressed result cache: key -> canonical
// result bytes, LRU-bounded. Completed jobs publish here; submissions whose
// key is present are answered without executing anything. (In-flight
// deduplication — singleflight on the key — lives in the Service's byKey
// index; the store only holds finished results.)
type store struct {
	mu      sync.Mutex
	entries map[string]*storeEntry
	max     int
	tick    uint64
	hits    uint64
	puts    uint64
}

type storeEntry struct {
	data    []byte
	lastUse uint64
}

func newStore(max int) *store {
	if max < 1 {
		max = 1
	}
	return &store{entries: make(map[string]*storeEntry), max: max}
}

// get returns the cached result bytes for key. Callers must treat the
// returned slice as read-only (it is shared across requests).
func (s *store) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.tick++
	e.lastUse = s.tick
	s.hits++
	return e.data, true
}

func (s *store) put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	s.puts++
	s.entries[key] = &storeEntry{data: data, lastUse: s.tick}
	for len(s.entries) > s.max {
		victim := ""
		var use uint64
		for k, e := range s.entries {
			if victim == "" || e.lastUse < use {
				victim, use = k, e.lastUse
			}
		}
		delete(s.entries, victim)
	}
}

func (s *store) stats() (hits, puts uint64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.puts, len(s.entries)
}
