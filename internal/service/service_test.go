package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/client"
)

// testSweepSpec is a small three-point sweep used across tests. Scale 0.05
// keeps each simulation in the tens of milliseconds.
func testSweepSpec() api.JobSpec {
	return api.JobSpec{Sweep: []imp.Config{
		{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP},
		{Workload: "pagerank", Cores: 4, Scale: 0.05, System: imp.SystemBaseline},
		{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemNone},
	}}
}

func startService(t *testing.T, cfg Config) (*Service, *client.Client) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return svc, client.New(srv.URL, srv.Client())
}

// TestSubmitStreamResult is the happy path: submit, follow the NDJSON
// stream to completion, fetch the result, and require it byte-identical to
// direct imp.RunSweep output — despite the service running at a different
// parallelism than the direct run.
func TestSubmitStreamResult(t *testing.T) {
	_, c := startService(t, Config{Parallelism: 4})
	ctx := context.Background()
	spec := testSweepSpec()
	spec.Parallelism = 2

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateQueued && st.State != api.StateRunning {
		t.Fatalf("fresh submission in state %q", st.State)
	}
	if st.Key == "" || st.ID == "" {
		t.Fatalf("submission missing id/key: %+v", st)
	}

	var events []api.Event
	if err := c.Stream(ctx, st.ID, 0, func(e api.Event) { events = append(events, e) }); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(spec.Sweep)+1 {
		t.Fatalf("got %d events, want %d points + terminal", len(events), len(spec.Sweep))
	}
	for i, ev := range events[:len(spec.Sweep)] {
		if ev.Seq != i || ev.Cycles <= 0 || ev.Total != len(spec.Sweep) {
			t.Errorf("event %d malformed: %+v", i, ev)
		}
	}
	term := events[len(events)-1]
	if term.State != api.StateDone || term.Done != len(spec.Sweep) {
		t.Fatalf("terminal event: %+v", term)
	}

	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := imp.RunSweep(ctx, testSweepSpec().Sweep, imp.SweepOptions{RunOptions: imp.RunOptions{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := marshalSweepResult(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("service result diverges from direct RunSweep output:\n--- service\n%s\n--- direct\n%s", got, want)
	}

	// The decoded form must round-trip through the client helper too.
	res, err := c.SweepResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Cycles != direct[0].Cycles {
		t.Errorf("SweepResult decode mismatch: %+v", res)
	}
}

// TestConcurrentDuplicateSubmissions is the singleflight guarantee: many
// clients submitting the same spec concurrently share one execution and all
// read byte-identical results. Run under -race in CI.
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	svc, c := startService(t, Config{Executors: 2})
	ctx := context.Background()
	const clients = 8

	var wg sync.WaitGroup
	results := make([][]byte, clients)
	ids := make([]string, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, data, err := c.Run(ctx, testSweepSpec(), nil)
			ids[i], results[i], errs[i] = st.ID, data, err
		}()
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Errorf("client %d got job %s, client 0 got %s (dedup failed)", i, ids[i], ids[0])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Errorf("client %d result differs from client 0", i)
		}
	}
	if st := svc.Stats(); st.Executed != 1 {
		t.Errorf("%d executions for %d identical submissions, want 1", st.Executed, clients)
	}
}

// TestGoldenTableByteIdentity is the acceptance criterion: concurrent
// clients submit the same experiment job and every returned result is
// byte-identical to the committed golden table (the same numbers a direct
// imp.Experiments.Run produces).
func TestGoldenTableByteIdentity(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden_fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden = bytes.TrimSuffix(golden, []byte("\n"))

	_, c := startService(t, Config{Executors: 2})
	ctx := context.Background()
	spec := api.JobSpec{Experiment: "fig2", Cores: 4, Scale: 0.05, Workloads: []string{"spmv", "pagerank"}}

	const clients = 4
	var wg sync.WaitGroup
	results := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, results[i], errs[i] = c.Run(ctx, spec, nil)
		}()
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], golden) {
			t.Errorf("client %d result differs from golden table:\n--- service\n%s\n--- golden\n%s", i, results[i], golden)
		}
	}
}

// TestCancelMidSweep cancels a running job after its first progress event
// and requires a canceled terminal state with no result.
func TestCancelMidSweep(t *testing.T) {
	_, c := startService(t, Config{Executors: 1})
	ctx := context.Background()

	// Enough serial points that the sweep is still in flight after the
	// first event arrives.
	var cfgs []imp.Config
	for i := 0; i < 24; i++ {
		sys := []imp.System{imp.SystemBaseline, imp.SystemIMP, imp.SystemGHB, imp.SystemNone}[i%4]
		wl := []string{"spmv", "pagerank"}[i%2]
		cfgs = append(cfgs, imp.Config{Workload: wl, Cores: 4, Scale: 0.05, System: sys, Seed: int64(i + 1)})
	}
	spec := api.JobSpec{Sweep: cfgs, Parallelism: 1}

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var canceled bool
	err = c.Stream(ctx, st.ID, 0, func(e api.Event) {
		if e.State.Terminal() {
			canceled = e.State == api.StateCanceled
			return
		}
		if e.Seq == 0 {
			if _, err := c.Cancel(ctx, st.ID); err != nil {
				t.Errorf("cancel: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !canceled {
		// The sweep may legitimately have finished before the cancel beat
		// it there — but with 24 serial points that means something broke.
		t.Fatal("job was not canceled mid-sweep")
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateCanceled || final.Done >= len(cfgs) {
		t.Fatalf("final status: %+v", final)
	}
	if _, err := c.Result(ctx, st.ID); err == nil {
		t.Fatal("canceled job served a result")
	}
}

// TestCancelQueuedJob cancels a job that never left the queue. The single
// gate slot is held by the test, so the blocker job deterministically pins
// the lone executor while the second job waits in the queue.
func TestCancelQueuedJob(t *testing.T) {
	svc, c := startService(t, Config{Executors: 1, QueueDepth: 4, Parallelism: 1})
	ctx := context.Background()
	if err := svc.gate.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			svc.gate.Release()
		}
	}
	defer release()

	blocker := api.JobSpec{Sweep: []imp.Config{
		{Workload: "pagerank", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: 100},
	}}
	b, err := c.Submit(ctx, blocker)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(ctx, testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateCanceled {
		t.Fatalf("queued job after cancel: %+v", st)
	}
	// Unblock the blocker and let it finish normally.
	release()
	if err := c.Stream(ctx, b.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	final, err := c.Status(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone {
		t.Fatalf("blocker: %+v", final)
	}
	if got := svc.Stats().Executed; got != 1 {
		t.Errorf("executed %d jobs, want 1 (canceled queued job must not run)", got)
	}
}

// TestQueueFull: submissions beyond the bounded queue get 503, and the
// failed submission leaves no residue (a retry after drain succeeds). The
// test holds the single gate slot so the executor is deterministically
// pinned while the queue fills.
func TestQueueFull(t *testing.T) {
	svc, c := startService(t, Config{Executors: 1, QueueDepth: 1, Parallelism: 1})
	ctx := context.Background()
	if err := svc.gate.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			svc.gate.Release()
		}
	}
	defer release()

	mkSpec := func(seed int64) api.JobSpec {
		return api.JobSpec{
			Sweep:       []imp.Config{{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: seed}},
			Parallelism: 1,
		}
	}
	// Job 1 runs (pinned at the gate); wait until the executor has really
	// dequeued it, then job 2 occupies the depth-1 queue; job 3 must bounce.
	first, err := c.Submit(ctx, mkSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		st, err := c.Status(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never started: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	second, err := c.Submit(ctx, mkSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, mkSpec(3))
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("third submission: %v, want queue full", err)
	}
	// Drain everything; the service must stay consistent, and the bounced
	// spec must submit cleanly once there is room again.
	release()
	for _, id := range []string{first.ID, second.ID} {
		if err := c.Stream(ctx, id, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	retry, err := c.Submit(ctx, mkSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stream(ctx, retry.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestResultStoreServesEvictedJob: once the job record is evicted, a
// resubmission is answered from the content-addressed store without
// executing anything.
func TestResultStoreServesEvictedJob(t *testing.T) {
	svc, c := startService(t, Config{Executors: 1, MaxJobs: 1})
	ctx := context.Background()

	specA := testSweepSpec()
	_, resA, err := c.Run(ctx, specA, nil)
	if err != nil {
		t.Fatal(err)
	}
	specB := api.JobSpec{Sweep: []imp.Config{
		{Workload: "pagerank", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: 9},
	}}
	if _, _, err := c.Run(ctx, specB, nil); err != nil {
		t.Fatal(err)
	}
	// Job A's record is gone (MaxJobs 1), but its result is cached.
	st, err := c.Submit(ctx, specA)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached || st.State != api.StateDone {
		t.Fatalf("resubmission after eviction: %+v", st)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, resA) {
		t.Error("cached result differs from the originally computed result")
	}
	if stats := svc.Stats(); stats.Executed != 2 || stats.StoreHits == 0 {
		t.Errorf("stats after cache hit: %+v", stats)
	}
}

// TestEventsReplayAfterCompletion: the NDJSON stream replays from any seq
// after the job finished, ending with the terminal event.
func TestEventsReplayAfterCompletion(t *testing.T) {
	_, c := startService(t, Config{})
	ctx := context.Background()
	st, _, err := c.Run(ctx, testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var replay []api.Event
	if err := c.Stream(ctx, st.ID, 1, func(e api.Event) { replay = append(replay, e) }); err != nil {
		t.Fatal(err)
	}
	if len(replay) != 3 { // events 1, 2 and the terminal event
		t.Fatalf("replay from seq 1 returned %d events, want 3", len(replay))
	}
	if replay[0].Seq != 1 || !replay[len(replay)-1].State.Terminal() {
		t.Errorf("replay malformed: %+v", replay)
	}
}

// TestHTTPErrors pins the error surface: bad specs 400, unknown jobs 404,
// unfinished/failed results 409.
func TestHTTPErrors(t *testing.T) {
	svc, c := startService(t, Config{})
	ctx := context.Background()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{`); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", code)
	}
	if code := post(`{}`); code != http.StatusBadRequest {
		t.Errorf("empty spec: %d, want 400", code)
	}
	if code := post(`{"experiment":"fig2","sweep":[{"Workload":"spmv"}]}`); code != http.StatusBadRequest {
		t.Errorf("ambiguous spec: %d, want 400", code)
	}
	if code := post(`{"bogus_field":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", code)
	}

	if _, err := c.Status(ctx, "j-999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job status: %v, want 404", err)
	}
	if _, err := c.Result(ctx, "j-999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job result: %v, want 404", err)
	}

	// A sweep of an unknown workload fails; its result endpoint conflicts.
	st, err := c.Submit(ctx, api.JobSpec{Sweep: []imp.Config{{Workload: "nope", Cores: 4, Scale: 0.05}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stream(ctx, st.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateFailed || final.Error == "" {
		t.Fatalf("unknown-workload job: %+v", final)
	}
	if _, err := c.Result(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("failed job result: %v, want 409", err)
	}

	// An unfinished job's result endpoint also conflicts.
	big := api.JobSpec{Sweep: make([]imp.Config, 0, 8), Parallelism: 1}
	for i := 0; i < 8; i++ {
		big.Sweep = append(big.Sweep, imp.Config{
			Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: int64(200 + i),
		})
	}
	run, err := c.Submit(ctx, big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, run.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("unfinished job result: %v, want 409", err)
	}
	if _, err := c.Cancel(ctx, run.ID); err != nil {
		t.Fatal(err)
	}
	c.Stream(ctx, run.ID, 0, nil)
}

// TestListAndAux covers the listing and discovery endpoints.
func TestListAndAux(t *testing.T) {
	_, c := startService(t, Config{})
	ctx := context.Background()
	if _, _, err := c.Run(ctx, testSweepSpec(), nil); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != api.StateDone {
		t.Fatalf("job list: %+v", jobs)
	}
}

// TestResultKeyStability: specs that describe the same work share a key;
// specs that differ in inputs do not; execution hints never split keys.
func TestResultKeyStability(t *testing.T) {
	base := testSweepSpec()
	k1, err := ResultKey(base)
	if err != nil {
		t.Fatal(err)
	}
	hinted := testSweepSpec()
	hinted.Parallelism = 7
	hinted.TimeoutSec = 99
	if k2, _ := ResultKey(hinted); k2 != k1 {
		t.Error("parallelism/timeout hints changed the result key")
	}
	defaulted := testSweepSpec()
	for i := range defaulted.Sweep {
		defaulted.Sweep[i].Scale = 0.05 // already set; also normalize Cores
	}
	if k3, _ := ResultKey(defaulted); k3 != k1 {
		t.Error("normalization is not canonical")
	}
	other := testSweepSpec()
	other.Sweep[0].Seed = 1234
	if k4, _ := ResultKey(other); k4 == k1 {
		t.Error("different inputs share a result key")
	}
	exp := api.JobSpec{Experiment: "fig2", Cores: 4, Scale: 0.05}
	k5, err := ResultKey(exp)
	if err != nil {
		t.Fatal(err)
	}
	if k5 == k1 {
		t.Error("experiment and sweep specs share a key")
	}
}

// TestCloseDrains: Close waits for running jobs, then refuses submissions.
func TestCloseDrains(t *testing.T) {
	svc := New(Config{Executors: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := client.New(srv.URL, srv.Client())
	ctx := context.Background()

	st, err := c.Submit(ctx, testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	closeCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Close(closeCtx); err != nil {
		t.Fatalf("close did not drain: %v", err)
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone {
		t.Fatalf("job after drain: %+v", final)
	}
	if _, err := c.Submit(ctx, testSweepSpec()); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("submission after close: %v, want 503", err)
	}
}
