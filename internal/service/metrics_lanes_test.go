package service

// Tests for the observability and admission surfaces: the Prometheus
// exposition, the per-tenant quota, and the lane accounting that /v1/stats
// and /metrics both read from the one registry.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/metrics"
)

// TestMetricsExposition: after one executed job, GET /metrics serves valid
// exposition whose families cover the service's submit/queue/lane/store
// counters, and the numbers agree with the /v1/stats view.
func TestMetricsExposition(t *testing.T) {
	svc, c := startService(t, Config{})
	ctx := context.Background()

	if _, _, err := c.Run(ctx, testSweepSpec(), nil); err != nil {
		t.Fatal(err)
	}

	expo, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(expo); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, expo)
	}
	for _, family := range []string{
		"imp_service_submitted_total 1",
		"imp_service_executed_total 1",
		`imp_service_queue_depth{lane="interactive"} 0`,
		`imp_service_queue_depth{lane="bulk"} 0`,
		`imp_service_running{lane="interactive"} 0`,
		"imp_service_store_puts_total 1",
		"# TYPE imp_service_job_duration_seconds histogram",
		"# TYPE imp_service_queue_wait_seconds histogram",
	} {
		if !strings.Contains(expo, family) {
			t.Errorf("exposition missing %q", family)
		}
	}

	// The histogram recorded exactly the one executed job, in its lane.
	if !strings.Contains(expo, `imp_service_job_duration_seconds_count{lane="interactive"} 1`) {
		t.Error("job duration histogram did not record the interactive job")
	}

	// /v1/stats is a view over the same registry: the counters must agree.
	st := svc.Stats()
	if want := fmt.Sprintf("imp_service_submitted_total %d", st.Submitted); !strings.Contains(expo, want) {
		t.Errorf("exposition disagrees with stats: want %q", want)
	}
	if svc.Metrics() == nil {
		t.Error("Metrics() accessor returned nil")
	}
}

// TestQuotaPerTenantIsolation: with a 2-burst quota, a tenant's third rapid
// submission is rejected 429/over_quota with a Retry-After hint while a
// second tenant — and the rejected tenant's earlier jobs — are untouched.
func TestQuotaPerTenantIsolation(t *testing.T) {
	svc, c := startService(t, Config{QuotaRate: 0.5, QuotaBurst: 2})
	ctx := context.Background()
	c.SetTenant("team-a")

	spec := func(seed int64) api.JobSpec {
		return api.JobSpec{Sweep: []imp.Config{
			{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: seed},
		}}
	}
	for i := int64(1); i <= 2; i++ {
		if _, err := c.Submit(ctx, spec(i)); err != nil {
			t.Fatalf("submission %d within burst rejected: %v", i, err)
		}
	}
	_, err := c.Submit(ctx, spec(3))
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-burst submission error untyped: %v", err)
	}
	if apiErr.Code != api.CodeOverQuota || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("rejection not over_quota/429: %+v", apiErr)
	}
	if apiErr.RetryAfter < 1 {
		t.Fatalf("rejection missing Retry-After: %+v", apiErr)
	}

	// Another tenant's bucket is untouched.
	c.SetTenant("team-b")
	if _, err := c.Submit(ctx, spec(4)); err != nil {
		t.Fatalf("tenant b rejected alongside tenant a: %v", err)
	}

	st := svc.Stats()
	if st.QuotaRejections != 1 {
		t.Errorf("stats quota rejections = %d, want 1", st.QuotaRejections)
	}
	expo, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo, `imp_service_quota_rejections_total{tenant="team-a"} 1`) {
		t.Error("exposition missing the per-tenant rejection counter")
	}
}

// TestSubmitUsesDefaultTenant: the tenantless Submit entrypoint shares the
// default bucket, and the Job accessors report what was classified.
func TestSubmitUsesDefaultTenant(t *testing.T) {
	svc, _ := startService(t, Config{QuotaRate: 0.1, QuotaBurst: 1})

	spec := func(seed int64) api.JobSpec {
		return api.JobSpec{Sweep: []imp.Config{
			{Workload: "spmv", Cores: 4, Scale: 0.05, System: imp.SystemIMP, Seed: seed},
		}}
	}
	if _, err := svc.Submit(spec(1)); err != nil {
		t.Fatalf("first default-tenant submit: %v", err)
	}
	_, err := svc.Submit(spec(2))
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeOverQuota {
		t.Fatalf("default tenant not quota-limited: %v", err)
	}

	j := newJob("j-000001", "k", spec(3), api.LaneBulk)
	if j.ID() != "j-000001" || j.Lane() != api.LaneBulk || len(j.Spec().Sweep) != 1 {
		t.Errorf("job accessors wrong: id=%s lane=%s spec=%+v", j.ID(), j.Lane(), j.Spec())
	}
}

// TestLaneOccupancyInStatsAndMetrics: while a bulk job is queued behind a
// saturated executor, the per-lane decomposition shows it in both the
// typed stats and the gauges.
func TestLaneOccupancyInStatsAndMetrics(t *testing.T) {
	svc, c := startService(t, Config{Executors: 1, Parallelism: 1})
	ctx := context.Background()

	// Hold the service's only simulation slot so the first job blocks
	// mid-run and the second stays queued until we let go — the occupancy
	// window is under test control instead of racing sim speed (a warm
	// trace cache finishes these sweeps in well under one poll interval).
	if err := svc.gate.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			svc.gate.Release()
		}
	}
	defer release()

	submit := func(lane api.Lane, seed int64) api.JobStatus {
		t.Helper()
		st, err := c.Submit(ctx, api.JobSpec{
			Priority: lane,
			Sweep: []imp.Config{
				{Workload: "spmv", Cores: 16, Scale: 0.2, System: imp.SystemIMP, Seed: seed},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	first := submit(api.LaneBulk, 1)
	queued := submit(api.LaneBulk, 2)

	// The first job occupies the single executor (blocked on the gate we
	// hold); the second waits in the bulk lane. Poll only for the executor
	// to pick the first job up — the occupancy then holds until release.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.RunningBulk >= 1 && st.QueuedBulk >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lane occupancy never surfaced: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	expo, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo, `imp_service_running{lane="bulk"} 1`) {
		t.Error("running gauge missing the bulk occupancy")
	}
	if !strings.Contains(expo, `imp_service_queue_depth{lane="bulk"} 1`) {
		t.Error("queue depth gauge missing the queued bulk job")
	}

	release()
	for _, id := range []string{first.ID, queued.ID} {
		c.Cancel(ctx, id)
	}
}
