package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/httpx"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job spec (202 queued, 200 dedup/cached)
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result canonical result bytes (409 until done)
//	GET    /v1/jobs/{id}/events NDJSON progress stream (?from=<seq> resumes)
//	POST   /v1/jobs/{id}/cancel request cancellation
//	GET    /v1/results          stored result keys (membership hand-off inventory)
//	GET    /v1/results/{key}    result store read by content key (404 on miss)
//	PUT    /v1/results/{key}    result store write (replica fan-out / read-repair)
//	GET    /v1/workloads        available workload names
//	GET    /v1/experiments      available experiment ids
//	GET    /v1/stats            service counters (JSON view of the registry)
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
//
// The /v1/results surface is the internal replication protocol: the
// improuter front-end uses PUT to fan a finished result out to ring
// successors and GET to read-repair a cold owner from its peers. It trusts
// its caller — the bytes under a key are assumed to be the canonical result
// for it (results are content-addressed, so honest writers can never
// disagree) — so deployments exposing impserve directly to untrusted
// clients should keep it unreachable from them.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/results", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.StoredKeys())
	})
	mux.HandleFunc("GET /v1/results/{key}", s.handleStoreGet)
	mux.HandleFunc("PUT /v1/results/{key}", s.handleStorePut)
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, imp.Workloads())
	})
	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, imp.Experiments.IDs())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// maxSpecBytes bounds submitted spec bodies; a sweep of thousands of
// configs fits comfortably, an abusive body does not.
const maxSpecBytes = 1 << 20

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	st, err := s.SubmitFrom(r.Header.Get(api.TenantHeader), spec)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	code := http.StatusAccepted
	if st.Deduped || st.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func submitStatus(err error) int {
	var wire *api.Error
	switch {
	case errors.As(err, &wire) && wire.Code != "":
		// Typed rejections (queue full, over quota) carry their own status.
		return wire.Code.HTTPStatus()
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	data, err := j.Result()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// maxResultBytes bounds replica-write bodies; result documents are JSON
// tables or sweep results, far below this, but the bound keeps an errant
// peer from exhausting memory.
const maxResultBytes = 64 << 20

func (s *Service) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	data, ok := s.StoredResult(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no stored result for key %q", r.PathValue("key")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Service) handleStorePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBytes))
	if err != nil {
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("reading result body: %w", err))
		return
	}
	if err := s.StoreResult(key, data); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the job's progress as NDJSON: every past event from
// ?from= (default 0), then live events as points complete, ending with the
// terminal event. Each line is one api.Event.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	seq := 0
	if v := r.URL.Query().Get("from"); v != "" {
		seq, err = strconv.Atoi(v)
		if err != nil || seq < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q", v))
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, terminal, err := j.WaitEvents(r.Context(), seq)
		if err != nil {
			return // client went away
		}
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		seq += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal && len(evs) == 0 {
			return
		}
		// After delivering a batch containing the terminal event, the next
		// WaitEvents returns (nil, true, nil) immediately and we exit above.
		if terminal {
			for _, ev := range evs {
				if ev.State.Terminal() {
					return
				}
			}
		}
	}
}

// writeJSON and writeError delegate to the shared envelope
// (internal/httpx) so backend and router responses cannot drift apart.
func writeJSON(w http.ResponseWriter, code int, v any) { httpx.WriteJSON(w, code, v) }

func writeError(w http.ResponseWriter, code int, err error) { httpx.WriteError(w, code, err) }
