// Package service implements the impserve experiment service: a bounded
// two-lane job queue in front of the imp sweep harness, a content-addressed
// result store, and an HTTP API (submit / status / result / cancel / NDJSON
// progress streaming / Prometheus metrics).
//
// Design constraints, in order:
//
//   - Results are a pure function of the job spec. A job executed by the
//     service yields bytes identical to direct imp.RunSweep /
//     imp.Experiments.Run output at any parallelism, so results can be
//     cached by content key (spec + trace.FormatVersion +
//     workload.GenVersion) and shared between identical submissions.
//   - Identical work runs at most once: an in-flight job index deduplicates
//     concurrent duplicate submissions (singleflight on the result key),
//     and finished results are served from the store without executing.
//   - Load is bounded everywhere: the queue depth caps waiting jobs, the
//     executor count caps running jobs, and one imp.Gate shared across all
//     jobs caps total in-flight simulations regardless of per-job
//     parallelism, so a burst of submissions cannot oversubscribe the host.
//   - Overload is answered, not absorbed: a full queue and an over-quota
//     tenant both get 429 with a Retry-After hint (api.Error), so clients
//     learn to back off instead of piling onto an unbounded backlog.
//   - Latency-sensitive work is not starved: submissions are scheduled in
//     two lanes (api.LaneInteractive / api.LaneBulk). Executors prefer the
//     interactive lane, with a small anti-starvation share for bulk, so a
//     storm of sweeps cannot park a small submit behind all of them.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/admission"
	"github.com/impsim/imp/internal/jobkey"
	"github.com/impsim/imp/internal/metrics"
)

// Config parameterizes a Service. Zero values select the defaults.
type Config struct {
	// QueueDepth bounds jobs waiting to run across both lanes (default 64).
	// Submissions beyond it fail with ErrQueueFull (HTTP 429 + Retry-After)
	// rather than queueing unboundedly.
	QueueDepth int
	// Executors bounds concurrently running jobs (default 2).
	Executors int
	// Parallelism caps total in-flight simulations across all running jobs
	// (default GOMAXPROCS), enforced by a shared imp.Gate.
	Parallelism int
	// JobTimeout bounds one job's execution (default 15m); a spec's
	// TimeoutSec overrides it per job, still capped by JobTimeout.
	JobTimeout time.Duration
	// StoreEntries bounds the in-memory result cache (default 256 results).
	StoreEntries int
	// ResultsDir, when set, backs the result store with a persistent
	// directory (one CRC-checked file per key, like the trace cache), so a
	// restarted service answers previously computed results without
	// recompute. Empty keeps the store memory-only. Disk writes are
	// best-effort: an unusable directory degrades to memory-only behavior
	// rather than failing jobs.
	ResultsDir string
	// MaxJobs bounds retained job records; the oldest finished jobs are
	// evicted beyond it (default 1024). Their results stay in the store.
	MaxJobs int
	// QuotaRate grants each tenant (X-Imp-Tenant) this many submissions per
	// second, enforced by a token bucket; QuotaBurst is the bucket capacity
	// (default max(QuotaRate, 1)). QuotaRate <= 0 disables quotas.
	QuotaRate  float64
	QuotaBurst float64
	// BulkThreshold is the sweep size beyond which an unlabeled submission
	// is classified into the bulk lane (default api.DefaultBulkThreshold).
	BulkThreshold int
	// Checkpoints, when enabled, lets jobs share simulation prefixes
	// through the checkpoint cache: sweep points with identical effective
	// simulations fork from one snapshotted replay instead of each
	// re-simulating it. Results are byte-identical either way.
	Checkpoints imp.CheckpointPolicy
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.StoreEntries <= 0 {
		c.StoreEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.BulkThreshold <= 0 {
		c.BulkThreshold = api.DefaultBulkThreshold
	}
	return c
}

// Sentinel errors mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity (HTTP 429 + Retry-After; the wire error is
	// api.CodeQueueFull).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed rejects submissions after Close (HTTP 503).
	ErrClosed = errors.New("service: shutting down")
	// ErrUnknownJob reports a job id with no record (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrNotFinished reports a result request for an unfinished job
	// (HTTP 409).
	ErrNotFinished = errors.New("service: job not finished")
	// ErrJobFailed reports a result request for a failed or canceled job
	// (HTTP 409).
	ErrJobFailed = errors.New("service: job did not produce a result")
)

// Stats is the service's /v1/stats document — the shared wire type.
type Stats = api.ServiceStats

// typedErr pairs a package sentinel with its wire form, so errors.Is sees
// the sentinel (existing callers branch on ErrQueueFull) while the HTTP
// layer errors.As the *api.Error for the typed body and Retry-After header.
type typedErr struct {
	wire     *api.Error
	sentinel error
}

func (e *typedErr) Error() string   { return e.wire.Message }
func (e *typedErr) Unwrap() []error { return []error{e.wire, e.sentinel} }

func queueFullError(retryAfter int) error {
	wire := api.Errorf(api.CodeQueueFull, "%s (retry in ~%ds)", ErrQueueFull.Error(), retryAfter)
	wire.RetryAfter = retryAfter
	return &typedErr{wire: wire, sentinel: ErrQueueFull}
}

// Service owns the job queues, the executors and the result store.
type Service struct {
	cfg     Config
	gate    imp.Gate
	store   resultStore
	limiter *admission.Limiter
	reg     *metrics.Registry

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	qcond    *sync.Cond // signals executors when work arrives or Close runs
	closed   bool
	nextID   int
	jobs     map[string]*Job
	order    []string        // submission order, for listing and eviction
	byKey    map[string]*Job // live singleflight index: queued/running/done
	qlanes   map[api.Lane][]*Job
	running  map[api.Lane]int
	dequeues uint64 // scheduler tick, drives the anti-starvation share
	executed uint64
	deduped  uint64
	cached   uint64
	// ewmaJobSec smooths observed job durations; the queue-full Retry-After
	// hint is backlog x this / executors.
	ewmaJobSec float64
	wg         sync.WaitGroup

	// Registry-native instruments (the registry is their single source of
	// truth; Stats() reads them back rather than double-counting).
	mQuotaRej  *metrics.CounterVec
	mQueueRej  *metrics.Counter
	mQueueWait *metrics.HistogramVec
	mJobDur    *metrics.HistogramVec
}

// New starts a Service with cfg.Executors executor goroutines. Close it to
// release them.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	var rs resultStore
	if cfg.ResultsDir != "" {
		rs = newDiskStore(cfg.StoreEntries, cfg.ResultsDir)
	} else {
		rs = newMemStore(cfg.StoreEntries)
	}
	s := &Service{
		cfg:        cfg,
		gate:       imp.NewGate(cfg.Parallelism),
		store:      rs,
		limiter:    admission.New(cfg.QuotaRate, cfg.QuotaBurst),
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		qlanes:     map[api.Lane][]*Job{api.LaneInteractive: nil, api.LaneBulk: nil},
		running:    map[api.Lane]int{api.LaneInteractive: 0, api.LaneBulk: 0},
	}
	s.qcond = sync.NewCond(&s.mu)
	s.initMetrics()
	s.wg.Add(cfg.Executors)
	for i := 0; i < cfg.Executors; i++ {
		go s.executor()
	}
	return s
}

// initMetrics builds the service's Prometheus registry. Counters that
// already live on the Service or the store are exported through func
// collectors (scrapes read the live values — /v1/stats and /metrics can
// never disagree); admission counters and latency histograms are
// registry-native instruments.
func (s *Service) initMetrics() {
	r := metrics.New()
	s.reg = r
	s.mQuotaRej = r.CounterVec("imp_service_quota_rejections_total",
		"Submissions rejected because the tenant's token bucket was empty (HTTP 429).", "tenant")
	s.mQueueRej = r.Counter("imp_service_queue_rejections_total",
		"Submissions rejected by queue-depth admission control (HTTP 429).")
	s.mQueueWait = r.HistogramVec("imp_service_queue_wait_seconds",
		"Time jobs spent queued before an executor picked them up.", nil, "lane")
	s.mJobDur = r.HistogramVec("imp_service_job_duration_seconds",
		"Wall-clock job execution time.", nil, "lane")

	lockedCount := func(read func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}
	r.CounterFunc("imp_service_submitted_total", "Jobs submitted (including deduped and cached answers).",
		lockedCount(func() float64 { return float64(s.nextID) }))
	r.CounterFunc("imp_service_executed_total", "Jobs actually executed (cache and dedup misses).",
		lockedCount(func() float64 { return float64(s.executed) }))
	r.CounterFunc("imp_service_deduped_total", "Submissions answered by a live in-flight job with the same key.",
		lockedCount(func() float64 { return float64(s.deduped) }))
	r.CounterFunc("imp_service_cached_total", "Submissions answered from the result store.",
		lockedCount(func() float64 { return float64(s.cached) }))
	r.SampleFunc("imp_service_queue_depth", "Jobs waiting to run, by lane.",
		metrics.TypeGauge, []string{"lane"}, func() []metrics.Sample {
			s.mu.Lock()
			defer s.mu.Unlock()
			return laneSamples(func(l api.Lane) float64 { return float64(len(s.qlanes[l])) })
		})
	r.SampleFunc("imp_service_running", "Jobs currently executing, by lane.",
		metrics.TypeGauge, []string{"lane"}, func() []metrics.Sample {
			s.mu.Lock()
			defer s.mu.Unlock()
			return laneSamples(func(l api.Lane) float64 { return float64(s.running[l]) })
		})
	r.CounterFunc("imp_service_store_hits_total", "Result-store hits.",
		func() float64 { return float64(s.store.stats().Hits) })
	r.CounterFunc("imp_service_store_puts_total", "Result-store writes.",
		func() float64 { return float64(s.store.stats().Puts) })
	r.GaugeFunc("imp_service_store_entries", "Results currently cached in memory.",
		func() float64 { return float64(s.store.stats().Entries) })
	r.CounterFunc("imp_service_store_disk_hits_total", "Results read from the persistent store layer.",
		func() float64 { return float64(s.store.stats().DiskHits) })
	r.CounterFunc("imp_service_store_disk_puts_total", "Results written to the persistent store layer.",
		func() float64 { return float64(s.store.stats().DiskPuts) })
	r.CounterFunc("imp_service_store_corrupt_total", "On-disk results evicted for failing their integrity check.",
		func() float64 { return float64(s.store.stats().Corrupt) })
	// Checkpointed-sweep counters. The imp package counts process-wide (one
	// checkpoint cache per process), which is exactly the service's scope.
	r.CounterFunc("imp_service_checkpoint_hits_total", "Sweep points forked from a restored simulation checkpoint.",
		func() float64 { return float64(imp.GetCheckpointStats().Hits) })
	r.CounterFunc("imp_service_checkpoint_misses_total", "Shared replays simulated cold and published to the checkpoint cache.",
		func() float64 { return float64(imp.GetCheckpointStats().Misses) })
	r.CounterFunc("imp_service_prefix_cycles_saved_total", "Simulated cycles restored from checkpoints instead of re-simulated.",
		func() float64 { return float64(imp.GetCheckpointStats().PrefixCyclesSaved) })
}

func laneSamples(val func(api.Lane) float64) []metrics.Sample {
	out := make([]metrics.Sample, 0, len(api.Lanes))
	for _, l := range api.Lanes {
		out = append(out, metrics.Sample{Labels: []string{string(l)}, Value: val(l)})
	}
	return out
}

// Metrics exposes the service's Prometheus registry (GET /metrics).
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Job is one submitted unit of work. All mutable fields are guarded by mu;
// cond broadcasts on every event append and state change.
type Job struct {
	id   string
	key  string
	spec api.JobSpec
	lane api.Lane

	mu        sync.Mutex
	cond      *sync.Cond
	state     api.JobState
	events    []api.Event
	done      int
	total     int
	result    []byte
	errMsg    string
	cached    bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancelRun context.CancelFunc // set while running
	cancelReq bool
}

func newJob(id, key string, spec api.JobSpec, lane api.Lane) *Job {
	j := &Job{id: id, key: key, spec: spec, lane: lane, state: api.StateQueued, submitted: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	if len(spec.Sweep) > 0 {
		j.total = len(spec.Sweep)
	}
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's normalized specification.
func (j *Job) Spec() api.JobSpec { return j.spec }

// Lane returns the scheduling lane the job was classified into.
func (j *Job) Lane() api.Lane { return j.lane }

// Status snapshots the job.
func (j *Job) Status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.JobStatus{
		ID: j.id, Key: j.key, State: j.state,
		Done: j.done, Total: j.total,
		Error: j.errMsg, Cached: j.cached,
		SubmittedAt: j.submitted, StartedAt: j.started, FinishedAt: j.finished,
	}
}

// Result returns the job's result bytes once StateDone; before that it
// fails with ErrNotFinished, and for failed/canceled jobs with ErrJobFailed.
func (j *Job) Result() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == api.StateDone:
		return j.result, nil
	case j.state.Terminal():
		return nil, fmt.Errorf("%w: %s (%s)", ErrJobFailed, j.state, j.errMsg)
	default:
		return nil, fmt.Errorf("%w: %s", ErrNotFinished, j.state)
	}
}

// WaitEvents blocks until events past seq exist or ctx is done, then
// returns a copy of them. After the terminal event has been returned,
// subsequent calls return immediately with no events and terminal=true.
func (j *Job) WaitEvents(ctx context.Context, seq int) (evs []api.Event, terminal bool, err error) {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for seq >= len(j.events) && !j.state.Terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	if seq >= len(j.events) {
		if j.state.Terminal() {
			return nil, true, nil
		}
		return nil, false, ctx.Err()
	}
	evs = append(evs, j.events[seq:]...)
	return evs, j.state.Terminal(), nil
}

// addEvent appends one progress event; callers must not hold mu.
func (j *Job) addEvent(ev api.Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	if ev.Done > j.done {
		j.done = ev.Done
	}
	if ev.Total > j.total {
		j.total = ev.Total
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

// Submit is SubmitFrom for the anonymous (default) tenant.
func (s *Service) Submit(spec api.JobSpec) (api.JobStatus, error) {
	return s.SubmitFrom("", spec)
}

// SubmitFrom validates, normalizes and keys spec on behalf of tenant, then
// answers it from the in-flight index (dedup), the result store (cache) or
// a fresh queued job. Admission control runs up front: an over-quota tenant
// is rejected with api.CodeOverQuota before any work happens, and a full
// queue rejects with ErrQueueFull/api.CodeQueueFull — both carrying a
// Retry-After hint.
func (s *Service) SubmitFrom(tenant string, spec api.JobSpec) (api.JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return api.JobStatus{}, err
	}
	if ok, retryAfter := s.limiter.Allow(tenant); !ok {
		name := tenant
		if name == "" {
			name = admission.DefaultTenant
		}
		s.mQuotaRej.With(name).Inc()
		wire := api.Errorf(api.CodeOverQuota, "service: tenant %q over submission quota", name)
		wire.RetryAfter = retryAfter
		return api.JobStatus{}, wire
	}
	spec.Normalize()
	key, err := ResultKey(spec)
	if err != nil {
		return api.JobStatus{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return api.JobStatus{}, ErrClosed
	}
	if live, ok := s.byKey[key]; ok {
		s.deduped++
		s.mu.Unlock()
		st := live.Status()
		st.Deduped = true
		return st, nil
	}
	s.mu.Unlock()

	// The store lookup runs outside s.mu: with a results dir it can touch
	// disk, and every other API path would otherwise queue behind that
	// read. The cost is a benign race — a concurrent duplicate submission
	// can register a live job while we read — so re-check the singleflight
	// index after relocking before committing either way.
	data, inStore := s.store.get(key)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return api.JobStatus{}, ErrClosed
	}
	if live, ok := s.byKey[key]; ok {
		s.deduped++
		st := live.Status()
		st.Deduped = true
		return st, nil
	}
	if inStore {
		s.cached++
		j := s.newJobLocked(key, spec)
		now := time.Now()
		j.state = api.StateDone
		j.result = data
		j.cached = true
		j.started, j.finished = now, now
		j.events = []api.Event{{State: api.StateDone}}
		s.registerLocked(j)
		st := j.Status()
		st.Cached = true
		return st, nil
	}
	if s.queuedLocked() >= s.cfg.QueueDepth {
		s.mQueueRej.Inc()
		return api.JobStatus{}, queueFullError(s.retryHintLocked())
	}
	j := s.newJobLocked(key, spec)
	s.registerLocked(j)
	s.byKey[key] = j
	s.qlanes[j.lane] = append(s.qlanes[j.lane], j)
	s.qcond.Signal()
	return j.Status(), nil
}

func (s *Service) queuedLocked() int {
	n := 0
	for _, q := range s.qlanes {
		n += len(q)
	}
	return n
}

// retryHintLocked estimates, in whole seconds, when queue capacity frees
// up: the backlog (queued + running) times the smoothed job duration,
// divided across the executors, clamped to [1s, 60s] so the header is
// always sane even while the estimate is still warming up.
func (s *Service) retryHintLocked() int {
	perJob := s.ewmaJobSec
	if perJob <= 0 {
		perJob = 2 // no completed jobs yet; guess conservatively
	}
	backlog := s.queuedLocked() + s.running[api.LaneInteractive] + s.running[api.LaneBulk]
	est := perJob * float64(backlog) / float64(s.cfg.Executors)
	return int(math.Min(60, math.Max(1, math.Ceil(est))))
}

func (s *Service) newJobLocked(key string, spec api.JobSpec) *Job {
	s.nextID++
	return newJob(fmt.Sprintf("j-%06d", s.nextID), key, spec, spec.EffectiveLane(s.cfg.BulkThreshold))
}

func (s *Service) registerLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Evict the oldest finished jobs beyond the retention cap; their
	// results survive in the store.
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			old := s.jobs[id]
			if old == nil || !old.Status().State.Terminal() {
				continue
			}
			delete(s.jobs, id)
			if s.byKey[old.key] == old {
				delete(s.byKey, old.key)
			}
			s.order = append(s.order[:i], s.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break // everything live; stay over cap briefly
		}
	}
}

// Job looks a job up by id.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs snapshots every retained job in submission order.
func (s *Service) Jobs() []api.JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]api.JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation: a queued job is finished as canceled
// without running; a running job has its context canceled and finishes as
// canceled once in-flight points drain. Terminal jobs are left untouched.
func (s *Service) Cancel(id string) (api.JobStatus, error) {
	j, err := s.Job(id)
	if err != nil {
		return api.JobStatus{}, err
	}
	j.mu.Lock()
	j.cancelReq = true
	cancel := j.cancelRun
	queued := j.state == api.StateQueued
	j.mu.Unlock()
	if queued {
		// Finish it in place only if it is still queued; if an executor
		// dequeued it in the meantime, that executor saw cancelReq (set
		// above, under the same lock it transitions through) and finishes
		// the job as canceled itself without running it.
		s.finishJob(j, nil, context.Canceled, true)
	} else if cancel != nil {
		cancel()
	}
	return j.Status(), nil
}

// Stats snapshots the service counters — the same values /metrics exports.
func (s *Service) Stats() api.ServiceStats {
	ss := s.store.stats()
	cs := imp.GetCheckpointStats()
	quotaRej := s.mQuotaRej.Total()
	queueRej := s.mQueueRej.Value()
	s.mu.Lock()
	defer s.mu.Unlock()
	return api.ServiceStats{
		Submitted: uint64(s.nextID), Executed: s.executed,
		Deduped: s.deduped, Cached: s.cached,
		StoreHits: ss.Hits, StorePuts: ss.Puts, StoreLen: ss.Entries,
		StoreDiskHits: ss.DiskHits, StoreDiskPuts: ss.DiskPuts, StoreCorrupt: ss.Corrupt,
		Queued:             s.queuedLocked(),
		Running:            s.running[api.LaneInteractive] + s.running[api.LaneBulk],
		QueuedInteractive:  len(s.qlanes[api.LaneInteractive]),
		QueuedBulk:         len(s.qlanes[api.LaneBulk]),
		RunningInteractive: s.running[api.LaneInteractive],
		RunningBulk:        s.running[api.LaneBulk],
		QuotaRejections:    quotaRej,
		QueueRejections:    queueRej,
		CheckpointHits:     cs.Hits,
		CheckpointMisses:   cs.Misses,
		PrefixCyclesSaved:  cs.PrefixCyclesSaved,
	}
}

// StoredResult reads the result store directly by content key — the peer
// side of the replication surface (GET /v1/results/{key}). A malformed key
// is simply a miss.
func (s *Service) StoredResult(key string) ([]byte, bool) {
	if !jobkey.ValidKey(key) {
		return nil, false
	}
	return s.store.get(key)
}

// StoredKeys lists every key the result store can currently answer, sorted
// (GET /v1/results). It is the inventory side of the replication surface:
// the improuter front-end enumerates it during ring membership changes to
// decide which results a joining or leaving backend must receive.
func (s *Service) StoredKeys() []string {
	keys := s.store.keys()
	sort.Strings(keys)
	return keys
}

// StoreResult publishes a finished result under key without running
// anything — the replica-write side of the replication surface
// (PUT /v1/results/{key}). Results are content-addressed and byte-identical
// across the fleet, so an overwrite is always idempotent; the caller hands
// over ownership of data. Only the key's shape is validated: the bytes are
// trusted to be the canonical result for it, which is why the endpoint is
// internal (router-to-backend), not public.
func (s *Service) StoreResult(key string, data []byte) error {
	if !jobkey.ValidKey(key) {
		return fmt.Errorf("service: malformed result key %q", key)
	}
	s.store.put(key, data)
	return nil
}

// Close stops accepting work and waits for the queue to drain. If ctx ends
// first, in-flight jobs are canceled and Close waits for them to unwind.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.qcond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelBase()
		<-drained
	}
	s.cancelBase()
	return err
}

func (s *Service) executor() {
	defer s.wg.Done()
	for {
		j := s.dequeue()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// bulkShare is the anti-starvation ratio: every bulkShare-th dequeue takes
// the bulk lane even when interactive work is waiting, so a sustained
// interactive stream cannot park bulk jobs forever. All other dequeues
// prefer interactive.
const bulkShare = 4

// dequeue blocks until a job is available or the service is closed and
// drained; nil means "no more work ever" (executor exits). After Close the
// remaining queued jobs are still dequeued and run — Close waits for the
// backlog to drain, same contract as the old channel-based queue.
func (s *Service) dequeue() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		qi, qb := s.qlanes[api.LaneInteractive], s.qlanes[api.LaneBulk]
		if len(qi)+len(qb) > 0 {
			lane := api.LaneInteractive
			if len(qi) == 0 || (len(qb) > 0 && s.dequeues%bulkShare == bulkShare-1) {
				lane = api.LaneBulk
			}
			q := s.qlanes[lane]
			j := q[0]
			q[0] = nil // drop the queue's reference; the slice arrays are reused
			s.qlanes[lane] = q[1:]
			s.dequeues++
			return j
		}
		if s.closed {
			return nil
		}
		s.qcond.Wait()
	}
}

// runJob executes one dequeued job end to end.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != api.StateQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	if j.cancelReq {
		// Cancel won the race for the queued job but has not finished it
		// yet; do it here rather than starting work that is already dead.
		j.mu.Unlock()
		s.finishJob(j, nil, context.Canceled, false)
		return
	}
	timeout := s.cfg.JobTimeout
	if t := time.Duration(j.spec.TimeoutSec) * time.Second; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	j.cancelRun = cancel
	j.state = api.StateRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.submitted)
	j.cond.Broadcast()
	j.mu.Unlock()
	defer cancel()

	s.mQueueWait.With(string(j.lane)).Observe(queueWait.Seconds())
	s.mu.Lock()
	s.running[j.lane]++
	s.executed++
	s.mu.Unlock()

	start := time.Now()
	data, err := s.execute(ctx, j)
	dur := time.Since(start).Seconds()
	s.mJobDur.With(string(j.lane)).Observe(dur)

	s.mu.Lock()
	s.running[j.lane]--
	if s.ewmaJobSec == 0 {
		s.ewmaJobSec = dur
	} else {
		s.ewmaJobSec = 0.8*s.ewmaJobSec + 0.2*dur
	}
	s.mu.Unlock()
	s.finishJob(j, data, err, false)
}

// execute runs the job's work through the library entry points, tapping
// progress into the job's event log and sharing the service-wide gate.
func (s *Service) execute(ctx context.Context, j *Job) ([]byte, error) {
	spec := j.spec
	onProgress := func(e imp.ProgressEvent) {
		ev := api.Event{
			Workload: e.Workload, System: e.System.String(),
			Point: e.Point, Total: e.Total, Done: e.Done,
			Cycles: e.Cycles, ElapsedMS: e.Elapsed.Milliseconds(),
		}
		if e.Err != nil {
			ev.Error = e.Err.Error()
		}
		j.addEvent(ev)
	}
	if len(spec.Sweep) > 0 {
		results, err := imp.RunSweep(ctx, spec.Sweep, imp.SweepOptions{
			RunOptions: imp.RunOptions{
				Parallelism: spec.Parallelism, OnProgress: onProgress,
				Gate: s.gate, Checkpoints: s.cfg.Checkpoints,
			},
		})
		if err != nil {
			return nil, err
		}
		return marshalSweepResult(results)
	}
	tbl, err := imp.Experiments.Run(spec.Experiment, imp.ExpOptions{
		Cores: spec.Cores, Scale: spec.Scale, Workloads: spec.Workloads,
		RunOptions: imp.RunOptions{
			Seed: spec.Seed, Parallelism: spec.Parallelism,
			Context: ctx, OnProgress: onProgress,
			Gate: s.gate, Checkpoints: s.cfg.Checkpoints,
		},
	})
	if err != nil {
		return nil, err
	}
	return tbl.JSON()
}

// finishJob records the terminal state, publishes the result, appends the
// terminal event and retires the singleflight entry for failed/canceled
// jobs so a resubmission can retry. onlyIfQueued guards the
// cancel-while-queued path: if an executor already moved the job to
// running, the transition is abandoned (the executor owns the job's fate —
// it saw cancelReq and finishes it as canceled itself). Lock order: j.mu
// and s.mu are never held together — state first, index second.
func (s *Service) finishJob(j *Job, data []byte, err error, onlyIfQueued bool) {
	j.mu.Lock()
	if j.state.Terminal() || (onlyIfQueued && j.state != api.StateQueued) {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = api.StateDone
		j.result = data
	case j.cancelReq || errors.Is(err, context.Canceled):
		j.state = api.StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = api.StateFailed
		j.errMsg = err.Error()
	}
	term := api.Event{Seq: len(j.events), State: j.state, Done: j.done, Total: j.total, Error: j.errMsg}
	j.events = append(j.events, term)
	state := j.state
	j.cond.Broadcast()
	j.mu.Unlock()

	if state == api.StateDone {
		s.store.put(j.key, data)
		return
	}
	s.mu.Lock()
	if s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	s.mu.Unlock()
}

// marshalSweepResult is the canonical sweep result encoding — indented JSON
// with Go's stable field order, like Table.JSON — so equal sweeps produce
// equal bytes. The e2e tests pin it byte-for-byte against direct
// imp.RunSweep output marshaled the same way.
func marshalSweepResult(results []*imp.Result) ([]byte, error) {
	return json.MarshalIndent(api.SweepResult{Results: results}, "", "  ")
}
