// Package cpu models the core pipelines of Table 1 and §6.3.1: an in-order,
// single-issue core that blocks on every load, and a modest out-of-order
// core with a small reorder window (32 entries, mimicking Silvermont) that
// can slide past outstanding misses until the window fills or a dependent
// instruction needs the data.
package cpu

import "fmt"

// Kind selects the pipeline model.
type Kind int

// Pipeline kinds.
const (
	InOrder Kind = iota
	OutOfOrder
)

func (k Kind) String() string {
	if k == OutOfOrder {
		return "ooo"
	}
	return "in-order"
}

// DefaultWindow is the paper's OoO reorder-buffer size (§6.3.1).
const DefaultWindow = 32

type pendingLoad struct {
	instr    uint64 // dynamic instruction index at issue
	complete int64  // cycle the data returns
}

// Pipeline tracks outstanding loads for one core. The zero value is not
// usable; construct with New.
type Pipeline struct {
	//imp:nosnap configuration, fixed at construction
	kind Kind
	//imp:nosnap configuration, fixed at construction
	window  uint64
	pending []pendingLoad // FIFO of [head:len], oldest first
	// head indexes the oldest live entry; popping advances it instead of
	// reslicing so the buffer is reused allocation-free once warm.
	head int
	// lastComplete is the completion time of the most recent load, for
	// dependent (indirect) accesses.
	lastComplete int64
	// stallCycles accumulates cycles lost to window-full and dependency
	// stalls (reporting only).
	stallCycles int64
}

// New builds a pipeline model. window is ignored for in-order cores.
func New(kind Kind, window int) *Pipeline {
	if window <= 0 {
		window = DefaultWindow
	}
	p := &Pipeline{kind: kind, window: uint64(window)}
	if kind == OutOfOrder {
		p.pending = make([]pendingLoad, 0, 2*window)
	}
	return p
}

// Kind returns the pipeline model kind.
func (p *Pipeline) Kind() Kind { return p.kind }

// StallCycles returns the cycles spent stalled on the window or
// dependencies (out-of-order model only; the in-order model stalls inline).
func (p *Pipeline) StallCycles() int64 { return p.stallCycles }

// Gate is called before issuing the instruction with dynamic index instr at
// time now. It returns the (possibly later) time the instruction can
// actually issue:
//
//   - in-order cores never gate here — the caller blocks on load latency
//     directly;
//   - out-of-order cores wait for any outstanding load older than the
//     reorder window, and for the previous load when depPrev is set.
func (p *Pipeline) Gate(now int64, instr uint64, depPrev bool) int64 {
	if p.kind == InOrder {
		return now
	}
	t := now
	// Retire outstanding loads that have completed by t as we go; stall on
	// those still in flight but too old to keep speculating past.
	for p.head < len(p.pending) {
		oldest := p.pending[p.head]
		if oldest.complete <= t {
			p.head++
			continue
		}
		if instr-oldest.instr < p.window {
			break
		}
		t = oldest.complete
		p.head++
	}
	if p.head == len(p.pending) {
		p.pending = p.pending[:0]
		p.head = 0
	}
	if depPrev && p.lastComplete > t {
		t = p.lastComplete
	}
	p.stallCycles += t - now
	return t
}

// NoteLoad records a load (or store occupying a write-buffer slot) issued
// at dynamic instruction instr whose data returns at complete.
// lastComplete tracks the most recent load only: a dependent access waits
// for its producer (the immediately preceding load), not for every
// outstanding miss.
func (p *Pipeline) NoteLoad(instr uint64, complete int64) {
	p.lastComplete = complete
	if p.kind == InOrder {
		return
	}
	if len(p.pending) == cap(p.pending) && p.head > 0 {
		// Compact the dead prefix instead of growing the buffer.
		n := copy(p.pending, p.pending[p.head:])
		p.pending = p.pending[:n]
		p.head = 0
	}
	p.pending = append(p.pending, pendingLoad{instr: instr, complete: complete})
}

// Drain waits for all outstanding loads (barrier or end of trace) and
// returns the time the pipeline is empty.
func (p *Pipeline) Drain(now int64) int64 {
	t := now
	for _, pl := range p.pending[p.head:] {
		if pl.complete > t {
			t = pl.complete
		}
	}
	p.pending = p.pending[:0]
	p.head = 0
	if p.lastComplete > t && p.kind == InOrder {
		t = now // in-order cores already waited inline
	}
	return t
}

// Outstanding returns the number of loads in flight.
func (p *Pipeline) Outstanding() int { return len(p.pending) - p.head }

func (p *Pipeline) String() string {
	return fmt.Sprintf("Pipeline{%v window=%d pending=%d}", p.kind, p.window, len(p.pending)-p.head)
}
