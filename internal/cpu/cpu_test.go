package cpu

import "testing"

func TestInOrderNeverGates(t *testing.T) {
	p := New(InOrder, 0)
	p.NoteLoad(1, 1000)
	if got := p.Gate(5, 2, false); got != 5 {
		t.Errorf("in-order Gate = %d, want 5 (caller blocks inline)", got)
	}
}

func TestOoOSlidesPastMissesUntilWindowFull(t *testing.T) {
	p := New(OutOfOrder, 32)
	// A load at instruction 10 completing at cycle 500.
	p.NoteLoad(10, 500)
	// Instruction 20 (10 younger): inside the window, no stall.
	if got := p.Gate(20, 20, false); got != 20 {
		t.Errorf("Gate inside window = %d, want 20", got)
	}
	// Instruction 42 (32 younger): window full, stall to 500.
	if got := p.Gate(30, 42, false); got != 500 {
		t.Errorf("Gate at window edge = %d, want 500", got)
	}
	if p.StallCycles() != 470 {
		t.Errorf("stall cycles = %d, want 470", p.StallCycles())
	}
}

func TestOoODependencyStalls(t *testing.T) {
	p := New(OutOfOrder, 32)
	p.NoteLoad(10, 300)
	// A dependent access right after must wait for the data even though the
	// window has room.
	if got := p.Gate(11, 11, true); got != 300 {
		t.Errorf("dependent Gate = %d, want 300", got)
	}
}

func TestOoOCompletedLoadsRetire(t *testing.T) {
	p := New(OutOfOrder, 32)
	p.NoteLoad(1, 50)
	p.NoteLoad(2, 60)
	// At time 100 both are complete: no stall even far past the window.
	if got := p.Gate(100, 1000, false); got != 100 {
		t.Errorf("Gate after completion = %d, want 100", got)
	}
	if p.Outstanding() != 0 {
		t.Errorf("outstanding = %d, want 0", p.Outstanding())
	}
}

func TestOoOMultipleOutstandingOverlap(t *testing.T) {
	// Two misses issued close together: the second's latency overlaps the
	// first (memory-level parallelism).
	p := New(OutOfOrder, 32)
	p.NoteLoad(1, 400)
	p.NoteLoad(2, 410)
	// Window fills at instruction 33: wait for the first only.
	if got := p.Gate(10, 33, false); got != 400 {
		t.Errorf("Gate = %d, want 400 (first load)", got)
	}
	// Next gate at 34 retires the second.
	if got := p.Gate(401, 34, false); got != 410 {
		t.Errorf("Gate = %d, want 410 (second load)", got)
	}
}

func TestDrain(t *testing.T) {
	p := New(OutOfOrder, 32)
	p.NoteLoad(1, 500)
	p.NoteLoad(2, 700)
	if got := p.Drain(100); got != 700 {
		t.Errorf("Drain = %d, want 700", got)
	}
	if p.Outstanding() != 0 {
		t.Error("pending not cleared by Drain")
	}
	// Draining an empty pipeline is a no-op.
	if got := p.Drain(800); got != 800 {
		t.Errorf("empty Drain = %d, want 800", got)
	}
}

func TestDefaultWindowApplied(t *testing.T) {
	p := New(OutOfOrder, 0)
	p.NoteLoad(0, 900)
	if got := p.Gate(1, DefaultWindow-1, false); got != 1 {
		t.Errorf("Gate inside default window stalled: %d", got)
	}
	if got := p.Gate(1, DefaultWindow, false); got != 900 {
		t.Errorf("Gate at default window = %d, want 900", got)
	}
}

func TestKindString(t *testing.T) {
	if InOrder.String() != "in-order" || OutOfOrder.String() != "ooo" {
		t.Error("bad kind strings")
	}
	if New(InOrder, 0).String() == "" {
		t.Error("empty pipeline string")
	}
}
