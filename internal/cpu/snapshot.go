package cpu

import "github.com/impsim/imp/internal/snap"

// Snapshot appends the pipeline's mutable state to w: the live pending-load
// window, the last completion time and the stall accumulator. The model kind
// and window size come from configuration and are not encoded.
func (p *Pipeline) Snapshot(w *snap.Writer) {
	live := p.pending[p.head:]
	w.Int(len(live))
	for _, pl := range live {
		w.U64(pl.instr)
		w.I64(pl.complete)
	}
	w.I64(p.lastComplete)
	w.I64(p.stallCycles)
}

// Restore overwrites the pipeline's state with one written by Snapshot. The
// pipeline must have been built with the same kind and window.
func (p *Pipeline) Restore(r *snap.Reader) error {
	n := r.Count(2) // instr + complete, one varint byte each at minimum
	if r.Err() != nil {
		return r.Err()
	}
	p.pending = p.pending[:0]
	p.head = 0
	for i := 0; i < n; i++ {
		p.pending = append(p.pending, pendingLoad{instr: r.U64(), complete: r.I64()})
	}
	p.lastComplete = r.I64()
	p.stallCycles = r.I64()
	return r.Err()
}
