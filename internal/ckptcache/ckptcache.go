// Package ckptcache stores simulator checkpoints through a two-level cache
// mirroring the trace cache (internal/progcache): an in-process LRU of
// snapshot blobs (a sweep's leaves fork from a prefix their group just
// simulated) and an on-disk store (repeated sweeps across jobs — and, via
// result replication, eventually the fleet — reuse prefixes across
// processes).
//
// The disk location is chosen as follows:
//
//   - an explicit dir argument stores checkpoints under it;
//   - IMP_CKPT_CACHE=<dir> stores them under <dir>;
//   - IMP_CKPT_CACHE=off (or "0") disables the disk layer;
//   - unset: <user cache dir>/impsim/checkpoints, falling back to
//     <temp dir>/impsim-checkpoints when no user cache dir exists.
//
// Keys are content addresses derived by the caller (the imp package covers
// the trace identity, the effective simulated system, and the trace,
// generator and snapshot format versions), so a stale entry can only be a
// corrupted one — and blobs carry their own CRC'd envelope, verified when
// the simulator restores them. The cache itself stays byte-agnostic: a blob
// that fails to restore is Evicted by the caller (counted in
// Stats.Corrupt) and the point cold-starts, so corruption never produces a
// wrong result. Files are written via temp-file-and-rename, so concurrent
// processes never observe partial checkpoints.
package ckptcache

import (
	"os"
	"path/filepath"
	"sync"
)

// EnvDir is the environment variable overriding the disk cache directory.
const EnvDir = "IMP_CKPT_CACHE"

// Memory-layer bounds. Snapshots are a few MB at test scale and tens of MB
// for full 64-core systems, so the byte cap is what usually binds; the
// entry cap keeps pathological tiny-blob floods bounded too.
const (
	maxMemEntries = 64
	maxMemBytes   = 512 << 20
)

// Stats counts cache outcomes since process start (or the last Flush).
type Stats struct {
	MemHits  uint64
	DiskHits uint64
	Misses   uint64
	Puts     uint64
	// DiskSkips counts operations that ran with the disk layer disabled
	// or unusable.
	DiskSkips uint64
	// Corrupt counts entries evicted through Evict — blobs the simulator
	// refused to restore (CRC mismatch, truncation, geometry drift). The
	// caller falls back to a cold start, never a wrong result.
	Corrupt uint64
}

type entry struct {
	data    []byte
	lastUse uint64
}

var (
	mu       sync.Mutex
	entries  = map[string]*entry{}
	memBytes int
	useTick  uint64
	stats    Stats
)

// Get returns the checkpoint stored under key, if any: memory first, then
// the disk layer (a disk hit is promoted into memory). dir overrides the
// disk location ("" defers to IMP_CKPT_CACHE / the default). The returned
// blob is shared — callers must treat it as read-only.
func Get(key, dir string) ([]byte, bool) {
	mu.Lock()
	if e, ok := entries[key]; ok {
		stats.MemHits++
		useTick++
		e.lastUse = useTick
		mu.Unlock()
		return e.data, true
	}
	mu.Unlock()

	path, enabled := diskPath(key, dir)
	if !enabled {
		count(func(s *Stats) { s.DiskSkips++; s.Misses++ })
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	count(func(s *Stats) { s.DiskHits++ })
	storeMem(key, data)
	return data, true
}

// Put publishes a checkpoint under key: into memory, and best-effort onto
// disk (temp-file-and-rename; a full disk must not fail the sweep).
// Checkpoints are content-addressed, so concurrent Puts of one key write
// identical bytes and overwrites are idempotent. The cache takes ownership
// of data.
func Put(key, dir string, data []byte) {
	count(func(s *Stats) { s.Puts++ })
	storeMem(key, data)
	path, enabled := diskPath(key, dir)
	if !enabled {
		count(func(s *Stats) { s.DiskSkips++ })
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		count(func(s *Stats) { s.DiskSkips++ })
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		count(func(s *Stats) { s.DiskSkips++ })
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), path) != nil {
		_ = os.Remove(tmp.Name())
		count(func(s *Stats) { s.DiskSkips++ })
	}
}

// Evict drops key from memory and disk. Callers use it when a blob fails
// to restore, so the next request rebuilds instead of re-tripping on the
// same poisoned bytes; each call is counted in Stats.Corrupt.
func Evict(key, dir string) {
	mu.Lock()
	if e, ok := entries[key]; ok {
		memBytes -= len(e.data)
		delete(entries, key)
	}
	stats.Corrupt++
	mu.Unlock()
	if path, enabled := diskPath(key, dir); enabled {
		_ = os.Remove(path)
	}
}

// storeMem inserts data under key and evicts least-recently-used entries
// beyond the caps.
func storeMem(key string, data []byte) {
	mu.Lock()
	defer mu.Unlock()
	if old, ok := entries[key]; ok {
		memBytes -= len(old.data)
	}
	useTick++
	entries[key] = &entry{data: data, lastUse: useTick}
	memBytes += len(data)
	for len(entries) > maxMemEntries || memBytes > maxMemBytes {
		victimKey := ""
		var victimUse uint64
		for k, e := range entries {
			if victimKey == "" || e.lastUse < victimUse {
				victimKey, victimUse = k, e.lastUse
			}
		}
		if victimKey == "" || victimKey == key && len(entries) == 1 {
			return // never evict the entry just inserted when it is alone
		}
		memBytes -= len(entries[victimKey].data)
		delete(entries, victimKey)
	}
}

func count(f func(*Stats)) {
	mu.Lock()
	f(&stats)
	mu.Unlock()
}

// diskPath resolves key's on-disk location; enabled is false when the disk
// layer is turned off (explicitly or by an unresolvable location).
func diskPath(key, dir string) (string, bool) {
	d, enabled := resolveDir(dir)
	if !enabled {
		return "", false
	}
	return filepath.Join(d, key+".impsnap"), true
}

// resolveDir resolves the disk cache directory from the explicit override,
// the environment, or the platform default ("off"/"0"-style values disable
// the layer, mirroring IMP_TRACE_CACHE).
func resolveDir(dir string) (string, bool) {
	if dir == "" {
		dir = os.Getenv(EnvDir)
	}
	switch dir {
	case "":
		if base, err := os.UserCacheDir(); err == nil {
			return filepath.Join(base, "impsim", "checkpoints"), true
		}
		return filepath.Join(os.TempDir(), "impsim-checkpoints"), true
	case "off", "OFF", "0", "false", "no":
		return "", false
	default:
		return dir, true
	}
}

// Dir reports the disk directory an override resolves to; ok is false when
// the disk layer is disabled.
func Dir(override string) (dir string, ok bool) { return resolveDir(override) }

// GetStats returns a snapshot of the cache counters.
func GetStats() Stats {
	mu.Lock()
	defer mu.Unlock()
	return stats
}

// Flush empties the in-process cache and resets counters (the disk layer
// is untouched). Intended for tests and benchmarks.
func Flush() {
	mu.Lock()
	defer mu.Unlock()
	entries = map[string]*entry{}
	memBytes = 0
	useTick = 0
	stats = Stats{}
}
