package ckptcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestMemAndDiskRoundTrip(t *testing.T) {
	Flush()
	defer Flush()
	dir := t.TempDir()

	if _, ok := Get("k1", dir); ok {
		t.Fatal("hit on empty cache")
	}
	blob := []byte("checkpoint-bytes")
	Put("k1", dir, blob)

	got, ok := Get("k1", dir)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("mem get = (%q, %v)", got, ok)
	}
	// A fresh process (simulated by flushing memory) must hit via disk.
	Flush()
	got, ok = Get("k1", dir)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("disk get = (%q, %v)", got, ok)
	}
	s := GetStats()
	if s.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1", s.DiskHits)
	}
	// The disk hit was promoted: the next read is a memory hit.
	if _, ok := Get("k1", dir); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := GetStats(); s.MemHits != 1 {
		t.Errorf("MemHits = %d, want 1", s.MemHits)
	}
}

func TestDiskDisabled(t *testing.T) {
	Flush()
	defer Flush()
	Put("k", "off", []byte("x"))
	Flush()
	if _, ok := Get("k", "off"); ok {
		t.Fatal("entry survived a flush with the disk layer off")
	}
	if s := GetStats(); s.DiskSkips == 0 {
		t.Error("disk-off operations not counted in DiskSkips")
	}
}

func TestEnvOverride(t *testing.T) {
	Flush()
	defer Flush()
	dir := t.TempDir()
	t.Setenv(EnvDir, dir)
	Put("k", "", []byte("x"))
	if _, err := os.Stat(filepath.Join(dir, "k.impsnap")); err != nil {
		t.Fatalf("checkpoint not under IMP_CKPT_CACHE dir: %v", err)
	}
	t.Setenv(EnvDir, "off")
	if _, ok := Dir(""); ok {
		t.Error("Dir reported the disk layer enabled under IMP_CKPT_CACHE=off")
	}
	if d, ok := Dir(dir); !ok || d != dir {
		t.Errorf("explicit override lost: Dir = (%q, %v)", d, ok)
	}
}

func TestEvictDropsBothLayers(t *testing.T) {
	Flush()
	defer Flush()
	dir := t.TempDir()
	Put("bad", dir, []byte("poisoned"))
	Evict("bad", dir)
	if _, ok := Get("bad", dir); ok {
		t.Fatal("evicted entry still served")
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.impsnap")); !os.IsNotExist(err) {
		t.Errorf("evicted file still on disk: %v", err)
	}
	if s := GetStats(); s.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", s.Corrupt)
	}
}

func TestMemLRUEviction(t *testing.T) {
	Flush()
	defer Flush()
	// Disk off: eviction must actually lose the oldest entries.
	for i := 0; i < maxMemEntries+8; i++ {
		Put(fmt.Sprintf("k%03d", i), "off", []byte{byte(i)})
	}
	if _, ok := Get("k000", "off"); ok {
		t.Error("oldest entry survived past the entry cap")
	}
	if _, ok := Get(fmt.Sprintf("k%03d", maxMemEntries+7), "off"); !ok {
		t.Error("newest entry was evicted")
	}
}
