package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoDeterminism polices the deterministic zone: the simulator core and
// everything that feeds bytes into results, goldens or checkpoints. The
// paper's tables are reproducible only because every replay is
// bit-deterministic, so inside the zone the analyzer forbids
//
//   - wall-clock reads: time.Now, time.Since, time.Until
//   - unseeded randomness: package-level math/rand (and math/rand/v2)
//     functions, which draw from the shared global source; explicitly
//     seeded rand.New(rand.NewSource(seed)) instances are fine
//   - map iteration that feeds an output or hash sink from inside the
//     loop body (snap.Writer methods, io.Writer implementors, the fmt
//     print family) — iteration order would leak into bytes; collect keys
//     and sort first, the way coherence.Directory.Snapshot does
//   - floating-point accumulation inside a map-range body — float
//     addition is not associative, so the sum depends on iteration order
//
// Legitimate sites opt out with `//imp:wallclock <reason>` (clock/rand) or
// `//imp:unordered <reason>` (map iteration) on or directly above the line.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "forbid wall-clock reads, unseeded randomness and order-dependent " +
		"map iteration inside the deterministic simulation zone",
	Run: runNoDeterminism,
}

// DeterministicZone lists the package-path suffixes forming the
// deterministic zone. It is a variable so the golden tests can place their
// fixture packages inside the zone; impvet always runs with this default.
var DeterministicZone = []string{
	"internal/sim",
	"internal/core",
	"internal/cache",
	"internal/cpu",
	"internal/dram",
	"internal/noc",
	"internal/coherence",
	"internal/prefetch",
	"internal/mem",
	"internal/snap",
	"internal/trace",
	"internal/trace/tracetest",
	"internal/workload",
	"internal/harness",
	"internal/jobkey",
}

// inDeterministicZone reports whether the package is policed.
func inDeterministicZone(path string) bool {
	for _, suffix := range DeterministicZone {
		if isPkgPathSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func runNoDeterminism(pass *Pass) error {
	if !inDeterministicZone(pass.Pkg.Path()) {
		return nil
	}
	idx := newDirectiveIndex(pass.Fset, pass.Files)
	reportBareDirectives(pass, idx, DirectiveWallclock, DirectiveUnordered)

	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.SelectorExpr:
				checkNondetCall(pass, idx, n)
			case *ast.RangeStmt:
				checkMapRange(pass, idx, n)
			}
			return true
		})
	}
	return nil
}

// checkNondetCall flags uses of wall-clock and global-source rand
// package functions.
func checkNondetCall(pass *Pass, idx *directiveIndex, sel *ast.SelectorExpr) {
	// Only package-qualified references: an identifier bound to a package
	// name, selecting a package-scope object.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if _, ok := pass.Info.Uses[id].(*types.PkgName); !ok {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			if idx.covering(DirectiveWallclock, sel.Pos()) == nil {
				pass.Reportf(sel.Pos(),
					"time.%s in the deterministic zone: simulated work may not read the wall clock; derive time from simulated cycles or mark the site //imp:wallclock <reason>",
					obj.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return // method on an explicit *rand.Rand: seeded by construction
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructors take an explicit seed
		}
		if idx.covering(DirectiveWallclock, sel.Pos()) == nil {
			pass.Reportf(sel.Pos(),
				"rand.%s in the deterministic zone draws from the global, unseeded source; use rand.New(rand.NewSource(seed)) so replays are bit-identical, or mark the site //imp:wallclock <reason>",
				fn.Name())
		}
	}
}

// checkMapRange flags `for ... range m` over a map when the loop body
// feeds an output or hash sink, or accumulates floats.
func checkMapRange(pass *Pass, idx *directiveIndex, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if idx.covering(DirectiveUnordered, rng.Pos()) != nil {
		return
	}
	ast.Inspect(rng.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			if sink := outputSink(pass, n); sink != "" {
				pass.Reportf(n.Pos(),
					"map iteration feeds %s: iteration order is random, so these bytes differ between runs; collect keys, sort, then emit (or mark the range //imp:unordered <reason>)",
					sink)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN {
				if lhsTV, ok := pass.Info.Types[n.Lhs[0]]; ok {
					if basic, ok := lhsTV.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
						pass.Reportf(n.Pos(),
							"float accumulation inside map iteration: float addition is not associative, so the result depends on iteration order; sort keys first (or mark the range //imp:unordered <reason>)")
					}
				}
			}
		}
		return true
	})
}

// outputSink classifies a call as byte-emitting: snap.Writer methods, any
// io.Writer implementor's method call, or the fmt print family. Returns a
// human label or "".
func outputSink(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// fmt.Fprintf / fmt.Sprintf / fmt.Print* — package-level.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pass.Info.Uses[id].(*types.PkgName); isPkg {
			if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
				return "fmt." + obj.Name()
			}
			return ""
		}
	}
	// Method call: resolve the receiver type.
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return ""
	}
	recv := selection.Recv()
	if isSnapType(recv, "Writer") {
		return "a snap.Writer"
	}
	// On general io.Writer implementors (hashes, buffers, files), only the
	// emitting methods count — calling Len() on a buffer is harmless.
	if strings.HasPrefix(sel.Sel.Name, "Write") || sel.Sel.Name == "Sum" {
		if types.Implements(recv, ioWriterIface) || types.Implements(types.NewPointer(recv), ioWriterIface) {
			return "an io.Writer (" + recv.String() + ")"
		}
	}
	return ""
}

// ioWriterIface is io.Writer built from scratch, so the check does not
// depend on the package under analysis importing io.
var ioWriterIface = func() *types.Interface {
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "", types.Universe.Lookup("error").Type()),
	)
	params := types.NewTuple(
		types.NewVar(token.NoPos, nil, "", types.NewSlice(types.Typ[types.Byte])),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig),
	}, nil)
	iface.Complete()
	return iface
}()
