package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// APIErrors keeps the typed-error contract from the service/router HTTP
// surfaces from regressing one handler at a time. Every error a server
// writes must be an api.Error carrying a code from the canonical
// code<->status table (api/error.go), emitted through internal/httpx.
// Concretely:
//
//   - calls to net/http.Error are forbidden outside test files: they write
//     a text/plain body no client can type-switch on; use
//     httpx.WriteError / httpx.WriteAPIError
//   - w.WriteHeader(4xx/5xx) with a constant status is forbidden outside
//     internal/httpx itself: an error status must travel with an
//     api.Error body, which only the httpx helpers guarantee
//   - any api.ErrorCode conversion or api.Error{Code: ...} literal built
//     from a string literal must name one of the canonical api.Code*
//     constants — ad-hoc code strings would bypass the closed set clients
//     switch on
//   - httpx.WriteError's status argument, when constant, must be a status
//     the canonical table maps back to a distinct code; an unmapped status
//     silently degrades to the catch-all classification
//
// The canonical code set is read from the api package's type-checked
// export data (every declared constant of type api.ErrorCode), so adding a
// code to api/error.go extends the analyzer automatically.
var APIErrors = &Analyzer{
	Name: "apierrors",
	Doc: "require every HTTP error write to go through httpx/api.Error with " +
		"a code from the canonical code<->status table",
	Run: runAPIErrors,
}

// canonicalStatuses are the HTTP statuses api's code<->status table maps
// bidirectionally. TestCanonicalStatusesMatchAPI pins this set against the
// api package, so the two cannot drift silently.
var canonicalStatuses = map[int64]bool{
	400: true, // CodeInvalid
	401: true, // CodeUnauthorized
	404: true, // CodeNotFound
	409: true, // CodeConflict
	413: true, // CodeTooLarge
	429: true, // CodeOverQuota / CodeQueueFull
	500: true, // CodeInternal
	502: true, // CodeBadGateway
	503: true, // CodeUnavailable
}

func runAPIErrors(pass *Pass) error {
	codes := canonicalCodes(pass)
	inHTTPX := isPkgPathSuffix(pass.Pkg.Path(), "internal/httpx")
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.CallExpr:
				checkErrorCall(pass, n, codes, inHTTPX)
			case *ast.CompositeLit:
				checkErrorLiteral(pass, n, codes)
			}
			return true
		})
	}
	return nil
}

// canonicalCodes enumerates every declared constant of type api.ErrorCode,
// looking first at the package under analysis (when it is api itself) and
// then at its imports.
func canonicalCodes(pass *Pass) map[string]bool {
	codes := make(map[string]bool)
	scan := func(pkg *types.Package) {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			named, ok := c.Type().(*types.Named)
			if !ok || named.Obj().Name() != "ErrorCode" {
				continue
			}
			if p := named.Obj().Pkg(); p != nil && isErrorCodePkg(p.Path()) {
				codes[constant.StringVal(c.Val())] = true
			}
		}
	}
	if isErrorCodePkg(pass.Pkg.Path()) {
		scan(pass.Pkg)
	}
	for _, imp := range pass.Pkg.Imports() {
		if isErrorCodePkg(imp.Path()) {
			scan(imp)
		}
	}
	return codes
}

// isErrorCodePkg reports whether path is the public api wire-types package.
func isErrorCodePkg(path string) bool {
	return isPkgPathSuffix(path, "impsim/imp/api") || path == "api"
}

// isErrorCodeType reports whether t (or its element) is api.ErrorCode.
func isErrorCodeType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "ErrorCode" && n.Obj().Pkg() != nil && isErrorCodePkg(n.Obj().Pkg().Path())
}

func checkErrorCall(pass *Pass, call *ast.CallExpr, codes map[string]bool, inHTTPX bool) {
	fun := ast.Unparen(call.Fun)

	// Conversion api.ErrorCode("..."): the argument must be canonical.
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() && isErrorCodeType(tv.Type) && len(call.Args) == 1 {
		checkCodeValue(pass, call.Args[0], codes)
		return
	}

	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	pkgQualified := false
	if id, ok := sel.X.(*ast.Ident); ok {
		_, pkgQualified = pass.Info.Uses[id].(*types.PkgName)
	}
	switch {
	case pkgQualified && obj.Pkg().Path() == "net/http" && obj.Name() == "Error":
		pass.Reportf(call.Pos(),
			"http.Error writes an untyped text/plain error body; use httpx.WriteError or httpx.WriteAPIError so clients get the api.Error wire shape")
	case obj.Name() == "WriteHeader" && !inHTTPX:
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && len(call.Args) == 1 {
			if status, known := intConst(pass, call.Args[0]); known && status >= 400 {
				pass.Reportf(call.Pos(),
					"WriteHeader(%d) outside internal/httpx: an error status must carry an api.Error body; use httpx.WriteError or httpx.WriteAPIError", status)
			}
		}
	case isPkgPathSuffix(obj.Pkg().Path(), "internal/httpx") && obj.Name() == "WriteError":
		if len(call.Args) == 3 {
			if status, known := intConst(pass, call.Args[1]); known && !canonicalStatuses[status] {
				pass.Reportf(call.Args[1].Pos(),
					"httpx.WriteError with status %d, which the canonical api code<->status table does not map; add a code to api/error.go or use a mapped status", status)
			}
		}
	case isErrorCodePkg(obj.Pkg().Path()) && obj.Name() == "Errorf":
		if len(call.Args) >= 1 {
			checkCodeValue(pass, call.Args[0], codes)
		}
	}
}

// checkErrorLiteral checks api.Error{Code: ...} composite literals.
func checkErrorLiteral(pass *Pass, lit *ast.CompositeLit, codes map[string]bool) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	n, ok := tv.Type.(*types.Named)
	if !ok || n.Obj().Name() != "Error" || n.Obj().Pkg() == nil || !isErrorCodePkg(n.Obj().Pkg().Path()) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Code" {
			checkCodeValue(pass, kv.Value, codes)
		}
	}
}

// checkCodeValue requires expr, when it is a compile-time string constant,
// to hold one of the canonical codes. Named api.Code* constants pass by
// construction; raw literals must match the closed set.
func checkCodeValue(pass *Pass, expr ast.Expr, codes map[string]bool) {
	tv, ok := pass.Info.Types[ast.Unparen(expr)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	val := constant.StringVal(tv.Value)
	if val == "" {
		return // zero value: "no code", classified from the status
	}
	if !codes[val] {
		pass.Reportf(expr.Pos(),
			"error code %q is not in the canonical api.ErrorCode set; use one of the api.Code* constants (or add the code to api/error.go's table)", val)
	}
}

// intConst evaluates expr as a compile-time integer constant.
func intConst(pass *Pass, expr ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[ast.Unparen(expr)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
