package analysis_test

import (
	"testing"

	"github.com/impsim/imp/internal/analysis"
	"github.com/impsim/imp/internal/analysis/analysistest"
)

// TestSnapFieldsMirror is the acceptance check for the suite: the fixture
// mirrors internal/dram's snapshot shape with exactly one field-write
// deleted from the writer, and the analyzer must fail on that field.
func TestSnapFieldsMirror(t *testing.T) {
	analysistest.Run(t, "testdata/snapfields/mirror", "example.com/fix/snapfields/mirror", analysis.SnapFields)
}

func TestSnapFieldsCases(t *testing.T) {
	analysistest.Run(t, "testdata/snapfields/cases", "example.com/fix/snapfields/cases", analysis.SnapFields)
}

// TestNoDeterminismZone loads the fixture under a path ending internal/sim
// so it falls inside the deterministic zone.
func TestNoDeterminismZone(t *testing.T) {
	analysistest.Run(t, "testdata/nodeterminism/zone", "example.com/fix/internal/sim", analysis.NoDeterminism)
}

// TestNoDeterminismOutside loads the identical constructs outside the zone,
// where the analyzer must stay silent.
func TestNoDeterminismOutside(t *testing.T) {
	analysistest.Run(t, "testdata/nodeterminism/outside", "example.com/fix/outside", analysis.NoDeterminism)
}

func TestAPIErrorsSrv(t *testing.T) {
	analysistest.Run(t, "testdata/apierrors/srv", "example.com/fix/srv", analysis.APIErrors)
}
