// Package mirror reproduces internal/dram's snapshot shape — a model
// struct holding per-channel timing state, a stats struct packed through
// snapStats/readStats helpers, and a config field exempted as derived —
// with exactly one field-write deleted from the writer. The expectation on
// Channel.activated is the acceptance check for the suite: deleting a
// single field-write from a real subsystem's snapshot writer must fail vet.
package mirror

import (
	"fmt"

	"github.com/impsim/imp/internal/snap"
)

// Stats mirrors dram.Stats: counters packed by helper functions rather
// than methods, which snapfields must still attribute.
type Stats struct {
	Accesses uint64
	RowHits  uint64
}

// Channel mirrors dram's per-bank timing state.
type Channel struct {
	busyUntil int64
	openRow   int64
	activated int64 // want `field Channel.activated is restored but never written by the snapshot writer`
}

// Model mirrors dram.DDR3: config plus channel array plus stats.
type Model struct {
	//imp:nosnap configuration, fixed at construction
	cfg      int
	channels []Channel
	stats    Stats
}

// Snapshot appends the model's state. The activated write has been
// deleted, which must be a vet failure on the field declaration.
func (m *Model) Snapshot(w *snap.Writer) {
	snapStats(w, m.stats)
	w.Int(len(m.channels))
	for i := range m.channels {
		c := &m.channels[i]
		w.I64(c.busyUntil)
		w.I64(c.openRow)
		// deleted: w.I64(c.activated)
	}
}

// Restore replaces the model's state with one written by Snapshot.
func (m *Model) Restore(r *snap.Reader) error {
	m.stats = readStats(r)
	if n := r.Int(); n != len(m.channels) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("mirror: snapshot has %d channels, model has %d", n, len(m.channels))
	}
	for i := range m.channels {
		c := &m.channels[i]
		c.busyUntil = r.I64()
		c.openRow = r.I64()
		c.activated = r.I64()
	}
	return r.Err()
}

func snapStats(w *snap.Writer, s Stats) {
	w.U64(s.Accesses)
	w.U64(s.RowHits)
}

func readStats(r *snap.Reader) Stats {
	return Stats{Accesses: r.U64(), RowHits: r.U64()}
}
