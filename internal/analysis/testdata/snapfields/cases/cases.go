// Package cases is the snapfields golden matrix: one struct per rule.
package cases

import "github.com/impsim/imp/internal/snap"

// Pair is complete: every field in both writer and reader.
type Pair struct {
	a uint64
	b int64
}

func (p *Pair) Snapshot(w *snap.Writer) {
	w.U64(p.a)
	w.I64(p.b)
}

func (p *Pair) Restore(r *snap.Reader) error {
	p.a = r.U64()
	p.b = r.I64()
	return r.Err()
}

// Dropped snapshots a field the reader never restores.
type Dropped struct {
	kept uint64
	lost uint64 // want `field Dropped.lost is written by the snapshot writer but never restored`
}

func (d *Dropped) Snapshot(w *snap.Writer) {
	w.U64(d.kept)
	w.U64(d.lost)
}

func (d *Dropped) Restore(r *snap.Reader) error {
	d.kept = r.U64()
	return r.Err()
}

// Neither has a field no snapshot code touches at all.
type Neither struct {
	live uint64
	dead uint64 // want `field Neither.dead is not referenced by the snapshot writer or the restore reader`
}

func (n *Neither) Snapshot(w *snap.Writer) { w.U64(n.live) }

func (n *Neither) Restore(r *snap.Reader) error {
	n.live = r.U64()
	return r.Err()
}

// Exempt uses the escape hatch: a reasoned //imp:nosnap passes, a bare one
// is itself a finding.
type Exempt struct {
	live uint64
	//imp:nosnap derived at construction
	derived uint64
	//imp:nosnap // want `//imp:nosnap needs a reason`
	bare uint64
}

func (e *Exempt) Snapshot(w *snap.Writer) { w.U64(e.live) }

func (e *Exempt) Restore(r *snap.Reader) error {
	e.live = r.U64()
	return r.Err()
}

// Orphan has a snapshot writer and no restore reader anywhere.
type Orphan struct { // want `Orphan has a snapshot writer but no restore reader referencing it`
	x uint64
}

func (o *Orphan) Snapshot(w *snap.Writer) { w.U64(o.x) }

// ReadOnly has a restore reader and no snapshot writer anywhere.
type ReadOnly struct { // want `ReadOnly has a restore reader but no snapshot writer referencing it`
	x uint64
}

func (q *ReadOnly) Restore(r *snap.Reader) error {
	q.x = r.U64()
	return r.Err()
}

// Lit is rebuilt by a keyed composite literal in a helper reader; both
// directions are helper functions, not methods.
type Lit struct {
	x uint64
	y int64
}

func snapLit(w *snap.Writer, l *Lit) {
	w.U64(l.x)
	w.I64(l.y)
}

func readLit(r *snap.Reader) Lit {
	return Lit{x: r.U64(), y: r.I64()}
}

// Outer embeds Inner; promoted selectors must credit both the embedded
// field and the inner struct's own field.
type Inner struct{ n int64 }

type Outer struct {
	Inner
	m int64
}

func (o *Outer) Snapshot(w *snap.Writer) {
	w.I64(o.n)
	w.I64(o.m)
}

func (o *Outer) Restore(r *snap.Reader) error {
	o.n = r.I64()
	o.m = r.I64()
	return r.Err()
}

var _ = snapLit
var _ = readLit
