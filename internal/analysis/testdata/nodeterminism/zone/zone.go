// Package zone is the nodeterminism golden matrix. The golden test loads
// it under a package path ending internal/sim, placing it inside the
// deterministic zone.
package zone

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/impsim/imp/internal/snap"
)

// clocks exercises the wall-clock rules.
func clocks() time.Duration {
	start := time.Now()    // want `time.Now in the deterministic zone`
	d := time.Since(start) // want `time.Since in the deterministic zone`

	//imp:wallclock progress logging only, never feeds results
	exempt := time.Now()
	_ = exempt

	//imp:wallclock // want `//imp:wallclock needs a reason`
	bare := time.Now()
	_ = bare

	return d
}

// randomness exercises the global-source rand rules.
func randomness() int {
	n := rand.Intn(10) // want `rand.Intn in the deterministic zone draws from the global, unseeded source`

	// Explicitly seeded generators are fine: constructors and methods on a
	// *rand.Rand never touch the global source.
	rng := rand.New(rand.NewSource(42))
	n += rng.Intn(10)
	return n
}

// mapOutput exercises the ordered-emission rules.
func mapOutput(w *snap.Writer, m map[uint64]int64) {
	for k, v := range m {
		w.U64(k) // want `map iteration feeds a snap.Writer`
		w.I64(v) // want `map iteration feeds a snap.Writer`
	}

	// The blessed shape: collect keys, sort, then emit.
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		w.U64(k)
		w.I64(m[k])
	}
}

// mapFormat feeds the fmt print family from a map range.
func mapFormat(m map[string]int) string {
	var s string
	for k := range m {
		s += fmt.Sprintf("%s,", k) // want `map iteration feeds fmt.Sprintf`
	}

	//imp:unordered building a set, order never observable
	for k := range m {
		_ = len(k)
	}
	return s
}

// mapAccumulate exercises the float-accumulation rule.
func mapAccumulate(m map[string]float64) (float64, int) {
	var sum float64
	var count int
	for _, v := range m {
		sum += v // want `float accumulation inside map iteration`
		count++  // integer updates are associative: fine
	}
	return sum, count
}

// mapHash feeds an io.Writer implementor from a map range.
func mapHash(m map[uint32]bool) []byte {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteByte(byte(k)) // want `map iteration feeds an io.Writer`
	}
	return buf.Bytes()
}
