// Package outside holds the same constructs as the zone fixture but is
// loaded under a package path outside the deterministic zone, where none
// of them is a finding.
package outside

import (
	"fmt"
	"math/rand"
	"time"
)

func all(m map[string]int) string {
	start := time.Now()
	_ = time.Since(start)
	_ = rand.Intn(10)
	var s string
	for k := range m {
		s += fmt.Sprintf("%s,", k)
	}
	return s
}
