// Package srv is the apierrors golden matrix: every way a handler can
// write an HTTP error, canonical and not.
package srv

import (
	"errors"
	"net/http"

	"github.com/impsim/imp/api"
	"github.com/impsim/imp/internal/httpx"
)

func untyped(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http.Error writes an untyped text/plain error body`
}

func bareStatus(w http.ResponseWriter) {
	w.WriteHeader(400)                  // want `WriteHeader\(400\) outside internal/httpx`
	w.WriteHeader(http.StatusNoContent) // success statuses carry no body contract
}

func viaHTTPX(w http.ResponseWriter) {
	err := errors.New("boom")
	httpx.WriteError(w, 418, err) // want `httpx.WriteError with status 418`
	httpx.WriteError(w, http.StatusNotFound, err)
	httpx.WriteAPIError(w, &api.Error{Code: api.CodeUnavailable, Message: "draining"})
}

func codes() {
	_ = &api.Error{Code: "bogus_code"} // want `error code "bogus_code" is not in the canonical api.ErrorCode set`
	_ = api.ErrorCode("nope")          // want `error code "nope" is not in the canonical api.ErrorCode set`
	_ = api.Errorf("also_bad", "x")    // want `error code "also_bad" is not in the canonical api.ErrorCode set`

	// The canonical spellings all pass.
	_ = &api.Error{Code: api.CodeNotFound}
	_ = api.Errorf(api.CodeInvalid, "bad %s", "arg")
	_ = api.CodeForStatus(502)
}
