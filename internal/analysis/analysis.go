// Package analysis is the project's static-analysis suite: machine-checked
// invariants over the codebase, run as a hard CI gate through cmd/impvet
// (go vet -vettool). Three analyzers enforce the contracts the test suite
// can only sample:
//
//   - snapfields: every persistent field of a snapshotted struct is
//     referenced by both its snapshot writer and its restore reader, so a
//     new simulator-state field that is not wired into checkpointing is a
//     build break, not a corrupted resume.
//   - nodeterminism: the deterministic zone (the simulator and everything
//     that feeds it) is free of wall-clock reads, unseeded randomness and
//     map iteration that feeds output or hashing.
//   - apierrors: every HTTP error write goes through httpx/api.Error with
//     a code from the canonical code<->status table.
//
// The package deliberately mirrors golang.org/x/tools/go/analysis — same
// Analyzer/Pass/Diagnostic shape, same vet.cfg unitchecker protocol — but
// is self-contained: the repo carries no module dependencies, so the
// framework is rebuilt here on the standard library alone (go/ast,
// go/types, go/importer).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag prefixes.
	Name string
	// Doc is the one-paragraph description shown by impvet -help.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax. Test files (_test.go) are included
	// when go vet hands them over; analyzers skip them via Pass.IsTestFile.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether pos lies in a _test.go file. The analyzers
// check production invariants; test servers and benchmark timing are
// exempt wholesale.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// Analyzers is the suite cmd/impvet runs, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SnapFields, NoDeterminism, APIErrors}
}

// Annotation directives.
//
// The escape hatches are comment directives in the //imp: namespace,
// always requiring a reason:
//
//	//imp:nosnap <reason>     field is derived/scratch, exempt from snapfields
//	//imp:wallclock <reason>  this wall-clock or rand read is legitimate
//	//imp:unordered <reason>  this map iteration is order-independent
//
// A directive applies to the source line it sits on and, when written as a
// lead comment, to the line directly below it.
const (
	DirectiveNoSnap    = "nosnap"
	DirectiveWallclock = "wallclock"
	DirectiveUnordered = "unordered"
)

var directiveRE = regexp.MustCompile(`^//imp:(nosnap|wallclock|unordered)(.*)$`)

// Directive is one //imp: annotation occurrence.
type Directive struct {
	Name   string // nosnap, wallclock or unordered
	Reason string // trimmed text after the directive name
	Pos    token.Pos
}

// directiveIndex resolves "is this position exempted?" queries for one pass.
type directiveIndex struct {
	fset *token.FileSet
	// byLine maps file name + effective line to the directives covering it.
	byLine map[string]map[int][]*Directive
	all    []*Directive
}

// newDirectiveIndex scans every comment in files for //imp: directives.
func newDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{fset: fset, byLine: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				// A trailing "// want" belongs to the analysistest golden
				// harness, not to the directive's reason.
				reason, _, _ := strings.Cut(m[2], "// want")
				d := &Directive{Name: m[1], Reason: strings.TrimSpace(reason), Pos: c.Pos()}
				idx.all = append(idx.all, d)
				posn := fset.Position(c.Pos())
				lines := idx.byLine[posn.Filename]
				if lines == nil {
					lines = make(map[int][]*Directive)
					idx.byLine[posn.Filename] = lines
				}
				// The directive covers its own line (trailing comment) and
				// the next line (lead comment above the annotated code).
				lines[posn.Line] = append(lines[posn.Line], d)
				lines[posn.Line+1] = append(lines[posn.Line+1], d)
			}
		}
	}
	return idx
}

// covering returns the directive of the given name covering pos, or nil.
func (idx *directiveIndex) covering(name string, pos token.Pos) *Directive {
	if !pos.IsValid() {
		return nil
	}
	posn := idx.fset.Position(pos)
	for _, d := range idx.byLine[posn.Filename][posn.Line] {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// reportBareDirectives flags directives of the given names that carry no
// reason: the escape hatch is an audit trail, and a bare annotation
// defeats it.
func reportBareDirectives(pass *Pass, idx *directiveIndex, names ...string) {
	for _, d := range idx.all {
		if pass.IsTestFile(d.Pos) {
			continue
		}
		for _, n := range names {
			if d.Name == n && d.Reason == "" {
				pass.Reportf(d.Pos, "//imp:%s needs a reason (e.g. //imp:%s rebuilt on restore)", n, n)
			}
		}
	}
}

// isPkgPathSuffix reports whether path ends with the given slash-separated
// suffix on a segment boundary ("internal/sim" matches
// "github.com/impsim/imp/internal/sim" but not ".../myinternal/sim").
func isPkgPathSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// namedStruct unwraps t (through pointers and aliases) to a named struct
// type declared in pkg, or nil.
func namedStruct(t types.Type, pkg *types.Package) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if n.Obj().Pkg() != pkg {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n
}

// sortedKeys returns m's keys in sorted order, keeping diagnostic order
// deterministic (the analyzers practice what nodeterminism preaches).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
