// Package analysistest runs an analyzer over a golden fixture package and
// checks its findings against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// Expectation syntax: a comment of the form
//
//	// want `regexp` `another regexp`
//
// declares that the analyzer must report, on that comment's line, one
// diagnostic matching each regexp. Every diagnostic must be claimed by an
// expectation and every expectation must be claimed by a diagnostic;
// anything unmatched fails the test with positions and messages.
package analysistest

import (
	"go/token"
	"regexp"
	"testing"

	"github.com/impsim/imp/internal/analysis"
)

var wantRE = regexp.MustCompile("// want((?:\\s+`[^`]*`)+)")
var patRE = regexp.MustCompile("`([^`]*)`")

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir (declared under pkgPath, so
// zone-scoped analyzers can be pointed at it) and checks a's findings
// against the fixture's want comments.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := pkg.Run(a)
	if err != nil {
		t.Fatalf("running %s over %s: %v", a.Name, pkgPath, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, pm := range patRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pm[1], err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, pattern: re})
				}
			}
		}
	}

	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		if !claim(wants, posn, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches the message.
func claim(wants []*expectation, posn token.Position, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
