package analysis

import (
	"go/ast"
	"go/types"
)

// SnapFields proves snapshot completeness: for every struct that takes part
// in the internal/snap writer/reader pattern, every field must be referenced
// by both the snapshot-writing code and the restore-reading code of its
// package. Adding a field to dram.Channel, sim's tile or cache.Line without
// wiring it into Snapshot AND Restore is a vet failure at the field's
// declaration — a build break instead of a silently non-resuming checkpoint.
//
// What counts as snapshot code: any function (method or helper) with a
// *snap.Writer parameter is a writer, any function with a *snap.Reader
// parameter is a reader; helpers like snapStats/readStats are covered
// without call-graph analysis. What counts as a checked struct:
//
//   - a struct appearing as receiver, parameter or result of a
//     writer/reader function (the snapshot units: Cache, Mesh, Metrics, ...)
//   - a struct whose fields are assigned inside a reader function (the
//     element structs a restore loop rebuilds: Line, Channel, tile, ...)
//
// Derived, scratch and configuration-owned fields opt out with
// `//imp:nosnap <reason>` on the field declaration.
var SnapFields = &Analyzer{
	Name: "snapfields",
	Doc: "check that every persistent field of a snapshotted struct is referenced " +
		"by both its snapshot writer and its restore reader",
	Run: runSnapFields,
}

// fieldRefs records which fields of which local structs a set of functions
// references, keyed by struct type name then field name.
type fieldRefs map[string]map[string]bool

func (fr fieldRefs) add(owner *types.Named, field string) {
	if owner == nil || field == "_" {
		return
	}
	name := owner.Obj().Name()
	if fr[name] == nil {
		fr[name] = make(map[string]bool)
	}
	fr[name][field] = true
}

func (fr fieldRefs) has(owner, field string) bool { return fr[owner][field] }

func runSnapFields(pass *Pass) error {
	if isPkgPathSuffix(pass.Pkg.Path(), "internal/snap") {
		return nil // the codec itself, not a snapshot client
	}
	idx := newDirectiveIndex(pass.Fset, pass.Files)
	reportBareDirectives(pass, idx, DirectiveNoSnap)

	var writers, readers []*ast.FuncDecl
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			switch {
			case hasSnapParam(pass, fn, "Writer"):
				writers = append(writers, fn)
			case hasSnapParam(pass, fn, "Reader"):
				readers = append(readers, fn)
			}
		}
	}
	if len(writers) == 0 && len(readers) == 0 {
		return nil
	}

	writerRefs, _ := collectFieldRefs(pass, writers)
	readerRefs, readerWrites := collectFieldRefs(pass, readers)
	writerUnits := snapshotUnits(pass, writers)
	readerUnits := snapshotUnits(pass, readers)

	// Every struct to check, mapped to the position its report anchors to
	// when the counterpart function is missing entirely.
	checked := make(map[string]*types.Named)
	for name, n := range writerUnits {
		checked[name] = n
	}
	for name, n := range readerUnits {
		checked[name] = n
	}
	for _, n := range readerWrites {
		checked[n.Obj().Name()] = n
	}

	for _, name := range sortedKeys(checked) {
		named := checked[name]
		st := named.Underlying().(*types.Struct)
		_, isWriterUnit := writerUnits[name]
		_, isReaderUnit := readerUnits[name]
		if isWriterUnit && !isReaderUnit && len(readerRefs[name]) == 0 {
			pass.Reportf(named.Obj().Pos(),
				"%s has a snapshot writer but no restore reader referencing it; add the paired Restore", name)
			continue
		}
		if isReaderUnit && !isWriterUnit && len(writerRefs[name]) == 0 {
			pass.Reportf(named.Obj().Pos(),
				"%s has a restore reader but no snapshot writer referencing it; add the paired Snapshot", name)
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if field.Name() == "_" {
				continue
			}
			if idx.covering(DirectiveNoSnap, field.Pos()) != nil {
				continue
			}
			inW := writerRefs.has(name, field.Name())
			inR := readerRefs.has(name, field.Name())
			switch {
			case inW && inR:
			case !inW && !inR:
				pass.Reportf(field.Pos(),
					"field %s.%s is not referenced by the snapshot writer or the restore reader; wire it into both or mark it //imp:nosnap <reason>",
					name, field.Name())
			case inW:
				pass.Reportf(field.Pos(),
					"field %s.%s is written by the snapshot writer but never restored; wire it into the restore reader or mark it //imp:nosnap <reason>",
					name, field.Name())
			default:
				pass.Reportf(field.Pos(),
					"field %s.%s is restored but never written by the snapshot writer; wire it into the snapshot writer or mark it //imp:nosnap <reason>",
					name, field.Name())
			}
		}
	}
	return nil
}

// hasSnapParam reports whether fn takes a parameter of type *snap.<name>.
func hasSnapParam(pass *Pass, fn *ast.FuncDecl, name string) bool {
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isSnapType(sig.Params().At(i).Type(), name) {
			return true
		}
	}
	return false
}

// isSnapType reports whether t is *snap.Writer / *snap.Reader.
func isSnapType(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		isPkgPathSuffix(obj.Pkg().Path(), "internal/snap")
}

// snapshotUnits returns the package-local named structs that appear as
// receiver, parameter or result of the given snapshot functions — the
// top-level units the writer/reader pairing is checked on.
func snapshotUnits(pass *Pass, fns []*ast.FuncDecl) map[string]*types.Named {
	units := make(map[string]*types.Named)
	add := func(t types.Type) {
		if n := namedStruct(t, pass.Pkg); n != nil {
			units[n.Obj().Name()] = n
		}
	}
	for _, fn := range fns {
		obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
		if !ok {
			continue
		}
		sig := obj.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			add(recv.Type())
		}
		for i := 0; i < sig.Params().Len(); i++ {
			add(sig.Params().At(i).Type())
		}
		for i := 0; i < sig.Results().Len(); i++ {
			add(sig.Results().At(i).Type())
		}
	}
	return units
}

// collectFieldRefs walks the given function bodies and records every
// reference to a field of a package-local struct: selector chains
// (including promoted fields, attributed level by level) and composite
// literals (keyed literals reference their keys, positional literals every
// field). The second result maps the structs whose fields are assignment
// or composite-literal targets — the element structs a restore loop
// rebuilds in place.
func collectFieldRefs(pass *Pass, fns []*ast.FuncDecl) (fieldRefs, map[string]*types.Named) {
	refs := make(fieldRefs)
	written := make(map[string]*types.Named)
	markWritten := func(n *types.Named) {
		if n != nil {
			written[n.Obj().Name()] = n
		}
	}
	for _, fn := range fns {
		ast.Inspect(fn.Body, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				recordSelectionChain(pass, refs, sel)
			case *ast.CompositeLit:
				tv, ok := pass.Info.Types[n]
				if !ok {
					return true
				}
				named := namedStruct(tv.Type, pass.Pkg)
				if named == nil {
					return true
				}
				markWritten(named)
				st := named.Underlying().(*types.Struct)
				if len(n.Elts) == 0 {
					return true
				}
				if _, keyed := n.Elts[0].(*ast.KeyValueExpr); keyed {
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								refs.add(named, id.Name)
							}
						}
					}
				} else {
					for i := 0; i < st.NumFields(); i++ {
						refs.add(named, st.Field(i).Name())
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if owner := selectorOwner(pass, lhs); owner != nil {
						markWritten(owner)
					}
				}
			case *ast.IncDecStmt:
				if owner := selectorOwner(pass, n.X); owner != nil {
					markWritten(owner)
				}
			}
			return true
		})
	}
	return refs, written
}

// recordSelectionChain attributes x.a.b style selections to each owning
// struct along the embedding/index path, so `m.Fetch.N` marks both
// Metrics.Fetch and FetchStats.N, and promoted fields credit the embedded
// struct they live in.
func recordSelectionChain(pass *Pass, refs fieldRefs, sel *types.Selection) {
	t := sel.Recv()
	for _, fieldIdx := range sel.Index() {
		owner := namedStruct(t, pass.Pkg)
		st, ok := derefStruct(t)
		if !ok {
			return
		}
		field := st.Field(fieldIdx)
		if owner != nil {
			refs.add(owner, field.Name())
		}
		t = field.Type()
	}
}

// selectorOwner returns the package-local struct owning the field that
// expr (a selector, possibly parenthesized) ultimately selects, or nil.
func selectorOwner(pass *Pass, expr ast.Expr) *types.Named {
	expr = ast.Unparen(expr)
	se, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	sel, ok := pass.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	t := sel.Recv()
	var owner *types.Named
	for _, fieldIdx := range sel.Index() {
		st, ok := derefStruct(t)
		if !ok {
			return nil
		}
		owner = namedStruct(t, pass.Pkg)
		t = st.Field(fieldIdx).Type()
	}
	return owner
}

// derefStruct unwraps t (through one pointer) to its struct underlying.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}
