package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// VetConfig mirrors the vet.cfg JSON the go command hands a -vettool driver
// for each package unit: the file set, the import-path remapping for test
// variants, and the compiled export data of every dependency. Unknown
// fields are ignored, so additions to the protocol do not break impvet.
type VetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	NonGoFiles []string
	// ImportMap renames source-level import paths to the canonical package
	// paths of this build (test variants, vendoring).
	ImportMap map[string]string
	// PackageFile maps canonical package paths to compiled export data.
	PackageFile map[string]string
	// VetxOnly marks a dependency-only run: the go command wants this
	// package's analysis facts for its dependents, not its diagnostics.
	// impvet's analyzers are fact-free, so these runs are a no-op.
	VetxOnly   bool
	VetxOutput string
	// SucceedOnTypecheckFailure is set for packages the go command knows
	// may not typecheck from source (cgo corners); vet must not fail them.
	SucceedOnTypecheckFailure bool
}

// RunVetCfg executes the suite over one vet.cfg unit, the protocol `go vet
// -vettool=impvet` speaks: parse the unit's files, type-check them against
// the export data the go command already built, run every analyzer, and
// leave the facts file the go command expects to cache. The returned fset
// positions the diagnostics.
func RunVetCfg(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("%s: parsing vet config: %w", cfgPath, err)
	}
	// The go command caches the facts file and feeds it to dependent
	// units; impvet has no facts, but the file must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil, nil
	}
	fset := token.NewFileSet()
	asts, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, fset, nil
		}
		return nil, fset, err
	}
	// Test variants are named "pkg [pkg.test]"; the analyzers' zone and
	// package checks want the underlying path.
	pkgPath := cfg.ImportPath
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	imp := newExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := typeCheckASTs(imp, pkgPath, fset, asts)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, fset, nil
		}
		return nil, fset, err
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		ds, err := pkg.Run(a)
		if err != nil {
			return nil, fset, err
		}
		diags = append(diags, ds...)
	}
	return diags, fset, nil
}
