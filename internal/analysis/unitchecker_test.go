package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stdExports asks the go command for the export data of pkgs and their
// dependencies, building the PackageFile map a vet.cfg would carry.
func stdExports(t *testing.T, pkgs ...string) map[string]string {
	t.Helper()
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)
	out, err := runGo(args...)
	if err != nil {
		t.Fatalf("listing std exports: %v", err)
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

// writeCfg marshals cfg into dir/vet.cfg and returns the path.
func writeCfg(t *testing.T, dir string, cfg VetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunVetCfg drives the unit protocol end to end: a zone package with a
// wall-clock read, type-checked against real export data, must produce the
// time.Now diagnostic and leave the facts file the go command caches.
func TestRunVetCfg(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "zone.go")
	const body = `package simzone

import "time"

func tick() time.Time { return time.Now() }
`
	if err := os.WriteFile(src, []byte(body), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "facts.vetx")
	cfgPath := writeCfg(t, dir, VetConfig{
		// A test-variant ImportPath: the suffix must be trimmed before the
		// zone check, or the package would not match internal/sim.
		ImportPath:  "example.com/unit/internal/sim [example.com/unit/internal/sim.test]",
		GoFiles:     []string{src},
		ImportMap:   map[string]string{"time": "time"},
		PackageFile: stdExports(t, "time"),
		VetxOutput:  vetx,
	})

	diags, fset, err := RunVetCfg(cfgPath, Analyzers())
	if err != nil {
		t.Fatalf("RunVetCfg: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("got diagnostics %v, want exactly one time.Now finding", diags)
	}
	if posn := fset.Position(diags[0].Pos); filepath.Base(posn.Filename) != "zone.go" || posn.Line != 5 {
		t.Errorf("diagnostic at %v, want zone.go:5", posn)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

// TestRunVetCfgVetxOnly checks the dependency-only mode: no analysis, but
// the facts file must still appear or the go command errors out.
func TestRunVetCfgVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "facts.vetx")
	cfgPath := writeCfg(t, dir, VetConfig{
		ImportPath: "example.com/unit/internal/sim",
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	diags, _, err := RunVetCfg(cfgPath, Analyzers())
	if err != nil {
		t.Fatalf("RunVetCfg: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("VetxOnly run produced diagnostics: %v", diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

// TestRunVetCfgTypecheckFailure checks both sides of the
// SucceedOnTypecheckFailure switch on a package that cannot compile.
func TestRunVetCfgTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(src, []byte("package broken\n\nvar x undefined\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := VetConfig{
		ImportPath: "example.com/unit/internal/sim",
		GoFiles:    []string{src},
	}

	cfgPath := writeCfg(t, dir, cfg)
	if _, _, err := RunVetCfg(cfgPath, Analyzers()); err == nil {
		t.Error("broken package type-checked without error")
	}

	cfg.SucceedOnTypecheckFailure = true
	cfgPath = writeCfg(t, dir, cfg)
	diags, _, err := RunVetCfg(cfgPath, Analyzers())
	if err != nil || len(diags) != 0 {
		t.Errorf("SucceedOnTypecheckFailure run: diags=%v err=%v, want none", diags, err)
	}
}

// TestRunVetCfgBadConfig checks the two malformed-input paths.
func TestRunVetCfgBadConfig(t *testing.T) {
	if _, _, err := RunVetCfg(filepath.Join(t.TempDir(), "absent.cfg"), Analyzers()); err == nil {
		t.Error("missing config file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunVetCfg(path, Analyzers()); err == nil {
		t.Error("malformed config accepted")
	}
}
