package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run executes one analyzer over the package and returns its findings
// sorted by position.
func (p *Package) Run(a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     p.Fset,
		Files:    p.Files,
		Pkg:      p.Types,
		Info:     p.Info,
		Report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, p.Path, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// listPackage mirrors the `go list -json` fields the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// Load lists patterns with the go tool and type-checks every matched
// (non-dependency) package from source, resolving imports through compiled
// export data, exactly as the compiler would. This is the standalone
// `impvet ./...` path; under `go vet -vettool` the go command supplies the
// same information through the vet.cfg protocol instead.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,Module"}, patterns...)
	out, err := runGo(args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			cp := lp
			roots = append(roots, &cp)
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, root := range roots {
		files := make([]string, len(root.GoFiles))
		for i, f := range root.GoFiles {
			files[i] = filepath.Join(root.Dir, f)
		}
		asts, err := parseFiles(fset, files)
		if err != nil {
			return nil, err
		}
		pkg, err := typeCheckASTs(imp, root.ImportPath, fset, asts)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir (used by
// the golden analysistest packages under testdata, which the go tool
// ignores), declaring it under the given import path. Its imports are
// resolved by asking the go tool for export data — so fixtures can import
// the real internal/snap, api and httpx packages and mirror production
// shapes exactly.
func LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	asts, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	importSet := make(map[string]bool)
	for _, f := range asts {
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			if path != "" && path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"},
			sortedKeys(importSet)...)
		out, err := runGo(args...)
		if err != nil {
			return nil, err
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var lp listPackage
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("go list output: %w", err)
			}
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	imp := newExportImporter(fset, exports, nil)
	return typeCheckASTs(imp, pkgPath, fset, asts)
}

// runGo executes the go tool and returns stdout, with stderr folded into
// the error.
func runGo(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args[:2], " "), err, stderr.String())
	}
	return stdout.Bytes(), nil
}

// exportImporter resolves imports through compiled export data files.
type exportImporter struct {
	gc        types.ImporterFrom
	importMap map[string]string
}

// newExportImporter builds a types.Importer over a path->export-file map.
// importMap optionally renames import paths first (the vet.cfg ImportMap);
// nil means identity.
func newExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return &exportImporter{gc: gc.(types.ImporterFrom), importMap: importMap}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := e.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.ImportFrom(path, "", 0)
}

// parseFiles parses files (with comments — the directives live there).
func parseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return asts, nil
}

func typeCheckASTs(imp types.Importer, pkgPath string, fset *token.FileSet, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: asts, Types: pkg, Info: info}, nil
}
