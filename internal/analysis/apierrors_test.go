package analysis

import (
	"go/constant"
	"go/types"
	"testing"

	"github.com/impsim/imp/api"
)

// TestCanonicalStatusesMatchAPI pins canonicalStatuses against the api
// package itself, both directions: every declared api.ErrorCode constant
// must map to a status in the set, and every status in the set must be
// reachable from some code and round-trip through api.CodeForStatus. If a
// code is added to api/error.go without touching the analyzer's table (or
// vice versa), this fails.
func TestCanonicalStatusesMatchAPI(t *testing.T) {
	pkgs, err := Load("github.com/impsim/imp/api")
	if err != nil {
		t.Fatalf("loading api package: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	scope := pkgs[0].Types.Scope()

	declared := make(map[string]bool) // code string -> seen
	fromCodes := make(map[int64]bool) // statuses produced by declared codes
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "ErrorCode" {
			continue
		}
		if c.Val().Kind() != constant.String {
			t.Fatalf("constant %s is not a string: %s", name, c.Val())
		}
		code := api.ErrorCode(constant.StringVal(c.Val()))
		declared[string(code)] = true
		status := int64(code.HTTPStatus())
		fromCodes[status] = true
		if !canonicalStatuses[status] {
			t.Errorf("api.%s maps to HTTP %d, which canonicalStatuses does not list", name, status)
		}
	}
	if len(declared) == 0 {
		t.Fatal("found no api.ErrorCode constants; the api package shape changed")
	}

	for status := range canonicalStatuses {
		if !fromCodes[status] {
			t.Errorf("canonicalStatuses lists %d but no declared api.ErrorCode maps to it", status)
		}
		code := api.CodeForStatus(int(status))
		if !declared[string(code)] {
			t.Errorf("api.CodeForStatus(%d) = %q, which is not a declared constant", status, code)
		}
		if got := int64(code.HTTPStatus()); got != status {
			t.Errorf("status %d round-trips to %d via %q", status, got, code)
		}
	}
}
