// Package progcache builds workload trace programs through a two-level
// cache: an in-process LRU of materialized programs (experiments share one
// build across all their configurations and parallel workers) and an
// on-disk store of binary-encoded traces (builds survive across processes,
// so repeated benchmark and experiment runs skip trace generation
// entirely).
//
// The disk location is chosen as follows:
//
//   - IMP_TRACE_CACHE=<dir> stores traces under <dir>;
//   - IMP_TRACE_CACHE=off (or "0") disables the disk layer;
//   - unset: <user cache dir>/impsim/traces, falling back to
//     <temp dir>/impsim-traces when no user cache dir exists.
//
// Cache keys cover the workload name, every Options field and the trace
// format + generator versions, so a format or generator bump invalidates
// old entries implicitly. Files are written via temp-file-and-rename, so
// concurrent processes never observe partial traces; a corrupted or
// truncated file (size/CRC-32 check failure on read) is evicted on the
// spot, counted in Stats.Corrupt, and rebuilt — corruption never fails an
// experiment. Cached programs are shared: callers must treat them as
// read-only, as with any built Program.
package progcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

// EnvDir is the environment variable overriding the disk cache directory.
const EnvDir = "IMP_TRACE_CACHE"

// maxMemEntries bounds the in-process program cache. Programs are large
// (tens of MB at full scale); 32 comfortably covers a full experiment
// sweep (8 workloads × plain/software-prefetch) with headroom.
const maxMemEntries = 32

// Stats counts cache outcomes since process start (or the last Flush).
type Stats struct {
	MemHits   uint64
	DiskHits  uint64
	Builds    uint64
	DiskSkips uint64 // disk layer disabled or unusable
	// Corrupt counts on-disk entries that failed their integrity check
	// (CRC mismatch, truncation, undecodable content) and were evicted
	// and rebuilt rather than failing the experiment.
	Corrupt uint64
}

type entry struct {
	once    sync.Once
	p       *trace.Program
	err     error
	done    bool
	lastUse uint64
}

var (
	mu      sync.Mutex
	entries = map[string]*entry{}
	useTick uint64
	stats   Stats
)

// Get returns the trace program for (name, opt), building it at most once
// per process and persisting builds to the disk cache.
func Get(name string, opt workload.Options) (*trace.Program, error) {
	opt = opt.WithDefaults()
	key := cacheKey(name, opt)

	mu.Lock()
	e, ok := entries[key]
	if !ok {
		e = &entry{}
		entries[key] = e
		evictLocked()
	} else {
		stats.MemHits++
	}
	useTick++
	e.lastUse = useTick
	mu.Unlock()

	e.once.Do(func() {
		defer func() {
			// A panicking generator must be recorded as the entry's error:
			// sync.Once would otherwise mark the entry complete with
			// p=nil, err=nil and every caller sharing it would nil-deref.
			if rec := recover(); rec != nil {
				e.err = fmt.Errorf("building %s trace: panic: %v", name, rec)
			}
			mu.Lock()
			e.done = true
			mu.Unlock()
		}()
		e.p, e.err = load(name, opt, key)
	})
	return e.p, e.err
}

// load resolves one cache miss: disk first, then a real build (persisted
// best-effort).
func load(name string, opt workload.Options, key string) (*trace.Program, error) {
	dir, enabled := cacheDir()
	if !enabled {
		mu.Lock()
		stats.DiskSkips++
		mu.Unlock()
		p, err := workload.Build(name, opt)
		if err == nil {
			countBuild()
		}
		return p, err
	}
	path := filepath.Join(dir, key+".imptrace")
	if f, err := os.Open(path); err == nil {
		p, derr := trace.ReadProgram(f) // verifies size envelope + CRC-32
		f.Close()
		if derr == nil {
			mu.Lock()
			stats.DiskHits++
			mu.Unlock()
			return p, nil
		}
		// Corrupt or truncated entry: evict it immediately so a failed
		// rebuild (or a crash before the overwrite below lands) cannot
		// leave the poisoned file to greet the next process, then rebuild.
		mu.Lock()
		stats.Corrupt++
		mu.Unlock()
		_ = os.Remove(path)
	}
	p, err := workload.Build(name, opt)
	if err != nil {
		return nil, err
	}
	countBuild()
	if mkErr := os.MkdirAll(dir, 0o755); mkErr == nil {
		// Best-effort persist; a full disk must not fail the experiment.
		_ = p.WriteFile(path)
	}
	return p, nil
}

func countBuild() {
	mu.Lock()
	stats.Builds++
	mu.Unlock()
}

// evictLocked drops least-recently-used completed entries beyond the cap.
// In-flight builds are never evicted. Callers hold mu.
func evictLocked() {
	for len(entries) > maxMemEntries {
		victimKey := ""
		var victimUse uint64
		for k, e := range entries {
			if !e.done {
				continue
			}
			if victimKey == "" || e.lastUse < victimUse {
				victimKey, victimUse = k, e.lastUse
			}
		}
		if victimKey == "" {
			return // everything in flight; stay over cap briefly
		}
		delete(entries, victimKey)
	}
}

// cacheKey derives the content key for one build. Every Options field
// participates, as do the trace format and generator versions.
func cacheKey(name string, opt workload.Options) string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"imptrace|fmt%d|gen%d|%s|cores%d|scale%.17g|sw%v|dist%d|seed%d",
		trace.FormatVersion, workload.GenVersion,
		name, opt.Cores, opt.Scale, opt.SoftwarePrefetch, opt.SWDistance, opt.Seed)))
	return hex.EncodeToString(h[:12])
}

// cacheDir resolves the disk cache directory; enabled is false when the
// disk layer is turned off.
func cacheDir() (dir string, enabled bool) {
	switch v := os.Getenv(EnvDir); v {
	case "":
		if base, err := os.UserCacheDir(); err == nil {
			return filepath.Join(base, "impsim", "traces"), true
		}
		return filepath.Join(os.TempDir(), "impsim-traces"), true
	case "off", "OFF", "0", "false", "no":
		return "", false
	default:
		return v, true
	}
}

// Dir reports the resolved disk cache directory; ok is false when the disk
// layer is disabled via IMP_TRACE_CACHE.
func Dir() (dir string, ok bool) { return cacheDir() }

// GetStats returns a snapshot of the cache counters.
func GetStats() Stats {
	mu.Lock()
	defer mu.Unlock()
	return stats
}

// Flush empties the in-process cache and resets counters (the disk layer
// is untouched). Intended for tests.
func Flush() {
	mu.Lock()
	defer mu.Unlock()
	entries = map[string]*entry{}
	stats = Stats{}
	useTick = 0
}
