package progcache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/impsim/imp/internal/workload"
)

var smallOpt = workload.Options{Cores: 4, Scale: 0.05}

func setDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	t.Setenv(EnvDir, dir)
	Flush()
	t.Cleanup(Flush)
	return dir
}

func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.imptrace"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestBuildPersistsAndReloads(t *testing.T) {
	dir := setDir(t)
	p1, err := Get("spmv", smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cacheFiles(t, dir)); n != 1 {
		t.Fatalf("after first build: %d cache files, want 1", n)
	}
	if st := GetStats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("first build stats: %+v", st)
	}

	// Same process: served from memory, no new build.
	p2, err := Get("spmv", smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Error("second Get did not share the in-memory program")
	}
	if st := GetStats(); st.Builds != 1 || st.MemHits != 1 {
		t.Fatalf("memory hit stats: %+v", st)
	}

	// "New process" (flushed memory): served from disk, still no rebuild.
	Flush()
	p3, err := Get("spmv", smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if st := GetStats(); st.DiskHits != 1 || st.Builds != 0 {
		t.Fatalf("disk hit stats: %+v", st)
	}
	// The decoded program must be byte-identical to the fresh build.
	for c := range p1.Traces {
		if !reflect.DeepEqual(p3.Traces[c].Records, p1.Traces[c].Records) {
			t.Fatalf("core %d: cached records differ from built records", c)
		}
	}
}

func TestKeySeparatesOptions(t *testing.T) {
	dir := setDir(t)
	if _, err := Get("spmv", smallOpt); err != nil {
		t.Fatal(err)
	}
	swOpt := smallOpt
	swOpt.SoftwarePrefetch = true
	if _, err := Get("spmv", swOpt); err != nil {
		t.Fatal(err)
	}
	seedOpt := smallOpt
	seedOpt.Seed = 99
	if _, err := Get("spmv", seedOpt); err != nil {
		t.Fatal(err)
	}
	if n := len(cacheFiles(t, dir)); n != 3 {
		t.Fatalf("3 distinct option sets produced %d cache files, want 3", n)
	}
}

func TestDefaultSeedSharesEntry(t *testing.T) {
	dir := setDir(t)
	if _, err := Get("dense", smallOpt); err != nil { // Seed 0 -> default 42
		t.Fatal(err)
	}
	explicit := smallOpt
	explicit.Seed = 42
	if _, err := Get("dense", explicit); err != nil {
		t.Fatal(err)
	}
	if n := len(cacheFiles(t, dir)); n != 1 {
		t.Fatalf("seed 0 and explicit default seed made %d files, want 1 shared entry", n)
	}
	if st := GetStats(); st.Builds != 1 {
		t.Fatalf("stats: %+v, want a single build", st)
	}
}

func TestDisabledWritesNothing(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(EnvDir, "off")
	Flush()
	t.Cleanup(Flush)
	if _, err := Get("spmv", smallOpt); err != nil {
		t.Fatal(err)
	}
	if n := len(cacheFiles(t, dir)); n != 0 {
		t.Fatalf("disabled cache wrote %d files", n)
	}
	if _, ok := Dir(); ok {
		t.Error("Dir() reports enabled under IMP_TRACE_CACHE=off")
	}
	if st := GetStats(); st.DiskSkips == 0 || st.Builds != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCorruptedFileRebuilds(t *testing.T) {
	dir := setDir(t)
	if _, err := Get("spmv", smallOpt); err != nil {
		t.Fatal(err)
	}
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d cache files", len(files))
	}
	// Truncate the cached trace: the checksum no longer matches.
	if err := os.Truncate(files[0], 100); err != nil {
		t.Fatal(err)
	}
	Flush()
	p, err := Get("spmv", smallOpt)
	if err != nil {
		t.Fatalf("corrupted cache entry broke Get: %v", err)
	}
	if p == nil || len(p.Traces) == 0 {
		t.Fatal("rebuild returned an empty program")
	}
	if st := GetStats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("stats after corruption: %+v, want a rebuild", st)
	}
	// The rebuilt trace must have replaced the corrupt file.
	fi, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= 100 {
		t.Error("corrupt cache file was not rewritten")
	}
}

func TestUnknownWorkloadErrorShared(t *testing.T) {
	setDir(t)
	if _, err := Get("nope", smallOpt); err == nil {
		t.Fatal("unknown workload built successfully")
	}
	if _, err := Get("nope", smallOpt); err == nil {
		t.Fatal("cached error lost")
	}
}

func TestConcurrentGetBuildsOnce(t *testing.T) {
	setDir(t)
	const n = 8
	progs := make(chan interface{}, n)
	for i := 0; i < n; i++ {
		go func() {
			p, err := Get("pagerank", smallOpt)
			if err != nil {
				progs <- err
				return
			}
			progs <- p
		}()
	}
	var first interface{}
	for i := 0; i < n; i++ {
		got := <-progs
		if err, ok := got.(error); ok {
			t.Fatal(err)
		}
		if first == nil {
			first = got
		} else if got != first {
			t.Fatal("concurrent Gets returned distinct programs")
		}
	}
	if st := GetStats(); st.Builds != 1 {
		t.Fatalf("stats: %+v, want exactly one build", st)
	}
}

// TestInPlaceCorruptionEvictsAndRebuilds flips bytes inside a cached trace
// (same length, so only the CRC can catch it) and requires the next Get to
// detect, evict and rebuild the entry instead of failing — and to leave a
// valid file behind for the process after that.
func TestInPlaceCorruptionEvictsAndRebuilds(t *testing.T) {
	dir := setDir(t)
	p1, err := Get("spmv", smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d cache files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt record bytes mid-file without changing the size.
	for off := len(data) / 2; off < len(data)/2+32 && off < len(data); off++ {
		data[off] ^= 0xa5
	}
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	Flush()
	p2, err := Get("spmv", smallOpt)
	if err != nil {
		t.Fatalf("in-place corruption failed the experiment: %v", err)
	}
	st := GetStats()
	if st.Corrupt != 1 || st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("stats after corruption: %+v, want Corrupt=1 Builds=1 DiskHits=0", st)
	}
	// The rebuilt program must match the original build record for record.
	if len(p2.Traces) != len(p1.Traces) {
		t.Fatalf("rebuild changed core count: %d vs %d", len(p2.Traces), len(p1.Traces))
	}
	for c := range p1.Traces {
		if !reflect.DeepEqual(p2.Traces[c].Records, p1.Traces[c].Records) {
			t.Fatalf("core %d: rebuilt records differ from original build", c)
		}
	}
	// And the poisoned file must have been replaced with a decodable one.
	Flush()
	if _, err := Get("spmv", smallOpt); err != nil {
		t.Fatal(err)
	}
	if st := GetStats(); st.DiskHits != 1 || st.Corrupt != 0 {
		t.Fatalf("stats after rebuild: %+v, want a clean disk hit", st)
	}
}

// TestCorruptionEvictsEvenWhenRebuildCannotPersist: with the cache dir made
// read-only after corruption, the bad entry is still removed from the Get
// path's view (best effort) and the build succeeds from scratch.
func TestCorruptionUnderReadOnlyDirStillBuilds(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory write permissions")
	}
	dir := setDir(t)
	if _, err := Get("dense", smallOpt); err != nil {
		t.Fatal(err)
	}
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d cache files", len(files))
	}
	if err := os.Truncate(files[0], 10); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	Flush()
	if _, err := Get("dense", smallOpt); err != nil {
		t.Fatalf("read-only cache dir failed the experiment: %v", err)
	}
	if st := GetStats(); st.Corrupt != 1 || st.Builds != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
