// Package httpx holds the response envelope shared by every HTTP surface
// of the experiment service — the impserve backends (internal/service) and
// the improuter front-end (internal/router). The shape is wire contract:
// client/responseError parses the api.Error body, and the indented JSON
// with a trailing newline is what the router relays verbatim, so the two
// servers must never drift apart. Like internal/jobkey, one definition on
// purpose.
package httpx

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"github.com/impsim/imp/api"
)

// WriteJSON writes v as indented JSON with a trailing newline.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// WriteError writes the typed api.Error body ({"error": ..., "code": ...}).
// When err is or wraps an *api.Error its code and retry hint are used
// verbatim (and a RetryAfter is mirrored into the Retry-After header);
// plain errors are classified from the status code alone, keeping legacy
// write sites on the typed wire shape without touching them.
func WriteError(w http.ResponseWriter, code int, err error) {
	body := &api.Error{Code: api.CodeForStatus(code), Message: err.Error()}
	var typed *api.Error
	if errors.As(err, &typed) {
		body.Code = typed.Code
		body.Message = typed.Message
		body.RetryAfter = typed.RetryAfter
	}
	w.Header().Set("Content-Type", "application/json")
	if body.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(body.RetryAfter))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// WriteAPIError writes a typed error under the status its code maps to.
func WriteAPIError(w http.ResponseWriter, e *api.Error) {
	WriteError(w, e.Code.HTTPStatus(), e)
}
