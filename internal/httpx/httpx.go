// Package httpx holds the response envelope shared by every HTTP surface
// of the experiment service — the impserve backends (internal/service) and
// the improuter front-end (internal/router). The shape is wire contract:
// client/responseError parses the {"error": ...} object, and the indented
// JSON with a trailing newline is what the router relays verbatim, so the
// two servers must never drift apart. Like internal/jobkey, one definition
// on purpose.
package httpx

import (
	"encoding/json"
	"net/http"
)

// WriteJSON writes v as indented JSON with a trailing newline.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// WriteError writes the {"error": ...} envelope the client package parses.
func WriteError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
