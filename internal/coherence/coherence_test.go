package coherence

import (
	"testing"
	"testing/quick"
)

func TestFirstReadNoAction(t *testing.T) {
	d := New(DefaultK, 16)
	act := d.Read(1, 0)
	if act.DowngradeOwner != -1 || len(act.Invalidate) != 0 || act.Broadcast {
		t.Errorf("first read triggered action: %+v", act)
	}
	e := d.Entry(1)
	if e == nil || e.State != SharedBy || e.Sharers() != 1 {
		t.Fatalf("entry after first read: %+v", e)
	}
}

func TestReadersAccumulate(t *testing.T) {
	d := New(DefaultK, 16)
	for c := 0; c < 4; c++ {
		d.Read(1, c)
	}
	e := d.Entry(1)
	if e.Sharers() != 4 || e.Overflowed() {
		t.Errorf("4 readers: sharers=%d overflow=%v", e.Sharers(), e.Overflowed())
	}
	// Re-reading from the same core must not double count.
	d.Read(1, 0)
	if e.Sharers() != 4 {
		t.Errorf("re-read changed sharer count to %d", e.Sharers())
	}
}

func TestACKwiseOverflow(t *testing.T) {
	d := New(DefaultK, 16)
	for c := 0; c < 6; c++ {
		d.Read(1, c)
	}
	e := d.Entry(1)
	if e.Sharers() != 6 || !e.Overflowed() {
		t.Errorf("6 readers with k=4: sharers=%d overflow=%v", e.Sharers(), e.Overflowed())
	}
	// A write must now broadcast and collect 5 acks (6 sharers minus the
	// writer, which is itself a sharer).
	act := d.Write(1, 0)
	if !act.Broadcast {
		t.Error("write to overflowed line did not broadcast")
	}
	if act.Acks != 5 {
		t.Errorf("acks = %d, want 5", act.Acks)
	}
}

func TestWriteInvalidatesPreciseSharers(t *testing.T) {
	d := New(DefaultK, 16)
	d.Read(1, 2)
	d.Read(1, 3)
	d.Read(1, 5)
	act := d.Write(1, 2)
	if act.Broadcast {
		t.Error("precise sharer set must not broadcast")
	}
	if len(act.Invalidate) != 2 || act.Acks != 2 {
		t.Errorf("invalidations = %v (acks %d), want cores {3,5}", act.Invalidate, act.Acks)
	}
	for _, c := range act.Invalidate {
		if c == 2 {
			t.Error("writer invalidated itself")
		}
	}
	e := d.Entry(1)
	if e.State != OwnedBy || e.Sharers() != 1 {
		t.Errorf("after write: %+v", e)
	}
}

func TestWriteAfterWriteTransfersOwnership(t *testing.T) {
	d := New(DefaultK, 16)
	d.Write(1, 0)
	act := d.Write(1, 1)
	if act.DowngradeOwner != 0 || !act.WritebackDirty {
		t.Errorf("second writer action: %+v, want downgrade of core 0 with writeback", act)
	}
	if len(act.Invalidate) != 1 || act.Invalidate[0] != 0 {
		t.Errorf("invalidate = %v, want [0]", act.Invalidate)
	}
}

func TestReadAfterWriteDowngrades(t *testing.T) {
	d := New(DefaultK, 16)
	d.Write(1, 0)
	act := d.Read(1, 1)
	if act.DowngradeOwner != 0 || !act.WritebackDirty {
		t.Errorf("read-after-write action: %+v", act)
	}
	e := d.Entry(1)
	if e.State != SharedBy || e.Sharers() != 2 {
		t.Errorf("after downgrade: state=%v sharers=%d, want Shared/2", e.State, e.Sharers())
	}
}

func TestOwnerRewriteNoAction(t *testing.T) {
	d := New(DefaultK, 16)
	d.Write(1, 0)
	act := d.Write(1, 0)
	if act.DowngradeOwner != -1 || len(act.Invalidate) != 0 || act.Acks != 0 {
		t.Errorf("owner re-write triggered action: %+v", act)
	}
}

func TestEvictL1(t *testing.T) {
	d := New(DefaultK, 16)
	d.Read(1, 0)
	d.Read(1, 1)
	d.EvictL1(1, 0)
	if got := d.Entry(1).Sharers(); got != 1 {
		t.Errorf("sharers after evict = %d, want 1", got)
	}
	d.EvictL1(1, 1)
	if e := d.Entry(1); e.State != Uncached {
		t.Errorf("state after all evicted = %v, want Uncached", e.State)
	}
	// Evicting an owned line uncaches it.
	d.Write(2, 3)
	d.EvictL1(2, 3)
	if e := d.Entry(2); e.State != Uncached {
		t.Errorf("owned line after owner evict = %v, want Uncached", e.State)
	}
	// Evicting an untracked line is a no-op.
	d.EvictL1(99, 0)
}

func TestEvictL2RecallsSharers(t *testing.T) {
	d := New(DefaultK, 16)
	d.Read(1, 0)
	d.Read(1, 1)
	act := d.EvictL2(1)
	if len(act.Invalidate) != 2 || act.Acks != 2 {
		t.Errorf("L2 evict action = %+v, want 2 invalidations", act)
	}
	if d.Entry(1) != nil {
		t.Error("entry survived L2 eviction")
	}
}

func TestEvictL2RecallsOwner(t *testing.T) {
	d := New(DefaultK, 16)
	d.Write(1, 7)
	act := d.EvictL2(1)
	if len(act.Invalidate) != 1 || act.Invalidate[0] != 7 || !act.WritebackDirty {
		t.Errorf("L2 evict of owned line = %+v", act)
	}
}

func TestEvictL2Overflowed(t *testing.T) {
	d := New(DefaultK, 16)
	for c := 0; c < 8; c++ {
		d.Read(1, c)
	}
	act := d.EvictL2(1)
	if !act.Broadcast || act.Acks != 8 {
		t.Errorf("L2 evict of overflowed line = %+v, want broadcast with 8 acks", act)
	}
}

func TestEvictL2Unknown(t *testing.T) {
	d := New(DefaultK, 16)
	act := d.EvictL2(42)
	if len(act.Invalidate) != 0 && !act.Broadcast {
		t.Errorf("evicting unknown line returned work: %+v", act)
	}
}

func TestStatsCounting(t *testing.T) {
	d := New(DefaultK, 16)
	d.Read(1, 0)
	d.Read(1, 1)
	d.Write(1, 2) // 2 invalidations
	d.Read(1, 3)  // downgrade
	st := d.Stats()
	if st.Reads != 3 || st.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 3/1", st.Reads, st.Writes)
	}
	if st.InvalidationsSent != 2 || st.Downgrades != 1 {
		t.Errorf("invals/downgrades = %d/%d, want 2/1", st.InvalidationsSent, st.Downgrades)
	}
}

// TestSharerCountNeverNegative drives random traffic and checks counters
// stay consistent.
func TestSharerCountNeverNegative(t *testing.T) {
	d := New(DefaultK, 8)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			line := uint64(op % 4)
			core := int(op/4) % 8
			switch op % 3 {
			case 0:
				d.Read(line, core)
			case 1:
				d.Write(line, core)
			default:
				d.EvictL1(line, core)
			}
			if e := d.Entry(line); e != nil {
				if e.Sharers() < 0 {
					return false
				}
				if e.State == OwnedBy && e.Sharers() != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
