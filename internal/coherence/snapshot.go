package coherence

import (
	"fmt"
	"sort"

	"github.com/impsim/imp/internal/snap"
)

// Snapshot appends the directory's state to w: the protocol counters plus
// every live entry, sorted by line id so equal directories snapshot to equal
// bytes regardless of table history. Tombstones and table geometry are not
// encoded — the hash table is rebuilt on restore, which is behaviorally
// invisible (lookups are by key and the directory never iterates its table).
func (d *Directory) Snapshot(w *snap.Writer) {
	w.U64(d.stats.Reads)
	w.U64(d.stats.Writes)
	w.U64(d.stats.InvalidationsSent)
	w.U64(d.stats.Broadcasts)
	w.U64(d.stats.Downgrades)

	keys := make([]uint64, 0, d.live)
	for i, st := range d.state {
		if st == slotFull {
			keys = append(keys, d.keys[i])
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		e := d.Entry(k)
		w.U64(k)
		w.U8(uint8(e.State))
		w.U8(e.ns)
		w.Bool(e.overflow)
		w.I64(int64(e.owner))
		w.I64(int64(e.count))
		for _, s := range e.sharers[:e.ns] {
			w.I64(int64(s))
		}
	}
}

// Restore replaces the directory's contents with a state written by
// Snapshot. The directory must have been built with the same k and core
// count.
func (d *Directory) Restore(r *snap.Reader) error {
	d.stats = Stats{
		Reads:             r.U64(),
		Writes:            r.U64(),
		InvalidationsSent: r.U64(),
		Broadcasts:        r.U64(),
		Downgrades:        r.U64(),
	}
	n := r.Count(6) // key + state + ns + overflow + owner + count
	if r.Err() != nil {
		return r.Err()
	}
	slots := initialSlots
	for 4*(n+1) > 3*slots {
		slots *= 2
	}
	d.initTable(slots)
	for i := 0; i < n; i++ {
		key := r.U64()
		e := d.entry(key)
		e.State = DirState(r.U8())
		e.ns = r.U8()
		e.overflow = r.Bool()
		e.owner = int16(r.I64())
		e.count = int32(r.I64())
		if int(e.ns) > len(e.sharers) {
			return fmt.Errorf("coherence: snapshot entry tracks %d sharers, limit is %d", e.ns, len(e.sharers))
		}
		for j := 0; j < int(e.ns); j++ {
			e.sharers[j] = int16(r.I64())
		}
	}
	return r.Err()
}
