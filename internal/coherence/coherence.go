// Package coherence implements the directory protocol of Table 1: an
// ACKwise_k limited directory (Kurian et al. [19]) co-located with each L2
// home slice. Up to k sharers are tracked precisely; beyond that the
// directory keeps only a count and broadcasts invalidations, collecting
// exactly as many acks as there are actual sharers.
//
// The directory computes *what must happen* (which cores to invalidate or
// downgrade); the simulator turns that into NoC messages and latency.
package coherence

import "fmt"

// DefaultK is the ACKwise sharer-tracking limit used in the paper.
const DefaultK = 4

// DirState is the directory-side state of a line.
type DirState uint8

// Directory states.
const (
	Uncached DirState = iota
	SharedBy          // one or more L1s hold the line in S
	OwnedBy           // exactly one L1 holds the line in M
)

func (s DirState) String() string {
	switch s {
	case SharedBy:
		return "Shared"
	case OwnedBy:
		return "Owned"
	default:
		return "Uncached"
	}
}

// Entry is one directory line's bookkeeping.
type Entry struct {
	State    DirState
	sharers  []int16 // precise sharer list, len <= k
	count    int     // true sharer count (>= len(sharers) when overflowed)
	overflow bool    // sharer set exceeded k: invalidations broadcast
	owner    int16   // valid when State == OwnedBy
}

// Sharers returns the number of sharers the directory believes exist.
func (e *Entry) Sharers() int { return e.count }

// Overflowed reports whether the precise sharer list overflowed.
func (e *Entry) Overflowed() bool { return e.overflow }

// Action describes the coherence work a request triggers. The simulator
// sends one invalidation message per entry of Invalidate (or a broadcast to
// all other cores when Broadcast is set), waits for Acks acknowledgements,
// and downgrades/flushes DowngradeOwner if it is >= 0.
type Action struct {
	Invalidate     []int // precise cores to invalidate
	Broadcast      bool  // ACKwise overflow: invalidate all cores except requester
	Acks           int   // acknowledgements to collect
	DowngradeOwner int   // core holding the line in M that must downgrade (-1 none)
	WritebackDirty bool  // the owner's copy was dirty and must reach L2
}

// Stats counts protocol activity.
type Stats struct {
	Reads             uint64
	Writes            uint64
	InvalidationsSent uint64
	Broadcasts        uint64
	Downgrades        uint64
}

// Directory tracks every line resident in one (or all) L2 slice(s). Entries
// are created on first use and dropped on L2 eviction.
type Directory struct {
	k        int
	numCores int
	entries  map[uint64]*Entry
	stats    Stats
}

// New returns a directory with ACKwise_k tracking for numCores cores.
func New(k, numCores int) *Directory {
	if k <= 0 || numCores <= 0 {
		panic(fmt.Sprintf("coherence: invalid directory (k=%d cores=%d)", k, numCores))
	}
	return &Directory{k: k, numCores: numCores, entries: make(map[uint64]*Entry)}
}

// Stats returns a copy of the counters.
func (d *Directory) Stats() Stats { return d.stats }

// Entry returns the directory entry for lineID, or nil.
func (d *Directory) Entry(lineID uint64) *Entry { return d.entries[lineID] }

func (d *Directory) entry(lineID uint64) *Entry {
	e := d.entries[lineID]
	if e == nil {
		e = &Entry{owner: -1}
		d.entries[lineID] = e
	}
	return e
}

func (e *Entry) hasSharer(core int) bool {
	for _, s := range e.sharers {
		if int(s) == core {
			return true
		}
	}
	return false
}

func (e *Entry) addSharer(core, k int) {
	if e.hasSharer(core) {
		return
	}
	e.count++
	if len(e.sharers) < k {
		e.sharers = append(e.sharers, int16(core))
		return
	}
	e.overflow = true
}

func (e *Entry) removeSharer(core int) {
	for i, s := range e.sharers {
		if int(s) == core {
			e.sharers = append(e.sharers[:i], e.sharers[i+1:]...)
			if e.count > 0 {
				e.count--
			}
			return
		}
	}
	// Not tracked precisely: decrement the count if overflowed.
	if e.overflow && e.count > len(e.sharers) {
		e.count--
	}
}

// Read records core fetching the line in Shared state and returns the
// action required first (downgrading a remote owner, if any).
func (d *Directory) Read(lineID uint64, core int) Action {
	d.stats.Reads++
	e := d.entry(lineID)
	act := Action{DowngradeOwner: -1}
	if e.State == OwnedBy && int(e.owner) == core {
		// The owner reads its own modified line: an L1 hit; no state change.
		return act
	}
	if e.State == OwnedBy {
		act.DowngradeOwner = int(e.owner)
		act.WritebackDirty = true
		d.stats.Downgrades++
		// Owner becomes a sharer; the owned line counted its owner, so
		// reset before rebuilding the sharer set.
		prev := int(e.owner)
		e.State = SharedBy
		e.owner = -1
		e.count = 0
		e.sharers = e.sharers[:0]
		e.overflow = false
		e.addSharer(prev, d.k)
	}
	if e.State == Uncached {
		e.State = SharedBy
	}
	e.addSharer(core, d.k)
	return act
}

// Write records core fetching the line for writing (Modified) and returns
// the invalidations required.
func (d *Directory) Write(lineID uint64, core int) Action {
	d.stats.Writes++
	e := d.entry(lineID)
	act := Action{DowngradeOwner: -1}
	switch e.State {
	case OwnedBy:
		if int(e.owner) != core {
			act.DowngradeOwner = int(e.owner)
			act.WritebackDirty = true
			act.Invalidate = []int{int(e.owner)}
			act.Acks = 1
			d.stats.InvalidationsSent++
		}
	case SharedBy:
		if e.overflow {
			act.Broadcast = true
			act.Acks = e.count
			if e.hasSharer(core) {
				// The requester does not ack itself. When the requester is a
				// sharer the directory stopped tracking (overflow), the extra
				// ack is a small over-count the protocol tolerates.
				act.Acks--
			}
			d.stats.Broadcasts++
			d.stats.InvalidationsSent += uint64(d.numCores - 1)
		} else {
			for _, s := range e.sharers {
				if int(s) != core {
					act.Invalidate = append(act.Invalidate, int(s))
				}
			}
			act.Acks = len(act.Invalidate)
			d.stats.InvalidationsSent += uint64(len(act.Invalidate))
		}
	}
	e.State = OwnedBy
	e.owner = int16(core)
	e.sharers = e.sharers[:0]
	e.count = 1
	e.overflow = false
	return act
}

// EvictL1 records that core silently dropped its copy (L1 eviction notice),
// keeping the sharer list precise where possible.
func (d *Directory) EvictL1(lineID uint64, core int) {
	e := d.entries[lineID]
	if e == nil {
		return
	}
	if e.State == OwnedBy && int(e.owner) == core {
		e.State = Uncached
		e.owner = -1
		e.count = 0
		return
	}
	e.removeSharer(core)
	if e.count == 0 {
		e.State = Uncached
		e.overflow = false
	}
}

// EvictL2 removes the directory entry (the home L2 slice evicted the line)
// and returns the action needed to recall all cached copies.
func (d *Directory) EvictL2(lineID uint64) Action {
	e := d.entries[lineID]
	act := Action{DowngradeOwner: -1}
	if e == nil {
		return act
	}
	switch e.State {
	case OwnedBy:
		act.Invalidate = []int{int(e.owner)}
		act.Acks = 1
		act.WritebackDirty = true
		d.stats.InvalidationsSent++
	case SharedBy:
		if e.overflow {
			act.Broadcast = true
			act.Acks = e.count
			d.stats.Broadcasts++
			d.stats.InvalidationsSent += uint64(d.numCores)
		} else {
			for _, s := range e.sharers {
				act.Invalidate = append(act.Invalidate, int(s))
			}
			act.Acks = len(act.Invalidate)
			d.stats.InvalidationsSent += uint64(len(act.Invalidate))
		}
	}
	delete(d.entries, lineID)
	return act
}

// Lines returns the number of tracked lines (for tests).
func (d *Directory) Lines() int { return len(d.entries) }
