// Package coherence implements the directory protocol of Table 1: an
// ACKwise_k limited directory (Kurian et al. [19]) co-located with each L2
// home slice. Up to k sharers are tracked precisely; beyond that the
// directory keeps only a count and broadcasts invalidations, collecting
// exactly as many acks as there are actual sharers.
//
// The directory computes *what must happen* (which cores to invalidate or
// downgrade); the simulator turns that into NoC messages and latency.
//
// Directory state lives in an open-addressed hash table of inline entries
// rather than a Go map: the directory is consulted on every shared-resource
// event, and map hashing plus per-entry pointer allocations dominated the
// simulator's allocation profile.
package coherence

import "fmt"

// DefaultK is the ACKwise sharer-tracking limit used in the paper.
const DefaultK = 4

// maxK bounds the precise sharer list so it can live inline in the entry
// (no per-entry slice allocation). ACKwise_k with k beyond 8 defeats the
// point of a limited directory; New rejects it.
const maxK = 8

// DirState is the directory-side state of a line.
type DirState uint8

// Directory states.
const (
	Uncached DirState = iota
	SharedBy          // one or more L1s hold the line in S
	OwnedBy           // exactly one L1 holds the line in M
)

func (s DirState) String() string {
	switch s {
	case SharedBy:
		return "Shared"
	case OwnedBy:
		return "Owned"
	default:
		return "Uncached"
	}
}

// Entry is one directory line's bookkeeping. It contains no pointers so the
// backing table stays invisible to the garbage collector.
type Entry struct {
	State    DirState
	ns       uint8 // live prefix of sharers
	overflow bool  // sharer set exceeded k: invalidations broadcast
	owner    int16 // valid when State == OwnedBy
	count    int32 // true sharer count (>= ns when overflowed)
	sharers  [maxK]int16
}

// Sharers returns the number of sharers the directory believes exist.
func (e *Entry) Sharers() int { return int(e.count) }

// Overflowed reports whether the precise sharer list overflowed.
func (e *Entry) Overflowed() bool { return e.overflow }

// Action describes the coherence work a request triggers. The simulator
// sends one invalidation message per entry of Invalidate (or a broadcast to
// all other cores when Broadcast is set), waits for Acks acknowledgements,
// and downgrades/flushes DowngradeOwner if it is >= 0.
type Action struct {
	Invalidate     []int // precise cores to invalidate
	Broadcast      bool  // ACKwise overflow: invalidate all cores except requester
	Acks           int   // acknowledgements to collect
	DowngradeOwner int   // core holding the line in M that must downgrade (-1 none)
	WritebackDirty bool  // the owner's copy was dirty and must reach L2
}

// Stats counts protocol activity.
type Stats struct {
	Reads             uint64
	Writes            uint64
	InvalidationsSent uint64
	Broadcasts        uint64
	Downgrades        uint64
}

// Slot states of the open-addressed table.
const (
	slotEmpty uint8 = iota
	slotFull
	slotTomb
)

// Directory tracks every line resident in one (or all) L2 slice(s). Entries
// are created on first use and dropped on L2 eviction.
type Directory struct {
	//imp:nosnap configuration, fixed at construction
	k int
	//imp:nosnap configuration, fixed at construction
	numCores int
	stats    Stats

	// Open-addressed table: linear probing with tombstone deletion. The
	// snapshot encodes live entries (sorted, via the Entry accessors); the
	// table layout itself is rebuilt tombstone-free by initTable on restore.
	//imp:nosnap table layout, rebuilt by initTable on restore
	keys []uint64
	//imp:nosnap table layout, rebuilt by initTable on restore
	vals []Entry
	//imp:nosnap table layout, rebuilt by initTable on restore
	state []uint8
	//imp:nosnap table layout, rebuilt by initTable on restore
	live int // slotFull count
	//imp:nosnap table layout, rebuilt by initTable on restore
	dead int // slotTomb count
}

const initialSlots = 256

// New returns a directory with ACKwise_k tracking for numCores cores.
// k must be in [1, 8] so the precise sharer list stays inline.
func New(k, numCores int) *Directory {
	if k <= 0 || numCores <= 0 {
		panic(fmt.Sprintf("coherence: invalid directory (k=%d cores=%d)", k, numCores))
	}
	if k > maxK {
		panic(fmt.Sprintf("coherence: k=%d exceeds the inline sharer limit %d", k, maxK))
	}
	d := &Directory{k: k, numCores: numCores}
	d.initTable(initialSlots)
	return d
}

func (d *Directory) initTable(n int) {
	d.keys = make([]uint64, n)
	d.vals = make([]Entry, n)
	d.state = make([]uint8, n)
	d.live, d.dead = 0, 0
}

// hashLine is a 64-bit finalizer (splitmix64): line ids are near-sequential
// per slice, so identity hashing would pile everything into a probe run.
func hashLine(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stats returns a copy of the counters.
func (d *Directory) Stats() Stats { return d.stats }

// Entry returns the directory entry for lineID, or nil. The pointer is
// valid until the next directory mutation (the table may rehash).
func (d *Directory) Entry(lineID uint64) *Entry {
	if i := d.find(lineID); i >= 0 {
		return &d.vals[i]
	}
	return nil
}

// find returns the slot holding lineID, or -1.
func (d *Directory) find(lineID uint64) int {
	mask := uint64(len(d.keys) - 1)
	for i := hashLine(lineID) & mask; ; i = (i + 1) & mask {
		switch d.state[i] {
		case slotEmpty:
			return -1
		case slotFull:
			if d.keys[i] == lineID {
				return int(i)
			}
		}
	}
}

// entry returns the entry for lineID, creating it if absent.
func (d *Directory) entry(lineID uint64) *Entry {
	// Grow (or rehash away tombstones) before the load factor passes 3/4 so
	// the returned pointer stays valid until the next mutation.
	if 4*(d.live+d.dead+1) > 3*len(d.keys) {
		d.rehash()
	}
	mask := uint64(len(d.keys) - 1)
	firstTomb := -1
	for i := hashLine(lineID) & mask; ; i = (i + 1) & mask {
		switch d.state[i] {
		case slotEmpty:
			j := int(i)
			if firstTomb >= 0 {
				j = firstTomb
				d.dead--
			}
			d.keys[j] = lineID
			d.state[j] = slotFull
			d.vals[j] = Entry{owner: -1}
			d.live++
			return &d.vals[j]
		case slotFull:
			if d.keys[i] == lineID {
				return &d.vals[i]
			}
		case slotTomb:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		}
	}
}

// rehash rebuilds the table, doubling when genuinely full (not just
// tombstone-laden).
func (d *Directory) rehash() {
	n := len(d.keys)
	if 2*d.live >= n {
		n *= 2
	}
	oldKeys, oldVals, oldState := d.keys, d.vals, d.state
	d.initTable(n)
	mask := uint64(n - 1)
	for i, st := range oldState {
		if st != slotFull {
			continue
		}
		j := hashLine(oldKeys[i]) & mask
		for d.state[j] == slotFull {
			j = (j + 1) & mask
		}
		d.keys[j] = oldKeys[i]
		d.vals[j] = oldVals[i]
		d.state[j] = slotFull
		d.live++
	}
}

func (e *Entry) hasSharer(core int) bool {
	for _, s := range e.sharers[:e.ns] {
		if int(s) == core {
			return true
		}
	}
	return false
}

func (e *Entry) addSharer(core, k int) {
	if e.hasSharer(core) {
		return
	}
	e.count++
	if int(e.ns) < k {
		e.sharers[e.ns] = int16(core)
		e.ns++
		return
	}
	e.overflow = true
}

func (e *Entry) removeSharer(core int) {
	for i, s := range e.sharers[:e.ns] {
		if int(s) == core {
			copy(e.sharers[i:e.ns-1], e.sharers[i+1:e.ns])
			e.ns--
			if e.count > 0 {
				e.count--
			}
			return
		}
	}
	// Not tracked precisely: decrement the count if overflowed.
	if e.overflow && int(e.count) > int(e.ns) {
		e.count--
	}
}

func (e *Entry) clearSharers() {
	e.ns = 0
	e.count = 0
	e.overflow = false
}

// Read records core fetching the line in Shared state and returns the
// action required first (downgrading a remote owner, if any).
func (d *Directory) Read(lineID uint64, core int) Action {
	d.stats.Reads++
	e := d.entry(lineID)
	act := Action{DowngradeOwner: -1}
	if e.State == OwnedBy && int(e.owner) == core {
		// The owner reads its own modified line: an L1 hit; no state change.
		return act
	}
	if e.State == OwnedBy {
		act.DowngradeOwner = int(e.owner)
		act.WritebackDirty = true
		d.stats.Downgrades++
		// Owner becomes a sharer; the owned line counted its owner, so
		// reset before rebuilding the sharer set.
		prev := int(e.owner)
		e.State = SharedBy
		e.owner = -1
		e.clearSharers()
		e.addSharer(prev, d.k)
	}
	if e.State == Uncached {
		e.State = SharedBy
	}
	e.addSharer(core, d.k)
	return act
}

// Write records core fetching the line for writing (Modified) and returns
// the invalidations required.
func (d *Directory) Write(lineID uint64, core int) Action {
	d.stats.Writes++
	e := d.entry(lineID)
	act := Action{DowngradeOwner: -1}
	switch e.State {
	case OwnedBy:
		if int(e.owner) != core {
			act.DowngradeOwner = int(e.owner)
			act.WritebackDirty = true
			act.Invalidate = []int{int(e.owner)}
			act.Acks = 1
			d.stats.InvalidationsSent++
		}
	case SharedBy:
		if e.overflow {
			act.Broadcast = true
			act.Acks = int(e.count)
			if e.hasSharer(core) {
				// The requester does not ack itself. When the requester is a
				// sharer the directory stopped tracking (overflow), the extra
				// ack is a small over-count the protocol tolerates.
				act.Acks--
			}
			d.stats.Broadcasts++
			d.stats.InvalidationsSent += uint64(d.numCores - 1)
		} else {
			for _, s := range e.sharers[:e.ns] {
				if int(s) != core {
					act.Invalidate = append(act.Invalidate, int(s))
				}
			}
			act.Acks = len(act.Invalidate)
			d.stats.InvalidationsSent += uint64(len(act.Invalidate))
		}
	}
	e.State = OwnedBy
	e.owner = int16(core)
	e.clearSharers()
	e.count = 1
	return act
}

// EvictL1 records that core silently dropped its copy (L1 eviction notice),
// keeping the sharer list precise where possible.
func (d *Directory) EvictL1(lineID uint64, core int) {
	i := d.find(lineID)
	if i < 0 {
		return
	}
	e := &d.vals[i]
	if e.State == OwnedBy && int(e.owner) == core {
		e.State = Uncached
		e.owner = -1
		e.count = 0
		return
	}
	e.removeSharer(core)
	if e.count == 0 {
		e.State = Uncached
		e.overflow = false
	}
}

// EvictL2 removes the directory entry (the home L2 slice evicted the line)
// and returns the action needed to recall all cached copies.
func (d *Directory) EvictL2(lineID uint64) Action {
	act := Action{DowngradeOwner: -1}
	i := d.find(lineID)
	if i < 0 {
		return act
	}
	e := &d.vals[i]
	switch e.State {
	case OwnedBy:
		act.Invalidate = []int{int(e.owner)}
		act.Acks = 1
		act.WritebackDirty = true
		d.stats.InvalidationsSent++
	case SharedBy:
		if e.overflow {
			act.Broadcast = true
			act.Acks = int(e.count)
			d.stats.Broadcasts++
			d.stats.InvalidationsSent += uint64(d.numCores)
		} else {
			for _, s := range e.sharers[:e.ns] {
				act.Invalidate = append(act.Invalidate, int(s))
			}
			act.Acks = len(act.Invalidate)
			d.stats.InvalidationsSent += uint64(len(act.Invalidate))
		}
	}
	d.state[i] = slotTomb
	d.vals[i] = Entry{}
	d.live--
	d.dead++
	return act
}

// Lines returns the number of tracked lines (for tests).
func (d *Directory) Lines() int { return d.live }
