// Package cluster is the in-process test harness for the sharded service:
// it spins N impserve instances (internal/service) behind an improuter
// front-end (internal/router), all on loopback httptest servers, so e2e
// tests — and the CI cluster job — can prove byte-identity with direct
// library output, cache locality across resubmissions, and failure
// handling (backend death, rehash, cancel routing) without shelling out to
// real binaries.
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"time"

	"github.com/impsim/imp/client"
	"github.com/impsim/imp/internal/router"
	"github.com/impsim/imp/internal/service"
)

// Backend is one in-process impserve instance.
type Backend struct {
	// Service is the live service, for white-box assertions (stats,
	// job lookups) the HTTP surface doesn't expose.
	Service *service.Service
	// Server is its loopback HTTP front.
	Server *httptest.Server
	// URL is Server.URL, the address registered with the router.
	URL string
	// Name is the router's lifetime-unique name for this backend ("b3").
	// Startup backends are named by index; backends joined live via Add get
	// the next never-reused number, which may not match their slice index.
	Name string
	// Removed marks a backend retired from the ring via Remove. Its entry
	// stays in Backends so fleet-wide assertions (total executed points,
	// per-backend stats) still see its counters.
	Removed bool

	cfg    service.Config // for Restart: same config, fresh process state
	addr   string         // host:port, pinned so Restart rebinds it
	killed bool
}

// Cluster is N backends behind one router. Membership is live: Add scales
// the fleet up mid-test and Remove retires members, exercising the
// router's join/leave hand-off exactly as an operator would via the admin
// surface.
type Cluster struct {
	Backends []*Backend
	Router   *router.Router
	// Front is the router's loopback HTTP server; point clients here.
	Front *httptest.Server

	opt Options // for Add: new backends get the same service config
}

// Options tunes the fleet; zero values give each backend the service
// defaults and the router fast health probes (50ms interval) and
// replication polls (20ms) so failure tests converge quickly.
type Options struct {
	Service service.Config
	Router  router.Config // Backends is filled in by Start
	// ResultsDir, when set, gives backend i a persistent on-disk result
	// store under <ResultsDir>/b<i>, so restart tests can prove a backend
	// comes back warm from disk.
	ResultsDir string
}

// Start builds an n-backend cluster. Call Close when done.
func Start(n int, opt Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 backend, got %d", n)
	}
	c := &Cluster{opt: opt}
	rcfg := opt.Router
	for i := 0; i < n; i++ {
		scfg := opt.Service
		if opt.ResultsDir != "" {
			scfg.ResultsDir = filepath.Join(opt.ResultsDir, fmt.Sprintf("b%d", i))
		}
		svc := service.New(scfg)
		srv := httptest.NewServer(svc.Handler())
		c.Backends = append(c.Backends, &Backend{
			Service: svc, Server: srv, URL: srv.URL,
			Name: fmt.Sprintf("b%d", i),
			cfg:  scfg, addr: srv.Listener.Addr().String(),
		})
		rcfg.Backends = append(rcfg.Backends, srv.URL)
	}
	if rcfg.HealthInterval <= 0 {
		rcfg.HealthInterval = 50 * time.Millisecond
	}
	if rcfg.HealthTimeout <= 0 {
		rcfg.HealthTimeout = time.Second
	}
	if rcfg.ReplicaPoll <= 0 {
		rcfg.ReplicaPoll = 20 * time.Millisecond
	}
	rt, err := router.New(rcfg)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Router = rt
	c.Front = httptest.NewServer(rt.Handler())
	return c, nil
}

// Client returns an api client pointed at the router; the same client type
// works unchanged against a single backend, which is the compatibility
// guarantee the router is tested for.
func (c *Cluster) Client() *client.Client {
	return client.New(c.Front.URL, c.Front.Client())
}

// BackendClient returns a client pointed directly at backend i, bypassing
// the router (locality tests compare the two views).
func (c *Cluster) BackendClient(i int) *client.Client {
	return client.New(c.Backends[i].URL, c.Backends[i].Server.Client())
}

// Add scales the fleet up by one: a fresh impserve is started with the
// cluster's service config and joined to the router's ring live, key
// hand-off included. It returns the new backend's index in Backends.
func (c *Cluster) Add() (int, error) {
	scfg := c.opt.Service
	if c.opt.ResultsDir != "" {
		scfg.ResultsDir = filepath.Join(c.opt.ResultsDir, fmt.Sprintf("add%d", len(c.Backends)))
	}
	svc := service.New(scfg)
	srv := httptest.NewServer(svc.Handler())
	change, err := c.Router.AddBackend(context.Background(), srv.URL)
	if err != nil {
		srv.Close()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		svc.Close(ctx)
		return 0, err
	}
	c.Backends = append(c.Backends, &Backend{
		Service: svc, Server: srv, URL: srv.URL,
		Name: change.Backend.Name,
		cfg:  scfg, addr: srv.Listener.Addr().String(),
	})
	return len(c.Backends) - 1, nil
}

// Remove retires backend i from the ring: a graceful leave (force false)
// drains its stored results to their new owners first, force drops it
// immediately. The backend's process is then shut down, but its entry —
// and so its counters — stays in Backends for fleet-wide assertions.
func (c *Cluster) Remove(i int, force bool) error {
	b := c.Backends[i]
	if b.Removed {
		return fmt.Errorf("cluster: backend %d already removed", i)
	}
	if _, err := c.Router.RemoveBackend(context.Background(), b.Name, force); err != nil {
		return err
	}
	b.Removed = true
	if !b.killed {
		b.killed = true
		b.Server.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		b.Service.Close(ctx)
		cancel()
	}
	return nil
}

// Kill takes backend i down hard: active streams are severed mid-flight
// (not drained), the listener stops, and any jobs it is still running are
// canceled. Subsequent router traffic to it sees connection refused.
func (c *Cluster) Kill(i int) {
	b := c.Backends[i]
	if b.killed {
		return
	}
	b.killed = true
	b.Server.CloseClientConnections()
	b.Server.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired: cancel running jobs instead of draining
	b.Service.Close(ctx)
}

// Restart brings a killed backend back on its original address with the
// same service config — including any results dir — but fresh process
// state, mimicking a real impserve restart. The backend's ring membership
// survived the kill (death is a health eviction, not a leave), so the
// revived backend is readmitted by the next health probe and immediately
// owns its old keys again; with a results dir its store answers them from
// disk.
func (c *Cluster) Restart(i int) error {
	b := c.Backends[i]
	if b.Removed {
		return fmt.Errorf("cluster: backend %d was removed from the ring; Add a new one instead", i)
	}
	if !b.killed {
		return fmt.Errorf("cluster: backend %d is not killed", i)
	}
	// The dead server's port can linger in TIME_WAIT briefly; retry the
	// rebind instead of failing the test on scheduler luck.
	var ln net.Listener
	var err error
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln, err = net.Listen("tcp", b.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: rebinding %s: %w", b.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	svc := service.New(b.cfg)
	srv := &httptest.Server{Listener: ln, Config: &http.Server{Handler: svc.Handler()}}
	srv.Start()
	b.Service, b.Server, b.URL, b.killed = svc, srv, srv.URL, false
	return nil
}

// WaitHealthy blocks until the router reports want healthy backends or the
// deadline passes, returning the last observed count. Failure tests call
// it after Kill so routing decisions are made against settled health state.
func (c *Cluster) WaitHealthy(want int, deadline time.Duration) int {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	end := time.Now().Add(deadline)
	last := -1
	for time.Now().Before(end) {
		last = c.Router.Stats(context.Background()).HealthyCount
		if last == want {
			return last
		}
		<-t.C
	}
	return last
}

// Close tears the whole fleet down: router first (stops health probes),
// then every backend with a drain deadline.
func (c *Cluster) Close() {
	if c.Front != nil {
		c.Front.Close()
	}
	if c.Router != nil {
		c.Router.Close()
	}
	for _, b := range c.Backends {
		if b.killed {
			continue
		}
		b.Server.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		b.Service.Close(ctx)
		cancel()
	}
}
