package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock swaps the limiter's clock for deterministic refill tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(rate, burst float64) (*Limiter, *fakeClock) {
	l := New(rate, burst)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l.now = clk.now
	return l, clk
}

func TestBurstThenReject(t *testing.T) {
	l, _ := newTestLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst submit %d rejected", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("4th submit admitted past burst")
	}
	if retry < 1 {
		t.Fatalf("retryAfter = %d, want >= 1", retry)
	}
}

func TestRefill(t *testing.T) {
	l, clk := newTestLimiter(2, 2) // 2 tokens/s
	l.Allow("a")
	l.Allow("a")
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("admitted with empty bucket")
	}
	clk.advance(500 * time.Millisecond) // refills exactly 1 token
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("rejected after refill")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("admitted twice off one refilled token")
	}
}

func TestRetryAfterMatchesRate(t *testing.T) {
	l, _ := newTestLimiter(0.1, 1) // one token per 10s
	l.Allow("a")
	_, retry := l.Allow("a")
	if retry != 10 {
		t.Fatalf("retryAfter = %d, want 10", retry)
	}
}

func TestTenantsIsolated(t *testing.T) {
	l, _ := newTestLimiter(1, 1)
	l.Allow("a")
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("tenant a admitted past burst")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("tenant b affected by tenant a's spend")
	}
}

func TestEmptyTenantIsDefault(t *testing.T) {
	l, _ := newTestLimiter(1, 1)
	l.Allow("")
	if ok, _ := l.Allow(DefaultTenant); ok {
		t.Fatal(`"" and DefaultTenant use separate buckets`)
	}
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	if l = New(0, 5); l != nil {
		t.Fatal("rate<=0 should build the nil no-op limiter")
	}
	for i := 0; i < 100; i++ {
		if ok, retry := l.Allow("x"); !ok || retry != 0 {
			t.Fatalf("nil limiter rejected: ok=%v retry=%d", ok, retry)
		}
	}
	if l.Tenants() != 0 {
		t.Fatal("nil limiter tracks tenants")
	}
}

func TestDefaultBurst(t *testing.T) {
	l := New(5, 0)
	if l.burst != 5 {
		t.Fatalf("burst = %v, want rate (5)", l.burst)
	}
	l = New(0.2, 0)
	if l.burst != 1 {
		t.Fatalf("burst = %v, want 1", l.burst)
	}
}

func TestLRUEviction(t *testing.T) {
	l, _ := newTestLimiter(1, 1)
	// Fill to the cap, spending tenant 0's token first.
	for i := 0; i < MaxTenants; i++ {
		l.Allow(fmt.Sprintf("t%d", i))
	}
	if l.Tenants() != MaxTenants {
		t.Fatalf("tenants = %d, want %d", l.Tenants(), MaxTenants)
	}
	// One more tenant evicts the least-recently-used (t0).
	l.Allow("fresh")
	if l.Tenants() != MaxTenants {
		t.Fatalf("tenants = %d after eviction, want %d", l.Tenants(), MaxTenants)
	}
	// t0 was evicted with an empty bucket; re-appearing it gets a full
	// burst again — eviction is never a lockout.
	if ok, _ := l.Allow("t0"); !ok {
		t.Fatal("re-appearing evicted tenant rejected")
	}
}

func TestConcurrentAllow(t *testing.T) {
	l, _ := newTestLimiter(1, 50)
	var wg sync.WaitGroup
	admitted := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if ok, _ := l.Allow("shared"); ok {
					admitted[i]++
				}
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	// Fixed clock: exactly the burst is admitted, never more.
	if total != 50 {
		t.Fatalf("admitted %d, want exactly 50 (the burst)", total)
	}
}
