// Package admission implements per-tenant token-bucket quotas for the
// impserve/improuter submit path. Each tenant (the X-Imp-Tenant request
// header; missing headers collapse into one shared default tenant) gets a
// bucket refilled at a configured rate up to a burst cap; a submission
// spends one token or is rejected with a Retry-After hint saying when the
// next token lands.
//
// Buckets live in a size-bounded LRU map so an adversarial client cycling
// tenant names cannot grow the limiter without bound: evicting a tenant
// forgets only its spend history, and a re-appearing tenant starts with a
// full burst — strictly more permissive, never less, so eviction can't
// lock anyone out.
package admission

import (
	"container/list"
	"math"
	"sync"
	"time"
)

// DefaultTenant is the bucket key for requests that carry no tenant header.
const DefaultTenant = "default"

// MaxTenants bounds the number of live buckets; least-recently-used
// tenants are evicted past it.
const MaxTenants = 4096

// Limiter is a set of per-tenant token buckets. The zero value is not
// usable; construct with New. A nil *Limiter is a valid no-op limiter that
// admits everything (quotas disabled).
type Limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu  sync.Mutex
	by  map[string]*list.Element
	lru *list.List // front = most recently used; element value: *bucket

	// now is the clock, swappable in tests.
	now func() time.Time
}

type bucket struct {
	tenant string
	tokens float64
	last   time.Time
}

// New builds a limiter granting each tenant rate tokens/second with the
// given burst capacity. rate <= 0 disables quotas (returns nil, the no-op
// limiter); burst <= 0 defaults to max(rate, 1) so a configured rate is
// always usable.
func New(rate, burst float64) *Limiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = math.Max(rate, 1)
	}
	return &Limiter{
		rate:  rate,
		burst: burst,
		by:    make(map[string]*list.Element),
		lru:   list.New(),
		now:   time.Now,
	}
}

// Allow spends one token from tenant's bucket. It returns ok=true when the
// submission is admitted; otherwise retryAfter is the whole-second hint
// (>= 1) for when the next token lands, suitable for a Retry-After header.
// An empty tenant maps to DefaultTenant.
func (l *Limiter) Allow(tenant string) (ok bool, retryAfter int) {
	if l == nil {
		return true, 0
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.bucketFor(tenant, now)
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Seconds until the deficit refills, rounded up, floored at 1 so the
	// header is never "Retry-After: 0".
	wait := (1 - b.tokens) / l.rate
	return false, int(math.Max(1, math.Ceil(wait)))
}

// Tenants reports the number of live buckets (for stats/tests).
func (l *Limiter) Tenants() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.by)
}

func (l *Limiter) bucketFor(tenant string, now time.Time) *bucket {
	if e, hit := l.by[tenant]; hit {
		l.lru.MoveToFront(e)
		return e.Value.(*bucket)
	}
	for len(l.by) >= MaxTenants {
		oldest := l.lru.Back()
		l.lru.Remove(oldest)
		delete(l.by, oldest.Value.(*bucket).tenant)
	}
	b := &bucket{tenant: tenant, tokens: l.burst, last: now}
	l.by[tenant] = l.lru.PushFront(b)
	return b
}
