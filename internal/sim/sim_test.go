package sim

import (
	"testing"

	"github.com/impsim/imp/internal/cpu"
	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// indirectProgram builds a canonical A[B[i]] workload on `cores` cores:
// each core scans its slice of B and accesses A[B[i]], with scattered
// indices, iterated `iters` times with a barrier between iterations.
func indirectProgram(cores, perCore, iters int) *trace.Program {
	s := mem.NewSpace()
	n := cores * perCore
	b := s.AllocInt32("B", n)
	x := uint64(99991)
	aLen := 1 << 18
	for i := range b.Int32s() {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b.Int32s()[i] = int32(x % uint64(aLen))
	}
	a := s.AllocFloat64("A", aLen)

	var traces []*trace.Trace
	for c := 0; c < cores; c++ {
		tb := trace.NewBuilder()
		lo, hi := c*perCore, (c+1)*perCore
		for it := 0; it < iters; it++ {
			for i := lo; i < hi; i++ {
				tb.Load(1, b.Addr(i), 4, trace.KindStream)
				tb.LoadDep(2, a.Addr(int(b.Int32s()[i])), 8, trace.KindIndirect)
				tb.Compute(2)
			}
			tb.Barrier()
		}
		traces = append(traces, tb.Trace())
	}
	return &trace.Program{Space: s, Traces: traces}
}

// denseProgram builds a pure streaming workload (no indirection).
func denseProgram(cores, perCore int) *trace.Program {
	s := mem.NewSpace()
	data := s.AllocFloat64("dense", cores*perCore)
	var traces []*trace.Trace
	for c := 0; c < cores; c++ {
		tb := trace.NewBuilder()
		for i := c * perCore; i < (c+1)*perCore; i++ {
			tb.Load(1, data.Addr(i), 8, trace.KindStream)
			tb.Compute(3)
		}
		traces = append(traces, tb.Trace())
	}
	return &trace.Program{Space: s, Traces: traces}
}

func run(t *testing.T, p *trace.Program, cfg Config) *Metrics {
	t.Helper()
	m, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestValidateConfig(t *testing.T) {
	if err := DefaultConfig(16).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig(12) // not a square
	if bad.Validate() == nil {
		t.Error("accepted non-square core count")
	}
	both := DefaultConfig(16)
	both.Ideal = true
	both.PerfectPrefetch = true
	if both.Validate() == nil {
		t.Error("accepted Ideal+PerfectPrefetch")
	}
}

func TestL2ScalingRule(t *testing.T) {
	// §5.1: per-tile L2 = 2/√N MB.
	cases := []struct{ cores, kb int }{{16, 512}, {64, 256}, {256, 128}}
	for _, c := range cases {
		cfg := DefaultConfig(c.cores)
		if got := cfg.l2SliceBytes(); got != c.kb*1024 {
			t.Errorf("cores=%d: L2 slice = %d, want %d KB", c.cores, got, c.kb)
		}
	}
}

func TestIdealRuntimeEqualsInstructionBound(t *testing.T) {
	p := indirectProgram(4, 200, 1)
	cfg := DefaultConfig(4)
	cfg.Ideal = true
	m := run(t, p, cfg)
	// Every instruction is 1 cycle; runtime ≈ per-core instructions + barrier.
	perCore := p.Traces[0].Instructions()
	if m.Cycles < int64(perCore) || m.Cycles > int64(perCore)+2*cfg.BarrierLatency {
		t.Errorf("ideal cycles = %d, want ≈ %d", m.Cycles, perCore)
	}
	if m.DRAMBytes != 0 || m.NoCFlitHops != 0 {
		t.Error("ideal run produced memory traffic")
	}
}

func TestBaselineSlowerThanIdeal(t *testing.T) {
	p := indirectProgram(4, 400, 2)
	ideal := DefaultConfig(4)
	ideal.Ideal = true
	mi := run(t, p, ideal)
	mb := run(t, p, DefaultConfig(4))
	if mb.Cycles <= mi.Cycles {
		t.Errorf("baseline (%d) not slower than ideal (%d)", mb.Cycles, mi.Cycles)
	}
	if mb.DRAMBytes == 0 || mb.NoCFlitHops == 0 {
		t.Error("baseline produced no traffic")
	}
}

func TestIndirectMissesDominate(t *testing.T) {
	// Fig 1's premise: with a large A and scattered B, indirect accesses
	// produce most misses under a stream prefetcher.
	p := indirectProgram(4, 800, 1)
	m := run(t, p, DefaultConfig(4))
	ind, str, _ := m.MissBreakdown()
	if ind < 0.5 {
		t.Errorf("indirect miss fraction = %.2f, want > 0.5 (stream frac %.2f)", ind, str)
	}
}

func TestIMPBeatsBaseline(t *testing.T) {
	p := indirectProgram(4, 800, 2)
	base := run(t, p, DefaultConfig(4))

	impCfg := DefaultConfig(4)
	impCfg.Prefetcher = PrefetchIMP
	mi := run(t, p, impCfg)

	if mi.IMPPatterns == 0 {
		t.Fatal("IMP detected no patterns")
	}
	if mi.Cycles >= base.Cycles {
		t.Errorf("IMP (%d cycles) not faster than baseline (%d)", mi.Cycles, base.Cycles)
	}
	if mi.Coverage() <= base.Coverage() {
		t.Errorf("IMP coverage %.2f not above baseline %.2f", mi.Coverage(), base.Coverage())
	}
}

func TestPerfectPrefetchNearIdealLatency(t *testing.T) {
	p := indirectProgram(4, 400, 1)
	perf := DefaultConfig(4)
	perf.PerfectPrefetch = true
	mp := run(t, p, perf)
	base := run(t, p, DefaultConfig(4))
	if mp.Cycles >= base.Cycles {
		t.Errorf("perfect prefetch (%d) not faster than baseline (%d)", mp.Cycles, base.Cycles)
	}
	if mp.Coverage() < 0.9 {
		t.Errorf("perfect prefetch coverage = %.2f, want ≈ 1", mp.Coverage())
	}
}

func TestOrderingIdealLEQPerfectLEQIMPLEQBase(t *testing.T) {
	// The paper's global ordering: Ideal ≤ PerfPref ≤ IMP ≤ Base (runtime).
	p := indirectProgram(4, 600, 2)
	ideal := DefaultConfig(4)
	ideal.Ideal = true
	perf := DefaultConfig(4)
	perf.PerfectPrefetch = true
	impc := DefaultConfig(4)
	impc.Prefetcher = PrefetchIMP

	ci := run(t, p, ideal).Cycles
	cp := run(t, p, perf).Cycles
	cm := run(t, p, impc).Cycles
	cb := run(t, p, DefaultConfig(4)).Cycles
	// IMP may edge out PerfPref by a little (it moves fewer lines), so the
	// middle comparison carries a tolerance.
	if !(ci <= cp && float64(cp) <= float64(cm)*1.15 && cm <= cb) {
		t.Errorf("ordering violated: ideal=%d perf=%d imp=%d base=%d", ci, cp, cm, cb)
	}
}

func TestDenseWorkloadIMPHarmless(t *testing.T) {
	// §6.1: on SPLASH-2-like codes with no indirection, IMP must not hurt.
	p := denseProgram(4, 2000)
	base := run(t, p, DefaultConfig(4))
	impCfg := DefaultConfig(4)
	impCfg.Prefetcher = PrefetchIMP
	mi := run(t, p, impCfg)
	ratio := float64(mi.Cycles) / float64(base.Cycles)
	if ratio > 1.05 {
		t.Errorf("IMP hurt dense workload by %.1f%%", (ratio-1)*100)
	}
	if mi.IMPIndirect > mi.TotalAccesses()/100 {
		t.Errorf("IMP issued %d indirect prefetches on a dense workload", mi.IMPIndirect)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// One slow core (more work) must drag all cores' barriers.
	s := mem.NewSpace()
	data := s.AllocFloat64("d", 1<<16)
	var traces []*trace.Trace
	for c := 0; c < 4; c++ {
		tb := trace.NewBuilder()
		n := 10
		if c == 0 {
			n = 3000 // slow core
		}
		for i := 0; i < n; i++ {
			tb.Load(1, data.Addr((c*4001+i*37)%(1<<16)), 8, trace.KindOther)
		}
		tb.Barrier()
		tb.Load(2, data.Addr(c), 8, trace.KindOther)
		traces = append(traces, tb.Trace())
	}
	p := &trace.Program{Space: s, Traces: traces}
	m := run(t, p, DefaultConfig(4))
	// All cores finish within a small window after the barrier.
	var minC, maxC int64 = 1 << 62, 0
	for _, c := range m.PerCoreCycles {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > maxC/4 {
		t.Errorf("cores finished far apart (%d..%d) despite barrier", minC, maxC)
	}
}

func TestSpinBarriersChargeInstructions(t *testing.T) {
	p := indirectProgram(4, 100, 2)
	base := run(t, p, DefaultConfig(4))
	p2 := indirectProgram(4, 100, 2)
	p2.SpinBarriers = true
	spin := run(t, p2, DefaultConfig(4))
	if spin.Instructions <= base.Instructions {
		t.Errorf("spin barriers did not inflate instructions: %d vs %d",
			spin.Instructions, base.Instructions)
	}
	if spin.SpinCycles == 0 {
		t.Error("no spin cycles recorded")
	}
}

func TestOoOFasterThanInOrder(t *testing.T) {
	p := indirectProgram(4, 600, 1)
	inorder := run(t, p, DefaultConfig(4))
	oooCfg := DefaultConfig(4)
	oooCfg.CoreModel = cpu.OutOfOrder
	ooo := run(t, p, oooCfg)
	if ooo.Cycles >= inorder.Cycles {
		t.Errorf("OoO (%d) not faster than in-order (%d)", ooo.Cycles, inorder.Cycles)
	}
}

func TestPartialReducesTraffic(t *testing.T) {
	p := indirectProgram(4, 1000, 2)
	impCfg := DefaultConfig(4)
	impCfg.Prefetcher = PrefetchIMP
	full := run(t, p, impCfg)

	partCfg := impCfg
	partCfg.Partial = PartialNoCDRAM
	part := run(t, p, partCfg)

	if part.NoCFlitHops >= full.NoCFlitHops {
		t.Errorf("partial NoC traffic %d not below full %d", part.NoCFlitHops, full.NoCFlitHops)
	}
	if part.DRAMBytes >= full.DRAMBytes {
		t.Errorf("partial DRAM bytes %d not below full %d", part.DRAMBytes, full.DRAMBytes)
	}
}

func TestSWPrefetchImprovesOverBaseline(t *testing.T) {
	// Build the indirect program with Mowry-style software prefetches.
	s := mem.NewSpace()
	perCore, cores := 600, 4
	n := cores * perCore
	b := s.AllocInt32("B", n)
	x := uint64(7)
	aLen := 1 << 18
	for i := range b.Int32s() {
		x = x*6364136223846793005 + 1442695040888963407
		b.Int32s()[i] = int32((x >> 33) % uint64(aLen))
	}
	a := s.AllocFloat64("A", aLen)
	const dist = 16
	var plain, swpf []*trace.Trace
	for c := 0; c < cores; c++ {
		tp := trace.NewBuilder()
		ts := trace.NewBuilder()
		lo, hi := c*perCore, (c+1)*perCore
		for i := lo; i < hi; i++ {
			for _, tb := range []*trace.Builder{tp, ts} {
				tb.Load(1, b.Addr(i), 4, trace.KindStream)
				tb.LoadDep(2, a.Addr(int(b.Int32s()[i])), 8, trace.KindIndirect)
				tb.Compute(2)
			}
			if i+dist < hi {
				// prefetch A[B[i+dist]]: load B[i+dist] then prefetch.
				ts.SWPrefetch(3, a.Addr(int(b.Int32s()[i+dist])), 3)
			}
		}
		plain = append(plain, tp.Trace())
		swpf = append(swpf, ts.Trace())
	}
	mBase := run(t, &trace.Program{Space: s, Traces: plain}, DefaultConfig(4))
	mSW := run(t, &trace.Program{Space: s, Traces: swpf}, DefaultConfig(4))
	if mSW.Cycles >= mBase.Cycles {
		t.Errorf("software prefetch (%d) not faster than baseline (%d)", mSW.Cycles, mBase.Cycles)
	}
	if mSW.Instructions <= mBase.Instructions {
		t.Error("software prefetch did not inflate the instruction count")
	}
}

func TestCoherenceInvalidationsOnSharedWrites(t *testing.T) {
	// All cores read one line, then core 0 writes it.
	s := mem.NewSpace()
	d := s.AllocInt64("shared", 8)
	var traces []*trace.Trace
	for c := 0; c < 4; c++ {
		tb := trace.NewBuilder()
		tb.Load(1, d.Addr(0), 8, trace.KindOther)
		tb.Barrier()
		if c == 0 {
			tb.Store(2, d.Addr(0), 8, trace.KindOther)
		} else {
			tb.Compute(200)
			tb.Load(3, d.Addr(1), 8, trace.KindOther)
		}
		traces = append(traces, tb.Trace())
	}
	m := run(t, &trace.Program{Space: s, Traces: traces}, DefaultConfig(4))
	if m.Invalidations == 0 {
		t.Error("no invalidations on write to shared line")
	}
}

func TestGHBNoBenefitOnIndirect(t *testing.T) {
	// §5.4: GHB adds nothing over stream on indirect workloads.
	p := indirectProgram(4, 600, 1)
	stream := run(t, p, DefaultConfig(4))
	ghbCfg := DefaultConfig(4)
	ghbCfg.Prefetcher = PrefetchGHB
	ghb := run(t, p, ghbCfg)
	// Within 5% — GHB neither helps much nor catastrophically hurts.
	ratio := float64(ghb.Cycles) / float64(stream.Cycles)
	if ratio < 0.9 {
		t.Errorf("GHB unexpectedly beat stream by %.0f%%", (1-ratio)*100)
	}
	if ratio > 1.15 {
		t.Errorf("GHB slowed the system by %.0f%%", (ratio-1)*100)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Prefetcher = PrefetchIMP
	a := run(t, indirectProgram(4, 300, 2), cfg)
	b := run(t, indirectProgram(4, 300, 2), cfg)
	if a.Cycles != b.Cycles || a.TotalMisses() != b.TotalMisses() ||
		a.NoCFlitHops != b.NoCFlitHops || a.DRAMBytes != b.DRAMBytes {
		t.Errorf("non-deterministic results:\n  %v\n  %v", a, b)
	}
}

func TestRunRejectsMismatchedCores(t *testing.T) {
	p := indirectProgram(4, 10, 1)
	if _, err := Run(p, DefaultConfig(16)); err == nil {
		t.Error("accepted 4-core program on 16-core config")
	}
}

func TestMetricsString(t *testing.T) {
	m := run(t, indirectProgram(4, 100, 1), DefaultConfig(4))
	if m.String() == "" {
		t.Error("empty metrics string")
	}
	if m.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
}
