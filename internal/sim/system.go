package sim

import (
	"fmt"

	"github.com/impsim/imp/internal/cache"
	"github.com/impsim/imp/internal/coherence"
	"github.com/impsim/imp/internal/core"
	"github.com/impsim/imp/internal/cpu"
	"github.com/impsim/imp/internal/dram"
	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/noc"
	"github.com/impsim/imp/internal/prefetch"
	"github.com/impsim/imp/internal/trace"
)

// batchRecords bounds how many records one heap pop may process; misses and
// barriers yield earlier. Hits are core-local, so short batches only cost
// heap churn, not accuracy.
const batchRecords = 64

type tile struct {
	id int
	l1 *cache.Cache
	pf prefetch.Prefetcher
	//imp:nosnap alias of pf set at build; the IMP's state snapshots through pf
	imp  *core.IMP // non-nil when pf is IMP
	pipe *cpu.Pipeline
	//imp:nosnap restore reattaches a fresh stream and repositions it to pos
	stream trace.RecordStream
	//imp:nosnap stateless region-cached read tap, rebuilt at construction
	memr *mem.CachedReader // per-tile value taps (region-cached reads)
	time int64
	pos  int // records consumed from stream (stream cursor position)
	//imp:nosnap scratch inside one step call; consume zeroes it before any yield
	winOff  int // records of the current window processed, incl. the current one
	instr   uint64
	done    bool
	waiting bool // parked at a barrier

	// inflight holds prefetches whose data has not yet arrived. Lines fill
	// the L1 only at completion (an MSHR, not an early insert), so
	// prefetches cannot evict hot lines before their data exists.
	inflight  []inflightPF
	arrival   int64 // barrier arrival time
	perfAhead int   // perfect-prefetch lookahead cursor (absolute records)
}

// inflightPF is one outstanding prefetch.
type inflightPF struct {
	line     uint64
	complete int64
	mask     cache.SectorMask
	state    cache.State
}

// drainInflight moves completed prefetches into the L1.
func (s *system) drainInflight(t *tile, now int64) {
	kept := t.inflight[:0]
	for _, pf := range t.inflight {
		if pf.complete > now {
			kept = append(kept, pf)
			continue
		}
		ev := t.l1.Insert(pf.line, pf.mask, pf.state, pf.complete, true)
		s.handleL1Eviction(t, ev)
	}
	t.inflight = kept
}

// takeInflight removes and returns the in-flight prefetch covering
// (line, mask), if any. A prefetch of the right line but with too few
// sectors is left in place (the later drain merges it).
func (t *tile) takeInflight(line uint64, mask cache.SectorMask) (inflightPF, bool) {
	for i, pf := range t.inflight {
		if pf.line == line && pf.mask&mask == mask {
			t.inflight = append(t.inflight[:i], t.inflight[i+1:]...)
			return pf, true
		}
	}
	return inflightPF{}, false
}

// coversInflight reports whether an in-flight prefetch already covers
// (line, mask) and returns its completion time.
func (t *tile) coversInflight(line uint64, mask cache.SectorMask) (int64, bool) {
	for _, pf := range t.inflight {
		if pf.line == line && pf.mask&mask == mask {
			return pf.complete, true
		}
	}
	return 0, false
}

type system struct {
	cfg Config
	//imp:nosnap the trace is not embedded in snapshots; Restore reattaches an equivalent Source
	src trace.Source
	//imp:nosnap derived from the trace's region table at build
	space *mem.Space
	//imp:nosnap derived from the source's SpinBarrierWait at build
	spin bool
	// valueTap is set when the prefetcher consumes loaded values (IMP's
	// index taps); the stream and GHB prefetchers never read Access.Value,
	// so the memory-image read is skipped for them.
	//imp:nosnap derived from the prefetcher kind at build
	valueTap bool
	mesh     *noc.Mesh
	mem      dram.Model
	//imp:nosnap derived from cfg at build
	mcOf  []int // mc index -> tile id
	l2    []*cache.Cache
	dir   []*coherence.Directory
	tiles []*tile
	h     []*tile // typed min-heap on (time, id)
	met   Metrics

	// Per-access scratch buffers, reused across the whole run: the tick
	// loop is single-threaded per system, and per-access slice allocations
	// dominated the simulator's profile before these existed.
	//imp:nosnap scratch, dead outside one access
	reqScratch []prefetch.Request
	//imp:nosnap scratch, dead outside one access
	complScratch []int64

	//imp:nosnap Snapshot refuses a system with a pending stream error
	streamErr error // first record-stream decode failure

	// started records that the scheduling heap has been seeded; resumed
	// runs (Finish after RunUntil, restored snapshots) must keep the heap
	// as-is rather than re-seed it.
	started bool

	// barrier state
	arrivedCount int
	maxArrival   int64
}

// Run replays prog on the system described by cfg and returns the metrics.
func Run(prog *trace.Program, cfg Config) (*Metrics, error) {
	return RunSource(prog.Source(), cfg)
}

// RunSource replays a trace source on the system described by cfg. With a
// streaming source (trace.FileSource) the per-core records are decoded on
// the fly inside a bounded lookahead window, so replay memory does not
// scale with trace length.
func RunSource(src trace.Source, cfg Config) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src.Cores() != cfg.Cores {
		return nil, fmt.Errorf("sim: program traced for %d cores, config has %d", src.Cores(), cfg.Cores)
	}
	if err := src.Validate(); err != nil {
		return nil, err
	}
	s := build(src, cfg)
	s.run()
	if s.streamErr != nil {
		return nil, fmt.Errorf("sim: record stream: %w", s.streamErr)
	}
	return s.collect(), nil
}

func build(src trace.Source, cfg Config) *system {
	n := cfg.Cores
	s := &system{
		cfg:   cfg,
		src:   src,
		space: src.Memory(),
		spin:  src.SpinBarrierWait(),
		mesh:  cfg.buildNoC(),
		mem:   cfg.buildDRAM(),
		l2:    make([]*cache.Cache, n),
		dir:   make([]*coherence.Directory, n),
		tiles: make([]*tile, 0, n),
	}
	s.mcOf = noc.DiamondMCTiles(s.mesh.Config().Dim, cfg.numMCs())
	l2cfg := cache.Config{SizeBytes: cfg.l2SliceBytes(), Ways: cfg.L2Ways, SectorBytes: cfg.l2SectorBytes()}
	l1cfg := cache.Config{SizeBytes: cfg.L1SizeBytes, Ways: cfg.L1Ways, SectorBytes: cfg.l1SectorBytes()}
	for i := 0; i < n; i++ {
		s.l2[i] = cache.New(l2cfg)
		s.dir[i] = coherence.New(ackwiseK, n)
		t := &tile{
			id:       i,
			l1:       cache.New(l1cfg),
			pipe:     cpu.New(cfg.CoreModel, cfg.OoOWindow),
			stream:   src.Open(i),
			memr:     mem.NewCachedReader(s.space),
			inflight: make([]inflightPF, 0, cfg.MaxOutstandingPrefetches),
		}
		switch cfg.Prefetcher {
		case PrefetchStream:
			t.pf = prefetch.NewStream(prefetch.DefaultStreamConfig())
		case PrefetchGHB:
			// The paper attaches GHB on top of the stream prefetcher; model
			// both by chaining their requests.
			t.pf = &chainedPrefetcher{
				a: prefetch.NewStream(prefetch.DefaultStreamConfig()),
				b: prefetch.NewGHB(prefetch.DefaultGHBConfig()),
			}
		case PrefetchIMP:
			p := cfg.IMP
			p.Partial = cfg.Partial != PartialOff
			t.imp = core.New(p, mem.NewCachedReader(s.space))
			t.pf = t.imp
			s.valueTap = true
		}
		s.tiles = append(s.tiles, t)
	}
	return s
}

// chainedPrefetcher merges the requests of two prefetchers. Both append
// into the shared request slice, so Parent indices (absolute positions in
// the full slice per the Prefetcher contract) need no rebasing.
type chainedPrefetcher struct {
	a, b prefetch.Prefetcher
}

func (c *chainedPrefetcher) Name() string { return c.a.Name() + "+" + c.b.Name() }
func (c *chainedPrefetcher) Observe(acc prefetch.Access, reqs []prefetch.Request) []prefetch.Request {
	reqs = c.a.Observe(acc, reqs)
	return c.b.Observe(acc, reqs)
}

// Typed min-heap on (time, id). The standard container/heap would box every
// push and pop through interface{} method calls on the hot loop; the order
// produced is identical because (time, id) is a strict total order.

func (s *system) heapLess(a, b *tile) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.id < b.id
}

func (s *system) heapPush(t *tile) {
	s.h = append(s.h, t)
	i := len(s.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(s.h[i], s.h[parent]) {
			break
		}
		s.h[i], s.h[parent] = s.h[parent], s.h[i]
		i = parent
	}
}

func (s *system) heapPop() *tile {
	h := s.h
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = nil
	s.h = h[:n]
	h = s.h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && s.heapLess(h[r], h[l]) {
			least = r
		}
		if !s.heapLess(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

func (s *system) run() {
	s.seedHeap()
	for len(s.h) > 0 {
		t := s.heapPop()
		s.step(t)
		if !t.done && !t.waiting {
			s.heapPush(t)
		}
	}
}

// runUntil executes the run loop until the next tile to be stepped has
// consumed at least limit records, then stops before stepping it. The stop
// check peeks at the heap root — the exact tile heapPop would return — and
// leaves the heap untouched, so the steps executed are a strict prefix of
// run's step sequence and resuming (run after runUntil, or a restored
// snapshot) continues byte-identically. The heap array itself is preserved,
// never rebuilt: entries go stale when a tile's clock advances while a
// duplicate entry is still queued (barrier release re-pushes the last
// arriver), and pop order — hence simulated contention — depends on the
// exact layout.
func (s *system) runUntil(limit int) {
	s.seedHeap()
	for len(s.h) > 0 {
		if s.h[0].pos >= limit {
			return
		}
		t := s.heapPop()
		s.step(t)
		if !t.done && !t.waiting {
			s.heapPush(t)
		}
	}
}

// seedHeap pushes every tile onto the scheduling heap, once per system
// lifetime; resumed runs keep the existing heap.
func (s *system) seedHeap() {
	if s.started {
		return
	}
	s.started = true
	s.h = make([]*tile, 0, len(s.tiles))
	for _, t := range s.tiles {
		s.heapPush(t)
	}
}

// step advances one tile until a miss, barrier, or batch limit. Records are
// pulled in windows of batchRecords so the stream pays one interface call
// per batch, not per record.
func (s *system) step(t *tile) {
	win := t.stream.Window(batchRecords)
	if len(win) == 0 {
		s.finishTile(t)
		return
	}
	for i, r := range win {
		t.winOff = i + 1
		if r.Gap > 0 {
			t.time += int64(r.Gap)
			t.instr += uint64(r.Gap)
		}
		switch {
		case r.IsGapOnly():
			continue
		case r.IsBarrier():
			t.consume(i + 1)
			s.arriveBarrier(t)
			return
		case r.IsSWPrefetch():
			t.instr++
			t.time++
			if !s.cfg.Ideal {
				s.issuePrefetch(t, t.time, prefetch.Request{Addr: r.Addr, Parent: -1})
			}
			continue
		default:
			if s.demandAccess(t, r) {
				t.consume(i + 1)
				return // shared-resource activity: re-enter in global order
			}
		}
	}
	t.consume(len(win))
	if len(win) < batchRecords {
		// Window runs short only at the end of the stream: retire the tile
		// now so its drained time is visible to coherence traffic at once.
		s.finishTile(t)
	}
}

// consume advances the record stream past n processed records.
func (t *tile) consume(n int) {
	t.stream.Advance(n)
	t.pos += n
	t.winOff = 0
}

// finishTile drains the pipeline and retires a tile whose trace ended.
func (s *system) finishTile(t *tile) {
	if err := t.stream.Err(); err != nil && s.streamErr == nil {
		s.streamErr = fmt.Errorf("core %d: %w", t.id, err)
	}
	t.time = t.pipe.Drain(t.time)
	t.done = true
}

// demandAccess plays one load/store; it returns true when the access missed
// (touching shared resources).
func (s *system) demandAccess(t *tile, r trace.Record) bool {
	t.instr++
	now := t.pipe.Gate(t.time, t.instr, r.DependsOnPrev())
	ks := s.met.kind(r.Kind)
	ks.Accesses++

	if s.cfg.Ideal {
		s.finish(t, r, now, now+s.cfg.L1HitLatency)
		return false
	}
	if s.cfg.PerfectPrefetch {
		s.perfectLookahead(t, now)
	}

	s.drainInflight(t, now)
	lineID := r.Addr.LineID()
	mask := t.l1.MaskFor(r.Addr, int(r.Size))
	res, ln := t.l1.Lookup(lineID, mask)

	var complete int64
	missed := false
	switch res {
	case cache.Hit:
		complete = now + s.cfg.L1HitLatency
		if ln.FillTime > now {
			// The fill is still in flight (OoO slid past the miss).
			complete = ln.FillTime + s.cfg.L1HitLatency
		}
		first := cache.MarkDemandUse(ln, uint64(r.Addr.Offset()), uint64(r.Size))
		if first {
			s.met.PrefetchesUsed++
			ks.CoveredMisses++
		}
		if r.IsStore() && ln.State != cache.Modified {
			// Upgrade: the data is local but write permission is not.
			complete = s.upgrade(t, complete, lineID)
			ln.State = cache.Modified
			missed = true
		}
	default: // Miss or SectorMiss
		if pf, ok := t.takeInflight(lineID, mask); ok {
			// A prefetch for this line is in flight: stall only for the
			// residual latency (late prefetch, §6.1.1).
			complete = pf.complete + s.cfg.L1HitLatency
			ev := t.l1.Insert(pf.line, pf.mask, pf.state, pf.complete, true)
			s.handleL1Eviction(t, ev)
			if l := t.l1.Probe(lineID); l != nil {
				cache.MarkDemandUse(l, uint64(r.Addr.Offset()), uint64(r.Size))
			}
			s.met.PrefetchesUsed++
			ks.LateCovered++
			missed = true
			if r.IsStore() && pf.state != cache.Modified {
				complete = s.upgrade(t, complete, lineID)
				if l := t.l1.Probe(lineID); l != nil {
					l.State = cache.Modified
				}
			}
		} else {
			missed = true
			ks.Misses++
			complete = s.fetchForDemand(t, now, r, mask, res, ln)
		}
	}

	// Prefetches issue when the hardware observes the access, not when the
	// data returns.
	s.observePrefetcher(t, r, res != cache.Hit, now)
	s.finish(t, r, now, complete)
	latency := complete - now
	ks.TotalLatency += latency
	if latency > s.cfg.L1HitLatency {
		ks.StallCycles += latency - s.cfg.L1HitLatency
	}
	return missed
}

// finish advances the core past the access per the pipeline model.
func (s *system) finish(t *tile, r trace.Record, issued, complete int64) {
	if t.pipe.Kind() == cpu.InOrder {
		t.time = complete
		t.pipe.NoteLoad(t.instr, complete)
		return
	}
	t.time = issued + 1
	t.pipe.NoteLoad(t.instr, complete)
}

// observePrefetcher feeds the access to the tile's hardware prefetcher and
// issues whatever it asks for.
func (s *system) observePrefetcher(t *tile, r trace.Record, miss bool, when int64) {
	if t.pf == nil || s.cfg.PerfectPrefetch {
		return
	}
	a := prefetch.Access{
		PC: r.PC, Addr: r.Addr, Size: int(r.Size), Store: r.IsStore(), Miss: miss,
	}
	if s.valueTap && !r.IsStore() {
		a.Value = t.memr.ReadWord(r.Addr)
	}
	reqs := t.pf.Observe(a, s.reqScratch[:0])
	completions := s.complScratch[:0]
	for i, rq := range reqs {
		start := when
		if rq.Parent >= 0 && rq.Parent < i {
			start = completions[rq.Parent]
		}
		completions = append(completions, s.issuePrefetch(t, start, rq))
	}
	// Keep any growth of the scratch buffers for the next access.
	s.reqScratch = reqs[:0]
	s.complScratch = completions[:0]
}

// perfectLookahead keeps each core's own future lines prefetched
// PerfectDistance accesses ahead (the PerfPref configuration). The cursor
// counts absolute records; the stream is still positioned at t.pos, so the
// current record sits t.winOff places into the window.
func (s *system) perfectLookahead(t *tile, now int64) {
	cur := t.pos + t.winOff
	target := cur + s.cfg.PerfectDistance
	if t.perfAhead < cur {
		t.perfAhead = cur
	}
	if t.perfAhead >= target {
		return
	}
	win := t.stream.Window(target - t.pos)
	for t.perfAhead < target && t.perfAhead-t.pos < len(win) {
		r := win[t.perfAhead-t.pos]
		t.perfAhead++
		if r.IsBarrier() || r.IsGapOnly() || r.IsSWPrefetch() {
			continue
		}
		s.issuePrefetch(t, now, prefetch.Request{Addr: r.Addr, Parent: -1, Exclusive: r.IsStore()})
	}
}

// issuePrefetch runs one non-binding fetch; it returns the fill time (or
// start when the prefetch was elided/dropped). The fetched line enters the
// in-flight set and fills the cache only when its data arrives.
func (s *system) issuePrefetch(t *tile, start int64, rq prefetch.Request) int64 {
	lineID := rq.Addr.LineID()
	addr := rq.Addr
	nbytes := rq.Bytes
	if nbytes <= 0 {
		addr = rq.Addr.Line()
		nbytes = mem.LineSize
	}
	mask := t.l1.MaskFor(addr, nbytes)
	if ln := t.l1.Probe(lineID); ln != nil && ln.Valid&mask == mask {
		if !rq.Exclusive || ln.State == cache.Modified {
			return max64(start, ln.FillTime) // already resident
		}
	}
	if c, ok := t.coversInflight(lineID, mask); ok {
		return c // already in flight
	}
	s.drainInflight(t, start)
	// Outstanding-prefetch limit (hardware prefetchers only; the idealized
	// PerfPref configuration is bounded by bandwidth alone, §5.4).
	if !s.cfg.PerfectPrefetch && len(t.inflight) >= s.cfg.MaxOutstandingPrefetches {
		s.met.PrefetchesDropped++
		return start
	}

	complete := s.fetch(t.id, start, addr, nbytes, rq.Exclusive, true)
	st := cache.Shared
	if rq.Exclusive {
		st = cache.Modified
	}
	t.inflight = append(t.inflight, inflightPF{line: lineID, complete: complete, mask: mask, state: st})
	s.met.PrefetchesIssued++
	return complete
}

// fetchForDemand fills the sectors a demand access needs and returns the
// completion time.
func (s *system) fetchForDemand(t *tile, now int64, r trace.Record, mask cache.SectorMask, res cache.LookupResult, ln *cache.Line) int64 {
	lineID := r.Addr.LineID()
	var addr mem.Addr
	var nbytes int
	var fill cache.SectorMask
	if res == cache.SectorMiss {
		// Fetch only the missing sectors of the partial line.
		fill = mask &^ ln.Valid
		addr, nbytes = sectorRange(lineID, fill, s.cfg.l1SectorBytes())
	} else {
		// Whole-line demand fill.
		fill = t.l1.FullMask()
		addr, nbytes = mem.Addr(lineID<<mem.LineShift), mem.LineSize
	}
	complete := s.fetch(t.id, now, addr, nbytes, r.IsStore(), false)

	st := cache.Shared
	if r.IsStore() {
		st = cache.Modified
	}
	ev := t.l1.Insert(lineID, fill|mask, st, complete, false)
	s.handleL1Eviction(t, ev)
	if l := t.l1.Probe(lineID); l != nil {
		cache.MarkDemandUse(l, uint64(r.Addr.Offset()), uint64(r.Size))
	}
	return complete
}

// sectorRange returns the address and byte count covering mask's sectors.
func sectorRange(lineID uint64, mask cache.SectorMask, sectorBytes int) (mem.Addr, int) {
	base := mem.Addr(lineID << mem.LineShift)
	lo, hi := -1, -1
	for i := 0; i < 64/sectorBytes; i++ {
		if mask&(1<<i) != 0 {
			if lo == -1 {
				lo = i
			}
			hi = i
		}
	}
	if lo == -1 {
		return base, mem.LineSize
	}
	return base + mem.Addr(lo*sectorBytes), (hi - lo + 1) * sectorBytes
}

// fetch walks the shared memory hierarchy for [addr, addr+nbytes) and
// returns the time the data reaches the requesting tile's L1.
func (s *system) fetch(tileID int, now int64, addr mem.Addr, nbytes int, store, isPrefetch bool) int64 {
	lineID := addr.LineID()
	home := int(lineID % uint64(s.cfg.Cores))
	// The slice-local line id strips the home-selection bits; indexing the
	// slice with the full id would leave most of its sets unused.
	sliceLine := lineID / uint64(s.cfg.Cores)

	// Request message (control packet).
	tReq := s.mesh.Send(now, tileID, home, 0)
	tL2 := tReq + s.cfg.L2Latency

	l2c := s.l2[home]
	l2mask := l2c.MaskFor(addr, nbytes)
	res, l2ln := l2c.Lookup(sliceLine, l2mask)

	var dataAtHome int64
	switch res {
	case cache.Hit:
		dataAtHome = tL2
		if l2ln.FillTime > dataAtHome {
			dataAtHome = l2ln.FillTime
		}
	default:
		// Fill from DRAM. Partial DRAM transfers only for prefetch-initiated
		// partial requests or sector refills (§4: partial accesses are
		// triggered by IMP; demand misses move whole lines).
		fetchMask := l2c.FullMask()
		if s.cfg.Partial == PartialNoCDRAM && (isPrefetch || res == cache.SectorMiss) {
			fetchMask = l2mask
			if res == cache.SectorMiss {
				fetchMask = l2mask &^ l2ln.Valid
			}
		}
		dramBytes := fetchMask.Count() * s.cfg.l2SectorBytes()
		mc := dram.MCForLine(lineID, s.cfg.numMCs())
		mcTile := s.mcOf[mc]
		tToMC := s.mesh.Send(tL2, home, mcTile, 0)
		tDRAM := s.mem.Access(tToMC, mc, lineID, dramBytes)
		tBack := s.mesh.Send(tDRAM, mcTile, home, dramBytes)
		st := cache.Shared
		ev := l2c.Insert(sliceLine, fetchMask, st, tBack, isPrefetch)
		s.handleL2Eviction(home, ev)
		dataAtHome = tBack
	}

	s.met.Fetch.N++
	s.met.Fetch.ReqNoC += tReq - now
	s.met.Fetch.L2Wait += dataAtHome - tReq

	// Directory actions.
	var act coherence.Action
	if store {
		act = s.dir[home].Write(lineID, tileID)
		if l2p := l2c.Probe(sliceLine); l2p != nil {
			l2p.State = cache.Modified // the L2 copy will be stale vs the L1
		}
	} else {
		act = s.dir[home].Read(lineID, tileID)
	}
	cohDone := s.applyCoherence(home, tileID, lineID, act, tL2)
	if cohDone > dataAtHome {
		s.met.Fetch.Coh += cohDone - dataAtHome
		dataAtHome = cohDone
	}

	// Data response. Partial NoC transfers apply to all sectored requests.
	respBytes := mem.LineSize
	if s.cfg.Partial != PartialOff && nbytes < mem.LineSize {
		respBytes = nbytes
	}
	done := s.mesh.Send(dataAtHome, home, tileID, respBytes)
	s.met.Fetch.Resp += done - dataAtHome
	return done
}

// applyCoherence executes a directory action starting at time start and
// returns when all acknowledgements have reached the home tile.
func (s *system) applyCoherence(home, requester int, lineID uint64, act coherence.Action, start int64) int64 {
	done := start
	if act.DowngradeOwner >= 0 && act.DowngradeOwner != requester {
		owner := s.tiles[act.DowngradeOwner]
		tMsg := s.mesh.Send(start, home, owner.id, 0)
		owner.l1.Downgrade(lineID)
		// Dirty data flows back to the home L2.
		tWB := s.mesh.Send(tMsg, owner.id, home, mem.LineSize)
		if tWB > done {
			done = tWB
		}
	}
	targets := act.Invalidate
	if act.Broadcast {
		s.met.Broadcasts++
		targets = targets[:0:0]
		for _, t := range s.tiles {
			if t.id != requester && t.l1.Probe(lineID) != nil {
				targets = append(targets, t.id)
			}
		}
		// Broadcast control messages reach every tile regardless of copies.
		for _, t := range s.tiles {
			if t.id != requester {
				s.mesh.Send(start, home, t.id, 0)
			}
		}
	}
	for _, c := range targets {
		if c == requester {
			continue
		}
		victim := s.tiles[c]
		tMsg := s.mesh.Send(start, home, c, 0)
		st, wasted := victim.l1.Invalidate(lineID)
		if wasted {
			s.met.PrefetchesWasted++
		}
		payload := 0
		if st == cache.Modified {
			payload = mem.LineSize // dirty data returns with the ack
		}
		tAck := s.mesh.Send(tMsg, c, home, payload)
		if tAck > done {
			done = tAck
		}
		s.met.Invalidations++
	}
	return done
}

// upgrade obtains write permission for a line already resident in t's L1.
func (s *system) upgrade(t *tile, now int64, lineID uint64) int64 {
	home := int(lineID % uint64(s.cfg.Cores))
	tReq := s.mesh.Send(now, t.id, home, 0)
	act := s.dir[home].Write(lineID, t.id)
	cohDone := s.applyCoherence(home, t.id, lineID, act, tReq+s.cfg.L2Latency)
	if l2p := s.l2[home].Probe(lineID / uint64(s.cfg.Cores)); l2p != nil {
		l2p.State = cache.Modified
	}
	return s.mesh.Send(cohDone, home, t.id, 0)
}

// handleL1Eviction processes a line displaced from t's L1: directory
// notification, dirty writeback traffic, prefetch-accuracy accounting and
// the GP touch-vector hand-off.
func (s *system) handleL1Eviction(t *tile, ev cache.Eviction) {
	if ev.State == cache.Invalid {
		return
	}
	home := int(ev.LineID % uint64(s.cfg.Cores))
	s.dir[home].EvictL1(ev.LineID, t.id)
	if ev.State == cache.Modified {
		// Dirty writeback to the home L2.
		s.mesh.Send(t.time, t.id, home, mem.LineSize)
		if l2p := s.l2[home].Probe(ev.LineID / uint64(s.cfg.Cores)); l2p != nil {
			l2p.State = cache.Modified
		}
	}
	if ev.Prefetched {
		s.met.PrefetchesWasted++
	}
	if t.imp != nil {
		t.imp.NoteEviction(ev.LineID, ev.Touch)
	}
}

// handleL2Eviction recalls all L1 copies of a line evicted from the home
// L2 slice (inclusive hierarchy) and writes dirty data to DRAM. The
// eviction carries the slice-local id; reconstruct the full line id.
func (s *system) handleL2Eviction(home int, ev cache.Eviction) {
	if ev.State == cache.Invalid {
		return
	}
	lineID := ev.LineID*uint64(s.cfg.Cores) + uint64(home)
	act := s.dir[home].EvictL2(lineID)
	targets := act.Invalidate
	if act.Broadcast {
		targets = targets[:0:0]
		for _, t := range s.tiles {
			if t.l1.Probe(lineID) != nil {
				targets = append(targets, t.id)
			}
		}
	}
	dirty := ev.State == cache.Modified
	for _, c := range targets {
		st, wasted := s.tiles[c].l1.Invalidate(lineID)
		if wasted {
			s.met.PrefetchesWasted++
		}
		if st == cache.Modified {
			dirty = true
			s.mesh.Send(s.tiles[c].time, c, home, mem.LineSize)
		}
		s.met.Invalidations++
	}
	if ev.Prefetched {
		s.met.PrefetchesWasted++
	}
	if dirty {
		// Write the line back to memory.
		mc := dram.MCForLine(lineID, s.cfg.numMCs())
		mcTile := s.mcOf[mc]
		t := s.mesh.Send(0, home, mcTile, mem.LineSize)
		s.mem.Access(t, mc, lineID, mem.LineSize)
	}
}

// arriveBarrier parks t until all cores reach the barrier, then releases
// everyone at the max arrival time plus the barrier cost.
func (s *system) arriveBarrier(t *tile) {
	t.time = t.pipe.Drain(t.time)
	t.arrival = t.time
	t.waiting = true
	s.arrivedCount++
	if t.time > s.maxArrival {
		s.maxArrival = t.time
	}
	if s.arrivedCount < s.activeTiles() {
		return
	}
	release := s.maxArrival + s.cfg.BarrierLatency
	for _, w := range s.tiles {
		if !w.waiting {
			continue
		}
		if s.spin {
			spin := release - w.arrival
			w.instr += uint64(spin)
			s.met.SpinCycles += spin
		}
		w.time = release
		w.waiting = false
		s.heapPush(w)
	}
	s.arrivedCount = 0
	s.maxArrival = 0
}

func (s *system) activeTiles() int {
	n := 0
	for _, t := range s.tiles {
		if !t.done {
			n++
		}
	}
	return n
}

// collect finalizes the metrics.
func (s *system) collect() *Metrics {
	m := &s.met
	m.PerCoreCycles = make([]int64, len(s.tiles))
	for i, t := range s.tiles {
		m.PerCoreCycles[i] = t.time
		if t.time > m.Cycles {
			m.Cycles = t.time
		}
		m.Instructions += t.instr
		// Prefetches still in flight at the end never served a demand.
		m.PrefetchesWasted += uint64(len(t.inflight))
		if t.imp != nil {
			st := t.imp.Stats()
			m.IMPPatterns += st.PatternsDetected
			m.IMPSecondary += st.SecondaryDetected
			m.IMPIndirect += st.IndirectPrefetches
		}
	}
	m.NoCFlitHops = s.mesh.FlitHops
	m.NoCDataBytes = s.mesh.DataBytes
	ds := s.mem.Stats()
	m.DRAMAccesses = ds.Accesses
	m.DRAMBytes = ds.Bytes
	return m
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
