package sim

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
	"testing"

	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

// fuzzWorkload/fuzzCores/fuzzScale pin the trace every FuzzRestore input is
// decoded against. gen_fuzz_corpus.go builds the committed seeds with the
// same values; change them together.
const (
	fuzzWorkload = "spmv"
	fuzzCores    = 4 // the mesh requires a square core count
	fuzzScale    = 0.02
)

var fuzzProgOnce = sync.OnceValues(func() (*trace.Program, error) {
	return workload.Build(fuzzWorkload, workload.Options{Cores: fuzzCores, Scale: fuzzScale})
})

// fuzzConfig shrinks the caches far below Table 1 so a snapshot is a few KB
// instead of ~100KB: the fuzz engine minimizes every coverage-expanding
// mutation, and minimization cost scales with seed size. The IMP prefetcher
// is enabled so its table restore paths are in the fuzzed surface.
// gen_fuzz_corpus.go mirrors this; change them together.
func fuzzConfig() Config {
	cfg := DefaultConfig(fuzzCores)
	cfg.L1SizeBytes = 4 << 10
	cfg.L1Ways = 2
	cfg.L2SliceBytes = 8 << 10
	cfg.L2Ways = 2
	cfg.Prefetcher = PrefetchIMP
	return cfg
}

// envelope wraps payload in a valid snapshot frame (magic, version, flags,
// CRC) so fuzz inputs reach the component restore paths behind the
// integrity checks instead of dying at the CRC gate.
func envelope(payload []byte) []byte {
	out := make([]byte, 0, snapshotHeaderLen+len(payload)+4)
	out = append(out, snapshotMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, SnapshotFormatVersion)
	out = append(out, 0, 0)
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// FuzzRestore feeds Restore arbitrary bytes, both raw and re-enveloped with
// a valid header and CRC. The contract: corrupt input must produce an
// error, never a panic, an unbounded allocation or a runaway loop; input
// that happens to decode must yield a system whose accessors work.
func FuzzRestore(f *testing.F) {
	prog, err := fuzzProgOnce()
	if err != nil {
		f.Fatalf("building %s workload: %v", fuzzWorkload, err)
	}
	cfg := fuzzConfig()

	// Seed with a genuine mid-run snapshot and its bare payload; the
	// committed corpus (gen_fuzz_corpus.go) layers corruptions on top.
	sys, err := New(prog.Source(), cfg)
	if err != nil {
		f.Fatal(err)
	}
	if err := sys.RunUntil(maxRecords(prog) / 2); err != nil {
		f.Fatal(err)
	}
	valid, err := sys.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[snapshotHeaderLen : len(valid)-4])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tryRestore(t, prog, cfg, data)
		tryRestore(t, prog, cfg, envelope(data))
	})
}

// tryRestore runs one Restore attempt; errors are the expected outcome for
// corrupt input, panics are the bug class under test.
func tryRestore(t *testing.T, prog *trace.Program, cfg Config, data []byte) {
	t.Helper()
	sys, err := Restore(prog.Source(), cfg, data)
	if err != nil {
		return
	}
	// Decoded state may be semantically garbage (wrong counters); it must
	// still be structurally sound enough for the accessors.
	sys.Cycles()
	if _, err := sys.Snapshot(); err != nil {
		t.Fatalf("restored system cannot re-snapshot: %v", err)
	}
}
