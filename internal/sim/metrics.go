package sim

import (
	"fmt"

	"github.com/impsim/imp/internal/trace"
)

// KindStats aggregates per-access-kind outcomes (stream / indirect / other),
// feeding Fig 1 (miss breakdown) and Fig 2 (stall attribution).
type KindStats struct {
	Accesses uint64
	// Misses counts accesses that had to fetch data (not covered by any
	// prefetch): the paper's cache-miss metric.
	Misses uint64
	// CoveredMisses counts would-be misses eliminated by a prefetch (first
	// demand use of a prefetched line, on time).
	CoveredMisses uint64
	// LateCovered counts first uses of in-flight prefetched lines: covered,
	// but with residual stall.
	LateCovered uint64
	// StallCycles is time beyond the L1 hit latency spent waiting on these
	// accesses.
	StallCycles int64
	// TotalLatency accumulates full access latencies (AMAT numerator).
	TotalLatency int64
}

// MissFraction returns this kind's share of total misses across all kinds.
func (k KindStats) rawMisses() uint64 { return k.Misses + k.CoveredMisses + k.LateCovered }

// Metrics is everything one simulation run reports.
type Metrics struct {
	Cycles int64 // runtime: max core finish time
	//imp:nosnap produced by collect at the end of a run, never live mid-run
	PerCoreCycles []int64
	Instructions  uint64
	SpinCycles    int64 // busy-wait instructions charged at barriers

	Kind [3]KindStats // indexed by trace.Kind

	// Prefetch effectiveness (Table 3).
	PrefetchesIssued  uint64
	PrefetchesUsed    uint64
	PrefetchesDropped uint64 // outstanding-limit drops
	PrefetchesWasted  uint64 // evicted or invalidated before use

	// Traffic (Fig 12).
	NoCFlitHops  uint64
	NoCDataBytes uint64
	DRAMAccesses uint64
	DRAMBytes    uint64

	// Coherence activity.
	Invalidations uint64
	Broadcasts    uint64

	// IMP internals (aggregated across tiles; zero unless IMP enabled).
	IMPPatterns  uint64
	IMPSecondary uint64
	IMPIndirect  uint64

	// Fetch is the fetch-path latency breakdown (development aid).
	Fetch FetchDebug
}

// kind returns the bucket for k.
func (m *Metrics) kind(k trace.Kind) *KindStats { return &m.Kind[k] }

// TotalAccesses sums demand accesses.
func (m *Metrics) TotalAccesses() uint64 {
	return m.Kind[0].Accesses + m.Kind[1].Accesses + m.Kind[2].Accesses
}

// TotalMisses sums would-be misses (covered or not) across kinds — the
// denominator of Fig 1 and of Table 3 coverage.
func (m *Metrics) TotalMisses() uint64 {
	return m.Kind[0].rawMisses() + m.Kind[1].rawMisses() + m.Kind[2].rawMisses()
}

// MissBreakdown returns each kind's fraction of total misses (Fig 1).
func (m *Metrics) MissBreakdown() (indirect, stream, other float64) {
	total := float64(m.TotalMisses())
	if total == 0 {
		return 0, 0, 0
	}
	return float64(m.Kind[trace.KindIndirect].rawMisses()) / total,
		float64(m.Kind[trace.KindStream].rawMisses()) / total,
		float64(m.Kind[trace.KindOther].rawMisses()) / total
}

// Coverage returns the fraction of would-be misses covered by prefetches
// (Table 3).
func (m *Metrics) Coverage() float64 {
	total := m.TotalMisses()
	if total == 0 {
		return 0
	}
	covered := uint64(0)
	for _, k := range m.Kind {
		covered += k.CoveredMisses + k.LateCovered
	}
	return float64(covered) / float64(total)
}

// Accuracy returns used / issued prefetches (Table 3).
func (m *Metrics) Accuracy() float64 {
	if m.PrefetchesIssued == 0 {
		return 0
	}
	return float64(m.PrefetchesUsed) / float64(m.PrefetchesIssued)
}

// AMAT returns the average memory access latency in cycles.
func (m *Metrics) AMAT() float64 {
	n := m.TotalAccesses()
	if n == 0 {
		return 0
	}
	var lat int64
	for _, k := range m.Kind {
		lat += k.TotalLatency
	}
	return float64(lat) / float64(n)
}

// Throughput returns useful work per cycle (instructions/cycle summed over
// cores); the paper's normalized-throughput figures divide two of these.
func (m *Metrics) Throughput() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instructions) / float64(m.Cycles)
}

func (m *Metrics) String() string {
	ind, str, oth := m.MissBreakdown()
	return fmt.Sprintf(
		"cycles=%d instr=%d ipc=%.3f | misses=%d (ind %.2f / str %.2f / oth %.2f) | "+
			"cov=%.2f acc=%.2f amat=%.1f | noc=%d flit-hops dram=%dB",
		m.Cycles, m.Instructions, m.Throughput(), m.TotalMisses(), ind, str, oth,
		m.Coverage(), m.Accuracy(), m.AMAT(), m.NoCFlitHops, m.DRAMBytes)
}
