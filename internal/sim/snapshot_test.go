package sim

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/impsim/imp/internal/cpu"
	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

// maxRecords returns the longest per-core record count, the natural scale
// for RunUntil cut points.
func maxRecords(p *trace.Program) int {
	n := 0
	for _, t := range p.Traces {
		if len(t.Records) > n {
			n = len(t.Records)
		}
	}
	return n
}

// checkRoundTrip runs p cold, then again with a snapshot/restore cut at
// `cut` records, and requires byte-identical results three ways: the resumed
// original system, the restored copy, and a re-snapshot of the restored copy.
func checkRoundTrip(t *testing.T, p *trace.Program, cfg Config, cut int) {
	t.Helper()
	cold, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	sys, err := New(p.Source(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.RunUntil(cut); err != nil {
		t.Fatalf("RunUntil(%d): %v", cut, err)
	}
	data, err := sys.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	rest, err := Restore(p.Source(), cfg, data)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	redata, err := rest.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if !bytes.Equal(data, redata) {
		t.Errorf("cut=%d: restore(snapshot(S)) re-snapshots to different bytes (%d vs %d)",
			cut, len(data), len(redata))
	}

	warm, err := rest.Finish()
	if err != nil {
		t.Fatalf("restored Finish: %v", err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("cut=%d: restored run diverged from cold run:\n  cold: %v\n  warm: %v", cut, cold, warm)
	}

	resumed, err := sys.Finish()
	if err != nil {
		t.Fatalf("resumed Finish: %v", err)
	}
	if !reflect.DeepEqual(cold, resumed) {
		t.Errorf("cut=%d: resumed run diverged from cold run:\n  cold: %v\n  resumed: %v", cut, cold, resumed)
	}
}

// TestSnapshotRoundTripWorkloadsAndPrefetchers is the tentpole property
// test: for every registered workload kind and every prefetcher, a run cut
// by snapshot/restore must equal the uncheckpointed run exactly.
func TestSnapshotRoundTripWorkloadsAndPrefetchers(t *testing.T) {
	kinds := []PrefetcherKind{PrefetchNone, PrefetchStream, PrefetchGHB, PrefetchIMP}
	for _, name := range workload.Names() {
		p, err := workload.Build(name, workload.Options{Cores: 4, Scale: 0.02})
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		cut := maxRecords(p) / 2
		for _, pk := range kinds {
			t.Run(name+"/"+pk.String(), func(t *testing.T) {
				cfg := DefaultConfig(4)
				cfg.Prefetcher = pk
				checkRoundTrip(t, p, cfg, cut)
			})
		}
	}
}

// TestSnapshotRoundTripConfigVariants covers the orthogonal config axes:
// DRAM model, core model, partial accessing, idealized modes, spin barriers.
func TestSnapshotRoundTripConfigVariants(t *testing.T) {
	base := func() Config { return DefaultConfig(4) }
	variants := map[string]func(*Config){
		"ddr3":        func(c *Config) { c.DRAM = DRAMDDR3 },
		"ooo":         func(c *Config) { c.CoreModel = cpu.OutOfOrder },
		"partial-noc": func(c *Config) { c.Prefetcher = PrefetchIMP; c.Partial = PartialNoC },
		"partial-all": func(c *Config) { c.Prefetcher = PrefetchIMP; c.Partial = PartialNoCDRAM },
		"ideal":       func(c *Config) { c.Ideal = true },
		"perfect":     func(c *Config) { c.PerfectPrefetch = true },
	}
	for name, mod := range variants {
		t.Run(name, func(t *testing.T) {
			p := indirectProgram(4, 300, 2)
			cfg := base()
			mod(&cfg)
			checkRoundTrip(t, p, cfg, maxRecords(p)/3)
		})
	}
	t.Run("spin-barriers", func(t *testing.T) {
		p := indirectProgram(4, 300, 2)
		p.SpinBarriers = true
		checkRoundTrip(t, p, DefaultConfig(4), maxRecords(p)/3)
	})
}

// TestSnapshotCutPoints sweeps the cut position, including degenerate ones:
// before the first record, past the end of the trace, and around barriers.
func TestSnapshotCutPoints(t *testing.T) {
	p := indirectProgram(4, 200, 3)
	cfg := DefaultConfig(4)
	n := maxRecords(p)
	for _, cut := range []int{0, 1, n / 4, n / 2, n - 1, n, n + 1000} {
		checkRoundTrip(t, p, cfg, cut)
	}
}

// TestSnapshotChecksConfig pins the mismatch errors: a snapshot only
// restores into the system shape it was taken from.
func TestSnapshotChecksConfig(t *testing.T) {
	p := indirectProgram(4, 100, 1)
	cfg := DefaultConfig(4)
	sys, err := New(p.Source(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	data, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Prefetcher = PrefetchIMP
	if _, err := Restore(p.Source(), other, data); err == nil {
		t.Error("restore accepted a snapshot taken under a different prefetcher")
	}
	p16 := indirectProgram(16, 100, 1)
	if _, err := Restore(p16.Source(), DefaultConfig(16), data); err == nil {
		t.Error("restore accepted a snapshot taken under a different core count")
	}
}

// TestSnapshotRejectsCorruption pins the envelope checks: magic, version,
// CRC and truncation each produce a distinct, descriptive failure.
func TestSnapshotRejectsCorruption(t *testing.T) {
	p := indirectProgram(4, 100, 1)
	cfg := DefaultConfig(4)
	sys, err := New(p.Source(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	data, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := IsSnapshot(data); !ok || v != SnapshotFormatVersion {
		t.Fatalf("IsSnapshot = (%d, %v), want (%d, true)", v, ok, SnapshotFormatVersion)
	}

	corrupt := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), data...)
		mutate(c)
		return c
	}
	cases := map[string][]byte{
		"magic":     corrupt(func(b []byte) { b[0] = 'X' }),
		"version":   corrupt(func(b []byte) { b[4] = 0xFF; b[5] = 0xFF }),
		"payload":   corrupt(func(b []byte) { b[len(b)/2] ^= 0x40 }),
		"crc":       corrupt(func(b []byte) { b[len(b)-1] ^= 0x01 }),
		"truncated": data[:len(data)/2],
		"empty":     nil,
	}
	for name, bad := range cases {
		if _, err := Restore(p.Source(), cfg, bad); err == nil {
			t.Errorf("%s corruption: restore accepted the snapshot", name)
		}
	}
	if _, ok := IsSnapshot([]byte("IMPT....")); ok {
		t.Error("IsSnapshot accepted trace magic")
	}
}

// TestSystemLifecycle pins the one-way Finish transition.
func TestSystemLifecycle(t *testing.T) {
	p := indirectProgram(4, 100, 1)
	sys, err := New(p.Source(), DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Error("Snapshot succeeded after Finish")
	}
	if err := sys.RunUntil(10); err == nil {
		t.Error("RunUntil succeeded after Finish")
	}
	if _, err := sys.Finish(); err == nil {
		t.Error("second Finish succeeded")
	}
}
