// Package sim assembles the full multicore system of Table 1 and replays
// instrumented workload traces through it: per-tile in-order (or small-OoO)
// cores with private L1 data caches and prefetchers, a shared distributed
// S-NUCA L2 with an ACKwise directory, a 2-D mesh NoC, and DRAM behind
// √N memory controllers.
//
// The engine is a Graphite-style loosely synchronized timing model: a
// global min-heap orders cores by their local clocks; L1 hits are processed
// locally, and every shared-resource event (miss, prefetch, coherence
// action) reserves NoC links, L2 ports and DRAM banks in global time order.
package sim

import (
	"fmt"

	"github.com/impsim/imp/internal/cache"
	"github.com/impsim/imp/internal/coherence"
	"github.com/impsim/imp/internal/core"
	"github.com/impsim/imp/internal/cpu"
	"github.com/impsim/imp/internal/dram"
	"github.com/impsim/imp/internal/noc"
)

// PrefetcherKind selects the per-L1 hardware prefetcher.
type PrefetcherKind int

// Prefetcher kinds.
const (
	PrefetchNone PrefetcherKind = iota
	PrefetchStream
	PrefetchGHB
	PrefetchIMP
)

func (k PrefetcherKind) String() string {
	switch k {
	case PrefetchStream:
		return "stream"
	case PrefetchGHB:
		return "ghb"
	case PrefetchIMP:
		return "imp"
	default:
		return "none"
	}
}

// PartialMode selects where partial-cacheline accessing applies (§4, Fig 11).
type PartialMode int

// Partial accessing modes.
const (
	PartialOff PartialMode = iota
	PartialNoC
	PartialNoCDRAM
)

func (m PartialMode) String() string {
	switch m {
	case PartialNoC:
		return "partial-noc"
	case PartialNoCDRAM:
		return "partial-noc+dram"
	default:
		return "full-line"
	}
}

// DRAMKind selects the memory timing model (§5.1).
type DRAMKind int

// DRAM models.
const (
	DRAMSimple DRAMKind = iota
	DRAMDDR3
)

// Config describes one simulated system. DefaultConfig fills in Table 1.
type Config struct {
	Cores     int
	CoreModel cpu.Kind
	OoOWindow int

	L1SizeBytes  int
	L1Ways       int
	L1HitLatency int64

	// L2SliceBytes is the per-tile L2 capacity; 0 means the Table 1 scaling
	// rule 2/√N MB per tile.
	L2SliceBytes int
	L2Ways       int
	L2Latency    int64

	Prefetcher PrefetcherKind
	IMP        core.Params
	Partial    PartialMode

	DRAM   DRAMKind
	NumMCs int // 0 means √N (§5.1)

	// MaxOutstandingPrefetches bounds in-flight prefetches per core.
	MaxOutstandingPrefetches int

	// BarrierLatency models the synchronization flag propagation.
	BarrierLatency int64

	// Ideal makes every access an L1 hit (the paper's Ideal bars).
	Ideal bool
	// PerfectPrefetch prefetches each core's own future accesses
	// PerfectDistance accesses ahead with real bandwidth (PerfPref bars).
	PerfectPrefetch bool
	PerfectDistance int
}

// DefaultConfig returns Table 1's system for the given core count.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:                    cores,
		CoreModel:                cpu.InOrder,
		OoOWindow:                cpu.DefaultWindow,
		L1SizeBytes:              32 * 1024,
		L1Ways:                   4,
		L1HitLatency:             1,
		L2Ways:                   8,
		L2Latency:                8,
		Prefetcher:               PrefetchStream,
		IMP:                      core.DefaultParams(),
		DRAM:                     DRAMSimple,
		MaxOutstandingPrefetches: 16,
		BarrierLatency:           100,
		PerfectDistance:          128,
	}
}

// l2SliceBytes resolves the per-tile L2 capacity: 2/√N MB (§5.1).
func (c Config) l2SliceBytes() int {
	if c.L2SliceBytes > 0 {
		return c.L2SliceBytes
	}
	root := intSqrt(c.Cores)
	b := 2 * 1024 * 1024 / root
	// Round down to a power-of-two line multiple so set counts stay valid.
	return powerOfTwoAtMost(b)
}

func (c Config) numMCs() int {
	if c.NumMCs > 0 {
		return c.NumMCs
	}
	return dram.MCCountForCores(c.Cores)
}

func (c Config) l1SectorBytes() int {
	if c.Partial != PartialOff {
		return 8 // Table 2: 8-byte L1 sectors
	}
	return 64
}

func (c Config) l2SectorBytes() int {
	if c.Partial != PartialOff {
		return 32 // Table 2: 32-byte L2 sectors
	}
	return 64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: cores = %d", c.Cores)
	}
	d := intSqrt(c.Cores)
	if d*d != c.Cores {
		return fmt.Errorf("sim: %d cores is not a square mesh", c.Cores)
	}
	if c.Ideal && c.PerfectPrefetch {
		return fmt.Errorf("sim: Ideal and PerfectPrefetch are mutually exclusive")
	}
	l1 := cache.Config{SizeBytes: c.L1SizeBytes, Ways: c.L1Ways, SectorBytes: c.l1SectorBytes()}
	if err := l1.Validate(); err != nil {
		return fmt.Errorf("sim: L1: %w", err)
	}
	l2 := cache.Config{SizeBytes: c.l2SliceBytes(), Ways: c.L2Ways, SectorBytes: c.l2SectorBytes()}
	if err := l2.Validate(); err != nil {
		return fmt.Errorf("sim: L2: %w", err)
	}
	if c.Prefetcher == PrefetchIMP {
		if err := c.IMP.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// Describe prints the configuration in Table 1/Table 2 form.
func (c Config) Describe() string {
	return fmt.Sprintf(
		"cores=%d (%v) | L1 %dKB/%d-way %dB sectors | L2 %dKB/tile %d-way %dB sectors | "+
			"MCs=%d dram=%d | prefetcher=%v partial=%v",
		c.Cores, c.CoreModel, c.L1SizeBytes/1024, c.L1Ways, c.l1SectorBytes(),
		c.l2SliceBytes()/1024, c.L2Ways, c.l2SectorBytes(),
		c.numMCs(), c.DRAM, c.Prefetcher, c.Partial)
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func powerOfTwoAtMost(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// buildDRAM constructs the configured DRAM model.
func (c Config) buildDRAM() dram.Model {
	if c.DRAM == DRAMDDR3 {
		return dram.NewDDR3(dram.DefaultDDR3Config(c.numMCs()))
	}
	return dram.NewSimple(dram.DefaultSimpleConfig(c.numMCs()))
}

// buildNoC constructs the mesh.
func (c Config) buildNoC() *noc.Mesh {
	return noc.New(noc.DefaultConfig(c.Cores))
}

// ackwiseK is the directory's precise-sharer limit.
const ackwiseK = coherence.DefaultK
