package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/impsim/imp/internal/cache"
	"github.com/impsim/imp/internal/dram"
	"github.com/impsim/imp/internal/prefetch"
	"github.com/impsim/imp/internal/snap"
	"github.com/impsim/imp/internal/trace"
)

// SnapshotFormatVersion is the snapshot encoding version written by
// System.Snapshot. Restore rejects any other version; bump it whenever any
// component's snapshot layout changes.
const SnapshotFormatVersion = 1

var snapshotMagic = [4]byte{'I', 'M', 'P', 'S'}

// ErrSnapshotVersion is returned (wrapped) when a snapshot was written by an
// incompatible format version.
var ErrSnapshotVersion = errors.New("unsupported snapshot format version")

// snapshotHeaderLen is magic + u16 version + flags + reserved; the trailer
// is a u32 CRC, mirroring the binary trace envelope.
const snapshotHeaderLen = 8

// IsSnapshot reports whether data begins with the simulator snapshot magic,
// and if so which format version wrote it. It never reads past the header,
// so it is safe to call on an arbitrary file prefix.
func IsSnapshot(data []byte) (version uint16, ok bool) {
	if len(data) < snapshotHeaderLen || [4]byte(data[:4]) != snapshotMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint16(data[4:6]), true
}

// System is a simulator instance under explicit control: run part of the
// trace, snapshot the architectural state, restore it into a fresh instance,
// resume. Run and RunSource stay the one-shot path; System exists so sweeps
// can execute a shared config prefix once and fork the remainder.
type System struct {
	s        *system
	finished bool
}

// New builds a controllable simulator over src, applying the same
// validation as RunSource.
func New(src trace.Source, cfg Config) (*System, error) {
	if err := validateRun(src, cfg); err != nil {
		return nil, err
	}
	return &System{s: build(src, cfg)}, nil
}

// validateRun is the shared precondition check for RunSource, New and
// Restore.
func validateRun(src trace.Source, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if src.Cores() != cfg.Cores {
		return fmt.Errorf("sim: program traced for %d cores, config has %d", src.Cores(), cfg.Cores)
	}
	return src.Validate()
}

// RunUntil advances the simulation until the globally earliest runnable core
// has consumed at least records trace records, or the run completes. Events
// are processed in exactly the order an uninterrupted run would process
// them — RunUntil executes a strict prefix of that sequence and stops before
// the first step past the limit — so RunUntil followed by Finish is
// byte-identical to a single Run, and so is a Snapshot/Restore cut here.
func (y *System) RunUntil(records int) error {
	if y.finished {
		return errors.New("sim: system already finished")
	}
	y.s.runUntil(records)
	if y.s.streamErr != nil {
		return fmt.Errorf("sim: record stream: %w", y.s.streamErr)
	}
	return nil
}

// Finish runs the simulation to completion and returns the metrics. The
// system cannot be snapshotted afterwards: metric finalization folds
// residual per-tile state (in-flight prefetches, IMP counters) into the
// totals.
func (y *System) Finish() (*Metrics, error) {
	if y.finished {
		return nil, errors.New("sim: system already finished")
	}
	y.s.run()
	if y.s.streamErr != nil {
		return nil, fmt.Errorf("sim: record stream: %w", y.s.streamErr)
	}
	y.finished = true
	return y.s.collect(), nil
}

// Cycles reports the simulated time reached so far: the maximum tile
// clock. Callers restoring a checkpoint read it to account for the cycles
// they did not have to re-simulate.
func (y *System) Cycles() int64 {
	var m int64
	for _, t := range y.s.tiles {
		if t.time > m {
			m = t.time
		}
	}
	return m
}

// Snapshot serializes the full architectural state — tile clocks and
// cursors, L1/L2 contents, directory, NoC and DRAM timing state, prefetcher
// tables, pipeline windows, accumulated metrics — into a self-contained
// versioned envelope: magic, u16 format version, flags, reserved, varint
// payload, CRC-32 trailer (the binary trace format's discipline). The trace
// itself is not embedded; Restore reattaches to an equivalent Source.
func (y *System) Snapshot() ([]byte, error) {
	if y.finished {
		return nil, errors.New("sim: system already finished")
	}
	s := y.s
	if s.streamErr != nil {
		return nil, fmt.Errorf("sim: record stream: %w", s.streamErr)
	}
	w := snap.NewWriter(1 << 16)
	if err := s.snapshot(w); err != nil {
		return nil, err
	}
	out := make([]byte, 0, snapshotHeaderLen+w.Len()+4)
	out = append(out, snapshotMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, SnapshotFormatVersion)
	out = append(out, 0, 0) // flags, reserved
	out = append(out, w.Data()...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

// Restore builds a fresh system over (src, cfg) and overlays a state written
// by Snapshot. The source and config must be equivalent to the ones the
// snapshot was taken under; mismatches are detected where possible (core
// count, prefetcher kind, table geometries) but equivalence of the trace
// itself is the caller's contract — content-addressed checkpoint keys cover
// it at the caching layer.
func Restore(src trace.Source, cfg Config, data []byte) (*System, error) {
	if err := validateRun(src, cfg); err != nil {
		return nil, err
	}
	if len(data) < snapshotHeaderLen+4 {
		return nil, fmt.Errorf("sim: snapshot truncated (%d bytes)", len(data))
	}
	ver, ok := IsSnapshot(data)
	if !ok {
		return nil, fmt.Errorf("sim: bad magic %q (not an IMP snapshot)", data[:4])
	}
	if ver != SnapshotFormatVersion {
		return nil, fmt.Errorf("sim: %w: snapshot has %d, this build reads %d",
			ErrSnapshotVersion, ver, SnapshotFormatVersion)
	}
	body := data[: len(data)-4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("sim: snapshot CRC mismatch (got %08x, want %08x)", got, want)
	}
	s := build(src, cfg)
	r := snap.NewReader(body[snapshotHeaderLen:])
	if err := s.restore(r); err != nil {
		return nil, err
	}
	return &System{s: s}, nil
}

// snapshot appends the system's full state to w.
func (s *system) snapshot(w *snap.Writer) error {
	w.Int(len(s.tiles))
	w.U8(uint8(s.cfg.Prefetcher))
	snapMetrics(w, &s.met)
	w.Int(s.arrivedCount)
	w.I64(s.maxArrival)
	s.mesh.Snapshot(w)
	ds, ok := s.mem.(dram.Snapshotter)
	if !ok {
		return fmt.Errorf("sim: DRAM model %T cannot snapshot", s.mem)
	}
	ds.Snapshot(w)
	for _, c := range s.l2 {
		c.Snapshot(w)
	}
	for _, d := range s.dir {
		d.Snapshot(w)
	}
	for _, t := range s.tiles {
		w.I64(t.time)
		w.Int(t.pos)
		w.U64(t.instr)
		w.Bool(t.done)
		w.Bool(t.waiting)
		w.I64(t.arrival)
		w.Int(t.perfAhead)
		w.Int(len(t.inflight))
		for _, pf := range t.inflight {
			w.U64(pf.line)
			w.I64(pf.complete)
			w.U8(uint8(pf.mask))
			w.U8(uint8(pf.state))
		}
		t.l1.Snapshot(w)
		t.pipe.Snapshot(w)
		switch p := t.pf.(type) {
		case nil: // PrefetchNone carries no state
		case *chainedPrefetcher:
			p.a.(prefetch.Snapshotter).Snapshot(w)
			p.b.(prefetch.Snapshotter).Snapshot(w)
		case prefetch.Snapshotter:
			p.Snapshot(w)
		default:
			return fmt.Errorf("sim: prefetcher %T cannot snapshot", t.pf)
		}
	}
	// The scheduling heap's exact array layout is architectural state: pop
	// order (hence simulated contention) depends on it once entries go
	// stale — a barrier release re-pushes the last arriver, leaving a
	// duplicate whose stored position outlives its clock. Serialize it
	// verbatim as tile ids.
	w.Bool(s.started)
	w.Int(len(s.h))
	for _, t := range s.h {
		w.Int(t.id)
	}
	return nil
}

// restore overlays a state written by snapshot onto a freshly built system.
func (s *system) restore(r *snap.Reader) error {
	if n := r.Int(); n != len(s.tiles) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("sim: snapshot has %d cores, config has %d", n, len(s.tiles))
	}
	if k := PrefetcherKind(r.U8()); k != s.cfg.Prefetcher {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("sim: snapshot taken with prefetcher %v, config has %v", k, s.cfg.Prefetcher)
	}
	restoreMetrics(r, &s.met)
	s.arrivedCount = r.Int()
	s.maxArrival = r.I64()
	if err := s.mesh.Restore(r); err != nil {
		return err
	}
	ds, ok := s.mem.(dram.Snapshotter)
	if !ok {
		return fmt.Errorf("sim: DRAM model %T cannot restore", s.mem)
	}
	if err := ds.Restore(r); err != nil {
		return err
	}
	for _, c := range s.l2 {
		if err := c.Restore(r); err != nil {
			return err
		}
	}
	for _, d := range s.dir {
		if err := d.Restore(r); err != nil {
			return err
		}
	}
	for _, t := range s.tiles {
		t.time = r.I64()
		t.pos = r.Int()
		t.instr = r.U64()
		t.done = r.Bool()
		t.waiting = r.Bool()
		t.arrival = r.I64()
		t.perfAhead = r.Int()
		n := r.Count(4) // line + complete + mask + state
		if r.Err() != nil {
			return r.Err()
		}
		t.inflight = t.inflight[:0]
		for i := 0; i < n; i++ {
			t.inflight = append(t.inflight, inflightPF{
				line:     r.U64(),
				complete: r.I64(),
				mask:     cache.SectorMask(r.U8()),
				state:    cache.State(r.U8()),
			})
		}
		if err := t.l1.Restore(r); err != nil {
			return err
		}
		if err := t.pipe.Restore(r); err != nil {
			return err
		}
		switch p := t.pf.(type) {
		case nil:
		case *chainedPrefetcher:
			if err := p.a.(prefetch.Snapshotter).Restore(r); err != nil {
				return err
			}
			if err := p.b.(prefetch.Snapshotter).Restore(r); err != nil {
				return err
			}
		case prefetch.Snapshotter:
			if err := p.Restore(r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sim: prefetcher %T cannot restore", t.pf)
		}
		if t.pos > 0 {
			if err := advanceStream(t.stream, t.pos); err != nil {
				return fmt.Errorf("sim: core %d: reposition stream: %w", t.id, err)
			}
		}
	}
	s.started = r.Bool()
	hn := r.Count(1) // one varint tile id per entry
	if r.Err() != nil {
		return r.Err()
	}
	s.h = make([]*tile, 0, max(hn, len(s.tiles)))
	for i := 0; i < hn; i++ {
		id := r.Int()
		if id < 0 || id >= len(s.tiles) {
			if r.Err() != nil {
				return r.Err()
			}
			return fmt.Errorf("sim: snapshot heap entry %d out of range", id)
		}
		s.h = append(s.h, s.tiles[id])
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("sim: snapshot has %d trailing bytes", r.Remaining())
	}
	return nil
}

// advanceStream consumes n records from a freshly opened stream, honoring
// the RecordStream contract that Advance may not outrun the last Window.
func advanceStream(st trace.RecordStream, n int) error {
	for n > 0 {
		win := st.Window(n)
		if len(win) == 0 {
			if err := st.Err(); err != nil {
				return err
			}
			return fmt.Errorf("stream ends %d records before snapshot position", n)
		}
		st.Advance(len(win))
		n -= len(win)
	}
	return st.Err()
}

// snapMetrics appends every accumulated metric field. PerCoreCycles is
// omitted: it is produced by collect at the end of a run, never mid-run.
func snapMetrics(w *snap.Writer, m *Metrics) {
	w.I64(m.Cycles)
	w.U64(m.Instructions)
	w.I64(m.SpinCycles)
	for i := range m.Kind {
		k := &m.Kind[i]
		w.U64(k.Accesses)
		w.U64(k.Misses)
		w.U64(k.CoveredMisses)
		w.U64(k.LateCovered)
		w.I64(k.StallCycles)
		w.I64(k.TotalLatency)
	}
	w.U64(m.PrefetchesIssued)
	w.U64(m.PrefetchesUsed)
	w.U64(m.PrefetchesDropped)
	w.U64(m.PrefetchesWasted)
	w.U64(m.NoCFlitHops)
	w.U64(m.NoCDataBytes)
	w.U64(m.DRAMAccesses)
	w.U64(m.DRAMBytes)
	w.U64(m.Invalidations)
	w.U64(m.Broadcasts)
	w.U64(m.IMPPatterns)
	w.U64(m.IMPSecondary)
	w.U64(m.IMPIndirect)
	w.I64(m.Fetch.N)
	w.I64(m.Fetch.ReqNoC)
	w.I64(m.Fetch.L2Wait)
	w.I64(m.Fetch.Dram)
	w.I64(m.Fetch.Coh)
	w.I64(m.Fetch.Resp)
}

func restoreMetrics(r *snap.Reader, m *Metrics) {
	m.Cycles = r.I64()
	m.Instructions = r.U64()
	m.SpinCycles = r.I64()
	for i := range m.Kind {
		k := &m.Kind[i]
		k.Accesses = r.U64()
		k.Misses = r.U64()
		k.CoveredMisses = r.U64()
		k.LateCovered = r.U64()
		k.StallCycles = r.I64()
		k.TotalLatency = r.I64()
	}
	m.PrefetchesIssued = r.U64()
	m.PrefetchesUsed = r.U64()
	m.PrefetchesDropped = r.U64()
	m.PrefetchesWasted = r.U64()
	m.NoCFlitHops = r.U64()
	m.NoCDataBytes = r.U64()
	m.DRAMAccesses = r.U64()
	m.DRAMBytes = r.U64()
	m.Invalidations = r.U64()
	m.Broadcasts = r.U64()
	m.IMPPatterns = r.U64()
	m.IMPSecondary = r.U64()
	m.IMPIndirect = r.U64()
	m.Fetch.N = r.I64()
	m.Fetch.ReqNoC = r.I64()
	m.Fetch.L2Wait = r.I64()
	m.Fetch.Dram = r.I64()
	m.Fetch.Coh = r.I64()
	m.Fetch.Resp = r.I64()
}
