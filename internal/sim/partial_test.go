package sim

import (
	"testing"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// sparseTouch builds a workload with deliberately poor spatial locality:
// every indirect access touches one 8-byte word of a distinct line, so the
// granularity predictor must shrink to (near) single sectors.
func sparseTouchProgram(cores int) *trace.Program {
	s := mem.NewSpace()
	per := 600
	n := cores * per
	b := s.AllocInt32("B", n)
	aLen := 1 << 20
	x := uint64(31)
	for i := range b.Int32s() {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// Indices 8 apart within a line-aligned space: element i*8 starts a
		// new cacheline each time (float64s, line = 8 elements).
		b.Int32s()[i] = int32((x % uint64(aLen/8)) * 8)
	}
	a := s.AllocFloat64("A", aLen)
	var traces []*trace.Trace
	for c := 0; c < cores; c++ {
		tb := trace.NewBuilder()
		for i := c * per; i < (c+1)*per; i++ {
			tb.Load(1, b.Addr(i), 4, trace.KindStream)
			tb.LoadDep(2, a.Addr(int(b.Int32s()[i])), 8, trace.KindIndirect)
			tb.Compute(4)
		}
		traces = append(traces, tb.Trace())
	}
	return &trace.Program{Space: s, Traces: traces}
}

func TestPartialModesProgressivelyCutTraffic(t *testing.T) {
	p := sparseTouchProgram(4)
	impCfg := DefaultConfig(4)
	impCfg.Prefetcher = PrefetchIMP
	full := run(t, p, impCfg)

	nocCfg := impCfg
	nocCfg.Partial = PartialNoC
	pnoc := run(t, p, nocCfg)

	bothCfg := impCfg
	bothCfg.Partial = PartialNoCDRAM
	pboth := run(t, p, bothCfg)

	if pnoc.NoCFlitHops >= full.NoCFlitHops {
		t.Errorf("partial-NoC flit-hops %d not below full %d", pnoc.NoCFlitHops, full.NoCFlitHops)
	}
	// NoC-only mode must NOT reduce DRAM traffic (full lines from memory).
	if pnoc.DRAMBytes < full.DRAMBytes*95/100 {
		t.Errorf("partial-NoC cut DRAM traffic (%d vs %d); only NoC transfers should shrink",
			pnoc.DRAMBytes, full.DRAMBytes)
	}
	if pboth.DRAMBytes >= full.DRAMBytes {
		t.Errorf("partial-NoC+DRAM bytes %d not below full %d", pboth.DRAMBytes, full.DRAMBytes)
	}
}

func TestSectorMissRefill(t *testing.T) {
	// In partial mode a demand access to an untouched sector of a partially
	// fetched line must refill just the missing sectors and still be
	// counted as a miss.
	p := sparseTouchProgram(4)
	cfg := DefaultConfig(4)
	cfg.Prefetcher = PrefetchIMP
	cfg.Partial = PartialNoCDRAM
	m := run(t, p, cfg)
	if m.TotalMisses() == 0 {
		t.Fatal("no misses at all")
	}
	if m.Cycles <= 0 {
		t.Fatal("degenerate runtime")
	}
}

func TestPartialHelpsWhenBandwidthBound(t *testing.T) {
	// With sparse touches and many cores per MC, partial accessing should
	// not be slower than full-line IMP (usually faster).
	p := sparseTouchProgram(16)
	impCfg := DefaultConfig(16)
	impCfg.Prefetcher = PrefetchIMP
	full := run(t, p, impCfg)
	partCfg := impCfg
	partCfg.Partial = PartialNoCDRAM
	part := run(t, p, partCfg)
	if float64(part.Cycles) > float64(full.Cycles)*1.1 {
		t.Errorf("partial accessing slowed a sparse workload: %d vs %d", part.Cycles, full.Cycles)
	}
}
