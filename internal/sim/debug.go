package sim

import "fmt"

// debugFetch accumulates fetch-path latency components (development aid).
type debugFetchT struct {
	N                               int64
	ReqNoC, L2Wait, Dram, Coh, Resp int64
}

var DebugFetch debugFetchT

func (d debugFetchT) String() string {
	if d.N == 0 {
		return "no fetches"
	}
	return fmt.Sprintf("fetches=%d avg req=%.1f l2=%.1f dram=%.1f coh=%.1f resp=%.1f",
		d.N, float64(d.ReqNoC)/float64(d.N), float64(d.L2Wait)/float64(d.N),
		float64(d.Dram)/float64(d.N), float64(d.Coh)/float64(d.N), float64(d.Resp)/float64(d.N))
}
