package sim

import "fmt"

// FetchDebug accumulates fetch-path latency components (development aid).
// It lives in Metrics — never in package state — so concurrent simulations
// do not share it.
type FetchDebug struct {
	N                               int64
	ReqNoC, L2Wait, Dram, Coh, Resp int64
}

func (d FetchDebug) String() string {
	if d.N == 0 {
		return "no fetches"
	}
	return fmt.Sprintf("fetches=%d avg req=%.1f l2=%.1f dram=%.1f coh=%.1f resp=%.1f",
		d.N, float64(d.ReqNoC)/float64(d.N), float64(d.L2Wait)/float64(d.N),
		float64(d.Dram)/float64(d.N), float64(d.Coh)/float64(d.N), float64(d.Resp)/float64(d.N))
}
