//go:build ignore

// gen_fuzz_corpus regenerates the committed seed corpus for FuzzRestore
// (fuzz_test.go):
//
//	cd internal/sim && go run gen_fuzz_corpus.go
//
// Rerun after any snapshot format change (SnapshotFormatVersion bump) so
// the corpus keeps seeding the component restore paths rather than dying at
// the version check. The workload and config here must match fuzz_test.go's
// fuzzWorkload/fuzzCores/fuzzScale and fuzzConfig; change them together.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/impsim/imp/internal/sim"
	"github.com/impsim/imp/internal/workload"
)

func main() {
	prog, err := workload.Build("spmv", workload.Options{Cores: 4, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig(4)
	cfg.L1SizeBytes = 4 << 10
	cfg.L1Ways = 2
	cfg.L2SliceBytes = 8 << 10
	cfg.L2Ways = 2
	cfg.Prefetcher = sim.PrefetchIMP

	records := 0
	for _, t := range prog.Traces {
		if len(t.Records) > records {
			records = len(t.Records)
		}
	}
	sys, err := sim.New(prog.Source(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RunUntil(records / 2); err != nil {
		log.Fatal(err)
	}
	valid, err := sys.Snapshot()
	if err != nil {
		log.Fatal(err)
	}

	seeds := map[string][]byte{
		"seed-valid":       valid,
		"seed-empty":       nil,
		"seed-truncated":   valid[:len(valid)/2],
		"seed-header-only": valid[:8],
		"seed-bad-magic":   append([]byte("JUNK"), valid[4:]...),
	}
	badVer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(badVer[4:], sim.SnapshotFormatVersion+1)
	seeds["seed-bad-version"] = badVer
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0xFF
	seeds["seed-crc-flip"] = crcFlip
	for i, off := range []int{8, len(valid) / 4, len(valid) / 2, len(valid) - 8} {
		// Payload flips break the CRC, but the fuzz harness also re-envelopes
		// every input with a fresh CRC, so these still reach the decoders.
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x80
		seeds[fmt.Sprintf("seed-flip-%d", i)] = mut
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzRestore")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d seeds for FuzzRestore (%d-byte valid snapshot)\n", len(seeds), len(valid))
}
