// Package dram models main memory per Table 1 of the paper: a DRAMSim-like
// DDR3 bank timing model (10-10-10-24, 8 banks per rank, 1 rank per memory
// controller) and the paper's "simple DRAM model" (100 ns latency, 10 GB/s
// per MC), which the paper uses for the partial-cacheline experiments after
// validating it against DRAMSim (§5.1).
//
// Total DRAM bandwidth scales with √N via the number of memory controllers
// (§5.1): a 16-core system has 4 MCs, 64 cores 8 MCs, 256 cores 16 MCs.
package dram

import "fmt"

// Model is a main-memory timing model. Access plays one transfer of size
// bytes for the cacheline lineID through memory controller mc, starting no
// earlier than now, and returns the completion time. Implementations
// account bandwidth by queueing behind earlier requests to the same
// resources.
type Model interface {
	Access(now int64, mc int, lineID uint64, bytes int) int64
	NumMCs() int
	Stats() Stats
	ResetStats()
}

// Stats aggregates DRAM activity. Bytes is the paper's "DRAM traffic"
// metric (Fig 12).
type Stats struct {
	Accesses  uint64
	Bytes     uint64
	RowHits   uint64 // DDR3 model only
	RowMisses uint64 // DDR3 model only
}

// MCForLine statically interleaves cachelines across MCs.
func MCForLine(lineID uint64, numMC int) int {
	return int(lineID % uint64(numMC))
}

// MCCountForCores returns the paper's §5.1 scaling rule: the number of
// memory controllers (hence total DRAM bandwidth) grows with √N.
func MCCountForCores(cores int) int {
	r := 1
	for r*r < cores {
		r++
	}
	return r
}

// MinTransferBytes is the minimum DRAM burst (§4.1: 32 B granularity, as in
// at least one commercial processor).
const MinTransferBytes = 32

// ClampTransfer rounds a requested transfer up to the DRAM minimum burst
// and down to a full line.
func ClampTransfer(bytes int) int {
	if bytes < MinTransferBytes {
		return MinTransferBytes
	}
	if bytes > 64 {
		return 64
	}
	return bytes
}

// DDR3Config carries the DDR3 bank timing parameters, in memory-bus cycles,
// plus the core-clock ratio used to convert them to core cycles.
type DDR3Config struct {
	NumMCs       int
	BanksPerRank int     // Table 1: 8
	TCAS         int     // column access strobe latency (10)
	TRCD         int     // row-to-column delay (10)
	TRP          int     // row precharge (10)
	TRAS         int     // row active time (24)
	BurstCycles  int     // data bus cycles for a 64 B line (BL8 on x64: 4)
	RowBytes     int     // row buffer size per bank
	CoreClockMul float64 // core cycles per DRAM cycle (1 GHz core / 667 MHz bus ≈ 1.5)
}

// DefaultDDR3Config returns the paper's 10-10-10-24 configuration for the
// given MC count.
func DefaultDDR3Config(numMCs int) DDR3Config {
	return DDR3Config{
		NumMCs:       numMCs,
		BanksPerRank: 8,
		TCAS:         10,
		TRCD:         10,
		TRP:          10,
		TRAS:         24,
		BurstCycles:  4,
		RowBytes:     8192,
		CoreClockMul: 1.5,
	}
}

type bank struct {
	busyUntil int64
	openRow   int64 // -1 when no row is open
	activated int64 // cycle of the last ACT, for tRAS
}

// DDR3 is the bank-level timing model.
type DDR3 struct {
	//imp:nosnap configuration, fixed at construction
	cfg   DDR3Config
	banks [][]bank // [mc][bank]
	bus   []int64  // data bus busy-until per MC
	stats Stats
}

// NewDDR3 builds the bank model; it panics on non-positive MC count, a
// configuration error.
func NewDDR3(cfg DDR3Config) *DDR3 {
	if cfg.NumMCs <= 0 || cfg.BanksPerRank <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	banks := make([][]bank, cfg.NumMCs)
	for i := range banks {
		banks[i] = make([]bank, cfg.BanksPerRank)
		for j := range banks[i] {
			banks[i][j].openRow = -1
		}
	}
	return &DDR3{cfg: cfg, banks: banks, bus: make([]int64, cfg.NumMCs)}
}

// NumMCs returns the number of memory controllers.
func (d *DDR3) NumMCs() int { return d.cfg.NumMCs }

// Stats returns a copy of the counters.
func (d *DDR3) Stats() Stats { return d.stats }

// ResetStats clears the counters (not timing state).
func (d *DDR3) ResetStats() { d.stats = Stats{} }

func (d *DDR3) cycles(n int) int64 {
	return int64(float64(n)*d.cfg.CoreClockMul + 0.5)
}

// Access issues one read/fill of size bytes for lineID at controller mc.
func (d *DDR3) Access(now int64, mc int, lineID uint64, bytes int) int64 {
	bytes = ClampTransfer(bytes)
	d.stats.Accesses++
	d.stats.Bytes += uint64(bytes)

	linesPerRow := uint64(d.cfg.RowBytes / 64)
	bankID := (lineID / uint64(d.cfg.NumMCs)) % uint64(d.cfg.BanksPerRank)
	row := int64(lineID / uint64(d.cfg.NumMCs) / uint64(d.cfg.BanksPerRank) / linesPerRow)
	b := &d.banks[mc][bankID]

	start := max64(now, b.busyUntil)
	var access int64
	switch {
	case b.openRow == row:
		d.stats.RowHits++
		access = d.cycles(d.cfg.TCAS)
	case b.openRow == -1:
		d.stats.RowMisses++
		access = d.cycles(d.cfg.TRCD + d.cfg.TCAS)
		b.activated = start
	default:
		d.stats.RowMisses++
		// Respect tRAS: the open row must have been active long enough
		// before it can be precharged.
		earliestPre := b.activated + d.cycles(d.cfg.TRAS)
		if start < earliestPre {
			start = earliestPre
		}
		access = d.cycles(d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS)
		b.activated = start + d.cycles(d.cfg.TRP)
	}
	b.openRow = row

	// Burst occupies the per-MC data bus; partial transfers take
	// proportionally fewer bus cycles.
	burst := d.cycles(d.cfg.BurstCycles * bytes / 64)
	if burst < 1 {
		burst = 1
	}
	dataReady := start + access
	busStart := max64(dataReady, d.bus[mc])
	d.bus[mc] = busStart + burst
	done := busStart + burst

	b.busyUntil = start + access
	return done
}

// SimpleConfig parameterizes the fixed-latency model.
type SimpleConfig struct {
	NumMCs        int
	LatencyCycles int64   // Table 1: 100 ns at 1 GHz
	BytesPerCycle float64 // Table 1: 10 GB/s at 1 GHz = 10 B/cycle per MC
}

// DefaultSimpleConfig returns the paper's simple-model parameters.
func DefaultSimpleConfig(numMCs int) SimpleConfig {
	return SimpleConfig{NumMCs: numMCs, LatencyCycles: 100, BytesPerCycle: 10}
}

// Bandwidth in the simple model is tracked per epoch so that transfers
// scheduled at future times (e.g. chained prefetches) cannot block earlier
// requests the way a single busy-until watermark would; each epoch has a
// byte budget of BytesPerCycle × epochCycles.
const (
	epochCycles = 64
	epochRing   = 512
)

type mcRing struct {
	epoch [epochRing]int64
	used  [epochRing]float64 // bytes charged per epoch
	hint  int64              // earliest epoch that might still have room
}

func (r *mcRing) reserve(t int64, bytes, capPerEpoch float64) int64 {
	e := t / epochCycles
	if r.hint > e {
		e = r.hint
	}
	for {
		slot := e % epochRing
		if r.epoch[slot] != e {
			r.epoch[slot] = e
			r.used[slot] = 0
		}
		if r.used[slot]+bytes <= capPerEpoch {
			r.used[slot] += bytes
			if r.used[slot] >= capPerEpoch-64 && e > r.hint {
				r.hint = e
			}
			start := e * epochCycles
			if t > start {
				start = t
			}
			return start
		}
		e++
	}
}

// Simple is the fixed latency + bandwidth model.
type Simple struct {
	//imp:nosnap configuration, fixed at construction
	cfg   SimpleConfig
	mcs   []mcRing
	stats Stats
}

// NewSimple builds the simple model.
func NewSimple(cfg SimpleConfig) *Simple {
	if cfg.NumMCs <= 0 || cfg.LatencyCycles <= 0 || cfg.BytesPerCycle <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	return &Simple{cfg: cfg, mcs: make([]mcRing, cfg.NumMCs)}
}

// NumMCs returns the number of memory controllers.
func (s *Simple) NumMCs() int { return s.cfg.NumMCs }

// Stats returns a copy of the counters.
func (s *Simple) Stats() Stats { return s.stats }

// ResetStats clears the counters.
func (s *Simple) ResetStats() { s.stats = Stats{} }

// Access issues one transfer through mc's bandwidth budget.
func (s *Simple) Access(now int64, mc int, lineID uint64, bytes int) int64 {
	bytes = ClampTransfer(bytes)
	s.stats.Accesses++
	s.stats.Bytes += uint64(bytes)

	service := int64(float64(bytes)/s.cfg.BytesPerCycle + 0.5)
	start := s.mcs[mc].reserve(now, float64(bytes), s.cfg.BytesPerCycle*epochCycles)
	return start + service + s.cfg.LatencyCycles
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
