package dram

import (
	"fmt"

	"github.com/impsim/imp/internal/snap"
)

// Snapshotter is implemented by DRAM models that can checkpoint their
// timing state. Both built-in models implement it; the simulator refuses to
// snapshot systems whose Model does not.
type Snapshotter interface {
	Snapshot(w *snap.Writer)
	Restore(r *snap.Reader) error
}

// Snapshot appends the simple model's state: counters plus each controller's
// bandwidth epoch ring, sparsely (an idle MC costs one varint). Stale slots
// are kept exactly — reserve consults whatever (epoch, used) pair a slot
// holds, so byte-identical resumption needs the full ring contents.
func (s *Simple) Snapshot(w *snap.Writer) {
	snapStats(w, s.stats)
	w.Int(len(s.mcs))
	for i := range s.mcs {
		r := &s.mcs[i]
		w.I64(r.hint)
		used := 0
		for j := 0; j < epochRing; j++ {
			if r.epoch[j] != 0 || r.used[j] != 0 {
				used++
			}
		}
		w.Int(used)
		for j := 0; j < epochRing; j++ {
			if r.epoch[j] != 0 || r.used[j] != 0 {
				w.Int(j)
				w.I64(r.epoch[j])
				w.F64(r.used[j])
			}
		}
	}
}

// Restore replaces the simple model's state with one written by Snapshot.
func (s *Simple) Restore(r *snap.Reader) error {
	s.stats = readStats(r)
	if n := r.Int(); n != len(s.mcs) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("dram: snapshot has %d MCs, model has %d", n, len(s.mcs))
	}
	for i := range s.mcs {
		ring := &s.mcs[i]
		*ring = mcRing{hint: r.I64()}
		used := r.Count(10) // slot + epoch varints + fixed 8-byte float
		if r.Err() != nil {
			return r.Err()
		}
		for j := 0; j < used; j++ {
			slot := r.Int()
			if slot < 0 || slot >= epochRing {
				return fmt.Errorf("dram: snapshot slot %d out of range", slot)
			}
			ring.epoch[slot] = r.I64()
			ring.used[slot] = r.F64()
		}
	}
	return r.Err()
}

// Snapshot appends the DDR3 model's state: counters, per-bank row/timing
// state and the per-MC data-bus watermarks.
func (d *DDR3) Snapshot(w *snap.Writer) {
	snapStats(w, d.stats)
	w.Int(len(d.banks))
	for mc := range d.banks {
		w.Int(len(d.banks[mc]))
		for i := range d.banks[mc] {
			b := &d.banks[mc][i]
			w.I64(b.busyUntil)
			w.I64(b.openRow)
			w.I64(b.activated)
		}
	}
	w.Int(len(d.bus))
	for _, t := range d.bus {
		w.I64(t)
	}
}

// Restore replaces the DDR3 model's state with one written by Snapshot.
func (d *DDR3) Restore(r *snap.Reader) error {
	d.stats = readStats(r)
	if n := r.Int(); n != len(d.banks) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("dram: snapshot has %d MCs, model has %d", n, len(d.banks))
	}
	for mc := range d.banks {
		if n := r.Int(); n != len(d.banks[mc]) {
			if r.Err() != nil {
				return r.Err()
			}
			return fmt.Errorf("dram: snapshot has %d banks, model has %d", n, len(d.banks[mc]))
		}
		for i := range d.banks[mc] {
			b := &d.banks[mc][i]
			b.busyUntil = r.I64()
			b.openRow = r.I64()
			b.activated = r.I64()
		}
	}
	if n := r.Int(); n != len(d.bus) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("dram: snapshot has %d bus entries, model has %d", n, len(d.bus))
	}
	for i := range d.bus {
		d.bus[i] = r.I64()
	}
	return r.Err()
}

func snapStats(w *snap.Writer, s Stats) {
	w.U64(s.Accesses)
	w.U64(s.Bytes)
	w.U64(s.RowHits)
	w.U64(s.RowMisses)
}

func readStats(r *snap.Reader) Stats {
	return Stats{Accesses: r.U64(), Bytes: r.U64(), RowHits: r.U64(), RowMisses: r.U64()}
}
