package dram

import (
	"testing"
	"testing/quick"
)

func TestMCForLineInterleaves(t *testing.T) {
	counts := make([]int, 8)
	for line := uint64(0); line < 8000; line++ {
		mc := MCForLine(line, 8)
		if mc < 0 || mc >= 8 {
			t.Fatalf("MCForLine(%d, 8) = %d out of range", line, mc)
		}
		counts[mc]++
	}
	for mc, n := range counts {
		if n != 1000 {
			t.Errorf("MC %d received %d lines, want 1000", mc, n)
		}
	}
}

func TestClampTransfer(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 32}, {8, 32}, {31, 32}, {32, 32}, {33, 33}, {64, 64}, {100, 64},
	}
	for _, c := range cases {
		if got := ClampTransfer(c.in); got != c.want {
			t.Errorf("ClampTransfer(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDDR3RowHitFasterThanMiss(t *testing.T) {
	d := NewDDR3(DefaultDDR3Config(1))
	// First access opens a row (row empty: tRCD+tCAS).
	t0 := d.Access(0, 0, 0, 64)
	// Same row (consecutive line within the 8KB row): row hit, tCAS only.
	t1 := d.Access(t0, 0, 8, 64) - t0
	// Different row on the same bank: precharge + activate + CAS.
	farLine := uint64(8 * 128 * 100) // bank 0, a different row
	t2 := d.Access(t0+t1, 0, farLine, 64) - (t0 + t1)
	if !(t1 < t0 && t0 < t2) {
		t.Errorf("latency ordering: empty=%d hit=%d conflict=%d; want hit < empty < conflict", t0, t1, t2)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 2 {
		t.Errorf("row hits/misses = %d/%d, want 1/2", st.RowHits, st.RowMisses)
	}
}

func TestDDR3BankParallelism(t *testing.T) {
	d := NewDDR3(DefaultDDR3Config(1))
	// Two requests to different banks at the same time should overlap:
	// the second finishes well before 2x a single access.
	single := NewDDR3(DefaultDDR3Config(1)).Access(0, 0, 0, 64)
	d.Access(0, 0, 0, 64) // bank 0
	t2 := d.Access(0, 0, 1, 64)
	if t2 >= 2*single {
		t.Errorf("bank-parallel access finished at %d, want < %d", t2, 2*single)
	}
}

func TestDDR3SameBankSerializes(t *testing.T) {
	d := NewDDR3(DefaultDDR3Config(1))
	t1 := d.Access(0, 0, 0, 64)
	t2 := d.Access(0, 0, 0, 64) // same line: row hit but bank+bus busy
	if t2 <= t1 {
		t.Errorf("same-bank back-to-back: second %d not after first %d", t2, t1)
	}
}

func TestDDR3PartialTransferSavesBusTime(t *testing.T) {
	// Saturate one bank with row hits; partial transfers should sustain
	// higher request throughput because the bus frees earlier.
	full := NewDDR3(DefaultDDR3Config(1))
	part := NewDDR3(DefaultDDR3Config(1))
	var tFull, tPart int64
	for i := 0; i < 100; i++ {
		tFull = full.Access(tFull, 0, 0, 64)
		tPart = part.Access(tPart, 0, 0, 32)
	}
	if tPart >= tFull {
		t.Errorf("100 partial transfers took %d cycles, full took %d; partial should be faster", tPart, tFull)
	}
	if got := part.Stats().Bytes; got != 3200 {
		t.Errorf("partial bytes = %d, want 3200", got)
	}
	if got := full.Stats().Bytes; got != 6400 {
		t.Errorf("full bytes = %d, want 6400", got)
	}
}

func TestSimpleModelLatency(t *testing.T) {
	s := NewSimple(DefaultSimpleConfig(1))
	// One 64B access: ~6 cycles service + 100 cycles latency.
	got := s.Access(0, 0, 0, 64)
	if got < 100 || got > 110 {
		t.Errorf("single access latency = %d, want ~106", got)
	}
}

func TestSimpleModelBandwidthLimit(t *testing.T) {
	s := NewSimple(DefaultSimpleConfig(1))
	// 1000 64B lines at 10 B/cycle = at least 6400 cycles of service.
	var last int64
	for i := 0; i < 1000; i++ {
		last = s.Access(0, 0, uint64(i), 64)
	}
	if last < 6400 {
		t.Errorf("1000 lines finished at %d, want >= 6400 (bandwidth limit)", last)
	}
	// With 2 MCs the same load split across controllers halves the time.
	s2 := NewSimple(DefaultSimpleConfig(2))
	var last2 int64
	for i := 0; i < 1000; i++ {
		done := s2.Access(0, i%2, uint64(i), 64)
		if done > last2 {
			last2 = done
		}
	}
	if last2 >= last {
		t.Errorf("2-MC run (%d) not faster than 1-MC run (%d)", last2, last)
	}
}

func TestSimpleModelMinBurst(t *testing.T) {
	s := NewSimple(DefaultSimpleConfig(1))
	s.Access(0, 0, 0, 8) // clamped to 32B
	if got := s.Stats().Bytes; got != 32 {
		t.Errorf("min burst bytes = %d, want 32", got)
	}
}

func TestResetStats(t *testing.T) {
	models := []Model{NewDDR3(DefaultDDR3Config(2)), NewSimple(DefaultSimpleConfig(2))}
	for _, m := range models {
		m.Access(0, 0, 0, 64)
		m.ResetStats()
		if st := m.Stats(); st.Accesses != 0 || st.Bytes != 0 {
			t.Errorf("%T: ResetStats left %+v", m, st)
		}
	}
}

func TestAccessCompletionMonotonic(t *testing.T) {
	for _, m := range []Model{NewDDR3(DefaultDDR3Config(4)), NewSimple(DefaultSimpleConfig(4))} {
		m := m
		f := func(start uint16, line uint32, sz uint8) bool {
			now := int64(start)
			done := m.Access(now, MCForLine(uint64(line), m.NumMCs()), uint64(line), int(sz)%65)
			return done > now
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%T: %v", m, err)
		}
	}
}

func TestPaperMCScaling(t *testing.T) {
	// §5.1: total DRAM bandwidth ∝ √N. We model this by MC count = √N.
	for _, tc := range []struct{ cores, mcs int }{{16, 4}, {64, 8}, {256, 16}} {
		if got := MCCountForCores(tc.cores); got != tc.mcs {
			t.Errorf("MCCountForCores(%d) = %d, want %d", tc.cores, got, tc.mcs)
		}
	}
}
