package harness

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func squares(n int) []Point[int] {
	pts := make([]Point[int], n)
	for i := range pts {
		i := i
		pts[i] = Point[int]{
			Label: fmt.Sprintf("p%d", i),
			Run:   func(context.Context) (int, error) { return i * i, nil },
		}
	}
	return pts
}

func TestSweepOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		res, err := Sweep(context.Background(), squares(37), Options{Workers: workers}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	res, err := Sweep(context.Background(), []Point[int]{}, Options{}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("got %v, %v", res, err)
	}
}

func TestSweepBoundedParallelism(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	pts := make([]Point[int], 20)
	for i := range pts {
		pts[i] = Point[int]{Run: func(context.Context) (int, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return 0, nil
		}}
	}
	if _, err := Sweep(context.Background(), pts, Options{Workers: workers}, nil); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent points, cap is %d", p, workers)
	}
}

func TestSweepFirstErrorByPointOrder(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	pts := []Point[int]{
		{Label: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{Label: "first", Run: func(context.Context) (int, error) {
			time.Sleep(20 * time.Millisecond) // finishes after "second" fails
			return 0, errA
		}},
		{Label: "second", Run: func(context.Context) (int, error) { return 0, errB }},
	}
	_, err := Sweep(context.Background(), pts, Options{Workers: 3}, nil)
	if !errors.Is(err, errA) {
		t.Errorf("want first error in point order (errA), got %v", err)
	}
	// Per-point capture keeps both.
	_, errs := SweepAll(context.Background(), pts, Options{Workers: 3}, nil)
	if !errors.Is(errs[1], errA) || !errors.Is(errs[2], errB) {
		t.Errorf("per-point errors lost: %v", errs)
	}
}

func TestSweepFailFastSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	pts := make([]Point[int], 50)
	for i := range pts {
		i := i
		pts[i] = Point[int]{Run: func(context.Context) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, boom
			}
			time.Sleep(time.Millisecond)
			return i, nil
		}}
	}
	_, errs := SweepAll(context.Background(), pts, Options{Workers: 1, FailFast: true}, nil)
	if !errors.Is(errs[0], boom) {
		t.Fatalf("errs[0] = %v, want boom", errs[0])
	}
	if n := ran.Load(); n != 1 {
		t.Errorf("%d points ran after fail-fast, want 1", n)
	}
	for i := 1; i < len(errs); i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, errs[i])
		}
	}
}

func TestSweepFailFastReportsRealError(t *testing.T) {
	// With FailFast, the real failure must surface even when earlier-indexed
	// points only saw the resulting cancellation.
	boom := errors.New("boom")
	release := make(chan struct{})
	pts := []Point[int]{
		{Label: "slow-early", Run: func(ctx context.Context) (int, error) {
			<-release // still in flight when the cancellation lands
			return 0, ctx.Err()
		}},
		{Label: "failer", Run: func(context.Context) (int, error) {
			defer close(release)
			return 0, boom
		}},
	}
	_, err := Sweep(context.Background(), pts, Options{Workers: 2, FailFast: true}, nil)
	if !errors.Is(err, boom) {
		t.Errorf("real failure masked by cancellation: %v", err)
	}
}

func TestSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := SweepAll(ctx, squares(5), Options{Workers: 2}, nil)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}

func TestSweepPanicCaptured(t *testing.T) {
	pts := []Point[int]{
		{Label: "bad", Run: func(context.Context) (int, error) { panic("kaboom") }},
		{Label: "good", Run: func(context.Context) (int, error) { return 7, nil }},
	}
	res, errs := SweepAll(context.Background(), pts, Options{Workers: 2}, nil)
	if errs[0] == nil || errs[1] != nil || res[1] != 7 {
		t.Errorf("panic not isolated: res=%v errs=%v", res, errs)
	}
}

func TestSweepEvents(t *testing.T) {
	var events []Event
	var values []int
	_, err := Sweep(context.Background(), squares(10), Options{Workers: 4}, func(e Event, v int) {
		// callback is serialized by the harness
		events = append(events, e)
		values = append(values, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("got %d events, want 10", len(events))
	}
	seen := make(map[int]bool)
	for i, e := range events {
		if e.Total != 10 || e.Done != i+1 {
			t.Errorf("event %d: Total=%d Done=%d", i, e.Total, e.Done)
		}
		if seen[e.Index] {
			t.Errorf("duplicate event for point %d", e.Index)
		}
		seen[e.Index] = true
		if values[i] != e.Index*e.Index {
			t.Errorf("event %d: carried result %d, want %d", i, values[i], e.Index*e.Index)
		}
	}
}

func TestSeedFor(t *testing.T) {
	if got := SeedFor(0, "anything"); got != 0 {
		t.Errorf("zero base must stay zero (default inputs), got %d", got)
	}
	if SeedFor(42, "pagerank") != SeedFor(42, "pagerank") {
		t.Error("SeedFor is not pure")
	}
	if SeedFor(42, "pagerank") == SeedFor(42, "spmv") {
		t.Error("different keys collided")
	}
	if SeedFor(42, "pagerank") == SeedFor(43, "pagerank") {
		t.Error("different bases collided")
	}
	if SeedFor(42, "pagerank") == 0 {
		t.Error("nonzero base produced the zero sentinel")
	}
}

// TestSweepSharedGateBoundsAcrossSweeps runs two concurrent sweeps sharing
// one 2-slot gate and asserts the combined in-flight point count never
// exceeds the gate size, while results stay correct and ordered.
func TestSweepSharedGateBoundsAcrossSweeps(t *testing.T) {
	const gateSize = 2
	gate := NewGate(gateSize)
	var inFlight, maxSeen atomic.Int64
	mkPoints := func(n int) []Point[int] {
		pts := make([]Point[int], n)
		for i := range pts {
			i := i
			pts[i] = Point[int]{Label: fmt.Sprintf("p%d", i), Run: func(context.Context) (int, error) {
				cur := inFlight.Add(1)
				for {
					m := maxSeen.Load()
					if cur <= m || maxSeen.CompareAndSwap(m, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
				return i * i, nil
			}}
		}
		return pts
	}
	done := make(chan error, 2)
	for s := 0; s < 2; s++ {
		go func() {
			res, err := Sweep(context.Background(), mkPoints(8),
				Options{Workers: 4, Gate: gate}, nil)
			if err == nil {
				for i, v := range res {
					if v != i*i {
						err = fmt.Errorf("res[%d] = %d, want %d", i, v, i*i)
						break
					}
				}
			}
			done <- err
		}()
	}
	for s := 0; s < 2; s++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if m := maxSeen.Load(); m > gateSize {
		t.Errorf("observed %d concurrent points across sweeps, gate admits %d", m, gateSize)
	}
}

// TestSweepGateCancelledWhileWaiting: a point blocked on the gate must be
// skipped with the cancellation error, not run, once the context dies.
func TestSweepGateCancelledWhileWaiting(t *testing.T) {
	gate := NewGate(1)
	// Occupy the only slot for the duration of the test.
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer gate.Release()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	pts := []Point[int]{{Label: "blocked", Run: func(context.Context) (int, error) {
		ran.Add(1)
		return 1, nil
	}}}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, errs := SweepAll(ctx, pts, Options{Workers: 1, Gate: gate}, nil)
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("errs[0] = %v, want context.Canceled", errs[0])
	}
	if ran.Load() != 0 {
		t.Error("gated point ran despite cancellation")
	}
}

// TestSweepPrefixRunsOncePerGroup: points sharing a PrefixKey run their
// prefix exactly once per distinct key, before any grouped point's Run, at
// any worker count.
func TestSweepPrefixRunsOncePerGroup(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var prefixA, prefixB atomic.Int64
			counters := map[string]*atomic.Int64{"a": &prefixA, "b": &prefixB}
			pts := make([]Point[int], 8)
			for i := range pts {
				i := i
				key := "a"
				if i%2 == 1 {
					key = "b"
				}
				c := counters[key]
				pts[i] = Point[int]{
					Label:     fmt.Sprintf("p%d", i),
					PrefixKey: key,
					RunPrefix: func(context.Context) error { c.Add(1); return nil },
					Run: func(context.Context) (int, error) {
						if c.Load() == 0 {
							return 0, fmt.Errorf("point %d ran before its prefix", i)
						}
						return i, nil
					},
				}
			}
			res, err := Sweep(context.Background(), pts, Options{Workers: workers}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res {
				if r != i {
					t.Errorf("res[%d] = %d", i, r)
				}
			}
			if prefixA.Load() != 1 || prefixB.Load() != 1 {
				t.Errorf("prefix runs = (a:%d, b:%d), want exactly 1 each",
					prefixA.Load(), prefixB.Load())
			}
		})
	}
}

// TestSweepPrefixFailureDoesNotFailPoints: a prefix is an accelerator; its
// error (or panic) must be swallowed and every grouped point still run.
func TestSweepPrefixFailureDoesNotFailPoints(t *testing.T) {
	var prefixRuns atomic.Int64
	pts := make([]Point[int], 4)
	for i := range pts {
		i := i
		pts[i] = Point[int]{
			Label:     fmt.Sprintf("p%d", i),
			PrefixKey: "doomed",
			RunPrefix: func(context.Context) error {
				if prefixRuns.Add(1) > 1 {
					t.Error("failed prefix retried within one sweep")
				}
				panic("prefix exploded")
			},
			Run: func(context.Context) (int, error) { return i + 1, nil },
		}
	}
	res, err := Sweep(context.Background(), pts, Options{Workers: 4}, nil)
	if err != nil {
		t.Fatalf("prefix failure leaked into the sweep error: %v", err)
	}
	for i, r := range res {
		if r != i+1 {
			t.Errorf("res[%d] = %d, want %d (point must cold-start)", i, r, i+1)
		}
	}
}
