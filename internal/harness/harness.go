// Package harness is the parallel sweep engine behind the experiment
// runners. A sweep is an ordered list of independent simulation points; the
// harness executes them across a bounded worker pool and collects results
// back in point order, so sweep output is byte-identical regardless of the
// worker count.
//
// Guarantees:
//
//   - Results are returned indexed by point, never by completion order.
//   - Per-point errors are captured, not conflated: the sweep's error is the
//     first failure in *point* order, and every point's individual error
//     remains inspectable. Without FailFast that choice is deterministic;
//     with it, which points got to fail before cancellation depends on
//     scheduling (see Options.FailFast).
//   - Cancellation is cooperative via context.Context: once the context is
//     done (or, with FailFast, once any point fails) unstarted points are
//     skipped with the cancellation error.
//   - Seeds derived with SeedFor depend only on a base seed and the point's
//     identity, never on scheduling, so randomized inputs stay reproducible
//     at any parallelism.
package harness

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configure a sweep.
type Options struct {
	// Workers bounds concurrent points. <=0 means runtime.GOMAXPROCS(0);
	// 1 degenerates to a serial loop.
	Workers int
	// FailFast cancels the remaining points after the first failure. The
	// reported first-by-point-order error may then differ across worker
	// counts (a later point can fail before an earlier one is reached), so
	// leave it off when deterministic error identity matters more than
	// wasted work.
	FailFast bool
	// Gate, when non-nil, is acquired before each point runs and released
	// after. Sharing one gate across several concurrent sweeps bounds their
	// combined in-flight points, on top of each sweep's own Workers bound —
	// the seam a multi-job service uses to cap total simulation concurrency.
	// Gating changes only scheduling, never results: collection stays in
	// point order.
	Gate Gate
}

// Gate bounds in-flight work across independent sweeps. Acquire blocks until
// a slot is free or ctx is done; every successful Acquire must be paired
// with exactly one Release.
type Gate interface {
	Acquire(ctx context.Context) error
	Release()
}

// NewGate returns a Gate admitting at most n concurrent holders (n < 1 is
// treated as 1).
func NewGate(n int) Gate {
	if n < 1 {
		n = 1
	}
	return make(chanGate, n)
}

type chanGate chan struct{}

func (g chanGate) Acquire(ctx context.Context) error {
	select {
	case g <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g chanGate) Release() { <-g }

// Event reports one finished (or skipped) point to the progress callback.
// Events are delivered serially — the callback never runs concurrently with
// itself — but in completion order, which depends on scheduling.
type Event struct {
	// Index is the point's position in the sweep; Total the sweep size.
	Index, Total int
	// Done counts finished points including this one.
	Done int
	// Label is the point's human-readable identity.
	Label string
	// Err is the point's failure, nil on success.
	Err error
	// Elapsed is the point's wall-clock execution time.
	Elapsed time.Duration
}

// Point is one unit of work: a labeled closure producing an R.
type Point[R any] struct {
	// Label identifies the point in events and error messages.
	Label string
	// PrefixKey, when non-empty, groups points that share a common work
	// prefix. RunPrefix runs at most once per distinct key across the sweep
	// (inside the worker slot of whichever grouped point is claimed first);
	// the other members of the group wait for it before running. A prefix
	// failure never fails the group's points — each Run must be able to do
	// its work from scratch, treating the prefix purely as an accelerator.
	PrefixKey string
	// RunPrefix performs the group's shared prefix work (for example,
	// populating a checkpoint cache). Ignored when PrefixKey is empty.
	RunPrefix func(ctx context.Context) error
	// Run executes the point. It must respect ctx and must not touch state
	// shared with other points unless that state is safe for concurrent use.
	Run func(ctx context.Context) (R, error)
}

// Sweep executes points with opt.Workers-bounded parallelism and returns one
// result per point, in point order. Failed or skipped points hold R's zero
// value; the returned error is the first per-point error in point order,
// wrapped with its label (nil if every point succeeded). Cancellation errors
// rank below real failures: with FailFast, the point that triggered the
// cancellation is reported, not an earlier-indexed point that merely saw the
// cancelled context. onEvent, when non-nil, receives one Event per point as
// it completes, along with the point's result (zero R on failure).
func Sweep[R any](ctx context.Context, points []Point[R], opt Options, onEvent func(Event, R)) ([]R, error) {
	results, errs := SweepAll(ctx, points, opt, onEvent)
	first := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return results, fmt.Errorf("harness: point %d (%s): %w", i, points[i].Label, err)
		}
		if first == -1 {
			first = i
		}
	}
	if first >= 0 {
		return results, fmt.Errorf("harness: point %d (%s): %w", first, points[first].Label, errs[first])
	}
	return results, nil
}

// SweepAll is Sweep with full per-point error capture: errs[i] is point i's
// error (nil on success, the cancellation cause for skipped points).
func SweepAll[R any](ctx context.Context, points []Point[R], opt Options, onEvent func(Event, R)) ([]R, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(points)
	results := make([]R, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Points sharing a PrefixKey run their prefix exactly once, under the
	// first claimed member's worker slot; sync.Once makes later members wait
	// for it rather than duplicate it.
	var prefixes map[string]*prefixGroup
	for i := range points {
		if points[i].PrefixKey == "" || points[i].RunPrefix == nil {
			continue
		}
		if prefixes == nil {
			prefixes = make(map[string]*prefixGroup)
		}
		if _, ok := prefixes[points[i].PrefixKey]; !ok {
			prefixes[points[i].PrefixKey] = &prefixGroup{}
		}
	}

	var (
		next    atomic.Int64 // next point index to claim
		done    int          // finished points, for Event.Done; guarded by eventMu
		eventMu sync.Mutex   // serializes onEvent and keeps Done monotonic
		wg      sync.WaitGroup
	)
	emit := func(i int, res R, err error, elapsed time.Duration) {
		if onEvent == nil {
			return
		}
		eventMu.Lock()
		defer eventMu.Unlock()
		done++
		onEvent(Event{
			Index: i, Total: n, Done: done,
			Label: points[i].Label, Err: err, Elapsed: elapsed,
		}, res)
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					var zero R
					emit(i, zero, err, 0)
					continue
				}
				if opt.Gate != nil {
					if err := opt.Gate.Acquire(ctx); err != nil {
						errs[i] = err
						var zero R
						emit(i, zero, err, 0)
						continue
					}
				}
				//imp:wallclock progress-event timing only; Elapsed never feeds results or keys
				start := time.Now()
				if g := prefixes[points[i].PrefixKey]; g != nil {
					g.once.Do(func() { g.err = runPrefix(ctx, points[i].RunPrefix) })
					// g.err is deliberately dropped: the prefix is an
					// accelerator, and the point's own Run recovers from a
					// missing prefix by doing the work cold.
				}
				res, err := runPoint(ctx, points[i])
				//imp:wallclock progress-event timing only; Elapsed never feeds results or keys
				elapsed := time.Since(start)
				if opt.Gate != nil {
					opt.Gate.Release()
				}
				results[i], errs[i] = res, err
				if err != nil && opt.FailFast {
					cancel()
				}
				emit(i, res, err, elapsed)
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// prefixGroup tracks one shared prefix: the once gates execution, err
// records the outcome for the members that waited.
type prefixGroup struct {
	once sync.Once
	err  error
}

// runPrefix executes a group's shared prefix, converting a panic into an
// error with the same containment as runPoint.
func runPrefix(ctx context.Context, f func(ctx context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f(ctx)
}

// runPoint executes one point, converting a panic into an error so a single
// bad configuration cannot take down the whole sweep.
func runPoint[R any](ctx context.Context, p Point[R]) (res R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return p.Run(ctx)
}

// SeedFor derives a per-point seed from a base seed and the point's stable
// identity key. The derivation is pure (FNV-1a over the key, mixed with the
// base), so a point's seed is identical at any worker count and any
// execution order. A zero base with any key returns 0, preserving "default
// inputs" semantics for sweeps that do not opt into seeding.
func SeedFor(base int64, key string) int64 {
	if base == 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	mixed := uint64(base) ^ h.Sum64()
	// splitmix64 finalizer: spreads low-entropy bases over the full range.
	mixed ^= mixed >> 30
	mixed *= 0xbf58476d1ce4e5b9
	mixed ^= mixed >> 27
	mixed *= 0x94d049bb133111eb
	mixed ^= mixed >> 31
	if mixed == 0 {
		mixed = 1 // never collide with the "default inputs" sentinel
	}
	return int64(mixed)
}
