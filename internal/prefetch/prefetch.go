// Package prefetch defines the hardware-prefetcher interface shared by the
// baseline stream prefetcher, the GHB correlation prefetcher (§5.4) and the
// IMP prefetcher (internal/core), plus the non-IMP implementations.
//
// A prefetcher snoops every L1 access and miss (the paper's Fig 3 "cache
// access / cache miss" taps) and returns the prefetches it wants issued.
// The timing simulator owns issue bandwidth, cache fills and metrics.
package prefetch

import (
	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// Access is one observed L1 data access.
type Access struct {
	PC    trace.PC
	Addr  mem.Addr
	Size  int
	Store bool
	Miss  bool // true when the access missed the L1 (including sector misses)
	// Value is the data returned by the load, as the hardware would read it
	// from the fetched line. Only loads carry meaningful values.
	Value uint64
}

// Request is one prefetch the hardware wants issued.
type Request struct {
	Addr mem.Addr // target address; the line (or sectors) containing it is fetched
	// Bytes is the number of bytes wanted starting at Addr. The simulator
	// fetches the sectors covering [Addr, Addr+Bytes) in sectored caches and
	// the whole line otherwise. 0 means a full line.
	Bytes int
	// Parent indexes an earlier request in the same batch that must complete
	// before this one can issue (multi-level indirection: the child address
	// was computed from the parent's data). -1 means independent.
	Parent int
	// Exclusive requests the line in Modified state (read/write predictor).
	Exclusive bool
}

// Prefetcher observes the access stream and emits prefetch requests.
type Prefetcher interface {
	// Observe is called for every demand access, after the cache lookup
	// determined hit/miss. New requests are appended to reqs and the
	// extended slice returned, so the caller can reuse one scratch buffer
	// across accesses (the simulator calls Observe once per demand access;
	// per-call slice allocation dominated its profile). Request.Parent
	// indexes into the full returned slice. The returned requests are
	// issued at the current core time, subject to the per-core
	// outstanding-prefetch limit.
	Observe(a Access, reqs []Request) []Request
	// Name identifies the prefetcher in reports.
	Name() string
}

// Null is the no-prefetching configuration.
type Null struct{}

// Observe implements Prefetcher; it never prefetches.
func (Null) Observe(_ Access, reqs []Request) []Request { return reqs }

// Name implements Prefetcher.
func (Null) Name() string { return "none" }

// StreamConfig parameterizes the baseline stream prefetcher attached to
// each L1 (§5.4 Baseline).
type StreamConfig struct {
	Entries      int // PC-indexed table entries
	HitThreshold int // stream hits before prefetching starts
	MaxDistance  int // lines ahead of the demand stream
}

// DefaultStreamConfig mirrors a conventional L1 stream prefetcher.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{Entries: 16, HitThreshold: 2, MaxDistance: 4}
}

type streamEntry struct {
	pc       trace.PC
	lastLine uint64
	hits     int
	dir      int64  // +1 ascending, -1 descending
	ahead    uint64 // furthest line already prefetched in dir
	lru      uint64
	valid    bool
}

// Stream is a per-PC unit-stride stream prefetcher working at cacheline
// granularity. It captures the sequential scans of index arrays (the B[i]
// side) but, as the paper shows, none of the indirect accesses.
type Stream struct {
	//imp:nosnap configuration, fixed at construction
	cfg     StreamConfig
	entries []streamEntry
	clock   uint64
}

// NewStream builds the baseline stream prefetcher.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.Entries <= 0 {
		cfg = DefaultStreamConfig()
	}
	return &Stream{cfg: cfg, entries: make([]streamEntry, cfg.Entries)}
}

// Name implements Prefetcher.
func (s *Stream) Name() string { return "stream" }

// Observe implements Prefetcher.
func (s *Stream) Observe(a Access, reqs []Request) []Request {
	s.clock++
	line := a.Addr.LineID()
	e := s.lookup(a.PC)
	if e == nil {
		e = s.victim()
		*e = streamEntry{pc: a.PC, lastLine: line, valid: true, lru: s.clock}
		return reqs
	}
	e.lru = s.clock
	switch {
	case line == e.lastLine:
		// Same line: neither a hit nor a break.
		return reqs
	case line == e.lastLine+1:
		if e.dir != 1 {
			e.dir, e.hits, e.ahead = 1, 0, 0
		}
		e.hits++
	case line == e.lastLine-1:
		// Descending streams (e.g. backward sweeps) train the same way.
		if e.dir != -1 {
			e.dir, e.hits, e.ahead = -1, 0, 0
		}
		e.hits++
	default:
		// Stream broken: restart from here but keep the PC association
		// (nested loops re-enter the same streaming instruction, §3.3.1).
		e.lastLine = line
		e.hits = 0
		e.ahead = 0
		return reqs
	}
	e.lastLine = line
	if e.hits < s.cfg.HitThreshold {
		return reqs
	}
	// Prefetch the next MaxDistance lines in the stream direction that were
	// not already requested.
	for d := 1; d <= s.cfg.MaxDistance; d++ {
		l := line + uint64(int64(d)*e.dir)
		if e.ahead != 0 && sameOrBeyond(e.dir, e.ahead, l) {
			continue
		}
		reqs = append(reqs, Request{Addr: mem.Addr(l << mem.LineShift), Parent: -1})
		e.ahead = l
	}
	return reqs
}

// sameOrBeyond reports whether line `mark` already covers line l in the
// given direction.
func sameOrBeyond(dir int64, mark, l uint64) bool {
	if dir > 0 {
		return mark >= l
	}
	return mark <= l
}

func (s *Stream) lookup(pc trace.PC) *streamEntry {
	for i := range s.entries {
		if s.entries[i].valid && s.entries[i].pc == pc {
			return &s.entries[i]
		}
	}
	return nil
}

func (s *Stream) victim() *streamEntry {
	v := &s.entries[0]
	for i := range s.entries {
		if !s.entries[i].valid {
			return &s.entries[i]
		}
		if s.entries[i].lru < v.lru {
			v = &s.entries[i]
		}
	}
	return v
}
