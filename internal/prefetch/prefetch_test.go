package prefetch

import (
	"testing"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

func access(pc uint32, addr uint64, miss bool) Access {
	return Access{PC: trace.PC(pc), Addr: mem.Addr(addr), Size: 8, Miss: miss}
}

func TestNullNeverPrefetches(t *testing.T) {
	var n Null
	for i := 0; i < 100; i++ {
		if got := n.Observe(access(1, uint64(i*64), true), nil); got != nil {
			t.Fatalf("Null prefetched: %v", got)
		}
	}
	if n.Name() != "none" {
		t.Error("bad name")
	}
}

func TestStreamDetectsSequentialLines(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	var got []Request
	// Sequential line-sized strides from one PC.
	for i := 0; i < 8; i++ {
		got = s.Observe(access(1, uint64(i)*64, true), nil)
		if i < 2 && len(got) > 0 {
			t.Fatalf("prefetched before threshold at access %d", i)
		}
	}
	if len(got) == 0 {
		t.Fatal("no prefetches after a long sequential stream")
	}
	// Prefetches must be ahead of the demand stream.
	for _, r := range got {
		if r.Addr.LineID() <= 7 {
			t.Errorf("prefetch %v behind the stream head", r.Addr)
		}
	}
}

func TestStreamWithinLineAccessesDoNotAdvance(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	// 8 accesses to the same line: no stream.
	for i := 0; i < 8; i++ {
		if got := s.Observe(access(1, uint64(i)*8, false), nil); len(got) != 0 {
			t.Fatalf("prefetched on same-line accesses: %v", got)
		}
	}
}

func TestStreamRandomAccessesNoPrefetch(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	addrs := []uint64{0x1000, 0x9340, 0x200, 0x55500, 0x800, 0x123400}
	for _, a := range addrs {
		if got := s.Observe(access(1, a, true), nil); len(got) != 0 {
			t.Fatalf("prefetched on random access %#x: %v", a, got)
		}
	}
}

func TestStreamNoDuplicatePrefetches(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	seen := make(map[uint64]int)
	for i := 0; i < 50; i++ {
		for _, r := range s.Observe(access(1, uint64(i)*64, true), nil) {
			seen[r.Addr.LineID()]++
		}
	}
	for line, n := range seen {
		if n > 1 {
			t.Errorf("line %d prefetched %d times", line, n)
		}
	}
}

func TestStreamBreakRestartsWithSamePC(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	for i := 0; i < 8; i++ {
		s.Observe(access(1, uint64(i)*64, true), nil)
	}
	// Jump far away (outer loop restart), then stream again from there.
	base := uint64(1 << 20)
	if got := s.Observe(access(1, base, true), nil); len(got) != 0 {
		t.Fatalf("prefetched immediately after stream break: %v", got)
	}
	var got []Request
	for i := 1; i < 6; i++ {
		got = s.Observe(access(1, base+uint64(i)*64, true), nil)
	}
	if len(got) == 0 {
		t.Fatal("stream did not re-train after break")
	}
}

func TestStreamSeparatePCs(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	// Interleaved streams from two PCs must both train.
	var got1, got2 []Request
	for i := 0; i < 8; i++ {
		got1 = s.Observe(access(1, uint64(i)*64, true), nil)
		got2 = s.Observe(access(2, 1<<20+uint64(i)*64, true), nil)
	}
	if len(got1) == 0 || len(got2) == 0 {
		t.Errorf("interleaved streams: pc1 %d reqs, pc2 %d reqs, want both > 0", len(got1), len(got2))
	}
}

func TestStreamTableEviction(t *testing.T) {
	s := NewStream(StreamConfig{Entries: 2, HitThreshold: 2, MaxDistance: 4})
	// Touch 3 PCs; table holds 2; the oldest is evicted and must re-train.
	s.Observe(access(1, 0, true), nil)
	s.Observe(access(2, 1<<20, true), nil)
	s.Observe(access(3, 1<<21, true), nil) // evicts pc 1
	var got []Request
	for i := 1; i < 6; i++ {
		got = s.Observe(access(3, 1<<21+uint64(i)*64, true), nil)
	}
	if len(got) == 0 {
		t.Error("new PC did not train after eviction")
	}
}

func TestGHBRepeatedPatternPrefetches(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	// A repeating miss pattern with period 4: deltas repeat, GHB should
	// eventually predict.
	pattern := []uint64{0, 3, 9, 4}
	var got []Request
	for rep := 0; rep < 6; rep++ {
		for _, p := range pattern {
			base := uint64(rep*16) + p
			r := g.Observe(access(7, base*64, true), nil)
			if len(r) > 0 {
				got = r
			}
		}
	}
	if len(got) == 0 {
		t.Error("GHB found no correlation in a repeating delta pattern")
	}
}

func TestGHBRandomPatternSilent(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	// Pseudo-random indirect-like misses: no repeating delta pairs.
	x := uint64(12345)
	issued := 0
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		line := (x >> 20) % (1 << 22)
		issued += len(g.Observe(access(7, line*64, true), nil))
	}
	// A tiny number of accidental matches is tolerable; a meaningful rate
	// would contradict §5.4.
	if issued > 25 {
		t.Errorf("GHB issued %d prefetches on random misses, want ~0", issued)
	}
}

func TestGHBIgnoresHitsAndStores(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	a := access(1, 64, false)
	if got := g.Observe(a, nil); got != nil {
		t.Error("GHB trained on a hit")
	}
	st := access(1, 64, true)
	st.Store = true
	if got := g.Observe(st, nil); got != nil {
		t.Error("GHB trained on a store")
	}
}

func TestGHBIndexEviction(t *testing.T) {
	g := NewGHB(GHBConfig{BufferSize: 32, IndexSize: 2, Degree: 2})
	// More PCs than index entries: must not panic and must still track.
	for pc := uint32(0); pc < 10; pc++ {
		for i := 0; i < 5; i++ {
			g.Observe(access(pc, uint64(pc)<<20|uint64(i*64), true), nil)
		}
	}
}
