package prefetch

import (
	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/trace"
)

// GHBConfig sizes the Global History Buffer prefetcher (Nesbit & Smith
// [31]), the correlation prefetcher the paper compares against in §5.4.
type GHBConfig struct {
	BufferSize int // history buffer entries (FIFO of miss addresses)
	IndexSize  int // PC index table entries
	Degree     int // prefetches issued per trigger
}

// DefaultGHBConfig returns a reasonably sized PC/DC GHB.
func DefaultGHBConfig() GHBConfig {
	return GHBConfig{BufferSize: 256, IndexSize: 64, Degree: 4}
}

type ghbEntry struct {
	line uint64
	prev int // previous entry with the same PC (index into buffer), -1 none
}

type ghbIndex struct {
	pc    trace.PC
	head  int // most recent buffer entry for this PC
	valid bool
	lru   uint64
}

// GHB is a PC-localized delta-correlation prefetcher. On each L1 miss it
// appends the miss address to a global FIFO, links it to the previous miss
// from the same PC, computes the last two deltas, and searches the PC's
// history for the same delta pair; on a match it replays the deltas that
// followed historically.
//
// As the paper observes, indirect streams have effectively random deltas,
// so a reasonably sized GHB finds no repeats and adds no coverage on these
// workloads — reproduced by BenchmarkGHBComparison.
type GHB struct {
	//imp:nosnap configuration, fixed at construction
	cfg    GHBConfig
	buf    []ghbEntry
	head   int // next write position
	filled bool
	index  []ghbIndex
	clock  uint64
	// chainBuf is reused across Observe calls (one chain walk per miss).
	//imp:nosnap scratch, dead outside one Observe call
	chainBuf []uint64
}

// NewGHB builds the prefetcher.
func NewGHB(cfg GHBConfig) *GHB {
	if cfg.BufferSize <= 0 {
		cfg = DefaultGHBConfig()
	}
	g := &GHB{cfg: cfg, buf: make([]ghbEntry, cfg.BufferSize), index: make([]ghbIndex, cfg.IndexSize)}
	for i := range g.buf {
		g.buf[i].prev = -1
	}
	return g
}

// Name implements Prefetcher.
func (g *GHB) Name() string { return "ghb" }

// Observe implements Prefetcher. GHB trains on misses only.
func (g *GHB) Observe(a Access, reqs []Request) []Request {
	if !a.Miss || a.Store {
		return reqs
	}
	g.clock++
	line := a.Addr.LineID()
	idx := g.lookupIndex(a.PC)

	prev := -1
	if idx.valid && g.valid(idx.head) {
		prev = idx.head
	}
	pos := g.head
	g.buf[pos] = ghbEntry{line: line, prev: prev}
	g.head = (g.head + 1) % g.cfg.BufferSize
	if g.head == 0 {
		g.filled = true
	}
	idx.pc, idx.head, idx.valid, idx.lru = a.PC, pos, true, g.clock

	// Walk the chain to get recent miss lines for this PC.
	chain := g.chain(pos, 3+g.cfg.Degree)
	if len(chain) < 3 {
		return reqs
	}
	d1 := int64(chain[0]) - int64(chain[1])
	d2 := int64(chain[1]) - int64(chain[2])
	// Search further back for the same (d2, d1) pair.
	for i := 3; i+1 < len(chain); i++ {
		e1 := int64(chain[i-1]) - int64(chain[i])
		e2 := int64(chain[i]) - int64(chain[i+1])
		if e1 == d1 && e2 == d2 {
			// Replay deltas that followed the historical match.
			cur := int64(line)
			for k, issued := i-2, 0; k >= 0 && issued < g.cfg.Degree; k-- {
				delta := int64(chain[k]) - int64(chain[k+1])
				cur += delta
				if cur <= 0 {
					break
				}
				reqs = append(reqs, Request{Addr: mem.Addr(uint64(cur) << mem.LineShift), Parent: -1})
				issued++
			}
			return reqs
		}
	}
	return reqs
}

// valid reports whether buffer slot i still holds a live (not overwritten)
// entry. Because the buffer is a FIFO, a link is stale once the write head
// has lapped it; we approximate by accepting all slots once the buffer has
// filled, which matches GHB's behaviour of chasing possibly stale links.
func (g *GHB) valid(i int) bool {
	return i >= 0 && i < g.cfg.BufferSize
}

// chain returns up to n recent miss lines for the PC chain starting at pos,
// newest first. The returned slice is valid until the next call.
func (g *GHB) chain(pos, n int) []uint64 {
	out := g.chainBuf[:0]
	seen := 0
	for pos >= 0 && seen < n {
		out = append(out, g.buf[pos].line)
		pos = g.buf[pos].prev
		seen++
	}
	g.chainBuf = out
	return out
}

func (g *GHB) lookupIndex(pc trace.PC) *ghbIndex {
	var victim *ghbIndex
	for i := range g.index {
		e := &g.index[i]
		if e.valid && e.pc == pc {
			return e
		}
		switch {
		case victim == nil:
			victim = e
		case !e.valid && victim.valid:
			victim = e
		case e.valid == victim.valid && e.lru < victim.lru:
			victim = e
		}
	}
	victim.valid = false
	return victim
}
