package prefetch

import (
	"fmt"

	"github.com/impsim/imp/internal/snap"
	"github.com/impsim/imp/internal/trace"
)

// Snapshotter is implemented by prefetchers that can checkpoint their table
// state. Null carries no state and is handled by the simulator directly.
type Snapshotter interface {
	Snapshot(w *snap.Writer)
	Restore(r *snap.Reader) error
}

// Snapshot appends the stream prefetcher's table and clock to w.
func (s *Stream) Snapshot(w *snap.Writer) {
	w.U64(s.clock)
	w.Int(len(s.entries))
	for i := range s.entries {
		e := &s.entries[i]
		w.Bool(e.valid)
		if !e.valid {
			continue
		}
		w.U64(uint64(e.pc))
		w.U64(e.lastLine)
		w.Int(e.hits)
		w.I64(e.dir)
		w.U64(e.ahead)
		w.U64(e.lru)
	}
}

// Restore replaces the stream prefetcher's state with one written by
// Snapshot. The prefetcher must have been built with the same config.
func (s *Stream) Restore(r *snap.Reader) error {
	s.clock = r.U64()
	if n := r.Int(); n != len(s.entries) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("prefetch: snapshot has %d stream entries, table has %d", n, len(s.entries))
	}
	for i := range s.entries {
		e := &s.entries[i]
		*e = streamEntry{valid: r.Bool()}
		if !e.valid {
			continue
		}
		e.pc = trace.PC(r.U64())
		e.lastLine = r.U64()
		e.hits = r.Int()
		e.dir = r.I64()
		e.ahead = r.U64()
		e.lru = r.U64()
	}
	return r.Err()
}

// Snapshot appends the GHB's history buffer, PC index and clock to w. The
// chain-walk scratch buffer is not state and is not encoded.
func (g *GHB) Snapshot(w *snap.Writer) {
	w.U64(g.clock)
	w.Int(g.head)
	w.Bool(g.filled)
	w.Int(len(g.buf))
	for i := range g.buf {
		w.U64(g.buf[i].line)
		w.Int(g.buf[i].prev)
	}
	w.Int(len(g.index))
	for i := range g.index {
		e := &g.index[i]
		w.Bool(e.valid)
		if !e.valid {
			continue
		}
		w.U64(uint64(e.pc))
		w.Int(e.head)
		w.U64(e.lru)
	}
}

// Restore replaces the GHB's state with one written by Snapshot. The
// prefetcher must have been built with the same config.
func (g *GHB) Restore(r *snap.Reader) error {
	g.clock = r.U64()
	g.head = r.Int()
	g.filled = r.Bool()
	if n := r.Int(); n != len(g.buf) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("prefetch: snapshot has %d GHB buffer entries, model has %d", n, len(g.buf))
	}
	for i := range g.buf {
		g.buf[i].line = r.U64()
		g.buf[i].prev = r.Int()
	}
	if n := r.Int(); n != len(g.index) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("prefetch: snapshot has %d GHB index entries, model has %d", n, len(g.index))
	}
	for i := range g.index {
		e := &g.index[i]
		*e = ghbIndex{valid: r.Bool()}
		if !e.valid {
			continue
		}
		e.pc = trace.PC(r.U64())
		e.head = r.Int()
		e.lru = r.U64()
	}
	return r.Err()
}
