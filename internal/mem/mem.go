// Package mem provides the virtual memory substrate for the simulator:
// a write-once virtual address space whose regions are backed by Go slices.
//
// Workloads allocate their data structures (index arrays, data arrays,
// bit vectors) as regions, write them during input construction, and then
// the timing simulator — in particular the IMP prefetcher, which must read
// index values such as B[i+Δ] from "memory" exactly as the hardware would
// read them from a fetched cacheline — reads words back by virtual address.
package mem

import "fmt"

// Architectural constants used throughout the simulator. They mirror
// Table 1 of the paper.
const (
	// LineSize is the cacheline size in bytes.
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// PageSize is the allocation granularity of the address space.
	PageSize = 4096
	// AddressBits is the width of the virtual address space (§6.4).
	AddressBits = 48
)

// Addr is a virtual byte address.
type Addr uint64

// Line returns the cacheline-aligned address containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// LineID returns the cacheline number (address >> 6) containing a.
func (a Addr) LineID() uint64 { return uint64(a) >> LineShift }

// Offset returns the byte offset of a within its cacheline.
func (a Addr) Offset() uint64 { return uint64(a) & (LineSize - 1) }

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// Kind describes the element width of a region, which determines how
// ReadWord decodes backing storage.
type Kind uint8

// Region element kinds.
const (
	KindInt32 Kind = iota
	KindInt64
	KindFloat64
	KindBytes
)

func (k Kind) String() string {
	switch k {
	case KindInt32:
		return "int32"
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// elemSize returns the element size in bytes for kind k.
func (k Kind) elemSize() int {
	switch k {
	case KindInt32:
		return 4
	case KindInt64, KindFloat64:
		return 8
	default:
		return 1
	}
}

// Region is a contiguous, write-once range of the virtual address space
// backed by a Go slice. The zero value is invalid; obtain regions from
// Space.Alloc*.
type Region struct {
	Name string
	Base Addr
	kind Kind
	end  Addr // Base + size, precomputed: Find runs on the simulator hot path

	i32 []int32
	i64 []int64
	f64 []float64
	b   []byte
}

// Kind returns the region's element kind.
func (r *Region) Kind() Kind { return r.kind }

// Len returns the number of elements in the region.
func (r *Region) Len() int {
	switch r.kind {
	case KindInt32:
		return len(r.i32)
	case KindInt64:
		return len(r.i64)
	case KindFloat64:
		return len(r.f64)
	default:
		return len(r.b)
	}
}

// ElemSize returns the size in bytes of one element.
func (r *Region) ElemSize() int { return r.kind.elemSize() }

// Size returns the region size in bytes.
func (r *Region) Size() int { return r.Len() * r.ElemSize() }

// End returns the first address past the region.
func (r *Region) End() Addr { return r.end }

// Addr returns the virtual address of element i.
func (r *Region) Addr(i int) Addr { return r.Base + Addr(i*r.ElemSize()) }

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Int32s returns the backing slice of a KindInt32 region.
func (r *Region) Int32s() []int32 { return r.i32 }

// Int64s returns the backing slice of a KindInt64 region.
func (r *Region) Int64s() []int64 { return r.i64 }

// Float64s returns the backing slice of a KindFloat64 region.
func (r *Region) Float64s() []float64 { return r.f64 }

// Bytes returns the backing slice of a KindBytes region.
func (r *Region) Bytes() []byte { return r.b }

// word returns the value of the element covering byte offset off,
// widened to uint64. size selects the access width for byte regions.
func (r *Region) word(off uint64) uint64 {
	switch r.kind {
	case KindInt32:
		return uint64(uint32(r.i32[off/4]))
	case KindInt64:
		return uint64(r.i64[off/8])
	case KindFloat64:
		// Float data is never used as an index; return the raw bits' integer
		// truncation so reads are at least deterministic.
		return uint64(r.f64[off/8])
	default:
		return uint64(r.b[off])
	}
}

// Space is a write-once virtual address space. Allocate regions during
// workload construction; the simulator then resolves word reads by address.
//
// Space is not safe for concurrent mutation but is safe for concurrent
// reads once fully built.
type Space struct {
	regions []*Region // sorted by Base
	next    Addr
}

// NewSpace returns an empty address space. Allocations begin at a nonzero
// base so that address 0 is never valid.
func NewSpace() *Space {
	return &Space{next: 0x1000_0000}
}

// alloc reserves n elements of kind k under name at the next free base and
// returns the region. It panics on a negative size, which is a programming
// error in workload construction.
func (s *Space) alloc(name string, k Kind, n int) *Region {
	r, err := s.allocAt(name, k, s.next, n)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// allocAt is the single allocation path shared by workload construction
// (alloc, base = s.next) and the trace decoder (AllocAt, explicit base).
// Keeping one implementation guarantees decoded address spaces reproduce
// built ones exactly — layout rules can never drift between the two.
func (s *Space) allocAt(name string, k Kind, base Addr, n int) (*Region, error) {
	if n < 0 {
		return nil, fmt.Errorf("mem: negative allocation %q (%d)", name, n)
	}
	if base < s.next {
		return nil, fmt.Errorf("mem: region %q at %v overlaps allocated space (next free %v)", name, base, s.next)
	}
	r := &Region{Name: name, Base: base, kind: k}
	switch k {
	case KindInt32:
		r.i32 = make([]int32, n)
	case KindInt64:
		r.i64 = make([]int64, n)
	case KindFloat64:
		r.f64 = make([]float64, n)
	case KindBytes:
		r.b = make([]byte, n)
	default:
		return nil, fmt.Errorf("mem: region %q has unknown kind %d", name, k)
	}
	size := Addr(n * k.elemSize())
	r.end = base + size
	// Round the next base up to a page boundary and leave a guard page so
	// that off-by-one prefetches past a region never alias the next one.
	s.next = base + ((size + 2*PageSize - 1) &^ (PageSize - 1))
	s.regions = append(s.regions, r)
	return r, nil
}

// AllocInt32 allocates a region of n int32 elements.
func (s *Space) AllocInt32(name string, n int) *Region { return s.alloc(name, KindInt32, n) }

// AllocInt64 allocates a region of n int64 elements.
func (s *Space) AllocInt64(name string, n int) *Region { return s.alloc(name, KindInt64, n) }

// AllocFloat64 allocates a region of n float64 elements.
func (s *Space) AllocFloat64(name string, n int) *Region { return s.alloc(name, KindFloat64, n) }

// AllocBytes allocates a region of n bytes.
func (s *Space) AllocBytes(name string, n int) *Region { return s.alloc(name, KindBytes, n) }

// AllocAt reserves a region of n elements of kind k at an explicit base
// address. The trace decoder uses it to reproduce an encoded address space
// exactly; regions must arrive in ascending, non-overlapping order.
func (s *Space) AllocAt(name string, k Kind, base Addr, n int) (*Region, error) {
	return s.allocAt(name, k, base, n)
}

// Find returns the region containing a, or nil if a is unmapped. The binary
// search is hand-rolled: Find runs once per simulated access (prefetcher
// value taps), where sort.Search's closure overhead is measurable.
func (s *Space) Find(a Addr) *Region {
	lo, hi := 0, len(s.regions)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if s.regions[m].end > a {
			hi = m
		} else {
			lo = m + 1
		}
	}
	if lo < len(s.regions) && s.regions[lo].Contains(a) {
		return s.regions[lo]
	}
	return nil
}

// ReadWord reads the element covering address a, widened to uint64.
// Unmapped addresses read as zero: the hardware analog is a prefetcher
// reading a line of garbage, and zero keeps downstream address generation
// deterministic.
func (s *Space) ReadWord(a Addr) uint64 {
	r := s.Find(a)
	if r == nil {
		return 0
	}
	return r.word(uint64(a - r.Base))
}

// Mapped reports whether a falls inside any region.
func (s *Space) Mapped(a Addr) bool { return s.Find(a) != nil }

// Regions returns the allocated regions in address order. The returned
// slice is shared; callers must not modify it.
func (s *Space) Regions() []*Region { return s.regions }

// Footprint returns the total bytes allocated across regions.
func (s *Space) Footprint() int {
	total := 0
	for _, r := range s.regions {
		total += r.Size()
	}
	return total
}

// CachedReader reads words from a Space through a one-entry region cache.
// Accesses have strong region locality (a core streams an index array and
// chases into one data array), so most reads skip the binary search.
//
// A CachedReader is NOT safe for concurrent use; give each simulated core
// its own. The underlying Space stays shared and read-only.
type CachedReader struct {
	space *Space
	last  *Region
}

// NewCachedReader returns a reader over s with an empty cache.
func NewCachedReader(s *Space) *CachedReader { return &CachedReader{space: s} }

// ReadWord behaves exactly like Space.ReadWord (unmapped reads as zero).
func (c *CachedReader) ReadWord(a Addr) uint64 {
	r := c.last
	if r == nil || a < r.Base || a >= r.end {
		r = c.space.Find(a)
		if r == nil {
			return 0
		}
		c.last = r
	}
	return r.word(uint64(a - r.Base))
}
