package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrLineMath(t *testing.T) {
	cases := []struct {
		a      Addr
		line   Addr
		id     uint64
		offset uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{63, 0, 0, 63},
		{64, 64, 1, 0},
		{0x1000_0000, 0x1000_0000, 0x1000_0000 >> 6, 0},
		{0x1000_0027, 0x1000_0000, 0x1000_0000 >> 6, 0x27},
	}
	for _, c := range cases {
		if got := c.a.Line(); got != c.line {
			t.Errorf("Addr(%v).Line() = %v, want %v", c.a, got, c.line)
		}
		if got := c.a.LineID(); got != c.id {
			t.Errorf("Addr(%v).LineID() = %d, want %d", c.a, got, c.id)
		}
		if got := c.a.Offset(); got != c.offset {
			t.Errorf("Addr(%v).Offset() = %d, want %d", c.a, got, c.offset)
		}
	}
}

func TestAddrLineProperties(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		return addr.Line()+Addr(addr.Offset()) == addr &&
			addr.Offset() < LineSize &&
			addr.Line().Offset() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocDisjointAndAligned(t *testing.T) {
	s := NewSpace()
	a := s.AllocInt32("a", 1000)
	b := s.AllocInt64("b", 500)
	c := s.AllocBytes("c", 1)
	d := s.AllocFloat64("d", 7)

	regions := []*Region{a, b, c, d}
	for i, r := range regions {
		if r.Base%PageSize != 0 {
			t.Errorf("region %q base %v not page aligned", r.Name, r.Base)
		}
		for j := i + 1; j < len(regions); j++ {
			q := regions[j]
			if r.Base < q.End() && q.Base < r.End() {
				t.Errorf("regions %q and %q overlap", r.Name, q.Name)
			}
		}
	}
	// Guard page: the next region must start strictly after a full page gap.
	if b.Base < a.End()+PageSize-Addr(a.Size()%PageSize) {
		// The gap is at least one page by construction; check the simple bound.
		if b.Base-a.End() < 1 {
			t.Errorf("no guard gap between regions: a ends %v, b starts %v", a.End(), b.Base)
		}
	}
}

func TestRegionAddressing(t *testing.T) {
	s := NewSpace()
	r := s.AllocInt32("idx", 16)
	if r.ElemSize() != 4 {
		t.Fatalf("int32 elem size = %d, want 4", r.ElemSize())
	}
	if r.Size() != 64 {
		t.Fatalf("region size = %d, want 64", r.Size())
	}
	if got := r.Addr(3); got != r.Base+12 {
		t.Errorf("Addr(3) = %v, want %v", got, r.Base+12)
	}
	if !r.Contains(r.Base) || !r.Contains(r.End()-1) {
		t.Error("region must contain its own endpoints")
	}
	if r.Contains(r.End()) {
		t.Error("region must not contain End()")
	}
}

func TestReadWordInt32(t *testing.T) {
	s := NewSpace()
	r := s.AllocInt32("b", 8)
	for i := range r.Int32s() {
		r.Int32s()[i] = int32(i * 100)
	}
	for i := 0; i < 8; i++ {
		if got := s.ReadWord(r.Addr(i)); got != uint64(i*100) {
			t.Errorf("ReadWord(%v) = %d, want %d", r.Addr(i), got, i*100)
		}
	}
	// Mid-element reads resolve to the covering element.
	if got := s.ReadWord(r.Addr(2) + 1); got != 200 {
		t.Errorf("mid-element read = %d, want 200", got)
	}
}

func TestReadWordInt64AndBytes(t *testing.T) {
	s := NewSpace()
	r64 := s.AllocInt64("r64", 4)
	r64.Int64s()[3] = 0x1234_5678
	if got := s.ReadWord(r64.Addr(3)); got != 0x1234_5678 {
		t.Errorf("int64 read = %#x, want 0x12345678", got)
	}
	rb := s.AllocBytes("bits", 16)
	rb.Bytes()[5] = 0xAB
	if got := s.ReadWord(rb.Addr(5)); got != 0xAB {
		t.Errorf("byte read = %#x, want 0xAB", got)
	}
}

func TestReadWordNegativeInt32(t *testing.T) {
	s := NewSpace()
	r := s.AllocInt32("neg", 1)
	r.Int32s()[0] = -1
	// Negative indices widen as their unsigned 32-bit pattern; index arrays
	// in the workloads are nonnegative, but the read must be deterministic.
	if got := s.ReadWord(r.Addr(0)); got != 0xFFFF_FFFF {
		t.Errorf("negative int32 read = %#x, want 0xFFFFFFFF", got)
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	s := NewSpace()
	s.AllocInt32("only", 4)
	if got := s.ReadWord(0); got != 0 {
		t.Errorf("unmapped low read = %d, want 0", got)
	}
	if got := s.ReadWord(0xFFFF_FFFF_0000); got != 0 {
		t.Errorf("unmapped high read = %d, want 0", got)
	}
	if s.Mapped(0) {
		t.Error("address 0 must never be mapped")
	}
}

func TestFindBoundaries(t *testing.T) {
	s := NewSpace()
	a := s.AllocInt32("a", 100)
	b := s.AllocInt32("b", 100)
	if got := s.Find(a.Base); got != a {
		t.Error("Find(a.Base) != a")
	}
	if got := s.Find(a.End() - 1); got != a {
		t.Error("Find(a.End()-1) != a")
	}
	if got := s.Find(a.End()); got != nil {
		t.Errorf("Find(a.End()) = %v, want nil (guard page)", got.Name)
	}
	if got := s.Find(b.Base); got != b {
		t.Error("Find(b.Base) != b")
	}
}

func TestFootprint(t *testing.T) {
	s := NewSpace()
	s.AllocInt32("a", 100) // 400 bytes
	s.AllocInt64("b", 10)  // 80 bytes
	s.AllocBytes("c", 7)   // 7 bytes
	if got := s.Footprint(); got != 487 {
		t.Errorf("Footprint = %d, want 487", got)
	}
}

func TestFindIsConsistentWithContains(t *testing.T) {
	s := NewSpace()
	var regions []*Region
	for i := 0; i < 10; i++ {
		regions = append(regions, s.AllocInt32("r", 57+i*13))
	}
	f := func(raw uint32) bool {
		// Probe addresses around the allocated range.
		a := Addr(0x1000_0000 + uint64(raw)%uint64(s.Footprint()*4))
		found := s.Find(a)
		for _, r := range regions {
			if r.Contains(a) {
				return found == r
			}
		}
		return found == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
