// Package imp is a reproduction of "IMP: Indirect Memory Prefetcher"
// (Yu, Hughes, Satish, Devadas — MICRO-48, 2015) as a reusable Go library.
//
// It bundles an instrumented-workload tracer (the paper's seven sparse
// kernels plus a dense control), a Graphite-style multicore timing
// simulator (in-order/OoO cores, sector caches, ACKwise directory, mesh
// NoC, DDR3/simple DRAM), the IMP prefetcher itself (stream table, IPD,
// prefetch table with multi-way/multi-level indirection, granularity
// predictor for partial cacheline accessing), and experiment runners that
// regenerate every table and figure of the paper's evaluation.
//
// Quick start:
//
//	res, err := imp.Run(imp.Config{Workload: "pagerank", Cores: 16, System: imp.SystemIMP})
//	fmt.Println(res.Cycles, res.Coverage)
//
// or regenerate a paper figure:
//
//	tbl, err := imp.Experiments.Run("fig9", imp.ExpOptions{Cores: 64})
//	fmt.Println(tbl)
package imp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/impsim/imp/internal/core"
	"github.com/impsim/imp/internal/cpu"
	"github.com/impsim/imp/internal/progcache"
	"github.com/impsim/imp/internal/sim"
	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

// System selects the evaluated configuration (§5.4).
type System int

// Systems, in the paper's naming.
const (
	// SystemBaseline: stream prefetcher per L1, no IMP ("Base").
	SystemBaseline System = iota
	// SystemIMP: stream + indirect prefetching (§3).
	SystemIMP
	// SystemIMPPartialNoC: IMP + partial cacheline accessing in the NoC.
	SystemIMPPartialNoC
	// SystemIMPPartial: IMP + partial accessing in NoC and DRAM.
	SystemIMPPartial
	// SystemSWPrefetch: Mowry-style compiler-inserted indirect prefetches.
	SystemSWPrefetch
	// SystemPerfect: the idealized prefetcher with finite bandwidth
	// ("Perfect Prefetching").
	SystemPerfect
	// SystemIdeal: all accesses hit in the L1 ("Ideal").
	SystemIdeal
	// SystemGHB: stream + global-history-buffer correlation prefetcher.
	SystemGHB
	// SystemNone: no prefetching at all.
	SystemNone
)

var systemNames = map[System]string{
	SystemBaseline:      "base",
	SystemIMP:           "imp",
	SystemIMPPartialNoC: "imp+partial-noc",
	SystemIMPPartial:    "imp+partial",
	SystemSWPrefetch:    "swpref",
	SystemPerfect:       "perfpref",
	SystemIdeal:         "ideal",
	SystemGHB:           "ghb",
	SystemNone:          "none",
}

func (s System) String() string { return systemNames[s] }

// SystemNames returns every system configuration name ("base", "imp", ...)
// in declaration order.
func SystemNames() []string {
	out := make([]string, 0, len(systemNames))
	for s := SystemBaseline; s <= SystemNone; s++ {
		out = append(out, systemNames[s])
	}
	return out
}

// ParseSystem resolves a system configuration by its paper name, as printed
// by String ("imp", "base", "imp+partial", ...).
func ParseSystem(name string) (System, error) {
	for s, n := range systemNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("imp: unknown system %q (have %v)", name, SystemNames())
}

// MarshalJSON encodes the system as its stable paper name, so serialized
// Configs (sweep job specs) survive reordering of the System constants.
func (s System) MarshalJSON() ([]byte, error) {
	n, ok := systemNames[s]
	if !ok {
		return nil, fmt.Errorf("imp: unknown system %d", s)
	}
	return json.Marshal(n)
}

// UnmarshalJSON accepts a system name ("imp") or a legacy numeric value.
func (s *System) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		v, perr := ParseSystem(name)
		if perr != nil {
			return perr
		}
		*s = v
		return nil
	}
	var num int
	if err := json.Unmarshal(data, &num); err != nil {
		return fmt.Errorf("imp: system must be a name or number: %s", data)
	}
	v := System(num)
	if _, ok := systemNames[v]; !ok {
		return fmt.Errorf("imp: unknown system %d", num)
	}
	*s = v
	return nil
}

// Config describes one simulation run.
type Config struct {
	// Workload is one of Workloads() (e.g. "pagerank", "spmv").
	Workload string
	// Cores is the core count; must be a perfect square (Table 1: 16/64/256).
	Cores int
	// System picks the prefetching configuration.
	System System
	// Scale multiplies the default input size (default 1.0).
	Scale float64
	// OutOfOrder switches the cores to the 32-entry-window model (§6.3.1).
	OutOfOrder bool
	// Seed perturbs input generation (0 = default).
	Seed int64

	// PTEntries, IPDEntries and MaxPrefetchDistance override Table 2's IMP
	// parameters when nonzero (sensitivity studies, §6.3.2).
	PTEntries           int
	IPDEntries          int
	MaxPrefetchDistance int

	// program, when set, reuses a pre-built trace (experiment caching).
	program *trace.Program
}

// Result is the outcome of one run.
type Result struct {
	Cycles       int64
	Instructions uint64
	// Throughput is instructions per cycle summed over cores.
	Throughput float64
	// Coverage, Accuracy and AMAT are the Table 3 metrics.
	Coverage float64
	Accuracy float64
	AMAT     float64
	// MissFracIndirect/Stream/Other decompose L1 misses (Fig 1).
	MissFracIndirect float64
	MissFracStream   float64
	MissFracOther    float64
	// StallIndirect/StallOther are stall cycles by access kind (Fig 2).
	StallIndirect int64
	StallOther    int64
	// NoCFlitHops and DRAMBytes are the Fig 12 traffic metrics.
	NoCFlitHops uint64
	DRAMBytes   uint64
	// IMP internals.
	PatternsDetected  uint64
	SecondaryPatterns uint64

	// Metrics exposes the full internal metric set for advanced users. It
	// is excluded from JSON export (internal layout, not a stable format).
	Metrics *sim.Metrics `json:"-"`
}

// Workloads returns the available workload names in the paper's order.
func Workloads() []string { return workload.Names() }

// PaperWorkloads returns the seven kernels of the evaluation (§5.3).
func PaperWorkloads() []string { return workload.PaperSet() }

// DefaultIMPParams exposes Table 2's IMP configuration.
func DefaultIMPParams() core.Params { return core.DefaultParams() }

// StorageCost returns the §6.4 hardware budget of the default (or partial)
// IMP configuration.
func StorageCost(partial bool) core.StorageCost {
	p := core.DefaultParams()
	p.Partial = partial
	return p.Storage()
}

// BuildProgram traces a workload once for reuse across Run calls with
// the same workload/cores/scale (experiments sweep systems over one trace).
// Builds go through the trace cache: identical (workload, cores, scale,
// swpref, seed) requests are served from memory within a process and from
// the on-disk binary trace store across processes (set IMP_TRACE_CACHE to
// relocate it, or IMP_TRACE_CACHE=off to always rebuild). The returned
// program is shared and must be treated as read-only.
func BuildProgram(name string, cores int, scale float64, swpref bool, seed int64) (*Program, error) {
	p, err := progcache.Get(name, workload.Options{
		Cores: cores, Scale: scale, SoftwarePrefetch: swpref, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}

// Program is an opaque pre-built workload trace.
type Program struct{ p *trace.Program }

// Accesses returns the number of demand memory accesses traced.
func (p *Program) Accesses() uint64 { return p.p.TotalAccesses() }

// Instructions returns the total dynamic instruction count.
func (p *Program) Instructions() uint64 { return p.p.TotalInstructions() }

// WriteTo encodes the program in the versioned binary trace format
// (varint-delta records, ~6-8 bytes per access instead of 24 in memory).
// The same format backs the on-disk trace cache and `imptrace encode`.
func (p *Program) WriteTo(w io.Writer) (int64, error) { return p.p.WriteTo(w) }

// WriteFile encodes the program to path (atomic temp-file-and-rename).
func (p *Program) WriteFile(path string) error { return p.p.WriteFile(path) }

// ReadProgram decodes a binary trace from r, verifying its checksum and
// materializing all records. To replay without materializing, use
// RunTraceFile.
func ReadProgram(r io.Reader) (*Program, error) {
	tp, err := trace.ReadProgram(r)
	if err != nil {
		return nil, err
	}
	return &Program{p: tp}, nil
}

// ReadProgramFile loads a binary trace written by WriteFile or `imptrace
// encode`.
func ReadProgramFile(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ReadProgram(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// RunTraceFile replays an encoded trace file under cfg, streaming records
// from disk with memory bounded by the replay lookahead window — the way to
// run traces too large to materialize. The trace defines the core count and
// inputs; cfg.Workload, cfg.Cores, cfg.Scale and cfg.Seed are ignored.
func RunTraceFile(path string, cfg Config) (*Result, error) {
	fs, err := trace.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	cfg.Cores = fs.Cores()
	scfg, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	m, err := sim.RunSource(fs, scfg)
	if err != nil {
		return nil, err
	}
	return newResult(m), nil
}

// RunProgram simulates a pre-built trace under cfg (cfg.Workload/Scale/Seed
// are ignored; the program defines them).
func RunProgram(prog *Program, cfg Config) (*Result, error) {
	cfg.program = prog.p
	return Run(cfg)
}

// Run builds the workload trace (unless pre-built) and simulates it.
func Run(cfg Config) (*Result, error) {
	cfg.applyDefaults()
	prog, err := cfg.resolveProgram()
	if err != nil {
		return nil, err
	}
	scfg, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	m, err := sim.Run(prog, scfg)
	if err != nil {
		return nil, err
	}
	return newResult(m), nil
}

// applyDefaults fills the run-shaping defaults (Cores 64, Scale 1.0) in
// place, so every entry point resolves the same effective configuration.
func (cfg *Config) applyDefaults() {
	if cfg.Cores <= 0 {
		cfg.Cores = 64
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
}

// workloadOptions is the trace build request cfg implies — the same values
// participate in trace-cache and checkpoint content keys.
func (cfg Config) workloadOptions() workload.Options {
	return workload.Options{
		Cores:            cfg.Cores,
		Scale:            cfg.Scale,
		SoftwarePrefetch: cfg.System == SystemSWPrefetch,
		Seed:             cfg.Seed,
	}
}

// resolveProgram returns the pre-built trace when one is attached, and
// otherwise builds (or fetches) it through the trace cache.
func (cfg Config) resolveProgram() (*trace.Program, error) {
	if cfg.program != nil {
		return cfg.program, nil
	}
	return progcache.Get(cfg.Workload, cfg.workloadOptions())
}

func (cfg Config) simConfig() (sim.Config, error) {
	sc := sim.DefaultConfig(cfg.Cores)
	if cfg.OutOfOrder {
		sc.CoreModel = cpu.OutOfOrder
	}
	switch cfg.System {
	case SystemBaseline, SystemSWPrefetch:
		sc.Prefetcher = sim.PrefetchStream
	case SystemIMP:
		sc.Prefetcher = sim.PrefetchIMP
	case SystemIMPPartialNoC:
		sc.Prefetcher = sim.PrefetchIMP
		sc.Partial = sim.PartialNoC
	case SystemIMPPartial:
		sc.Prefetcher = sim.PrefetchIMP
		sc.Partial = sim.PartialNoCDRAM
	case SystemPerfect:
		sc.Prefetcher = sim.PrefetchNone
		sc.PerfectPrefetch = true
	case SystemIdeal:
		sc.Prefetcher = sim.PrefetchNone
		sc.Ideal = true
	case SystemGHB:
		sc.Prefetcher = sim.PrefetchGHB
	case SystemNone:
		sc.Prefetcher = sim.PrefetchNone
	default:
		return sc, fmt.Errorf("imp: unknown system %d", cfg.System)
	}
	if cfg.PTEntries > 0 {
		sc.IMP.PTEntries = cfg.PTEntries
	}
	if cfg.IPDEntries > 0 {
		sc.IMP.IPDEntries = cfg.IPDEntries
	}
	if cfg.MaxPrefetchDistance > 0 {
		sc.IMP.MaxPrefetchDistance = cfg.MaxPrefetchDistance
	}
	return sc, nil
}

func newResult(m *sim.Metrics) *Result {
	ind, str, oth := m.MissBreakdown()
	return &Result{
		Cycles:            m.Cycles,
		Instructions:      m.Instructions,
		Throughput:        m.Throughput(),
		Coverage:          m.Coverage(),
		Accuracy:          m.Accuracy(),
		AMAT:              m.AMAT(),
		MissFracIndirect:  ind,
		MissFracStream:    str,
		MissFracOther:     oth,
		StallIndirect:     m.Kind[trace.KindIndirect].StallCycles,
		StallOther:        m.Kind[trace.KindStream].StallCycles + m.Kind[trace.KindOther].StallCycles,
		NoCFlitHops:       m.NoCFlitHops,
		DRAMBytes:         m.DRAMBytes,
		PatternsDetected:  m.IMPPatterns,
		SecondaryPatterns: m.IMPSecondary,
		Metrics:           m,
	}
}
