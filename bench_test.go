package imp

// Benchmark harness: one benchmark per table/figure of the paper (DESIGN.md
// maps each to its experiment id). Each benchmark iteration regenerates the
// table at a reduced scale (16 cores, 10-20% inputs) so `go test -bench=.`
// completes quickly; run cmd/impbench for full-scale reproductions. Key
// series values are attached as custom benchmark metrics.

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"github.com/impsim/imp/internal/ckptcache"
)

// benchOpt keeps benchmark iterations cheap but non-degenerate.
var benchOpt = ExpOptions{Cores: 16, Scale: 0.15}

// runExp runs one experiment per iteration and reports selected columns of
// the average row as metrics.
func runExp(b *testing.B, id string, metricCols map[string]int) {
	b.Helper()
	var tbl *Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = Experiments.Run(id, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(tbl.Rows) == 0 {
		b.Fatal("empty table")
	}
	avg := tbl.Rows[len(tbl.Rows)-1]
	for name, col := range metricCols {
		if col < len(avg.Values) {
			b.ReportMetric(avg.Values[col], name)
		}
	}
}

func BenchmarkFig1MissBreakdown(b *testing.B) {
	runExp(b, "fig1", map[string]int{"indirect_frac": 0, "stream_frac": 1})
}

func BenchmarkFig2RuntimeBreakdown(b *testing.B) {
	runExp(b, "fig2", map[string]int{"norm_runtime": 2, "perfpref": 3})
}

func BenchmarkFig9Performance(b *testing.B) {
	runExp(b, "fig9", map[string]int{"base": 1, "imp": 2, "swpref": 3})
}

func BenchmarkTable3Effectiveness(b *testing.B) {
	runExp(b, "table3", map[string]int{"stream_cov": 0, "imp_cov": 3, "imp_acc": 4})
}

func BenchmarkFig10InstructionOverhead(b *testing.B) {
	runExp(b, "fig10", map[string]int{"imp_instr": 1, "swpref_instr": 2})
}

func BenchmarkFig11PartialAccess(b *testing.B) {
	runExp(b, "fig11", map[string]int{"imp": 0, "partial_noc_dram": 2, "ideal": 3})
}

func BenchmarkFig12Traffic(b *testing.B) {
	runExp(b, "fig12", map[string]int{"noc_ratio": 0, "dram_ratio": 1})
}

func BenchmarkFig13OutOfOrder(b *testing.B) {
	runExp(b, "fig13", map[string]int{"imp_io": 2, "imp_ooo": 3})
}

func BenchmarkFig14PTSize(b *testing.B) {
	runExp(b, "fig14", map[string]int{"pt8": 0, "pt32": 2})
}

func BenchmarkFig15IPDSize(b *testing.B) {
	runExp(b, "fig15", map[string]int{"ipd2": 0, "ipd8": 2})
}

func BenchmarkFig16Distance(b *testing.B) {
	runExp(b, "fig16", map[string]int{"dist4": 0, "dist32": 3})
}

func BenchmarkGHBComparison(b *testing.B) {
	runExp(b, "ghb", map[string]int{"ghb_speedup": 1, "imp_speedup": 2})
}

// BenchmarkSweepPrefixSharing measures checkpointed sweep execution on the
// fig2+table3 pair — the grids overlap in every workload's Perfect and
// Baseline cells, so with checkpointing on, table3 forks those cells from
// the checkpoints fig2 published instead of re-simulating them (and every
// iteration after the first forks everything from the warm cache). "off" is
// the plain path on the identical workload; the ratio of the two is the
// speedup recorded in BENCH_*.json.
func BenchmarkSweepPrefixSharing(b *testing.B) {
	run := func(b *testing.B, opt ExpOptions) {
		b.Helper()
		for _, id := range []string{"fig2", "table3"} {
			if _, err := Experiments.Run(id, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, benchOpt)
		}
	})
	b.Run("on", func(b *testing.B) {
		ckptcache.Flush()
		defer ckptcache.Flush()
		opt := benchOpt
		opt.Checkpoints = CheckpointPolicy{Enabled: true, Dir: b.TempDir()}
		// Populate the cache untimed: the steady state under measurement is
		// a sweep whose prefixes are already checkpointed (by an earlier
		// run, another experiment, or — fleet-side — another job).
		run(b, opt)
		ResetCheckpointStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, opt)
		}
		s := GetCheckpointStats()
		b.ReportMetric(float64(s.Hits)/float64(b.N), "ckpt_hits/op")
		b.ReportMetric(float64(s.Misses)/float64(b.N), "ckpt_misses/op")
	})
}

// BenchmarkSimulatorThroughput measures raw replay speed (records/sec) of
// the timing simulator on the baseline configuration. The tick loop is
// expected to run allocation-free; allocs/op here is essentially the
// per-run system construction cost and is gated by CI.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog, err := BuildProgram("spmv", 16, 0.3, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	accesses := prog.Accesses()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunProgram(prog, Config{Cores: 16, System: SystemBaseline}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkIMPObserve measures the prefetcher model itself (per-access
// hardware-model cost, the dominant simulation overhead of IMP configs).
func BenchmarkIMPObserve(b *testing.B) {
	prog, err := BuildProgram("pagerank", 16, 0.2, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunProgram(prog, Config{Cores: 16, System: SystemIMP}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceEncode measures binary trace encoding (cmd/imptrace encode,
// trace-cache writes).
func BenchmarkTraceEncode(b *testing.B) {
	prog, err := BuildProgram("spmv", 16, 0.3, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	var bytesOut int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := prog.WriteTo(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bytesOut = n
	}
	b.SetBytes(bytesOut)
}

// BenchmarkTraceDecode measures binary trace decoding (trace-cache reads),
// the startup cost every cached experiment pays instead of a rebuild.
func BenchmarkTraceDecode(b *testing.B) {
	prog, err := BuildProgram("spmv", 16, 0.3, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := prog.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ReadProgram(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if p.Accesses() != prog.Accesses() {
			b.Fatal("decode mismatch")
		}
	}
}

// BenchmarkTraceStreamReplay measures the bounded-memory replay path: the
// simulator pulling records through a FileSource window instead of a
// materialized program.
func BenchmarkTraceStreamReplay(b *testing.B) {
	prog, err := BuildProgram("spmv", 16, 0.3, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "spmv.imptrace")
	if err := prog.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	accesses := prog.Accesses()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTraceFile(path, Config{System: SystemBaseline}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkWorkloadGeneration measures trace construction speed.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, w := range []string{"pagerank", "spmv", "graph500"} {
		b.Run(w, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildProgram(w, 16, 0.15, false, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalability runs the fig9 headline comparison at each paper core
// count to show the simulator handles 16/64/256-core meshes.
func BenchmarkScalability(b *testing.B) {
	for _, cores := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("cores%d", cores), func(b *testing.B) {
			prog, err := BuildProgram("spmv", cores, 0.15, false, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var base, impc int64
			for i := 0; i < b.N; i++ {
				rb, err := RunProgram(prog, Config{Cores: cores, System: SystemBaseline})
				if err != nil {
					b.Fatal(err)
				}
				ri, err := RunProgram(prog, Config{Cores: cores, System: SystemIMP})
				if err != nil {
					b.Fatal(err)
				}
				base, impc = rb.Cycles, ri.Cycles
			}
			b.ReportMetric(float64(base)/float64(impc), "imp_speedup")
		})
	}
}
