package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/impsim/imp/internal/service"
)

// lockedBuffer lets the test read router output while run() writes it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-backends") {
		t.Error("help output missing flags")
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestMissingBackendsExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("missing -backends exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-backends is required") {
		t.Errorf("unhelpful error: %s", errb.String())
	}
}

// TestLegacyReplicasFlagExitsTwo: -replicas used to mean virtual nodes;
// an explicit value beyond the backend count (e.g. the old default, 64)
// must be rejected with a message naming the rename, not silently become
// a 64-way replication factor.
func TestLegacyReplicasFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-addr", "127.0.0.1:0", "-backends", "http://127.0.0.1:1", "-replicas", "64"}
	if code := run(context.Background(), args, &out, &errb); code != 2 {
		t.Fatalf("legacy -replicas 64 exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-vnodes") {
		t.Errorf("error does not name the renamed flag: %s", errb.String())
	}
}

func TestBadBackendURLExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-backends", "::notaurl"}, &out, &errb); code != 1 {
		t.Fatalf("bad backend URL exited %d, want 1", code)
	}
}

// TestRouteAndGracefulShutdown boots the router over one real in-process
// impserve backend, runs a job end to end through the router's public
// surface, then cancels the context and expects a clean exit.
func TestRouteAndGracefulShutdown(t *testing.T) {
	svc := service.New(service.Config{Parallelism: 2})
	backend := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		backend.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb lockedBuffer
	exited := make(chan int, 1)
	go func() {
		exited <- run(ctx, []string{"-addr", "127.0.0.1:0", "-backends", backend.URL, "-health-interval", "50ms"}, &out, &errb)
	}()

	addrRe := regexp.MustCompile(`listening on ([^\s,]+)`)
	var base string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("router never reported its address; stderr: %s", errb.String())
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "1/1 backends") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := get("/v1/workloads"); code != 200 || !strings.Contains(body, "pagerank") {
		t.Fatalf("workloads: %d %q", code, body)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"sweep":[{"Workload":"spmv","Cores":4,"Scale":0.05,"System":"imp"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	idRe := regexp.MustCompile(`"id":\s*"(b0\.j-\d+)"`)
	m := idRe.FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("no composite job id in %s", body)
	}
	if code, evs := get("/v1/jobs/" + m[1] + "/events"); code != 200 || !strings.Contains(evs, `"state":"done"`) {
		t.Fatalf("events: %d %q", code, evs)
	}
	if code, res := get("/v1/jobs/" + m[1] + "/result"); code != 200 || !strings.Contains(res, `"Cycles"`) {
		t.Fatalf("result: %d %q", code, res)
	}
	if code, st := get("/v1/stats"); code != 200 || !strings.Contains(st, `"per_backend"`) {
		t.Fatalf("stats: %d %q", code, st)
	}

	cancel()
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, errb.String())
		}
	case <-time.After(40 * time.Second):
		t.Fatal("router did not shut down")
	}
	if !strings.Contains(out.String(), "bye") {
		t.Errorf("missing shutdown message; stdout: %s", out.String())
	}
}

// TestNonsenseFlagValuesExitTwo: an explicit zero for a flag whose library
// default hides behind zero must be rejected at the flag layer, not
// silently become that default.
func TestNonsenseFlagValuesExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-backends", "http://127.0.0.1:1", "-vnodes", "0"},
		{"-backends", "http://127.0.0.1:1", "-replicas", "0"},
		{"-backends", "http://127.0.0.1:1", "-inflight", "-3"},
		{"-backends", "http://127.0.0.1:1", "-retries", "-2"},
	} {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("%v exited %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

// TestReplicasAboveInitialBackendsWarns: now that membership is dynamic, a
// replication factor modestly above the *initial* backend count is a
// legitimate scale-up plan — warn about the cap, do not die (only
// vnodes-scale values like the legacy 64 still exit 2).
func TestReplicasAboveInitialBackendsWarns(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // shut down as soon as the listener is up
	var out, errb lockedBuffer
	args := []string{"-addr", "127.0.0.1:0", "-backends", "http://127.0.0.1:1", "-replicas", "3"}
	if code := run(ctx, args, &out, &errb); code != 0 {
		t.Fatalf("-replicas 3 with 1 initial backend exited %d, want 0 (warn and run); stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "capped at the live member count") {
		t.Errorf("missing cap warning; stderr: %s", errb.String())
	}
}
