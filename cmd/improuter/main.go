// Command improuter fronts a fleet of impserve backends with a
// consistent-hashing router: each submitted job is hashed by its
// content-addressed result key onto the backend ring, so identical
// submissions always land on the backend whose result store owns that key
// and the single-instance dedup/cache guarantees survive sharding. The
// router speaks the same api/ wire protocol as impserve — clients cannot
// tell the difference — and relays NDJSON progress streams with `?from=`
// resume intact.
//
// Usage:
//
//	improuter -addr :8090 -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Backends are health-checked on an interval, evicted from routing while
// down and readmitted on recovery; submissions retry onto the next ring
// candidate (excluding failed nodes) up to -retries times (-retries 0
// disables retries; the default -1 tries every remaining candidate).
//
// Ring membership is live: POST /v1/backends joins a running impserve
// (warmed with the key ranges it acquires before it serves traffic),
// DELETE /v1/backends/{name} retires one (gracefully draining its stored
// results to their new owners; add ?force=true for a crashed node), and
// GET /v1/backends lists the members. Set -admin-token to require
// "Authorization: Bearer <token>" on that surface.
//
// Finished results are replicated: with -replicas R (default 2), each
// result is copied asynchronously from its owner to the next R-1 healthy
// ring successors via the backends' internal PUT /v1/results/{key}
// surface, and a cold owner is read-repaired from its successors at
// submit time — so killing or restarting a backend does not cost the
// fleet its cached results. Virtual-node placement hashes by backend
// address, so reordering -backends preserves every key's ownership.
//
// GET /metrics serves Prometheus text exposition for the router and its
// per-backend counters; -quota-rate/-quota-burst enforce per-tenant
// submission quotas at the front door (X-Imp-Tenant header, 429 +
// Retry-After) before any backend is contacted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/impsim/imp/internal/router"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("improuter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8090", "listen address")
		backends   = fs.String("backends", "", "comma-separated impserve base URLs (required; initial ring membership)")
		vnodes     = fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		replicas   = fs.Int("replicas", 2, "backends holding each result (owner + replicas-1 ring successors); 1 disables replication")
		replPoll   = fs.Duration("replica-poll", 250*time.Millisecond, "poll period while waiting for a job to finish before replicating its result")
		inflight   = fs.Int("inflight", 64, "max concurrently proxied requests per backend")
		retries    = fs.Int("retries", router.RetriesAll, "extra backends tried per submit after the owner fails (0 = none, -1 = all remaining)")
		interval   = fs.Duration("health-interval", 2*time.Second, "backend health probe period")
		probeTO    = fs.Duration("health-timeout", time.Second, "single health probe timeout")
		token      = fs.String("admin-token", "", "bearer token required on the /v1/backends membership surface (empty = open)")
		drain      = fs.Duration("drain", 30*time.Second, "shutdown grace for in-flight proxied requests")
		quotaRate  = fs.Float64("quota-rate", 0, "per-tenant submissions/sec admitted at the router before any backend is contacted (0 = quotas off)")
		quotaBurst = fs.Float64("quota-burst", 0, "per-tenant burst above -quota-rate (0 = rate, min 1)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "improuter: -backends is required (comma-separated impserve URLs)")
		return 2
	}
	// Explicit nonsense fails loudly here rather than silently becoming the
	// library default: router.Config treats zero as "default" for these
	// fields (an explicit zero is meaningless for any of them), so the flag
	// layer is where "-vnodes 0" must be caught.
	for _, bad := range []struct {
		name string
		val  int
	}{{"vnodes", *vnodes}, {"replicas", *replicas}, {"inflight", *inflight}} {
		if bad.val < 1 {
			fmt.Fprintf(stderr, "improuter: -%s must be at least 1, got %d\n", bad.name, bad.val)
			return 2
		}
	}
	if *retries < -1 {
		fmt.Fprintf(stderr, "improuter: -retries must be -1 (all remaining), 0 (none) or positive, got %d\n", *retries)
		return 2
	}
	// -replicas used to mean virtual nodes (now -vnodes); an explicit value
	// far beyond the backend count is almost certainly a pre-rename start
	// script, and silently turning 64 vnodes into 64-way replication would
	// be a nasty surprise — fail loudly. A value only modestly above the
	// *initial* count is legitimate now that membership is dynamic (start
	// two backends, -replicas 3, join the third later): warn and continue,
	// since the effective factor is clamped to the live member count anyway.
	explicitReplicas := false
	fs.Visit(func(f *flag.Flag) { explicitReplicas = explicitReplicas || f.Name == "replicas" })
	if explicitReplicas && *replicas > len(urls) {
		if *replicas > 8 {
			fmt.Fprintf(stderr, "improuter: -replicas %d exceeds the %d configured backend(s); "+
				"it is the replication factor now — virtual nodes moved to -vnodes\n", *replicas, len(urls))
			return 2
		}
		fmt.Fprintf(stderr, "improuter: -replicas %d exceeds the %d initial backend(s); "+
			"the effective factor is capped at the live member count until more join\n", *replicas, len(urls))
	}

	rt, err := router.New(router.Config{
		Backends:       urls,
		Vnodes:         *vnodes,
		Replicas:       *replicas,
		ReplicaPoll:    *replPoll,
		Inflight:       *inflight,
		Retries:        *retries,
		HealthInterval: *interval,
		HealthTimeout:  *probeTO,
		AdminToken:     *token,
		QuotaRate:      *quotaRate,
		QuotaBurst:     *quotaBurst,
	})
	if err != nil {
		fmt.Fprintln(stderr, "improuter:", err)
		return 1
	}
	defer rt.Close()
	srv := &http.Server{Handler: rt.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "improuter:", err)
		return 1
	}
	fmt.Fprintf(stdout, "improuter: listening on %s, routing to %d backend(s)\n", ln.Addr(), len(urls))

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "improuter:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "improuter: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(stderr, "improuter: http shutdown:", err)
	}
	fmt.Fprintln(stdout, "improuter: bye")
	return 0
}
