package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTrace(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// isolateCache keeps the trace cache inside the test so runs are hermetic.
func isolateCache(t *testing.T) {
	t.Helper()
	t.Setenv("IMP_TRACE_CACHE", t.TempDir())
}

func TestHelpExitsZero(t *testing.T) {
	for _, args := range [][]string{
		{"-h"},
		{"help"},
		{"stat", "-h"},
		{"encode", "-h"},
		{"decode", "-h"},
	} {
		if _, _, code := runTrace(t, args...); code != 0 {
			t.Errorf("%v exited %d, want 0", args, code)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-nope"},
		{"stat", "-nope"},
		{"encode", "-nope"},
		{"decode", "-nope"},
	} {
		if _, _, code := runTrace(t, args...); code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	_, errb, code := runTrace(t, "frobnicate")
	if code != 2 || !strings.Contains(errb, "unknown command") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestUnknownWorkload(t *testing.T) {
	isolateCache(t)
	_, errb, code := runTrace(t, "stat", "-workload", "nope")
	if code != 1 || !strings.Contains(errb, "unknown") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

// TestLegacyInvocation pins the pre-subcommand CLI: bare flags behave as
// `stat`.
func TestLegacyInvocation(t *testing.T) {
	isolateCache(t)
	out, errb, code := runTrace(t, "-workload", "spmv", "-cores", "4", "-scale", "0.05", "-dump", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"workload=spmv", "accesses", "kinds", "balance", "core 0 head:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEncodeRequiresOutput(t *testing.T) {
	_, errb, code := runTrace(t, "encode", "-workload", "spmv", "-cores", "4", "-scale", "0.05")
	if code != 2 || !strings.Contains(errb, "-o required") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestDecodeRequiresInput(t *testing.T) {
	_, errb, code := runTrace(t, "decode")
	if code != 2 || !strings.Contains(errb, "-i required") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestDecodeMissingFile(t *testing.T) {
	_, _, code := runTrace(t, "decode", "-i", filepath.Join(t.TempDir(), "absent.imptrace"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestDecodeGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.imptrace")
	if err := os.WriteFile(path, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errb, code := runTrace(t, "decode", "-i", path)
	if code != 1 || errb == "" {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestStatRejectsCheckpointFileClearly(t *testing.T) {
	// A simulator checkpoint handed to `stat -i` must be named for what it
	// is, not rejected with a generic bad-magic error.
	path := filepath.Join(t.TempDir(), "mixup.impsnap")
	header := []byte{'I', 'M', 'P', 'S', 1, 0, 0, 0} // magic, version=1 LE, flags, reserved
	if err := os.WriteFile(path, append(header, []byte("payload")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errb, code := runTrace(t, "stat", "-i", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "checkpoint") || !strings.Contains(errb, "not a trace") ||
		!strings.Contains(errb, "snapshot format v1") {
		t.Errorf("unhelpful error for checkpoint file: %q", errb)
	}
}

func TestStatReportsTraceFormatVersion(t *testing.T) {
	isolateCache(t)
	path := filepath.Join(t.TempDir(), "w.imptrace")
	if _, errb, code := runTrace(t, "encode", "-workload", "spmv", "-cores", "2",
		"-scale", "0.05", "-o", path); code != 0 {
		t.Fatalf("encode failed: %s", errb)
	}
	out, _, code := runTrace(t, "stat", "-i", path)
	if code != 0 {
		t.Fatal("stat -i failed")
	}
	if !strings.Contains(out, "format=trace-v1") {
		t.Errorf("stat -i does not report the detected format: %q", out)
	}
}

// section extracts the report lines that must agree between the build-side
// and file-side paths (everything except the first header line).
func section(out string) string {
	lines := strings.SplitN(out, "\n", 2)
	if len(lines) < 2 {
		return ""
	}
	return lines[1]
}

func TestEncodeDecodeStatRoundTrip(t *testing.T) {
	isolateCache(t)
	path := filepath.Join(t.TempDir(), "spmv.imptrace")
	build := []string{"-workload", "spmv", "-cores", "4", "-scale", "0.05", "-seed", "7"}

	out, errb, code := runTrace(t, append([]string{"encode"}, append(build, "-o", path)...)...)
	if code != 0 {
		t.Fatalf("encode exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "encoded") || !strings.Contains(out, "B/record") {
		t.Errorf("encode output: %q", out)
	}

	statBuild, _, code := runTrace(t, append([]string{"stat"}, build...)...)
	if code != 0 {
		t.Fatal("stat on workload failed")
	}
	statFile, errb, code := runTrace(t, "stat", "-i", path)
	if code != 0 {
		t.Fatalf("stat -i exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(statFile, "streamed") {
		t.Errorf("stat -i did not report streaming: %q", statFile)
	}
	if section(statBuild) != section(statFile) {
		t.Errorf("streamed stat diverges from built stat:\n--- build\n%s\n--- file\n%s", statBuild, statFile)
	}

	decodeOut, errb, code := runTrace(t, "decode", "-i", path, "-dump", "2")
	if code != 0 {
		t.Fatalf("decode exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(decodeOut, "checksum ok") || !strings.Contains(decodeOut, "core 0 head:") {
		t.Errorf("decode output: %q", decodeOut)
	}
	if !strings.Contains(section(decodeOut), "accesses") {
		t.Errorf("decode report incomplete: %q", decodeOut)
	}
}
