// Command imptrace generates a workload trace and prints its shape:
// per-kind access counts, per-core balance, and (optionally) the first
// records of a core — useful when porting new workloads onto the tracer.
//
// Usage:
//
//	imptrace -workload graph500 -cores 16 -scale 0.2
//	imptrace -workload spmv -dump 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

func main() {
	var (
		wl    = flag.String("workload", "pagerank", "workload: "+strings.Join(workload.Names(), ", "))
		cores = flag.Int("cores", 64, "core count")
		scale = flag.Float64("scale", 1.0, "input size multiplier")
		sw    = flag.Bool("swpref", false, "insert software prefetches")
		dump  = flag.Int("dump", 0, "dump the first N records of core 0")
	)
	flag.Parse()

	p, err := workload.Build(*wl, workload.Options{
		Cores: *cores, Scale: *scale, SoftwarePrefetch: *sw,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "imptrace:", err)
		os.Exit(1)
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "imptrace: invalid program:", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s cores=%d scale=%g swpref=%v\n", *wl, *cores, *scale, *sw)
	fmt.Printf("footprint     %.2f MB in %d regions\n",
		float64(p.Space.Footprint())/1e6, len(p.Space.Regions()))
	for _, r := range p.Space.Regions() {
		fmt.Printf("  %-12s %10d bytes @ %v\n", r.Name, r.Size(), r.Base)
	}
	fmt.Printf("instructions  %d\n", p.TotalInstructions())
	fmt.Printf("accesses      %d\n", p.TotalAccesses())

	kinds := map[trace.Kind]uint64{}
	var minA, maxA uint64 = 1 << 62, 0
	for _, tr := range p.Traces {
		for k, n := range tr.KindCounts() {
			kinds[k] += n
		}
		a := tr.MemoryAccesses()
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	total := float64(p.TotalAccesses())
	fmt.Printf("kinds         indirect %.1f%%, stream %.1f%%, other %.1f%%\n",
		100*float64(kinds[trace.KindIndirect])/total,
		100*float64(kinds[trace.KindStream])/total,
		100*float64(kinds[trace.KindOther])/total)
	fmt.Printf("balance       min %d / max %d accesses per core\n", minA, maxA)

	if *dump > 0 {
		fmt.Println("\ncore 0 head:")
		for i, r := range p.Traces[0].Records {
			if i >= *dump {
				break
			}
			fmt.Printf("  %4d: %v\n", i, r)
		}
	}
}
