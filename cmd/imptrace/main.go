// Command imptrace generates, encodes and inspects workload traces.
//
// Subcommands:
//
//	stat    build a workload trace (or stream an encoded file) and print
//	        its shape: per-kind access counts, per-core balance, regions
//	encode  build a workload trace and write it in the binary trace format
//	decode  load an encoded trace file (checksum-verified) and print its
//	        shape
//
// Usage:
//
//	imptrace stat -workload graph500 -cores 16 -scale 0.2
//	imptrace stat -i spmv.imptrace -dump 20
//	imptrace encode -workload spmv -cores 64 -o spmv.imptrace
//	imptrace decode -i spmv.imptrace
//
// Invoking imptrace with flags but no subcommand behaves as `stat`
// (backward compatible with earlier versions). `stat -i` streams the file
// with bounded memory and skips checksum verification; `decode` verifies
// the checksum and materializes every record.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/impsim/imp/internal/progcache"
	"github.com/impsim/imp/internal/sim"
	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprint(w, `Usage:
  imptrace [stat] [flags]   print the shape of a workload or trace file
  imptrace encode [flags]   write a workload trace in the binary format
  imptrace decode [flags]   verify and print an encoded trace file

Run 'imptrace <command> -h' for the command's flags.
`)
}

func run(args []string, stdout, stderr io.Writer) int {
	cmd := "stat"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd = args[0]
		args = args[1:]
	}
	switch cmd {
	case "stat":
		return runStat(args, stdout, stderr)
	case "encode":
		return runEncode(args, stdout, stderr)
	case "decode":
		return runDecode(args, stdout, stderr)
	case "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "imptrace: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
}

// buildFlags registers the workload-construction flags shared by stat and
// encode.
type buildFlags struct {
	workload *string
	cores    *int
	scale    *float64
	sw       *bool
	seed     *int64
}

func addBuildFlags(fs *flag.FlagSet) buildFlags {
	return buildFlags{
		workload: fs.String("workload", "pagerank", "workload: "+strings.Join(workload.Names(), ", ")),
		cores:    fs.Int("cores", 64, "core count"),
		scale:    fs.Float64("scale", 1.0, "input size multiplier"),
		sw:       fs.Bool("swpref", false, "insert software prefetches"),
		seed:     fs.Int64("seed", 0, "input generation seed (0 = default inputs)"),
	}
}

func (b buildFlags) build() (*trace.Program, error) {
	return progcache.Get(*b.workload, workload.Options{
		Cores: *b.cores, Scale: *b.scale, SoftwarePrefetch: *b.sw, Seed: *b.seed,
	})
}

func parse(fs *flag.FlagSet, args []string) (int, bool) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, false
		}
		return 2, false
	}
	return 0, true
}

func runStat(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imptrace stat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	b := addBuildFlags(fs)
	in := fs.String("i", "", "encoded trace file to stream instead of building a workload")
	dump := fs.Int("dump", 0, "dump the first N records of core 0")
	if code, ok := parse(fs, args); !ok {
		return code
	}
	if *in != "" {
		return statFile(*in, *dump, stdout, stderr)
	}
	p, err := b.build()
	if err != nil {
		fmt.Fprintln(stderr, "imptrace:", err)
		return 1
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(stderr, "imptrace: invalid program:", err)
		return 1
	}
	fmt.Fprintf(stdout, "workload=%s cores=%d scale=%g swpref=%v\n", *b.workload, *b.cores, *b.scale, *b.sw)
	reportProgram(stdout, p, *dump)
	return 0
}

func runEncode(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imptrace encode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	b := addBuildFlags(fs)
	out := fs.String("o", "", "output file (required)")
	if code, ok := parse(fs, args); !ok {
		return code
	}
	if *out == "" {
		fmt.Fprintln(stderr, "imptrace encode: -o required")
		fs.Usage()
		return 2
	}
	p, err := b.build()
	if err != nil {
		fmt.Fprintln(stderr, "imptrace:", err)
		return 1
	}
	if err := p.WriteFile(*out); err != nil {
		fmt.Fprintln(stderr, "imptrace:", err)
		return 1
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fmt.Fprintln(stderr, "imptrace:", err)
		return 1
	}
	records := 0
	for _, t := range p.Traces {
		records += len(t.Records)
	}
	fmt.Fprintf(stdout, "encoded %s: %d cores, %d records, %d bytes (%.1f B/record incl. memory image)\n",
		*out, p.Cores(), records, fi.Size(), float64(fi.Size())/float64(records))
	return 0
}

func runDecode(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imptrace decode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "encoded trace file (required)")
	dump := fs.Int("dump", 0, "dump the first N records of core 0")
	if code, ok := parse(fs, args); !ok {
		return code
	}
	if *in == "" {
		fmt.Fprintln(stderr, "imptrace decode: -i required")
		fs.Usage()
		return 2
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(stderr, "imptrace:", err)
		return 1
	}
	defer f.Close()
	p, err := trace.ReadProgram(f)
	if err != nil {
		fmt.Fprintln(stderr, "imptrace:", err)
		return 1
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(stderr, "imptrace: invalid program:", err)
		return 1
	}
	fmt.Fprintf(stdout, "file=%s cores=%d (checksum ok)\n", *in, p.Cores())
	reportProgram(stdout, p, *dump)
	return 0
}

// sniffSnapshot reads just enough of path to recognize a simulator
// checkpoint by its magic.
func sniffSnapshot(path string) (version uint16, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	head := make([]byte, 16)
	n, _ := io.ReadFull(f, head)
	return sim.IsSnapshot(head[:n])
}

// statFile streams an encoded trace with bounded memory: records are
// decoded window by window and never materialized whole.
func statFile(path string, dump int, stdout, stderr io.Writer) int {
	fs, err := trace.OpenFile(path)
	if err != nil {
		// A checkpoint in a trace flag is an easy mix-up now that sweeps
		// write both kinds of file; name what the file actually is instead
		// of a bare bad-magic complaint.
		if ver, ok := sniffSnapshot(path); ok {
			fmt.Fprintf(stderr, "imptrace: %s is an IMP simulator checkpoint (snapshot format v%d), not a trace\n", path, ver)
			return 1
		}
		fmt.Fprintln(stderr, "imptrace:", err)
		return 1
	}
	defer fs.Close()
	if err := fs.Validate(); err != nil {
		fmt.Fprintln(stderr, "imptrace: invalid trace:", err)
		return 1
	}
	fmt.Fprintf(stdout, "file=%s format=trace-v%d cores=%d records=%d (streamed)\n",
		path, trace.FormatVersion, fs.Cores(), fs.Records())
	space := fs.Memory()
	fmt.Fprintf(stdout, "footprint     %.2f MB in %d regions\n",
		float64(space.Footprint())/1e6, len(space.Regions()))
	for _, r := range space.Regions() {
		fmt.Fprintf(stdout, "  %-12s %10d bytes @ %v\n", r.Name, r.Size(), r.Base)
	}

	kinds := map[trace.Kind]uint64{}
	var instructions, accesses uint64
	var minA, maxA uint64 = 1 << 62, 0
	for c := 0; c < fs.Cores(); c++ {
		rs := fs.Open(c)
		var coreAccesses uint64
		for {
			win := rs.Window(4096)
			if len(win) == 0 {
				break
			}
			for _, r := range win {
				instructions += r.Instructions()
				// Same counting rule as Trace.MemoryAccesses/KindCounts so
				// `stat -i` matches `stat -workload` exactly.
				if r.IsBarrier() || r.IsSWPrefetch() {
					continue
				}
				kinds[r.Kind]++
				coreAccesses++
			}
			rs.Advance(len(win))
		}
		if err := rs.Err(); err != nil {
			fmt.Fprintf(stderr, "imptrace: core %d: %v\n", c, err)
			return 1
		}
		accesses += coreAccesses
		if coreAccesses < minA {
			minA = coreAccesses
		}
		if coreAccesses > maxA {
			maxA = coreAccesses
		}
	}
	fmt.Fprintf(stdout, "instructions  %d\n", instructions)
	fmt.Fprintf(stdout, "accesses      %d\n", accesses)
	printKinds(stdout, kinds, float64(accesses))
	fmt.Fprintf(stdout, "balance       min %d / max %d accesses per core\n", minA, maxA)

	if dump > 0 {
		fmt.Fprintln(stdout, "\ncore 0 head:")
		rs := fs.Open(0)
		win := rs.Window(dump)
		for i, r := range win {
			fmt.Fprintf(stdout, "  %4d: %v\n", i, r)
		}
	}
	return 0
}

// reportProgram prints the shape of a materialized program (legacy stat
// output).
func reportProgram(stdout io.Writer, p *trace.Program, dump int) {
	fmt.Fprintf(stdout, "footprint     %.2f MB in %d regions\n",
		float64(p.Space.Footprint())/1e6, len(p.Space.Regions()))
	for _, r := range p.Space.Regions() {
		fmt.Fprintf(stdout, "  %-12s %10d bytes @ %v\n", r.Name, r.Size(), r.Base)
	}
	fmt.Fprintf(stdout, "instructions  %d\n", p.TotalInstructions())
	fmt.Fprintf(stdout, "accesses      %d\n", p.TotalAccesses())

	kinds := map[trace.Kind]uint64{}
	var minA, maxA uint64 = 1 << 62, 0
	for _, tr := range p.Traces {
		for k, n := range tr.KindCounts() {
			kinds[k] += n
		}
		a := tr.MemoryAccesses()
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	printKinds(stdout, kinds, float64(p.TotalAccesses()))
	fmt.Fprintf(stdout, "balance       min %d / max %d accesses per core\n", minA, maxA)

	if dump > 0 {
		fmt.Fprintln(stdout, "\ncore 0 head:")
		for i, r := range p.Traces[0].Records {
			if i >= dump {
				break
			}
			fmt.Fprintf(stdout, "  %4d: %v\n", i, r)
		}
	}
}

func printKinds(stdout io.Writer, kinds map[trace.Kind]uint64, total float64) {
	fmt.Fprintf(stdout, "kinds         indirect %.1f%%, stream %.1f%%, other %.1f%%\n",
		100*float64(kinds[trace.KindIndirect])/total,
		100*float64(kinds[trace.KindStream])/total,
		100*float64(kinds[trace.KindOther])/total)
}
