package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/impsim/imp
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig9Performance-8 	       1	 981234567 ns/op	         0.8123 base	         1.402 imp	 9876543 B/op	   12345 allocs/op
BenchmarkSimulatorThroughput 	       5	  55728060 ns/op	   5463631 accesses/s	 9451430 B/op	     443 allocs/op
PASS
ok  	github.com/impsim/imp	2.833s
`

func runDiff(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseProducesSnapshot(t *testing.T) {
	in := writeSample(t)
	out := filepath.Join(t.TempDir(), "snap.json")
	stdout, errb, code := runDiff(t, "-parse", in, "-out", out, "-commit", "abc123")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(stdout, "2 benchmarks") {
		t.Errorf("stdout: %q", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Commit != "abc123" || snap.Schema != 1 || snap.GoVersion == "" {
		t.Errorf("snapshot header: %+v", snap)
	}
	fig := snap.Benchmarks["Fig9Performance"]
	if fig.Iterations != 1 || fig.Metrics["imp"] != 1.402 || fig.Metrics["allocs/op"] != 12345 {
		t.Errorf("Fig9Performance: %+v", fig)
	}
	// The -8 GOMAXPROCS suffix must be stripped, and the suffixless form
	// must parse too.
	if _, ok := snap.Benchmarks["SimulatorThroughput"]; !ok {
		t.Error("suffixless benchmark missing")
	}
}

func TestParseEmptyInputFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.txt")
	os.WriteFile(path, []byte("no benchmarks here\n"), 0o644)
	_, errb, code := runDiff(t, "-parse", path)
	if code != 1 || !strings.Contains(errb, "no benchmark lines") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestNoModeIsUsageError(t *testing.T) {
	if _, _, code := runDiff(t); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	if _, _, code := runDiff(t, "-nope"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// snap writes a snapshot JSON with one benchmark.
func snap(t *testing.T, dir, name, goVersion string, metrics map[string]float64) string {
	t.Helper()
	s := Snapshot{
		Schema:    1,
		GoVersion: goVersion,
		Benchmarks: map[string]Benchmark{
			"TickLoop": {Iterations: 1, Metrics: metrics},
		},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareClean(t *testing.T) {
	dir := t.TempDir()
	base := snap(t, dir, "base.json", "go1.22", map[string]float64{
		"ns/op": 100, "allocs/op": 500, "imp_speedup": 1.40,
	})
	cur := snap(t, dir, "cur.json", "go1.22", map[string]float64{
		"ns/op": 104, "allocs/op": 510, "imp_speedup": 1.41,
	})
	out, _, code := runDiff(t, "-baseline", base, "-current", cur)
	if code != 0 {
		t.Fatalf("clean compare failed: %s", out)
	}
	if !strings.Contains(out, "0 failure(s)") {
		t.Errorf("output: %q", out)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := snap(t, dir, "base.json", "go1.22", map[string]float64{"allocs/op": 500})
	cur := snap(t, dir, "cur.json", "go1.22", map[string]float64{"allocs/op": 600})
	out, _, code := runDiff(t, "-baseline", base, "-current", cur)
	if code != 1 || !strings.Contains(out, "FAIL") {
		t.Fatalf("exit %d, out %q", code, out)
	}
}

func TestCompareAllocImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := snap(t, dir, "base.json", "go1.22", map[string]float64{"allocs/op": 500})
	cur := snap(t, dir, "cur.json", "go1.22", map[string]float64{"allocs/op": 100})
	if _, _, code := runDiff(t, "-baseline", base, "-current", cur); code != 0 {
		t.Fatal("an allocation improvement must not fail the gate")
	}
}

func TestCompareCycleMetricDriftFailsBothWays(t *testing.T) {
	dir := t.TempDir()
	base := snap(t, dir, "base.json", "go1.22", map[string]float64{"imp_speedup": 1.40})
	for _, cur := range []float64{1.10, 1.70} {
		curPath := snap(t, dir, "cur.json", "go1.22", map[string]float64{"imp_speedup": cur})
		out, _, code := runDiff(t, "-baseline", base, "-current", curPath)
		if code != 1 || !strings.Contains(out, "deterministic cycle metric") {
			t.Fatalf("drift to %v: exit %d, out %q", cur, code, out)
		}
	}
}

func TestCompareTimingOnlyWarns(t *testing.T) {
	dir := t.TempDir()
	base := snap(t, dir, "base.json", "go1.22", map[string]float64{"ns/op": 100, "accesses/s": 5e6})
	cur := snap(t, dir, "cur.json", "go1.22", map[string]float64{"ns/op": 200, "accesses/s": 2e6})
	out, _, code := runDiff(t, "-baseline", base, "-current", cur)
	if code != 0 {
		t.Fatalf("timing noise failed the gate: %q", out)
	}
	if !strings.Contains(out, "WARN") {
		t.Errorf("big timing regression produced no warning: %q", out)
	}
	// With -strict-time the ns/op regression becomes fatal.
	if _, _, code := runDiff(t, "-baseline", base, "-current", cur, "-strict-time"); code != 1 {
		t.Fatal("-strict-time did not fail on a 2x ns/op regression")
	}
}

func TestCompareCrossGoVersionDemotesAllocs(t *testing.T) {
	dir := t.TempDir()
	base := snap(t, dir, "base.json", "go1.22.1", map[string]float64{"allocs/op": 500, "imp_speedup": 1.4})
	cur := snap(t, dir, "cur.json", "go1.24.0", map[string]float64{"allocs/op": 600, "imp_speedup": 1.4})
	out, _, code := runDiff(t, "-baseline", base, "-current", cur)
	if code != 0 {
		t.Fatalf("cross-version allocs drift failed the gate: %q", out)
	}
	if !strings.Contains(out, "different Go releases") {
		t.Errorf("missing cross-version note: %q", out)
	}
}

// TestComparePatchReleaseKeepsAllocGate pins the goMinor rule: snapshots
// from two patch releases of one Go minor are comparable, so the allocs/op
// gate must still fail.
func TestComparePatchReleaseKeepsAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := snap(t, dir, "base.json", "go1.24.0", map[string]float64{"allocs/op": 500})
	cur := snap(t, dir, "cur.json", "go1.24.5", map[string]float64{"allocs/op": 600})
	out, _, code := runDiff(t, "-baseline", base, "-current", cur)
	if code != 1 || !strings.Contains(out, "FAIL") {
		t.Fatalf("patch-release alloc regression not gated: exit %d, out %q", code, out)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	base := snap(t, dir, "base.json", "go1.22", map[string]float64{"ns/op": 100})
	curData := `{"schema":1,"go":"go1.22","benchmarks":{}}`
	curPath := filepath.Join(dir, "cur.json")
	os.WriteFile(curPath, []byte(curData), 0o644)
	out, _, code := runDiff(t, "-baseline", base, "-current", curPath)
	if code != 1 || !strings.Contains(out, "missing from current run") {
		t.Fatalf("exit %d, out %q", code, out)
	}
}

// TestRoundTripThroughRealFormat parses the sample, then compares it with
// itself — a self-compare must always be clean.
func TestRoundTripThroughRealFormat(t *testing.T) {
	in := writeSample(t)
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if _, errb, code := runDiff(t, "-parse", in, "-out", a); code != 0 {
		t.Fatal(errb)
	}
	if _, errb, code := runDiff(t, "-parse", in, "-out", b); code != 0 {
		t.Fatal(errb)
	}
	out, _, code := runDiff(t, "-baseline", a, "-current", b)
	if code != 0 {
		t.Fatalf("self-compare failed: %s", out)
	}
}
