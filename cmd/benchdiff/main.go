// Command benchdiff records and compares `go test -bench` results for the
// CI benchmark-regression gate.
//
// Two modes:
//
//	benchdiff -parse bench.txt -out BENCH_abc123.json [-commit abc123]
//	    Parse benchmark text output into a stable JSON snapshot.
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_abc123.json
//	    Compare two snapshots; exit 1 on regression.
//
// Metric classes:
//
//   - Deterministic metrics — allocs/op and every custom benchmark metric
//     (cycle-derived numbers such as imp_speedup or norm_runtime) — gate
//     the build: allocs/op may not grow by more than -threshold, and
//     custom metrics may not move by more than -threshold in either
//     direction (they are deterministic, so any drift means simulated
//     behavior changed).
//   - Timing metrics — ns/op, B/op and rate units such as accesses/s —
//     are noisy on shared CI runners and only warn, unless -strict-time
//     is set (then ns/op regressions beyond -time-threshold fail).
//
// When the two snapshots were produced by different Go releases, allocs/op
// is demoted to a warning as well: runtimes allocate differently, and only
// the cycle metrics stay comparable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON schema of one recorded benchmark run.
type Snapshot struct {
	Schema     int                  `json:"schema"`
	Commit     string               `json:"commit,omitempty"`
	GoVersion  string               `json:"go"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark holds one benchmark's metrics, keyed by unit (ns/op,
// allocs/op, imp_speedup, ...).
type Benchmark struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		parse         = fs.String("parse", "", "benchmark text output to parse ('-' for stdin)")
		out           = fs.String("out", "", "write the parsed snapshot to this file (default stdout)")
		commit        = fs.String("commit", "", "commit id recorded in the snapshot")
		baseline      = fs.String("baseline", "", "baseline snapshot JSON")
		current       = fs.String("current", "", "current snapshot JSON to compare against -baseline")
		threshold     = fs.Float64("threshold", 0.10, "max relative drift for deterministic metrics")
		timeThreshold = fs.Float64("time-threshold", 0.30, "max relative ns/op regression with -strict-time")
		strictTime    = fs.Bool("strict-time", false, "fail (not warn) on ns/op regressions beyond -time-threshold")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	switch {
	case *parse != "":
		return runParse(*parse, *out, *commit, stdout, stderr)
	case *baseline != "" && *current != "":
		return runCompare(*baseline, *current, *threshold, *timeThreshold, *strictTime, stdout, stderr)
	default:
		fmt.Fprintln(stderr, "benchdiff: need either -parse, or -baseline with -current")
		fs.Usage()
		return 2
	}
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkFig9Performance-8   3   123456 ns/op   1.23 imp_speedup   45 B/op   6 allocs/op".
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func runParse(in, out, commit string, stdout, stderr io.Writer) int {
	var r io.Reader
	if in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	snap, err := parseBench(r, commit)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark lines found")
		return 1
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	data = append(data, '\n')
	if out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", out, len(snap.Benchmarks))
	return 0
}

func parseBench(r io.Reader, commit string) (*Snapshot, error) {
	snap := &Snapshot{
		Schema:     1,
		Commit:     commit,
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]Benchmark{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "go: go version "); ok {
			snap.GoVersion = strings.TrimSpace(v)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		metrics := map[string]float64{}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", m[1], fields[i])
			}
			metrics[fields[i+1]] = v
		}
		snap.Benchmarks[m[1]] = Benchmark{Iterations: iters, Metrics: metrics}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported snapshot schema %d", path, s.Schema)
	}
	return &s, nil
}

// metricClass classifies a metric unit for gating.
type metricClass int

const (
	classTiming metricClass = iota // ns/op, B/op, rates: noisy, advisory
	classAllocs                    // allocs/op: deterministic per Go release
	classCustom                    // cycle-derived custom metrics: deterministic
)

func classify(unit string) metricClass {
	switch {
	case unit == "allocs/op":
		return classAllocs
	case unit == "ns/op" || unit == "B/op" || strings.HasSuffix(unit, "/s"):
		return classTiming
	default:
		return classCustom
	}
}

func runCompare(basePath, curPath string, threshold, timeThreshold float64, strictTime bool, stdout, stderr io.Writer) int {
	base, err := loadSnapshot(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	cur, err := loadSnapshot(curPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	sameGo := goMinor(base.GoVersion) == goMinor(cur.GoVersion)
	if !sameGo {
		fmt.Fprintf(stdout, "note: snapshots from different Go releases (%s vs %s); allocs/op is advisory\n",
			base.GoVersion, cur.GoVersion)
	}

	var failures, warnings int
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bb := base.Benchmarks[name]
		cb, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(stdout, "FAIL %s: benchmark missing from current run\n", name)
			failures++
			continue
		}
		units := make([]string, 0, len(bb.Metrics))
		for u := range bb.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv := bb.Metrics[unit]
			cv, ok := cb.Metrics[unit]
			if !ok {
				fmt.Fprintf(stdout, "WARN %s: metric %s missing from current run\n", name, unit)
				warnings++
				continue
			}
			delta := relDelta(bv, cv)
			switch classify(unit) {
			case classAllocs:
				if delta > threshold {
					verdict := "FAIL"
					if !sameGo {
						verdict = "WARN"
						warnings++
					} else {
						failures++
					}
					fmt.Fprintf(stdout, "%s %s: %s %.0f -> %.0f (+%.1f%%)\n",
						verdict, name, unit, bv, cv, 100*delta)
				}
			case classCustom:
				if abs(delta) > threshold {
					fmt.Fprintf(stdout, "FAIL %s: %s %.4g -> %.4g (%+.1f%%) — deterministic cycle metric moved\n",
						name, unit, bv, cv, 100*delta)
					failures++
				}
			case classTiming:
				bad := delta
				if strings.HasSuffix(unit, "/s") {
					bad = -delta // rates: lower is worse
				}
				if bad > timeThreshold {
					if strictTime && unit == "ns/op" {
						fmt.Fprintf(stdout, "FAIL %s: %s %.4g -> %.4g (%+.1f%%)\n", name, unit, bv, cv, 100*delta)
						failures++
					} else {
						fmt.Fprintf(stdout, "WARN %s: %s %.4g -> %.4g (%+.1f%%)\n", name, unit, bv, cv, 100*delta)
						warnings++
					}
				}
			}
		}
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(stdout, "note: new benchmark %s (not in baseline)\n", name)
		}
	}
	fmt.Fprintf(stdout, "compared %d benchmarks: %d failure(s), %d warning(s)\n",
		len(names), failures, warnings)
	if failures > 0 {
		fmt.Fprintln(stdout, "regressions detected; if intentional, regenerate the baseline (see README)")
		return 1
	}
	return 0
}

// goMinor reduces "go1.24.0" to "go1.24": patch releases do not change
// allocation behavior, so snapshots within one minor stay comparable and
// the allocs/op gate keeps its teeth across routine toolchain updates.
func goMinor(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

// relDelta returns (cur-base)/base, treating a zero base specially so new
// nonzero values register as full-scale drift.
func relDelta(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - base) / base
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
