// Command impload load-tests an imp experiment fleet and snapshots what it
// measured, the way cmd/benchdiff snapshots microbenchmarks: drive a
// cluster with a configurable traffic mix, then write a LOAD_*.json with
// p50/p95/p99 submit and stream latencies, error/rejection counts, and a
// fleet-wide recompute audit (every result key should be executed at most
// once no matter how many times it was submitted).
//
// Two modes:
//
//	impload -target http://router:8090 -profile mixed -duration 60s -clients 8 -out LOAD_abc.json
//	    Drive an already-running improuter (or a single impserve).
//
//	impload -backends 3 -profile hotkey -duration 10s
//	    Self-host an in-process 3-backend cluster (internal/cluster) and
//	    drive it — no processes to start, good for laptops and quick checks.
//
// Profiles:
//
//	mixed    realistic blend: small interactive sweeps, duplicate
//	         resubmissions, medium streams, occasional bulk sweeps
//	hotkey   90% of submissions are one identical spec (hot-key skew)
//	dupes    duplicate-submission storm over a 4-spec pool
//	stream   medium sweeps with every event streamed (stream-heavy clients)
//	slowread stream profile with a deliberately slow reader (drains events
//	         slower than the backend produces them)
//	bulk     large sweeps only, all classed into the bulk lane
//
// Every submission is followed to its terminal event, so the accounting
// closes: ok + rejected + errors = submits, and on a fresh cluster the
// fleet-wide executed delta equals the number of distinct result keys that
// finished (any excess is a recompute — duplicated work the dedup/cache/
// replication machinery should have prevented).
//
// Exit status: 0 on a clean run, 1 when a gate trips (-max-error-rate,
// -fail-on-recompute) or infrastructure fails, 2 on flag misuse. Rejected
// submissions (429 over_quota/queue_full) are admission control working as
// designed and are gated separately from errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/api"
	"github.com/impsim/imp/client"
	"github.com/impsim/imp/internal/cluster"
)

// Snapshot is the JSON schema of one recorded load run.
type Snapshot struct {
	Schema      int     `json:"schema"`
	Commit      string  `json:"commit,omitempty"`
	Profile     string  `json:"profile"`
	Target      string  `json:"target"`
	DurationSec float64 `json:"duration_sec"`
	Clients     int     `json:"clients"`
	Seed        int64   `json:"seed"`

	Ops     OpCounts           `json:"ops"`
	Latency map[string]Latency `json:"latency"`

	// ErrorRate is errors / submits (0 when nothing was submitted).
	ErrorRate float64 `json:"error_rate"`
	// DistinctKeys counts result keys that reached a done terminal state;
	// ExecutedDelta is the fleet-wide executed-counter movement over the
	// run. Recomputes = max(0, delta - distinct) on a fresh cluster: work
	// the dedup/cache/replication machinery executed more than once.
	DistinctKeys  int    `json:"distinct_keys"`
	ExecutedDelta uint64 `json:"executed_delta"`
	Recomputes    uint64 `json:"recomputes"`
	// Checkpointed-sweep deltas over the run (all zero with checkpointing
	// off): points forked from restored checkpoints, shared replays
	// simulated cold, and simulated cycles the forks did not re-execute.
	// Part of the recompute audit — hits are work the fleet *avoided*, one
	// layer below the job-level dedup the counters above account for.
	CheckpointHitsDelta   uint64 `json:"checkpoint_hits_delta,omitempty"`
	CheckpointMissesDelta uint64 `json:"checkpoint_misses_delta,omitempty"`
	PrefixCyclesSaved     uint64 `json:"prefix_cycles_saved,omitempty"`
}

// OpCounts tallies every operation outcome; Submits = OK + Rejected + Errors.
type OpCounts struct {
	Submits  uint64 `json:"submits"`
	OK       uint64 `json:"ok"`
	Rejected uint64 `json:"rejected"` // 429 admission rejections (quota / queue full)
	Errors   uint64 `json:"errors"`
	Deduped  uint64 `json:"deduped"`
	Cached   uint64 `json:"cached"`
	Events   uint64 `json:"events"` // NDJSON progress events received
}

// Latency summarizes one operation class in milliseconds.
type Latency struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target     = fs.String("target", "", "base URL of a running improuter or impserve (empty: self-host -backends in-process)")
		backendsN  = fs.Int("backends", 3, "self-hosted cluster size when -target is empty")
		profile    = fs.String("profile", "mixed", "traffic mix: mixed|hotkey|dupes|stream|slowread|bulk")
		duration   = fs.Duration("duration", 30*time.Second, "how long to generate load")
		clients    = fs.Int("clients", 8, "concurrent client workers")
		seed       = fs.Int64("seed", 1, "spec-generation seed (same seed, same traffic)")
		tenant     = fs.String("tenant", "", "X-Imp-Tenant sent with every submission")
		out        = fs.String("out", "", "write the LOAD_*.json snapshot to this file (default stdout)")
		commit     = fs.String("commit", "", "commit id recorded in the snapshot")
		readyTO    = fs.Duration("ready-timeout", 30*time.Second, "how long to wait for the target's /healthz")
		maxErrRate = fs.Float64("max-error-rate", -1, "fail (exit 1) when errors/submits exceeds this (-1: no gate)")
		failRecomp = fs.Bool("fail-on-recompute", false, "fail (exit 1) on any fleet-wide recompute")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	gen, err := newSpecGen(*profile, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "impload:", err)
		return 2
	}
	if *clients < 1 || *duration <= 0 {
		fmt.Fprintln(stderr, "impload: -clients must be >= 1 and -duration positive")
		return 2
	}

	base, httpc := *target, http.DefaultClient
	if base == "" {
		cl, err := cluster.Start(*backendsN, cluster.Options{})
		if err != nil {
			fmt.Fprintln(stderr, "impload:", err)
			return 1
		}
		defer cl.Close()
		base, httpc = cl.Front.URL, cl.Front.Client()
		fmt.Fprintf(stdout, "impload: self-hosted %d-backend cluster at %s\n", *backendsN, base)
	}
	if err := waitReady(base, httpc, *readyTO); err != nil {
		fmt.Fprintln(stderr, "impload:", err)
		return 1
	}

	probe := client.New(base, httpc)
	before, err := executedTotal(probe)
	if err != nil {
		fmt.Fprintln(stderr, "impload: reading pre-run stats:", err)
		return 1
	}

	rec := newRecorder()
	// Workers get until deadline to *start* an op and a grace period to
	// finish streaming it, so the accounting closes instead of the last
	// in-flight jobs being counted as context-canceled errors.
	deadline := time.Now().Add(*duration)
	ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(2*time.Minute))
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := client.New(base, httpc)
			if *tenant != "" {
				c.SetTenant(*tenant)
			}
			c.SetStreamIdleTimeout(time.Minute)
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				runOne(ctx, c, gen, rng, rec)
			}
		}(w)
	}
	wg.Wait()

	after, err := executedTotal(probe)
	if err != nil {
		fmt.Fprintln(stderr, "impload: reading post-run stats:", err)
		return 1
	}

	snap := rec.snapshot()
	snap.Commit = *commit
	snap.Profile = *profile
	snap.Target = base
	snap.DurationSec = duration.Seconds()
	snap.Clients = *clients
	snap.Seed = *seed
	snap.ExecutedDelta = after.executed - before.executed
	if snap.ExecutedDelta > uint64(snap.DistinctKeys) {
		snap.Recomputes = snap.ExecutedDelta - uint64(snap.DistinctKeys)
	}
	snap.CheckpointHitsDelta = after.ckptHits - before.ckptHits
	snap.CheckpointMissesDelta = after.ckptMisses - before.ckptMisses
	snap.PrefixCyclesSaved = after.cyclesSaved - before.cyclesSaved

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "impload:", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "impload:", err)
		return 1
	} else {
		fmt.Fprintf(stdout, "impload: wrote %s\n", *out)
	}
	fmt.Fprintf(stdout, "impload: %d submits (%d ok, %d rejected, %d errors), %d distinct keys, executed delta %d, recomputes %d\n",
		snap.Ops.Submits, snap.Ops.OK, snap.Ops.Rejected, snap.Ops.Errors,
		snap.DistinctKeys, snap.ExecutedDelta, snap.Recomputes)
	if snap.CheckpointHitsDelta+snap.CheckpointMissesDelta > 0 {
		fmt.Fprintf(stdout, "impload: checkpoints: %d hits, %d misses, %d prefix cycles saved\n",
			snap.CheckpointHitsDelta, snap.CheckpointMissesDelta, snap.PrefixCyclesSaved)
	}

	failed := false
	if *maxErrRate >= 0 && snap.ErrorRate > *maxErrRate {
		fmt.Fprintf(stderr, "impload: FAIL error rate %.4f exceeds -max-error-rate %.4f\n", snap.ErrorRate, *maxErrRate)
		failed = true
	}
	if *failRecomp && snap.Recomputes > 0 {
		fmt.Fprintf(stderr, "impload: FAIL %d fleet-wide recompute(s) — duplicated work the cache/dedup/replication layers should have absorbed\n", snap.Recomputes)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// runOne submits one generated spec and follows it to its terminal event,
// recording latencies and outcome.
func runOne(ctx context.Context, c *client.Client, gen *specGen, rng *rand.Rand, rec *recorder) {
	spec, readDelay := gen.next(rng)
	t0 := time.Now()
	st, err := c.Submit(ctx, spec)
	rec.observe("submit", time.Since(t0))
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) && (apiErr.Code == api.CodeOverQuota || apiErr.Code == api.CodeQueueFull) {
			rec.rejected(apiErr.RetryAfter)
			// Honor the hint, capped so a long Retry-After cannot idle the
			// whole worker pool for the rest of the run.
			wait := time.Duration(apiErr.RetryAfter) * time.Second
			if wait > time.Second {
				wait = time.Second
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
			return
		}
		rec.failed()
		return
	}
	rec.submitted(st)

	if st.State.Terminal() {
		// Served from cache: there is no live stream to follow.
		if st.State == api.StateDone {
			rec.done(st.Key, 0)
		} else {
			rec.failed()
		}
		return
	}
	s0 := time.Now()
	err = c.Stream(ctx, st.ID, 0, func(api.Event) {
		rec.event()
		if readDelay > 0 {
			time.Sleep(readDelay) // the slow-reader profile drains late on purpose
		}
	})
	if err != nil {
		rec.failed()
		return
	}
	rec.done(st.Key, time.Since(s0))
}

// waitReady polls /healthz until it answers 200.
func waitReady(base string, httpc *http.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := httpc.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			last = err
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("target %s not ready after %s: %w", base, timeout, last)
}

// fleetCounters is the slice of fleet-wide service counters the recompute
// audit tracks as before/after deltas.
type fleetCounters struct {
	executed    uint64
	ckptHits    uint64
	ckptMisses  uint64
	cyclesSaved uint64
}

func (f *fleetCounters) add(ss *api.ServiceStats) {
	f.executed += ss.Executed
	f.ckptHits += ss.CheckpointHits
	f.ckptMisses += ss.CheckpointMisses
	f.cyclesSaved += ss.PrefixCyclesSaved
}

// executedTotal reads the fleet-wide execution counters: the router's
// aggregated stats when the target is an improuter, the single service's
// stats when it is a bare impserve.
func executedTotal(c *client.Client) (fleetCounters, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var total fleetCounters
	if rs, err := c.RouterStats(ctx); err == nil && len(rs.Backends) > 0 {
		for _, b := range rs.Backends {
			if b.Service != nil {
				total.add(b.Service)
			}
		}
		return total, nil
	}
	ss, err := c.ServiceStats(ctx)
	if err != nil {
		return fleetCounters{}, err
	}
	total.add(&ss)
	return total, nil
}

// recorder accumulates op outcomes and latencies across workers.
type recorder struct {
	mu        sync.Mutex
	ops       OpCounts
	durations map[string][]float64 // op class -> latencies in ms
	doneKeys  map[string]bool
}

func newRecorder() *recorder {
	return &recorder{durations: map[string][]float64{}, doneKeys: map[string]bool{}}
}

func (r *recorder) observe(class string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.durations[class] = append(r.durations[class], float64(d)/float64(time.Millisecond))
	if class == "submit" {
		r.ops.Submits++
	}
}

func (r *recorder) submitted(st api.JobStatus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st.Deduped {
		r.ops.Deduped++
	}
	if st.Cached {
		r.ops.Cached++
	}
}

func (r *recorder) rejected(int) { r.mu.Lock(); r.ops.Rejected++; r.mu.Unlock() }
func (r *recorder) failed()      { r.mu.Lock(); r.ops.Errors++; r.mu.Unlock() }
func (r *recorder) event()       { r.mu.Lock(); r.ops.Events++; r.mu.Unlock() }

func (r *recorder) done(key string, streamed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops.OK++
	r.doneKeys[key] = true
	if streamed > 0 {
		r.durations["stream"] = append(r.durations["stream"], float64(streamed)/float64(time.Millisecond))
	}
}

func (r *recorder) snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{
		Schema:       1,
		Ops:          r.ops,
		Latency:      map[string]Latency{},
		DistinctKeys: len(r.doneKeys),
	}
	if r.ops.Submits > 0 {
		snap.ErrorRate = float64(r.ops.Errors) / float64(r.ops.Submits)
	}
	for class, ds := range r.durations {
		sort.Float64s(ds)
		snap.Latency[class] = Latency{
			Count: len(ds),
			P50ms: percentile(ds, 0.50),
			P95ms: percentile(ds, 0.95),
			P99ms: percentile(ds, 0.99),
			MaxMs: ds[len(ds)-1],
		}
	}
	return snap
}

// percentile reads the nearest-rank percentile from a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// specGen generates job specs for one traffic profile. Points are kept
// cheap (small cores, small scale) so the soak measures the service stack —
// queueing, dedup, routing, streaming — rather than simulator throughput.
type specGen struct {
	profile string
	// hot is the profile's hot-key spec (hotkey profile) and pool the
	// duplicate-storm specs (dupes profile); both fixed at construction so
	// every worker collides on the same keys.
	hot  api.JobSpec
	pool []api.JobSpec
}

func newSpecGen(profile string, seed int64) (*specGen, error) {
	switch profile {
	case "mixed", "hotkey", "dupes", "stream", "slowread", "bulk":
	default:
		return nil, fmt.Errorf("unknown -profile %q (want mixed|hotkey|dupes|stream|slowread|bulk)", profile)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &specGen{profile: profile, hot: smallSweep(rng, 2)}
	for i := 0; i < 4; i++ {
		g.pool = append(g.pool, smallSweep(rng, 1+i%3))
	}
	return g, nil
}

// next returns the next spec and the per-event read delay the streaming
// side should apply (nonzero only for the slow-reader profile).
func (g *specGen) next(rng *rand.Rand) (api.JobSpec, time.Duration) {
	switch g.profile {
	case "hotkey":
		if rng.Intn(10) < 9 {
			return g.hot, 0
		}
		return smallSweep(rng, 1+rng.Intn(3)), 0
	case "dupes":
		return g.pool[rng.Intn(len(g.pool))], 0
	case "stream":
		return mediumSweep(rng), 0
	case "slowread":
		return mediumSweep(rng), time.Duration(20+rng.Intn(30)) * time.Millisecond
	case "bulk":
		return bulkSweep(rng), 0
	default: // mixed
		switch n := rng.Intn(100); {
		case n < 50:
			return smallSweep(rng, 1+rng.Intn(4)), 0
		case n < 70:
			return g.pool[rng.Intn(len(g.pool))], 0
		case n < 90:
			return mediumSweep(rng), 0
		case n < 95:
			return bulkSweep(rng), 0
		default:
			return mediumSweep(rng), 25 * time.Millisecond
		}
	}
}

// workloadSet is resolved once; sweeps draw from it so specs stay valid
// whatever the simulator's registered workloads are.
var workloadSet = imp.Workloads()

func sweepConfig(rng *rand.Rand) imp.Config {
	cores := []int{1, 4, 16}[rng.Intn(3)]
	return imp.Config{
		Workload: workloadSet[rng.Intn(len(workloadSet))],
		Cores:    cores,
		Scale:    0.05,
		System:   []imp.System{imp.SystemBaseline, imp.SystemIMP}[rng.Intn(2)],
		Seed:     rng.Int63n(1 << 30),
	}
}

func sweep(rng *rand.Rand, points int, lane api.Lane) api.JobSpec {
	spec := api.JobSpec{Priority: lane}
	for i := 0; i < points; i++ {
		spec.Sweep = append(spec.Sweep, sweepConfig(rng))
	}
	return spec
}

func smallSweep(rng *rand.Rand, points int) api.JobSpec {
	return sweep(rng, points, api.LaneInteractive)
}

func mediumSweep(rng *rand.Rand) api.JobSpec {
	return sweep(rng, 6+rng.Intn(6), "") // lane resolved by size
}

func bulkSweep(rng *rand.Rand) api.JobSpec {
	return sweep(rng, 20+rng.Intn(12), api.LaneBulk)
}
