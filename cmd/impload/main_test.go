package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-profile") {
		t.Error("help output missing flags")
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestUnknownProfileExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-profile", "chaos"}, &out, &errb); code != 2 {
		t.Fatalf("unknown profile exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "chaos") {
		t.Errorf("error does not name the bad profile: %s", errb.String())
	}
}

func TestUnreachableTargetExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-target", "http://127.0.0.1:1", "-ready-timeout", "300ms", "-duration", "1s"}, &out, &errb)
	if code != 1 {
		t.Fatalf("unreachable target exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "not ready") {
		t.Errorf("error does not explain the readiness failure: %s", errb.String())
	}
}

// TestSelfHostedSoak is the end-to-end path CI's soak job runs, shrunk:
// a short mixed-profile run against an in-process cluster must close its
// accounting (ok + rejected + errors = submits), record latencies, pass the
// zero-error and zero-recompute gates, and write a parseable snapshot.
func TestSelfHostedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping soak")
	}
	outFile := filepath.Join(t.TempDir(), "LOAD_test.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-backends", "1", "-profile", "mixed", "-duration", "2s", "-clients", "4",
		"-seed", "7", "-out", outFile, "-max-error-rate", "0", "-fail-on-recompute",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("soak exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot not parseable: %v\n%s", err, data)
	}
	if snap.Schema != 1 || snap.Profile != "mixed" || snap.Clients != 4 {
		t.Errorf("snapshot header wrong: %+v", snap)
	}
	if snap.Ops.Submits == 0 {
		t.Fatal("soak made no submissions")
	}
	if got := snap.Ops.OK + snap.Ops.Rejected + snap.Ops.Errors; got != snap.Ops.Submits {
		t.Errorf("accounting does not close: ok+rejected+errors = %d, submits = %d", got, snap.Ops.Submits)
	}
	if snap.Ops.Errors != 0 || snap.ErrorRate != 0 {
		t.Errorf("errors in a clean soak: %+v", snap.Ops)
	}
	if snap.Recomputes != 0 {
		t.Errorf("fresh cluster recomputed %d key(s); executed delta %d over %d distinct keys",
			snap.Recomputes, snap.ExecutedDelta, snap.DistinctKeys)
	}
	sub, ok := snap.Latency["submit"]
	if !ok || sub.Count == 0 || sub.P50ms <= 0 || sub.P99ms < sub.P50ms {
		t.Errorf("submit latency summary malformed: %+v", sub)
	}
}

// TestProfilesGenerateValidSpecs: every profile's generator must emit specs
// the API accepts — an invalid spec would count as an error mid-soak and
// poison the gate for the wrong reason.
func TestProfilesGenerateValidSpecs(t *testing.T) {
	for _, profile := range []string{"mixed", "hotkey", "dupes", "stream", "slowread", "bulk"} {
		gen, err := newSpecGen(profile, 42)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 200; i++ {
			spec, delay := gen.next(rng)
			if err := spec.Validate(); err != nil {
				t.Fatalf("%s: generated invalid spec: %v", profile, err)
			}
			if delay < 0 {
				t.Fatalf("%s: negative read delay", profile)
			}
			if profile == "slowread" && delay == 0 {
				t.Errorf("slowread generated no read delay")
			}
		}
	}
}

// TestHotkeyProfileSkews: the hot-key profile must actually collide — the
// overwhelming majority of generated specs share one spec (and so one
// result key).
func TestHotkeyProfileSkews(t *testing.T) {
	gen, err := newSpecGen("hotkey", 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	hot := 0
	for i := 0; i < 500; i++ {
		spec, _ := gen.next(rng)
		if len(spec.Sweep) == len(gen.hot.Sweep) && spec.Sweep[0] == gen.hot.Sweep[0] {
			hot++
		}
	}
	if hot < 400 {
		t.Errorf("hot spec generated only %d/500 times; skew too weak", hot)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%.0f = %v, want %v", tc.p*100, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestRecorderAccounting(t *testing.T) {
	rec := newRecorder()
	rec.observe("submit", 10*time.Millisecond)
	rec.observe("submit", 20*time.Millisecond)
	rec.observe("submit", 30*time.Millisecond)
	rec.done("k1", 50*time.Millisecond)
	rec.done("k1", 60*time.Millisecond) // duplicate key: distinct stays 1
	rec.rejected(3)
	snap := rec.snapshot()
	if snap.Ops.Submits != 3 || snap.Ops.OK != 2 || snap.Ops.Rejected != 1 {
		t.Errorf("ops wrong: %+v", snap.Ops)
	}
	if snap.DistinctKeys != 1 {
		t.Errorf("distinct keys = %d, want 1", snap.DistinctKeys)
	}
	if snap.Latency["stream"].Count != 2 {
		t.Errorf("stream latency count = %d, want 2", snap.Latency["stream"].Count)
	}
}
