// Command impserve runs the IMP experiment service: an HTTP API that
// accepts sweep and experiment jobs, executes them on the shared harness
// with a bounded queue and a service-wide simulation cap, caches results by
// content key, and streams NDJSON progress.
//
// Usage:
//
//	impserve -addr :8080 -j 8 -executors 2 -queue 64
//
// With -results-dir the content-addressed result store is also persisted
// to disk (one CRC-checked file per key, corrupt entries evicted on read),
// so a restarted server answers previously computed jobs without
// recomputing them.
//
// Submit and follow a job:
//
//	curl -s localhost:8080/v1/jobs -d '{"sweep":[{"Workload":"spmv","Cores":16,"System":"imp"}]}'
//	curl -s localhost:8080/v1/jobs/j-000001/events
//	curl -s localhost:8080/v1/jobs/j-000001/result
//
// GET /metrics serves Prometheus text exposition; -quota-rate/-quota-burst
// enable per-tenant submission quotas (X-Imp-Tenant header, 429 +
// Retry-After on rejection) and -bulk-threshold tunes which sweeps are
// classed as bulk for the two-lane queue. -checkpoints turns on prefix
// sharing: sweep points whose effective simulation is identical fork from
// one snapshotted replay (cached under -ckpt-dir) instead of each
// re-simulating it, with byte-identical results.
//
// The process drains gracefully on SIGINT/SIGTERM: the listener stops, and
// running jobs get -drain to finish before being canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/impsim/imp"
	"github.com/impsim/imp/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		queue      = fs.Int("queue", 64, "bounded job queue depth (submissions beyond it get 429 + Retry-After)")
		executors  = fs.Int("executors", 2, "max concurrently running jobs")
		parallel   = fs.Int("j", 0, "total in-flight simulations across all jobs (0 = all CPUs)")
		timeout    = fs.Duration("job-timeout", 15*time.Minute, "per-job execution timeout")
		results    = fs.Int("results", 256, "result cache entries (content-addressed, in-memory)")
		resultDir  = fs.String("results-dir", "", "persist results to this directory (CRC-checked files; a restarted server comes back warm)")
		drain      = fs.Duration("drain", 30*time.Second, "shutdown grace before running jobs are canceled")
		quotaRate  = fs.Float64("quota-rate", 0, "per-tenant submissions/sec admitted before 429 (0 = quotas off)")
		quotaBurst = fs.Float64("quota-burst", 0, "per-tenant burst above -quota-rate (0 = rate, min 1)")
		bulkThresh = fs.Int("bulk-threshold", 0, "sweeps larger than this run in the bulk lane (0 = default)")
		ckpts      = fs.Bool("checkpoints", false, "share simulation prefixes between identical sweep points via the checkpoint cache")
		ckptDir    = fs.String("ckpt-dir", "", "checkpoint cache directory (default: IMP_CKPT_CACHE or the user cache dir; \"off\" keeps checkpoints memory-only)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *resultDir != "" {
		// Fail fast on an unusable directory here; the service itself
		// treats disk trouble as best-effort so mid-flight failures (full
		// disk) degrade to memory-only instead of failing jobs.
		if err := os.MkdirAll(*resultDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "impserve: -results-dir:", err)
			return 1
		}
	}
	svc := service.New(service.Config{
		QueueDepth:    *queue,
		Executors:     *executors,
		Parallelism:   *parallel,
		JobTimeout:    *timeout,
		StoreEntries:  *results,
		ResultsDir:    *resultDir,
		QuotaRate:     *quotaRate,
		QuotaBurst:    *quotaBurst,
		BulkThreshold: *bulkThresh,
		Checkpoints:   imp.CheckpointPolicy{Enabled: *ckpts, Dir: *ckptDir},
	})
	srv := &http.Server{Handler: svc.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "impserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "impserve: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "impserve:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop the listener, finish in-flight requests, then
	// let running jobs complete within the grace period before canceling.
	fmt.Fprintln(stdout, "impserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(stderr, "impserve: http shutdown:", err)
	}
	if err := svc.Close(shutCtx); err != nil {
		fmt.Fprintln(stderr, "impserve: job drain:", err)
	}
	fmt.Fprintln(stdout, "impserve: bye")
	return 0
}
