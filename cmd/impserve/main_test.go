package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer lets the test read server output while run() writes it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-addr") {
		t.Error("help output missing flags")
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestBadAddrExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &out, &errb); code != 1 {
		t.Fatalf("bad addr exited %d, want 1", code)
	}
}

// TestBadResultsDirExitsOne: an unusable -results-dir must fail at startup
// (operators should learn about a typo'd path immediately), while
// mid-flight disk trouble only degrades to memory-only.
func TestBadResultsDirExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-results-dir", "/dev/null/not-a-dir"}, &out, &errb)
	if code != 1 {
		t.Fatalf("unusable -results-dir exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "results-dir") {
		t.Errorf("error does not name the flag: %s", errb.String())
	}
}

// TestServeAndGracefulShutdown boots the server on an ephemeral port, hits
// the API end to end, then cancels the context and expects a clean exit.
func TestServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out lockedBuffer
	var errb lockedBuffer
	exited := make(chan int, 1)
	go func() {
		exited <- run(ctx, []string{"-addr", "127.0.0.1:0", "-j", "2"}, &out, &errb)
	}()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var base string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("server never reported its address; stderr: %s", errb.String())
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := get("/v1/workloads"); code != 200 || !strings.Contains(body, "pagerank") {
		t.Fatalf("workloads: %d %q", code, body)
	}

	// Run one tiny job end to end through the real binary surface.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"sweep":[{"Workload":"spmv","Cores":4,"Scale":0.05,"System":"imp"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	idRe := regexp.MustCompile(`"id":\s*"(j-\d+)"`)
	m := idRe.FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("no job id in %s", body)
	}
	// The events stream blocks until the job finishes.
	if code, evs := get("/v1/jobs/" + m[1] + "/events"); code != 200 || !strings.Contains(evs, `"state":"done"`) {
		t.Fatalf("events: %d %q", code, evs)
	}
	if code, res := get("/v1/jobs/" + m[1] + "/result"); code != 200 || !strings.Contains(res, `"Cycles"`) {
		t.Fatalf("result: %d %q", code, res)
	}

	cancel()
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, errb.String())
		}
	case <-time.After(40 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "bye") {
		t.Errorf("missing shutdown message; stdout: %s", out.String())
	}
}
