package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/impsim/imp"
)

func runBench(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestList(t *testing.T) {
	out, _, code := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range imp.Experiments.IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestMissingExp(t *testing.T) {
	_, errb, code := runBench(t)
	if code != 2 || !strings.Contains(errb, "-exp required") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestUnknownExp(t *testing.T) {
	_, errb, code := runBench(t, "-exp", "fig99")
	if code != 1 || !strings.Contains(errb, "unknown experiment") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestBadFlag(t *testing.T) {
	_, _, code := runBench(t, "-nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestWorkloadsListTolerant(t *testing.T) {
	// Same comma-list convention as impsim: trim entries, skip empties.
	out, errb, code := runBench(t,
		"-exp", "fig1", "-cores", "4", "-scale", "0.05", "-workloads", "spmv, pagerank,")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, w := range []string{"spmv", "pagerank"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
}

func TestAllEmptyWorkloadsListRejected(t *testing.T) {
	_, errb, code := runBench(t, "-exp", "fig1", "-workloads", ",")
	if code != 2 || !strings.Contains(errb, "names no workloads") {
		t.Fatalf("exit %d, stderr %q; an all-empty -workloads must not fall back to the full set", code, errb)
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, errb, code := runBench(t, "-h")
	if code != 0 || !strings.Contains(errb, "Usage") {
		t.Fatalf("exit %d, stderr %q; -h must print usage and exit 0", code, errb)
	}
}

func TestEndToEndText(t *testing.T) {
	out, errb, code := runBench(t,
		"-exp", "fig1", "-cores", "4", "-scale", "0.05", "-workloads", "spmv", "-j", "2", "-v")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "fig1") || !strings.Contains(out, "spmv") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if !strings.Contains(errb, "cycles") {
		t.Errorf("-v produced no progress on stderr: %q", errb)
	}
}

func TestEndToEndJSON(t *testing.T) {
	out, errb, code := runBench(t,
		"-exp", "fig1", "-cores", "4", "-scale", "0.05", "-workloads", "spmv", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	var tables []*imp.Table
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatalf("output is not a JSON table array: %v\n%s", err, out)
	}
	if len(tables) != 1 || tables[0].ID != "fig1" {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	// spmv row + avg row.
	if len(tables[0].Rows) != 2 || tables[0].Rows[0].Label != "spmv" {
		t.Errorf("unexpected rows: %+v", tables[0].Rows)
	}
}

func TestJSONMatchesTextSweep(t *testing.T) {
	// The -json path must reflect the same sweep values as the text path.
	tbl, err := imp.Experiments.Run("fig1", imp.ExpOptions{
		Cores: 4, Scale: 0.05, Workloads: []string{"spmv"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _, code := runBench(t,
		"-exp", "fig1", "-cores", "4", "-scale", "0.05", "-workloads", "spmv", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var tables []*imp.Table
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatal(err)
	}
	want, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tables[0].JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("CLI JSON diverges from library table:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
