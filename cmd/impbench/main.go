// Command impbench regenerates the paper's tables and figures.
//
// Usage:
//
//	impbench -exp fig9 -cores 64
//	impbench -exp all -scale 0.5 -j 8
//	impbench -exp fig2 -json
//	impbench -list
//
// -j bounds the number of concurrent simulations (0 = all CPUs); table
// contents are identical at any setting. -json emits a JSON array of the
// produced tables instead of aligned text.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/impsim/imp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "", "experiment id (fig1..fig16, table3, storage, ghb) or 'all'")
		cores     = fs.Int("cores", 64, "core count (16, 64 or 256)")
		scale     = fs.Float64("scale", 1.0, "input size multiplier")
		workloads = fs.String("workloads", "", "comma-separated workload subset (default: experiment's own)")
		seed      = fs.Int64("seed", 0, "base input generation seed (0 = default inputs)")
		parallel  = fs.Int("j", 0, "max concurrent simulations (0 = all CPUs, 1 = serial)")
		jsonOut   = fs.Bool("json", false, "emit tables as a JSON array instead of text")
		list      = fs.Bool("list", false, "list experiments and exit")
		verbose   = fs.Bool("v", false, "print per-simulation progress")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, id := range imp.Experiments.IDs() {
			e, _ := imp.Experiments.Get(id)
			fmt.Fprintf(stdout, "%-8s %s\n", id, e.Title)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "impbench: -exp required (try -list)")
		return 2
	}

	opt := imp.ExpOptions{
		Cores: *cores, Scale: *scale,
		RunOptions: imp.RunOptions{Seed: *seed, Parallelism: *parallel},
	}
	for _, w := range strings.Split(*workloads, ",") {
		if w = strings.TrimSpace(w); w != "" {
			opt.Workloads = append(opt.Workloads, w)
		}
	}
	if *workloads != "" && len(opt.Workloads) == 0 {
		// Don't let a typo or empty shell expansion fall back to the full
		// default set and burn minutes of unintended simulation.
		fmt.Fprintln(stderr, "impbench: -workloads names no workloads")
		return 2
	}
	if *verbose {
		opt.OnProgress = func(e imp.ProgressEvent) {
			if e.Err != nil {
				fmt.Fprintf(stderr, "  [%d/%d] %s/%s/%s: %v\n",
					e.Done, e.Total, e.Experiment, e.Workload, e.System, e.Err)
				return
			}
			fmt.Fprintf(stderr, "  [%d/%d] %s/%s/%s: %d cycles (%s)\n",
				e.Done, e.Total, e.Experiment, e.Workload, e.System,
				e.Cycles, e.Elapsed.Round(time.Millisecond))
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = imp.Experiments.IDs()
	}
	var tables []*imp.Table
	for _, id := range ids {
		start := time.Now()
		tbl, err := imp.Experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(stderr, "impbench: %s: %v\n", id, err)
			return 1
		}
		if *jsonOut {
			tables = append(tables, tbl)
			continue
		}
		fmt.Fprintln(stdout, tbl)
		fmt.Fprintf(stdout, "(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond*100))
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(stderr, "impbench:", err)
			return 1
		}
	}
	return 0
}
