// Command impbench regenerates the paper's tables and figures.
//
// Usage:
//
//	impbench -exp fig9 -cores 64
//	impbench -exp all -scale 0.5
//	impbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/impsim/imp"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (fig1..fig16, table3, storage, ghb) or 'all'")
		cores     = flag.Int("cores", 64, "core count (16, 64 or 256)")
		scale     = flag.Float64("scale", 1.0, "input size multiplier")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: experiment's own)")
		list      = flag.Bool("list", false, "list experiments and exit")
		verbose   = flag.Bool("v", false, "print per-simulation progress")
	)
	flag.Parse()

	if *list {
		for _, id := range imp.Experiments.IDs() {
			e, _ := imp.Experiments.Get(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "impbench: -exp required (try -list)")
		os.Exit(2)
	}

	opt := imp.ExpOptions{Cores: *cores, Scale: *scale}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	if *verbose {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = imp.Experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := imp.Experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "impbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		fmt.Printf("(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond*100))
	}
}
