package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with stdout and stderr redirected and returns both.
func capture(t *testing.T, f func()) (stdout, stderr string) {
	t.Helper()
	collect := func(target **os.File) func() string {
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		old := *target
		*target = w
		return func() string {
			w.Close()
			*target = old
			data, _ := io.ReadAll(r)
			r.Close()
			return string(data)
		}
	}
	outDone := collect(&os.Stdout)
	errDone := collect(&os.Stderr)
	f()
	return outDone(), errDone()
}

// TestFlagsProtocol checks the -flags handshake the go command performs
// before splitting vet arguments: the output must be a JSON flag list.
func TestFlagsProtocol(t *testing.T) {
	out, _ := capture(t, func() {
		if code := run([]string{"-flags"}); code != 0 {
			t.Errorf("run(-flags) = %d, want 0", code)
		}
	})
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(out), &flags); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out)
	}
	names := make(map[string]bool)
	for _, f := range flags {
		names[f.Name] = true
	}
	if !names["json"] {
		t.Errorf("-flags output %s does not declare the json flag", out)
	}
}

// TestVersionProtocol checks the -V=full fingerprint shape the go command
// parses into its cache key: argv0, "version", and a trailing buildID=.
func TestVersionProtocol(t *testing.T) {
	out, _ := capture(t, func() {
		if code := run([]string{"-V=full"}); code != 0 {
			t.Errorf("run(-V=full) = %d, want 0", code)
		}
	})
	fields := strings.Fields(strings.TrimSpace(out))
	if len(fields) < 3 || fields[1] != "version" || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("-V=full output %q does not match `argv0 version ... buildID=...`", out)
	}
}

// TestStandaloneClean runs the real suite over a real clean package.
func TestStandaloneClean(t *testing.T) {
	_, errOut := capture(t, func() {
		if code := run([]string{"github.com/impsim/imp/internal/snap"}); code != 0 {
			t.Errorf("run over internal/snap = %d, want 0", code)
		}
	})
	if errOut != "" {
		t.Errorf("clean package produced output: %s", errOut)
	}
}

// TestNoArgs checks the usage path's distinct exit status.
func TestNoArgs(t *testing.T) {
	_, errOut := capture(t, func() {
		if code := run(nil); code != 2 {
			t.Errorf("run() = %d, want 2", code)
		}
	})
	for _, a := range []string{"snapfields", "nodeterminism", "apierrors"} {
		if !strings.Contains(errOut, a) {
			t.Errorf("usage output does not mention analyzer %s", a)
		}
	}
}

// TestBadCfg checks that a broken vet.cfg fails rather than passing vet.
func TestBadCfg(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(path, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, errOut := capture(t, func() {
		if code := run([]string{path}); code != 1 {
			t.Errorf("run(bad cfg) = %d, want 1", code)
		}
	})
	if !strings.Contains(errOut, "impvet:") {
		t.Errorf("bad cfg produced no error message: %q", errOut)
	}
}
