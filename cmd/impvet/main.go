// Command impvet is the project's static-analysis gate: a multichecker
// running the internal/analysis suite (snapfields, nodeterminism,
// apierrors) over the tree. It speaks two protocols:
//
//	impvet ./...                      # standalone: list, load, analyze
//	go vet -vettool=$(pwd)/impvet ./... # driver mode: the go command's
//	                                    # vet.cfg unit protocol, cached
//	                                    # like any other vet run
//
// CI runs the go vet form so results are incremental; locally either
// works. Exit status is 1 when any analyzer reports a finding.
//
// Driver-mode plumbing (-V=full version fingerprinting, -flags
// discovery, per-unit .cfg files) follows the contract the go command
// expects from a vettool, the same one golang.org/x/tools'
// unitchecker implements.
package main

import (
	"crypto/sha256"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"github.com/impsim/imp/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	jsonOut := false
	var rest []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion()
		case arg == "-flags" || arg == "--flags":
			return printFlags()
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case strings.HasPrefix(arg, "-c="):
			// Context-lines flag from the vet protocol; impvet prints
			// no source context, so it is accepted and ignored.
		case arg == "-h" || arg == "-help" || arg == "--help":
			usage(os.Stdout)
			return 0
		default:
			rest = append(rest, arg)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0], jsonOut)
	}
	if len(rest) == 0 {
		usage(os.Stderr)
		return 2
	}
	return runStandalone(rest, jsonOut)
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: impvet [-json] package...\n       go vet -vettool=/path/to/impvet ./...\n\nanalyzers:\n")
	for _, a := range analysis.Analyzers() {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// runVet handles one vet.cfg unit from the go command.
func runVet(cfgPath string, jsonOut bool) int {
	diags, fset, err := analysis.RunVetCfg(cfgPath, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "impvet: %v\n", err)
		return 1
	}
	return report(fset, diags, jsonOut)
}

// runStandalone loads the given package patterns through the go tool and
// analyzes every matched package.
func runStandalone(patterns []string, jsonOut bool) int {
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "impvet: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range analysis.Analyzers() {
			ds, err := pkg.Run(a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "impvet: %v\n", err)
				return 1
			}
			diags = append(diags, ds...)
		}
		if report(pkg.Fset, diags, jsonOut) != 0 {
			exit = 1
		}
	}
	return exit
}

// report prints diagnostics in the format go vet relays (file:line:col:
// message on stderr) and returns 1 if there were any.
func report(fset *token.FileSet, diags []analysis.Diagnostic, jsonOut bool) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if jsonOut {
			fmt.Printf("{\"posn\": %q, \"message\": %q}\n", posn.String(), d.Message)
		} else {
			fmt.Fprintf(os.Stderr, "%s: %s\n", posn, d.Message)
		}
	}
	return 1
}

// printVersion implements -V=full: the go command fingerprints the tool
// binary's content into its cache key, so two different impvet builds
// never share cached vet results. The output shape (argv0, "version",
// "devel", trailing buildID=) is the one the go command parses.
func printVersion() int {
	f, err := os.Open(os.Args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "impvet: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "impvet: %v\n", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], string(h.Sum(nil)[:24]))
	return 0
}

// printFlags implements -flags: the go command asks the tool which flags
// it accepts so it can split "go vet" arguments into tool flags and
// package patterns.
func printFlags() int {
	fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON diagnostics"},{"Name":"c","Bool":false,"Usage":"ignored (source context lines)"}]`)
	return 0
}
