// Command impsim runs one or more workloads on one simulated system
// configuration and prints the full metric set.
//
// Usage:
//
//	impsim -workload pagerank -cores 64 -system imp
//	impsim -workload pagerank,spmv,sgd -j 4 -json
//	impsim -print-config
//
// -workload accepts a comma-separated list; multiple workloads are swept
// concurrently with at most -j simulations in flight (0 = all CPUs), with
// output in input order regardless of completion order. -json emits a JSON
// array of {workload, result} objects instead of text.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/impsim/imp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl       = fs.String("workload", "pagerank", "workload, or comma-separated list: "+strings.Join(imp.Workloads(), ", "))
		cores    = fs.Int("cores", 64, "core count (square)")
		system   = fs.String("system", "imp", "system configuration: "+strings.Join(imp.SystemNames(), ", "))
		scale    = fs.Float64("scale", 1.0, "input size multiplier")
		ooo      = fs.Bool("ooo", false, "out-of-order cores (32-entry window)")
		seed     = fs.Int64("seed", 0, "input generation seed (0 = default)")
		expSeed  = fs.Bool("exp-seed", false, "treat -seed as an impbench base seed and derive the per-workload trace seed, reproducing experiment points exactly")
		parallel = fs.Int("j", 0, "max concurrent simulations for multi-workload runs (0 = all CPUs)")
		jsonOut  = fs.Bool("json", false, "emit results as JSON")
		print    = fs.Bool("print-config", false, "print Table 1/2 configuration and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *print {
		fmt.Fprintln(stdout, "Table 1 (system): 1 GHz, in-order single-issue cores; 32KB/4-way L1D;")
		fmt.Fprintln(stdout, "  2/sqrt(N) MB per-tile shared L2 (8-way); ACKwise_4 directory;")
		fmt.Fprintln(stdout, "  2-D mesh, XY routing, 2-cycle hops, 64-bit flits; sqrt(N) MCs,")
		fmt.Fprintln(stdout, "  100ns/10GB-per-MC simple DRAM (DDR3 10-10-10-24 model available).")
		fmt.Fprintf(stdout, "Table 2 (IMP): %+v\n", imp.DefaultIMPParams())
		fmt.Fprintf(stdout, "Storage (6.4): %v\n", imp.StorageCost(false))
		fmt.Fprintf(stdout, "Storage+GP:    %v\n", imp.StorageCost(true))
		return 0
	}

	sys, err := imp.ParseSystem(*system)
	if err != nil {
		fmt.Fprintln(stderr, "impsim:", err)
		return 2
	}

	var cfgs []imp.Config
	for _, w := range strings.Split(*wl, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue // tolerate trailing/doubled commas
		}
		s := *seed
		if *expSeed {
			s = imp.ExpSeed(*seed, w)
		}
		cfgs = append(cfgs, imp.Config{
			Workload: w, Cores: *cores, System: sys, Scale: *scale,
			OutOfOrder: *ooo, Seed: s,
		})
	}
	if len(cfgs) == 0 {
		fmt.Fprintln(stderr, "impsim: -workload names no workloads")
		return 2
	}
	results, err := imp.RunSweep(context.Background(), cfgs, imp.SweepOptions{
		RunOptions: imp.RunOptions{Parallelism: *parallel},
	})
	if err != nil {
		fmt.Fprintln(stderr, "impsim:", err)
		return 1
	}

	if *jsonOut {
		type entry struct {
			Workload string      `json:"workload"`
			Result   *imp.Result `json:"result"`
		}
		out := make([]entry, len(results))
		for i, res := range results {
			out[i] = entry{Workload: cfgs[i].Workload, Result: res}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "impsim:", err)
			return 1
		}
		return 0
	}

	for i, res := range results {
		printResult(stdout, cfgs[i], *system, res)
	}
	return 0
}

func printResult(w io.Writer, cfg imp.Config, system string, res *imp.Result) {
	fmt.Fprintf(w, "workload=%s cores=%d system=%s scale=%g\n", cfg.Workload, cfg.Cores, system, cfg.Scale)
	fmt.Fprintf(w, "cycles        %d\n", res.Cycles)
	fmt.Fprintf(w, "instructions  %d (ipc %.3f)\n", res.Instructions, res.Throughput)
	fmt.Fprintf(w, "miss fractions: indirect %.2f, stream %.2f, other %.2f\n",
		res.MissFracIndirect, res.MissFracStream, res.MissFracOther)
	fmt.Fprintf(w, "prefetching: coverage %.2f, accuracy %.2f, AMAT %.1f cycles\n",
		res.Coverage, res.Accuracy, res.AMAT)
	fmt.Fprintf(w, "traffic: NoC %d flit-hops, DRAM %d bytes\n", res.NoCFlitHops, res.DRAMBytes)
	if res.PatternsDetected > 0 {
		fmt.Fprintf(w, "IMP: %d primary patterns, %d secondary\n", res.PatternsDetected, res.SecondaryPatterns)
	}
}
