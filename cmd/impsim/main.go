// Command impsim runs one workload on one simulated system configuration
// and prints the full metric set.
//
// Usage:
//
//	impsim -workload pagerank -cores 64 -system imp
//	impsim -print-config
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/impsim/imp"
)

var systems = map[string]imp.System{
	"base":            imp.SystemBaseline,
	"imp":             imp.SystemIMP,
	"imp+partial-noc": imp.SystemIMPPartialNoC,
	"imp+partial":     imp.SystemIMPPartial,
	"swpref":          imp.SystemSWPrefetch,
	"perfpref":        imp.SystemPerfect,
	"ideal":           imp.SystemIdeal,
	"ghb":             imp.SystemGHB,
	"none":            imp.SystemNone,
}

func main() {
	var (
		wl     = flag.String("workload", "pagerank", "workload: "+strings.Join(imp.Workloads(), ", "))
		cores  = flag.Int("cores", 64, "core count (square)")
		system = flag.String("system", "imp", "system configuration")
		scale  = flag.Float64("scale", 1.0, "input size multiplier")
		ooo    = flag.Bool("ooo", false, "out-of-order cores (32-entry window)")
		seed   = flag.Int64("seed", 0, "input generation seed (0 = default)")
		print  = flag.Bool("print-config", false, "print Table 1/2 configuration and exit")
	)
	flag.Parse()

	if *print {
		fmt.Println("Table 1 (system): 1 GHz, in-order single-issue cores; 32KB/4-way L1D;")
		fmt.Println("  2/sqrt(N) MB per-tile shared L2 (8-way); ACKwise_4 directory;")
		fmt.Println("  2-D mesh, XY routing, 2-cycle hops, 64-bit flits; sqrt(N) MCs,")
		fmt.Println("  100ns/10GB-per-MC simple DRAM (DDR3 10-10-10-24 model available).")
		fmt.Printf("Table 2 (IMP): %+v\n", imp.DefaultIMPParams())
		fmt.Printf("Storage (6.4): %v\n", imp.StorageCost(false))
		fmt.Printf("Storage+GP:    %v\n", imp.StorageCost(true))
		return
	}

	sys, ok := systems[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "impsim: unknown system %q\n", *system)
		os.Exit(2)
	}
	res, err := imp.Run(imp.Config{
		Workload: *wl, Cores: *cores, System: sys, Scale: *scale,
		OutOfOrder: *ooo, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "impsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s cores=%d system=%s scale=%g\n", *wl, *cores, *system, *scale)
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("instructions  %d (ipc %.3f)\n", res.Instructions, res.Throughput)
	fmt.Printf("miss fractions: indirect %.2f, stream %.2f, other %.2f\n",
		res.MissFracIndirect, res.MissFracStream, res.MissFracOther)
	fmt.Printf("prefetching: coverage %.2f, accuracy %.2f, AMAT %.1f cycles\n",
		res.Coverage, res.Accuracy, res.AMAT)
	fmt.Printf("traffic: NoC %d flit-hops, DRAM %d bytes\n", res.NoCFlitHops, res.DRAMBytes)
	if res.PatternsDetected > 0 {
		fmt.Printf("IMP: %d primary patterns, %d secondary\n", res.PatternsDetected, res.SecondaryPatterns)
	}
}
