package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestPrintConfig(t *testing.T) {
	out, _, code := runSim(t, "-print-config")
	if code != 0 || !strings.Contains(out, "Table 2 (IMP)") {
		t.Fatalf("exit %d, output %q", code, out)
	}
}

func TestUnknownSystem(t *testing.T) {
	_, errb, code := runSim(t, "-system", "warp-drive")
	if code != 2 || !strings.Contains(errb, "unknown system") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestUnknownWorkload(t *testing.T) {
	_, errb, code := runSim(t, "-workload", "nope", "-cores", "4", "-scale", "0.05")
	if code != 1 || errb == "" {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestBadFlag(t *testing.T) {
	_, _, code := runSim(t, "-nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestEmptyWorkloadEntriesTolerated(t *testing.T) {
	out, errb, code := runSim(t,
		"-workload", "pagerank,", "-cores", "4", "-scale", "0.05")
	if code != 0 {
		t.Fatalf("trailing comma failed the run: exit %d, stderr %q", code, errb)
	}
	if strings.Count(out, "workload=") != 1 {
		t.Errorf("expected exactly one result:\n%s", out)
	}
	_, errb, code = runSim(t, "-workload", ",,")
	if code != 2 || !strings.Contains(errb, "names no workloads") {
		t.Fatalf("all-empty list: exit %d, stderr %q", code, errb)
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, errb, code := runSim(t, "-h")
	if code != 0 || !strings.Contains(errb, "Usage") {
		t.Fatalf("exit %d, stderr %q; -h must print usage and exit 0", code, errb)
	}
}

func TestEndToEndSingle(t *testing.T) {
	out, errb, code := runSim(t,
		"-workload", "pagerank", "-cores", "4", "-scale", "0.05", "-system", "imp")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"workload=pagerank", "cycles", "prefetching:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEndToEndMultiWorkloadJSON(t *testing.T) {
	out, errb, code := runSim(t,
		"-workload", "pagerank,spmv", "-cores", "4", "-scale", "0.05", "-j", "2", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	var entries []struct {
		Workload string `json:"workload"`
		Result   struct {
			Cycles       int64  `json:"Cycles"`
			Instructions uint64 `json:"Instructions"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatalf("output is not the expected JSON: %v\n%s", err, out)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	// Results come back in input order regardless of completion order.
	if entries[0].Workload != "pagerank" || entries[1].Workload != "spmv" {
		t.Errorf("order not preserved: %+v", entries)
	}
	for _, e := range entries {
		if e.Result.Cycles <= 0 || e.Result.Instructions == 0 {
			t.Errorf("degenerate result for %s: %+v", e.Workload, e.Result)
		}
	}
}

func TestMultiWorkloadOrderMatchesSerial(t *testing.T) {
	serial, _, code := runSim(t,
		"-workload", "pagerank,spmv,dense", "-cores", "4", "-scale", "0.05", "-j", "1")
	if code != 0 {
		t.Fatal("serial run failed")
	}
	parallel, _, code := runSim(t,
		"-workload", "pagerank,spmv,dense", "-cores", "4", "-scale", "0.05", "-j", "3")
	if code != 0 {
		t.Fatal("parallel run failed")
	}
	if serial != parallel {
		t.Errorf("-j 1 and -j 3 output differ:\n--- j1\n%s\n--- j3\n%s", serial, parallel)
	}
}
