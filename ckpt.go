package imp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/impsim/imp/internal/ckptcache"
	"github.com/impsim/imp/internal/sim"
	"github.com/impsim/imp/internal/trace"
	"github.com/impsim/imp/internal/workload"
)

// Checkpointed sweep execution. A sweep point's simulation is a pure
// function of its trace and its effective sim configuration, so a finished
// replay can be snapshotted (internal/sim's versioned, CRC'd envelope) and
// any later point with the same identity forked from the restored state
// instead of re-simulating. Identity is content-addressed like results
// (internal/jobkey) and traces (internal/progcache): the key covers the
// workload build request, the effective system, and the trace, generator
// and snapshot format versions, so a version bump invalidates stale
// checkpoints implicitly. Late-binding IMP prefetch parameters are zeroed
// out of the key when the configured system never instantiates the IMP
// prefetcher — for such systems they are inert, so e.g. a Baseline cell
// keyed by a sensitivity sweep still shares the Baseline replay. For IMP
// systems they shape the simulation from the first record and stay in the
// key.

// CheckpointStats counts checkpointed-execution outcomes process-wide,
// across every sweep (the same scope as the trace-cache counters).
type CheckpointStats struct {
	// Hits counts sweep points forked from a restored checkpoint.
	Hits uint64
	// Misses counts shared replays simulated cold (and then published).
	Misses uint64
	// PrefixCyclesSaved totals the simulated cycles restored from
	// checkpoints instead of re-simulated — the work forking saved.
	PrefixCyclesSaved uint64
}

var ckptHits, ckptMisses, ckptCyclesSaved atomic.Uint64

// GetCheckpointStats snapshots the process-wide checkpoint counters.
func GetCheckpointStats() CheckpointStats {
	return CheckpointStats{
		Hits:              ckptHits.Load(),
		Misses:            ckptMisses.Load(),
		PrefixCyclesSaved: ckptCyclesSaved.Load(),
	}
}

// ResetCheckpointStats zeroes the counters. Intended for tests and
// benchmarks.
func ResetCheckpointStats() {
	ckptHits.Store(0)
	ckptMisses.Store(0)
	ckptCyclesSaved.Store(0)
}

// ckptSpec is the canonical JSON shape hashed into a checkpoint key.
type ckptSpec struct {
	Workload string           `json:"workload"`
	Options  workload.Options `json:"options"`
	Sim      sim.Config       `json:"sim"`
}

// checkpointKey derives the content address of cfg's finished replay. cfg
// must already have its defaults applied (the sweep entry points do this
// once per point).
func checkpointKey(cfg Config) (string, error) {
	scfg, err := cfg.simConfig()
	if err != nil {
		return "", err
	}
	if scfg.Prefetcher != sim.PrefetchIMP {
		// Late-binding IMP knobs are inert without the IMP prefetcher;
		// excluding them lets configs differing only in such knobs share
		// one replay.
		scfg.IMP = sim.DefaultConfig(cfg.Cores).IMP
	}
	spec := ckptSpec{
		Workload: cfg.Workload,
		Options:  cfg.workloadOptions().WithDefaults(),
		Sim:      scfg,
	}
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("imp: keying checkpoint spec: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "impckpt|fmt%d|gen%d|snap%d|",
		trace.FormatVersion, workload.GenVersion, sim.SnapshotFormatVersion)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)[:12]), nil
}

// prefixFor resolves the prefix-sharing key and warm-up closure the harness
// runs once per group of identical points. Zero values (no grouping) when
// checkpointing is off or the config cannot be keyed — the leaf then runs
// cold and surfaces any real configuration error itself.
func prefixFor(cfg Config, pol CheckpointPolicy) (string, func(ctx context.Context) error) {
	if !pol.Enabled {
		return "", nil
	}
	key, err := checkpointKey(cfg)
	if err != nil {
		return "", nil
	}
	return key, func(ctx context.Context) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ensureCheckpoint(cfg, key, pol)
	}
}

// ensureCheckpoint makes cfg's replay available under key: a cache hit is
// free; a miss simulates the full replay once and publishes its snapshot,
// so every grouped leaf (and later sweeps) forks instead of re-simulating.
func ensureCheckpoint(cfg Config, key string, pol CheckpointPolicy) error {
	if _, ok := ckptcache.Get(key, pol.Dir); ok {
		return nil
	}
	_, err := simulateAndPublish(cfg, key, pol)
	return err
}

// runCfg is the leaf execution every sweep point goes through: the plain
// Run path with checkpointing off, the fork-or-publish path with it on.
func runCfg(cfg Config, pol CheckpointPolicy) (*Result, error) {
	if !pol.Enabled {
		return Run(cfg)
	}
	key, err := checkpointKey(cfg)
	if err != nil {
		return nil, err
	}
	if data, ok := ckptcache.Get(key, pol.Dir); ok {
		if res, err := forkFromCheckpoint(cfg, data); err == nil {
			return res, nil
		}
		// The blob would not restore (corrupt file, geometry drift):
		// evict it and fall through to a cold start — never a wrong
		// result, at worst a re-simulation.
		ckptcache.Evict(key, pol.Dir)
	}
	m, err := simulateAndPublish(cfg, key, pol)
	if err != nil {
		return nil, err
	}
	return newResult(m), nil
}

// forkFromCheckpoint restores cfg's replay from a snapshot and finishes it
// (metric finalization only — the replay itself was already simulated).
func forkFromCheckpoint(cfg Config, data []byte) (*Result, error) {
	prog, err := cfg.resolveProgram()
	if err != nil {
		return nil, err
	}
	scfg, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	sys, err := sim.Restore(prog.Source(), scfg, data)
	if err != nil {
		return nil, err
	}
	saved := sys.Cycles()
	m, err := sys.Finish()
	if err != nil {
		return nil, err
	}
	ckptHits.Add(1)
	ckptCyclesSaved.Add(uint64(saved))
	return newResult(m), nil
}

// simulateAndPublish runs cfg's full replay cold, publishes its end-state
// snapshot under key (best-effort: a snapshot failure degrades to an
// uncached run), and returns the finished metrics.
func simulateAndPublish(cfg Config, key string, pol CheckpointPolicy) (*sim.Metrics, error) {
	prog, err := cfg.resolveProgram()
	if err != nil {
		return nil, err
	}
	scfg, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	sys, err := sim.New(prog.Source(), scfg)
	if err != nil {
		return nil, err
	}
	if err := sys.RunUntil(math.MaxInt); err != nil {
		return nil, err
	}
	ckptMisses.Add(1)
	if data, err := sys.Snapshot(); err == nil {
		ckptcache.Put(key, pol.Dir, data)
	}
	return sys.Finish()
}
