package imp

import "context"

// RunOptions are the execution knobs shared by every sweep entry point.
// SweepOptions and ExpOptions embed it, so the fields read the same from
// either (`opt.Parallelism`, `opt.Gate`, ...) and a service configures one
// struct regardless of whether a job is an ad-hoc sweep or a registered
// experiment. Execution knobs never change results: output is byte-identical
// at any Parallelism, with any Gate, and with checkpointing on or off.
type RunOptions struct {
	// Parallelism bounds concurrent simulations (<=0: GOMAXPROCS). Output
	// is byte-identical at any setting; 1 forces a serial sweep.
	Parallelism int
	// Context cancels an in-flight run when done (nil: Background).
	// Cancellation is cooperative at simulation-point granularity: points
	// already simulating run to completion; unstarted points are skipped.
	// RunSweep's explicit ctx argument takes precedence when non-nil.
	Context context.Context
	// OnProgress, when non-nil, receives one structured event per completed
	// simulation point (Experiment is empty for ad-hoc sweeps). It is never
	// called concurrently with itself, but events arrive in completion
	// order, which depends on scheduling.
	OnProgress func(ProgressEvent)
	// Gate, when non-nil, additionally bounds in-flight simulations across
	// every sweep sharing the gate (see NewGate). A service running many
	// sweeps concurrently uses one gate to cap total simulation load;
	// results are unaffected — gating only changes scheduling.
	Gate Gate
	// Seed perturbs input generation. Each workload's trace seed is derived
	// deterministically from Seed and the workload name (see ExpSeed), so
	// results are reproducible at any parallelism. 0 keeps the paper's
	// default inputs. In RunSweep it only applies to configs whose own
	// Config.Seed is zero.
	Seed int64
	// Checkpoints controls checkpointed sweep execution: when enabled,
	// points sharing an identical effective simulation (same trace and same
	// effective system — late-binding IMP prefetch parameters are excluded
	// from the identity when the system does not instantiate the IMP
	// prefetcher) run the shared replay once, snapshot it, and fork the
	// remaining points from the restored state instead of cold-starting
	// each one. Checkpoints are content-addressed and cached across runs
	// (internal/ckptcache); results are byte-identical either way.
	Checkpoints CheckpointPolicy
}

// CheckpointPolicy configures checkpointed sweep execution (off by default).
type CheckpointPolicy struct {
	// Enabled turns checkpointed execution on.
	Enabled bool
	// Dir overrides the checkpoint cache directory. Empty uses the
	// IMP_CKPT_CACHE environment variable or the user cache dir; "off"
	// (or "0") keeps checkpoints in memory only.
	Dir string
}

// ctx resolves the effective context: the explicit argument wins, then the
// option field, then Background.
func (o RunOptions) ctx(explicit context.Context) context.Context {
	if explicit != nil {
		return explicit
	}
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}
