package imp

import (
	"path/filepath"
	"testing"
)

// TestTraceFileReplayMatchesInMemory pins the binary-trace contract end to
// end: a workload encoded to disk and replayed through the streaming
// FileSource path must produce exactly the metrics of the in-memory
// program, for both a baseline and an IMP configuration.
func TestTraceFileReplayMatchesInMemory(t *testing.T) {
	prog, err := BuildProgram("spmv", 4, 0.05, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spmv.imptrace")
	if err := prog.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{SystemBaseline, SystemIMP, SystemPerfect} {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			direct, err := RunProgram(prog, Config{Cores: 4, System: sys})
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := RunTraceFile(path, Config{System: sys})
			if err != nil {
				t.Fatal(err)
			}
			if streamed.Cycles != direct.Cycles ||
				streamed.Instructions != direct.Instructions ||
				streamed.Coverage != direct.Coverage ||
				streamed.NoCFlitHops != direct.NoCFlitHops ||
				streamed.DRAMBytes != direct.DRAMBytes {
				t.Errorf("streamed replay diverges: %+v vs direct %+v", streamed, direct)
			}
		})
	}
}

// TestReadProgramFileRoundTrip covers the checked, materializing load path.
func TestReadProgramFileRoundTrip(t *testing.T) {
	prog, err := BuildProgram("pagerank", 4, 0.05, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pr.imptrace")
	if err := prog.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProgramFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Accesses() != prog.Accesses() || back.Instructions() != prog.Instructions() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			back.Accesses(), back.Instructions(), prog.Accesses(), prog.Instructions())
	}
	a, err := RunProgram(prog, Config{Cores: 4, System: SystemIMP})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProgram(back, Config{Cores: 4, System: SystemIMP})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Accuracy != b.Accuracy {
		t.Errorf("decoded program simulates differently: %d cycles vs %d", b.Cycles, a.Cycles)
	}
}
