package imp

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestTraceFileReplayMatchesInMemory pins the binary-trace contract end to
// end: a workload encoded to disk and replayed through the streaming
// FileSource path must produce exactly the metrics of the in-memory
// program, for both a baseline and an IMP configuration.
func TestTraceFileReplayMatchesInMemory(t *testing.T) {
	prog, err := BuildProgram("spmv", 4, 0.05, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spmv.imptrace")
	if err := prog.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{SystemBaseline, SystemIMP, SystemPerfect} {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			direct, err := RunProgram(prog, Config{Cores: 4, System: sys})
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := RunTraceFile(path, Config{System: sys})
			if err != nil {
				t.Fatal(err)
			}
			if streamed.Cycles != direct.Cycles ||
				streamed.Instructions != direct.Instructions ||
				streamed.Coverage != direct.Coverage ||
				streamed.NoCFlitHops != direct.NoCFlitHops ||
				streamed.DRAMBytes != direct.DRAMBytes {
				t.Errorf("streamed replay diverges: %+v vs direct %+v", streamed, direct)
			}
		})
	}
}

// TestDifferentialEveryWorkloadStreamedVsInMemory is the differential
// determinism check across the two replay paths: every workload kind runs
// through imp.Run (trace built and materialized in memory) and through
// imp.RunTraceFile (the same trace encoded to disk and streamed back with
// windowed decoding), and the full metric surface must match exactly. This
// covers every record flavor the generators emit — including SymGS's
// spin-barrier mode and sgd/lsh's wide gap records — where the original
// test covered a single workload.
func TestDifferentialEveryWorkloadStreamedVsInMemory(t *testing.T) {
	for _, name := range Workloads() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Workload: name, Cores: 4, Scale: 0.05, System: SystemIMP}
			// Build once through the cache, then encode for the streamed run.
			prog, err := BuildProgram(name, cfg.Cores, cfg.Scale, false, 0)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), name+".imptrace")
			if err := prog.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			direct, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := RunTraceFile(path, Config{System: cfg.System})
			if err != nil {
				t.Fatal(err)
			}
			// Compare the entire exported metric surface, not a hand-picked
			// subset: marshal both and require identical bytes (Metrics is
			// json-excluded internal state).
			dj, err := json.Marshal(direct)
			if err != nil {
				t.Fatal(err)
			}
			sj, err := json.Marshal(streamed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dj, sj) {
				t.Errorf("streamed replay diverges from in-memory run:\n--- in-memory\n%s\n--- streamed\n%s", dj, sj)
			}
		})
	}
}

// TestReadProgramFileRoundTrip covers the checked, materializing load path.
func TestReadProgramFileRoundTrip(t *testing.T) {
	prog, err := BuildProgram("pagerank", 4, 0.05, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pr.imptrace")
	if err := prog.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProgramFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Accesses() != prog.Accesses() || back.Instructions() != prog.Instructions() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			back.Accesses(), back.Instructions(), prog.Accesses(), prog.Instructions())
	}
	a, err := RunProgram(prog, Config{Cores: 4, System: SystemIMP})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProgram(back, Config{Cores: 4, System: SystemIMP})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Accuracy != b.Accuracy {
		t.Errorf("decoded program simulates differently: %d cycles vs %d", b.Cycles, a.Cycles)
	}
}
