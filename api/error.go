package api

import (
	"fmt"
	"net/http"
	"strconv"
)

// Error is the single wire shape of every error body the impserve and
// improuter HTTP surfaces produce:
//
//	{"error": "...", "code": "over_quota", "retry_after": 3}
//
// The "error" field is the pre-existing envelope (older clients that only
// read it keep working); Code and RetryAfter are the typed additions. The
// Go client returns *Error (with the HTTP status filled in) from every
// failed call, so callers branch on Code or Status instead of string-
// matching response bodies.
type Error struct {
	// Code classifies the failure; HTTPStatus maps it to a status code via
	// the one table both servers use.
	Code ErrorCode `json:"code,omitempty"`
	// Message is the human-readable failure, serialized under "error" —
	// the field name every pre-typed client already parses.
	Message string `json:"error"`
	// RetryAfter, in whole seconds, is the server's backoff hint for
	// retryable rejections (queue full, over quota). It is mirrored in the
	// Retry-After response header.
	RetryAfter int `json:"retry_after,omitempty"`
	// Status is the HTTP status the error traveled under. It is transport
	// metadata, not body payload: the client fills it from the response,
	// servers derive it from Code.
	Status int `json:"-"`
}

// Error renders "<code> <status text>: <message>" when the HTTP status is
// known (client side) and the bare message otherwise (server side,
// pre-send).
func (e *Error) Error() string {
	if e.Status == 0 {
		return e.Message
	}
	status := strconv.Itoa(e.Status)
	if text := http.StatusText(e.Status); text != "" {
		status += " " + text
	}
	if e.Message == "" {
		return status
	}
	return status + ": " + e.Message
}

// ErrorCode names one failure class. The set is closed on purpose: every
// writeError site in the service and router maps onto it, so clients can
// switch on Code without worrying about ad-hoc strings.
type ErrorCode string

const (
	// CodeInvalid: the request itself is malformed (bad spec, bad query
	// parameter, bad result key). HTTP 400.
	CodeInvalid ErrorCode = "invalid_argument"
	// CodeUnauthorized: the admin surface rejected the bearer token. HTTP 401.
	CodeUnauthorized ErrorCode = "unauthorized"
	// CodeNotFound: unknown job id, unknown backend, store miss. HTTP 404.
	CodeNotFound ErrorCode = "not_found"
	// CodeConflict: the request is well-formed but the resource's state
	// refuses it (result of an unfinished or failed job, removing the last
	// ring member). HTTP 409.
	CodeConflict ErrorCode = "conflict"
	// CodeTooLarge: a body exceeded its bound. HTTP 413.
	CodeTooLarge ErrorCode = "too_large"
	// CodeOverQuota: the tenant's token bucket is empty; RetryAfter says
	// when the next token lands. HTTP 429.
	CodeOverQuota ErrorCode = "over_quota"
	// CodeQueueFull: queue-depth admission control rejected the submission;
	// RetryAfter estimates when capacity frees up. HTTP 429 — the job queue
	// is load shedding, which is the client's cue to back off, not a server
	// fault.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeInternal: the server failed on its own. HTTP 500.
	CodeInternal ErrorCode = "internal"
	// CodeBadGateway: the router could not get an answer from any backend.
	// HTTP 502.
	CodeBadGateway ErrorCode = "bad_gateway"
	// CodeUnavailable: the server is up but cannot take the request
	// (draining, no healthy backends, in-flight slots saturated). HTTP 503.
	CodeUnavailable ErrorCode = "unavailable"
)

// codeStatus is the one code→status table; HTTPStatus and StatusCode keep
// the mapping bidirectional so the two can never drift.
var codeStatus = map[ErrorCode]int{
	CodeInvalid:      http.StatusBadRequest,
	CodeUnauthorized: http.StatusUnauthorized,
	CodeNotFound:     http.StatusNotFound,
	CodeConflict:     http.StatusConflict,
	CodeTooLarge:     http.StatusRequestEntityTooLarge,
	CodeOverQuota:    http.StatusTooManyRequests,
	CodeQueueFull:    http.StatusTooManyRequests,
	CodeInternal:     http.StatusInternalServerError,
	CodeBadGateway:   http.StatusBadGateway,
	CodeUnavailable:  http.StatusServiceUnavailable,
}

// HTTPStatus maps the code to its HTTP status; unknown or empty codes are
// an internal server error.
func (c ErrorCode) HTTPStatus() int {
	if s, ok := codeStatus[c]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// CodeForStatus is the reverse mapping, used when a legacy write site only
// knows the status it wants. Statuses shared by two codes resolve to the
// more general one (429 → CodeOverQuota); unmapped 4xx become CodeInvalid
// and everything else CodeInternal.
func CodeForStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalid
	case http.StatusUnauthorized:
		return CodeUnauthorized
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusTooManyRequests:
		return CodeOverQuota
	case http.StatusBadGateway:
		return CodeBadGateway
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	}
	if status/100 == 4 {
		return CodeInvalid
	}
	return CodeInternal
}

// Errorf builds a typed error the way fmt.Errorf builds an untyped one.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}
