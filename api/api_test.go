package api

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/impsim/imp"
)

func TestValidateRejectsAmbiguousAndEmpty(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"empty", JobSpec{}, false},
		{"both", JobSpec{Experiment: "fig2", Sweep: []imp.Config{{Workload: "spmv"}}}, false},
		{"negative timeout", JobSpec{Experiment: "fig2", TimeoutSec: -1}, false},
		{"workload-less config", JobSpec{Sweep: []imp.Config{{Cores: 4}}}, false},
		{"sweep", JobSpec{Sweep: []imp.Config{{Workload: "spmv"}}}, true},
		{"experiment", JobSpec{Experiment: "fig2"}, true},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestNormalizeMatchesLibraryDefaults: normalized specs must fill exactly
// the defaults imp.Run / ExpOptions apply, so the result key of a
// defaulted spec equals that of an explicit one.
func TestNormalizeMatchesLibraryDefaults(t *testing.T) {
	s := JobSpec{Sweep: []imp.Config{{Workload: "spmv"}}}
	s.Normalize()
	if s.Sweep[0].Cores != 64 || s.Sweep[0].Scale != 1.0 {
		t.Errorf("sweep defaults: %+v", s.Sweep[0])
	}
	e := JobSpec{Experiment: "fig2"}
	e.Normalize()
	if e.Cores != 64 || e.Scale != 1.0 {
		t.Errorf("experiment defaults: cores=%d scale=%g", e.Cores, e.Scale)
	}
	// Sweep jobs must not inherit experiment-level defaults.
	if s.Cores != 0 || s.Scale != 0 {
		t.Errorf("sweep spec grew experiment defaults: %+v", s)
	}
}

// TestJobSpecJSONRoundTrip: the wire format round-trips, with System as a
// stable name.
func TestJobSpecJSONRoundTrip(t *testing.T) {
	spec := JobSpec{
		Sweep: []imp.Config{
			{Workload: "spmv", Cores: 16, Scale: 0.5, System: imp.SystemIMPPartial, Seed: 7},
		},
		Parallelism: 3,
		TimeoutSec:  60,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"System":"imp+partial"`; !strings.Contains(string(data), want) {
		t.Fatalf("wire form lacks %s: %s", want, data)
	}
	var back JobSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sweep[0] != spec.Sweep[0] || back.Parallelism != 3 || back.TimeoutSec != 60 {
		t.Errorf("round trip changed spec: %+v", back)
	}
}

func TestJobStateTerminal(t *testing.T) {
	for state, want := range map[JobState]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCanceled: true,
	} {
		if state.Terminal() != want {
			t.Errorf("%s.Terminal() = %v", state, !want)
		}
	}
}
