// Package api defines the wire types of the impserve experiment service:
// job specifications, job statuses and progress events, shared by the
// server (internal/service) and the HTTP client (client).
//
// A job is either an ad-hoc sweep (a list of imp.Configs executed exactly
// as imp.RunSweep would) or a named paper experiment (executed exactly as
// imp.Experiments.Run would). Results are a pure function of the job spec:
// the service content-addresses them by the normalized spec plus the trace
// format and workload generator versions, so identical submissions are
// deduplicated and served from cache, and service results are byte-for-byte
// identical to direct library output at any parallelism.
//
// Content addressing is also what makes the fleet's replication protocol
// trivial: because the bytes under a JobStatus.Key are a pure function of
// the spec, any two backends holding that key hold identical bytes, and
// the internal PUT/GET /v1/results/{key} surface (served by every backend,
// used by the improuter front-end for replica fan-out and read-repair)
// needs no versioning or conflict resolution.
package api

import (
	"fmt"
	"time"

	"github.com/impsim/imp"
)

// JobSpec describes one unit of work. Exactly one of Sweep or Experiment
// must be set.
type JobSpec struct {
	// Sweep lists simulation configs, executed like imp.RunSweep: one
	// result per config, in config order.
	Sweep []imp.Config `json:"sweep,omitempty"`

	// Experiment names a paper experiment id ("fig9", "table3", ...),
	// executed like imp.Experiments.Run; the result is the table JSON.
	Experiment string `json:"experiment,omitempty"`
	// Cores, Scale, Workloads and Seed parameterize an experiment job
	// (imp.ExpOptions); ignored for sweep jobs.
	Cores     int      `json:"cores,omitempty"`
	Scale     float64  `json:"scale,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Seed      int64    `json:"seed,omitempty"`

	// Parallelism bounds this job's own workers (<=0: the service default).
	// It is excluded from the result key: output is byte-identical at any
	// setting, so jobs differing only here share one cached result.
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutSec bounds job execution in seconds (0: the service default).
	// Excluded from the result key like Parallelism.
	TimeoutSec int `json:"timeout_sec,omitempty"`

	// Priority picks the scheduling lane: LaneInteractive jobs jump ahead
	// of LaneBulk jobs in the service's queue, so sweep storms cannot
	// starve small submits. Empty selects automatically — experiments and
	// large sweeps are bulk, small sweeps interactive (EffectiveLane).
	// Like Parallelism it is a scheduling hint, excluded from the result
	// key: the same work yields the same bytes in either lane.
	Priority Lane `json:"priority,omitempty"`
}

// TenantHeader is the request header naming the submitting tenant for
// quota accounting ("X-Imp-Tenant"). It travels beside the spec — tenancy
// is an admission concern, not an input to the work — so it never affects
// the result key, and the improuter forwards it to backends untouched.
// Requests without it share admission.DefaultTenant's bucket.
const TenantHeader = "X-Imp-Tenant"

// Lane names a scheduling priority class.
type Lane string

// The two lanes. Interactive is for latency-sensitive small jobs; bulk for
// throughput work that tolerates queueing behind everything interactive.
const (
	LaneInteractive Lane = "interactive"
	LaneBulk        Lane = "bulk"
)

// Lanes lists both lanes in display order (metrics and stats iterate it).
var Lanes = []Lane{LaneInteractive, LaneBulk}

// EffectiveLane resolves the spec's scheduling lane: an explicit Priority
// wins; otherwise experiments (whole-table computations) and sweeps above
// bulkThreshold points are bulk, and small sweeps are interactive.
// bulkThreshold <= 0 selects the default of 16 points.
func (s *JobSpec) EffectiveLane(bulkThreshold int) Lane {
	if s.Priority != "" {
		return s.Priority
	}
	if bulkThreshold <= 0 {
		bulkThreshold = DefaultBulkThreshold
	}
	if s.Experiment != "" || len(s.Sweep) > bulkThreshold {
		return LaneBulk
	}
	return LaneInteractive
}

// DefaultBulkThreshold is the sweep size beyond which an unlabeled job is
// classified bulk.
const DefaultBulkThreshold = 16

// Validate reports whether the spec names exactly one kind of work.
func (s *JobSpec) Validate() error {
	switch {
	case len(s.Sweep) == 0 && s.Experiment == "":
		return fmt.Errorf("api: job spec names neither sweep configs nor an experiment")
	case len(s.Sweep) > 0 && s.Experiment != "":
		return fmt.Errorf("api: job spec names both sweep configs and experiment %q", s.Experiment)
	case s.TimeoutSec < 0:
		return fmt.Errorf("api: negative timeout_sec %d", s.TimeoutSec)
	case s.Priority != "" && s.Priority != LaneInteractive && s.Priority != LaneBulk:
		return fmt.Errorf("api: unknown priority %q (want %q or %q)", s.Priority, LaneInteractive, LaneBulk)
	}
	for i, cfg := range s.Sweep {
		if cfg.Workload == "" {
			return fmt.Errorf("api: sweep config %d has no workload", i)
		}
	}
	return nil
}

// Normalize resolves defaulted fields to their canonical values, so every
// spec describing the same work serializes identically (the property the
// content-addressed result store keys on). It mirrors the defaults imp.Run
// and imp.ExpOptions apply.
func (s *JobSpec) Normalize() {
	for i := range s.Sweep {
		if s.Sweep[i].Cores <= 0 {
			s.Sweep[i].Cores = 64
		}
		if s.Sweep[i].Scale <= 0 {
			s.Sweep[i].Scale = 1.0
		}
	}
	if s.Experiment != "" {
		if s.Cores <= 0 {
			s.Cores = 64
		}
		if s.Scale <= 0 {
			s.Scale = 1.0
		}
	}
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: queued -> running -> one of the three terminal states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	// ID addresses the job in every per-job endpoint.
	ID string `json:"id"`
	// Key is the content address of the job's result (spec + trace format
	// + generator versions); identical work shares a key.
	Key string `json:"key"`
	// State is the lifecycle position at snapshot time.
	State JobState `json:"state"`
	// Done and Total count completed vs expected simulation points
	// (Total is 0 until the sweep size is known).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error holds the failure message for StateFailed/StateCanceled.
	Error string `json:"error,omitempty"`
	// Deduped marks a submission answered by an existing live job with the
	// same key; Cached marks one answered from the result store.
	Deduped bool `json:"deduped,omitempty"`
	Cached  bool `json:"cached,omitempty"`
	// Submission/execution timestamps (zero until reached).
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// Event is one NDJSON line of a job's progress stream: one per completed
// simulation point, then a single terminal event carrying the final state.
type Event struct {
	// Seq numbers events from 0 within the job; resume a dropped stream
	// with ?from=<next seq>.
	Seq int `json:"seq"`
	// State is set only on the terminal event ("done"/"failed"/"canceled").
	State JobState `json:"state,omitempty"`
	// Workload and System identify the completed point.
	Workload string `json:"workload,omitempty"`
	System   string `json:"system,omitempty"`
	// Point is the point's index in the sweep; Total the sweep size; Done
	// the number of points finished so far.
	Point int `json:"point"`
	Total int `json:"total"`
	Done  int `json:"done"`
	// Cycles is the point's simulated cycle count (0 on failure).
	Cycles int64 `json:"cycles,omitempty"`
	// ElapsedMS is the point's wall-clock simulation time.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Error carries a per-point or terminal failure message.
	Error string `json:"error,omitempty"`
}

// SweepResult is the result payload of a sweep job: one entry per config,
// in config order, exactly as imp.RunSweep returns them.
type SweepResult struct {
	Results []*imp.Result `json:"results"`
}

// Membership admin wire types (the improuter /v1/backends surface).
//
// The router's ring membership is dynamic: operators join a freshly started
// impserve with POST /v1/backends and retire one with DELETE
// /v1/backends/{name}. Joins warm the new member with the key ranges it
// acquires before it enters the lookup path; graceful leaves hand the
// departing member's stored results to their new ring owners first. These
// types are the payloads of that surface, which Config.AdminToken gates
// with a bearer token.

// BackendInfo describes one current ring member.
type BackendInfo struct {
	// Name is the backend's lifetime-unique router name ("b2") — the prefix
	// of every composite job id it mints. Names are never reused, even after
	// the backend leaves.
	Name string `json:"name"`
	// URL is the backend's normalized base URL (its ring identity).
	URL string `json:"url"`
	// Healthy is the router's current health verdict for it.
	Healthy bool `json:"healthy"`
}

// JoinBackendRequest asks the router to add one backend to the ring.
type JoinBackendRequest struct {
	// URL is the joining impserve's base URL ("http://host:port").
	URL string `json:"url"`
}

// MembershipChange reports one applied join or leave.
type MembershipChange struct {
	// Backend is the member that joined or left.
	Backend BackendInfo `json:"backend"`
	// KeysMoved counts result copies bulk-transferred between backends by
	// the change's hand-off (join warm-up or graceful-leave drain).
	KeysMoved int `json:"keys_moved"`
	// Backends is the member count after the change; TopologyVersion is the
	// snapshot version the change published (matches /v1/stats).
	Backends        int    `json:"backends"`
	TopologyVersion uint64 `json:"topology_version"`
}
